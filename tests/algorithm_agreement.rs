//! Agreement tests: every algorithm must produce exactly the series defined
//! by the brute-force oracle, for randomized tuple sets and for the paper's
//! generated workloads.
//!
//! Inputs are drawn from the workspace's own deterministic [`StdRng`]
//! (seeded per test), so failures reproduce exactly; shrinkers are replaced
//! by printing the offending case number and seed in the assert message.

use temporal_aggregates::algo::oracle::oracle;
use temporal_aggregates::prelude::*;
use temporal_aggregates::run;
use temporal_aggregates::workload::rng::StdRng;
use temporal_aggregates::workload::{count_stream, generate, TupleOrder, WorkloadConfig};

const CASES: u64 = 256;

/// Arbitrary closed intervals over a small timeline (dense overlaps).
fn random_interval(rng: &mut StdRng) -> Interval {
    let start = rng.random_range(0i64..200);
    let len = rng.random_range(0i64..60);
    Interval::at(start, start + len)
}

/// 0..40 interval/value tuples.
fn random_tuples(rng: &mut StdRng) -> Vec<(Interval, i64)> {
    let n = rng.random_range(0usize..40);
    (0..n)
        .map(|_| (random_interval(rng), rng.random_range(-100i64..100)))
        .collect()
}

fn run_all_count(tuples: &[(Interval, i64)]) -> Vec<(&'static str, Series<u64>)> {
    let items = || tuples.iter().map(|&(iv, _)| (iv, ()));
    let n = tuples.len().max(1);
    vec![
        (
            "linked-list",
            run(LinkedListAggregate::new(Count), items()).unwrap(),
        ),
        (
            "aggregation-tree",
            run(AggregationTree::new(Count), items()).unwrap(),
        ),
        (
            "k-ordered-tree(k=n)",
            run(KOrderedAggregationTree::new(Count, n).unwrap(), items()).unwrap(),
        ),
        (
            "two-scan",
            run(TwoScanAggregate::new(Count), items()).unwrap(),
        ),
        (
            "balanced",
            run(BalancedAggregationTree::new(Count), items()).unwrap(),
        ),
    ]
}

#[test]
fn all_algorithms_match_the_oracle_for_count() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0_0000 + case);
        let tuples = random_tuples(&mut rng);
        let count_tuples: Vec<(Interval, ())> = tuples.iter().map(|&(iv, _)| (iv, ())).collect();
        let expected = oracle(&Count, Interval::TIMELINE, &count_tuples);
        for (name, series) in run_all_count(&tuples) {
            assert_eq!(series, expected, "algorithm {name} diverged on case {case}");
        }
    }
}

#[test]
fn all_algorithms_match_the_oracle_for_sum() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x50_0000 + case);
        let tuples = random_tuples(&mut rng);
        let expected = oracle(&Sum::<i64>::new(), Interval::TIMELINE, &tuples);
        let items = || tuples.iter().copied();
        let n = tuples.len().max(1);
        let results = vec![
            run(LinkedListAggregate::new(Sum::<i64>::new()), items()).unwrap(),
            run(AggregationTree::new(Sum::<i64>::new()), items()).unwrap(),
            run(
                KOrderedAggregationTree::new(Sum::<i64>::new(), n).unwrap(),
                items(),
            )
            .unwrap(),
            run(TwoScanAggregate::new(Sum::<i64>::new()), items()).unwrap(),
            run(BalancedAggregationTree::new(Sum::<i64>::new()), items()).unwrap(),
        ];
        for series in results {
            assert_eq!(series, expected, "case {case}");
        }
    }
}

#[test]
fn min_max_avg_match_the_oracle_on_the_tree() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x3A_0000 + case);
        let tuples = random_tuples(&mut rng);
        let min_expected = oracle(&Min::<i64>::new(), Interval::TIMELINE, &tuples);
        let max_expected = oracle(&Max::<i64>::new(), Interval::TIMELINE, &tuples);
        assert_eq!(
            run(
                AggregationTree::new(Min::<i64>::new()),
                tuples.iter().copied()
            )
            .unwrap(),
            min_expected,
            "case {case}"
        );
        assert_eq!(
            run(
                AggregationTree::new(Max::<i64>::new()),
                tuples.iter().copied()
            )
            .unwrap(),
            max_expected,
            "case {case}"
        );
        // AVG: compare with tolerance (floating point path order differs).
        let avg_expected = oracle(&Avg::<i64>::new(), Interval::TIMELINE, &tuples);
        let avg_actual = run(
            AggregationTree::new(Avg::<i64>::new()),
            tuples.iter().copied(),
        )
        .unwrap();
        assert_eq!(avg_actual.len(), avg_expected.len(), "case {case}");
        for (a, b) in avg_actual.iter().zip(avg_expected.iter()) {
            assert_eq!(a.interval, b.interval, "case {case}");
            match (a.value, b.value) {
                (None, None) => {}
                (Some(x), Some(y)) => assert!((x - y).abs() < 1e-9, "case {case}"),
                other => panic!("mismatch {other:?} on case {case}"),
            }
        }
    }
}

#[test]
fn result_series_partitions_the_domain() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xD0_0000 + case);
        let count_tuples: Vec<(Interval, ())> = random_tuples(&mut rng)
            .iter()
            .map(|&(iv, _)| (iv, ()))
            .collect();
        let series = run(AggregationTree::new(Count), count_tuples.iter().copied()).unwrap();
        // First entry starts at the domain start, last ends at ∞, and
        // consecutive entries meet exactly.
        assert_eq!(series.entries()[0].interval.start(), Timestamp::ORIGIN);
        assert!(series.entries().last().unwrap().interval.end().is_forever());
        for w in series.entries().windows(2) {
            assert!(w[0].interval.meets(&w[1].interval), "case {case}");
        }
        // Consecutive constant intervals come from different tuple sets, so
        // after coalescing equal-count neighbours we can only shrink.
        let len = series.len();
        assert!(series.coalesce().len() <= len, "case {case}");
    }
}

#[test]
fn paged_tree_matches_oracle_for_any_region_count() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A_0000 + case);
        let tuples = random_tuples(&mut rng);
        let regions = rng.random_range(1usize..40);
        let domain = Interval::at(0, 299);
        let clipped: Vec<(Interval, ())> = tuples
            .iter()
            .filter_map(|&(iv, _)| iv.intersect(&domain).map(|c| (c, ())))
            .collect();
        let expected = oracle(&Count, domain, &clipped);
        let paged = run(
            PagedAggregationTree::new(Count, domain, regions).unwrap(),
            clipped.iter().copied(),
        )
        .unwrap();
        assert_eq!(paged, expected, "regions = {regions}, case {case}");
    }
}

#[test]
fn ktree_accepts_any_k_at_least_the_measured_k() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1B_0000 + case);
        let tuples = random_tuples(&mut rng);
        let extra = rng.random_range(0usize..5);
        let ivs: Vec<Interval> = tuples.iter().map(|&(iv, _)| iv).collect();
        let measured = temporal_aggregates::sortedness::k_order(&ivs);
        let k = (measured + extra).max(1);
        let count_tuples: Vec<(Interval, ())> = tuples.iter().map(|&(iv, _)| (iv, ())).collect();
        let expected = oracle(&Count, Interval::TIMELINE, &count_tuples);
        let got = run(
            KOrderedAggregationTree::new(Count, k).unwrap(),
            count_tuples.iter().copied(),
        )
        .unwrap();
        assert_eq!(
            got, expected,
            "measured k = {measured}, used k = {k}, case {case}"
        );
    }
}

#[test]
fn ktree_streaming_equals_batch() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x57_0000 + case);
        // Sort, then stream with k = 1.
        let mut sorted: Vec<(Interval, ())> = random_tuples(&mut rng)
            .iter()
            .map(|&(iv, _)| (iv, ()))
            .collect();
        sorted.sort_by_key(|(iv, ())| (iv.start(), iv.end()));
        let expected = oracle(&Count, Interval::TIMELINE, &sorted);

        let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut streamed = Vec::new();
        for &(iv, ()) in &sorted {
            tree.push(iv, ()).unwrap();
            tree.emit_ready(&mut streamed);
        }
        streamed.extend(tree.finish().into_entries());
        assert_eq!(Series::from_entries(streamed), expected, "case {case}");
    }
}

#[test]
fn agreement_on_paper_workloads() {
    // The paper's workload shapes: each combination of order × long-lived
    // percentage, all algorithms vs the oracle (small n keeps the oracle
    // tractable).
    let orders = [
        TupleOrder::Random,
        TupleOrder::Sorted,
        TupleOrder::KOrdered {
            k: 8,
            percentage: 0.1,
        },
        TupleOrder::RetroactivelyBounded { max_delay: 5_000 },
    ];
    for order in orders {
        for pct in [0u8, 40, 80] {
            let config = WorkloadConfig {
                tuples: 300,
                order,
                long_lived_pct: pct,
                seed: 42,
                ..Default::default()
            };
            let relation = generate(&config);
            let tuples = count_stream(&relation);
            let expected = oracle(&Count, Interval::TIMELINE, &tuples);

            let items = || tuples.iter().copied();
            assert_eq!(
                run(LinkedListAggregate::new(Count), items()).unwrap(),
                expected,
                "linked list on {order:?}/{pct}%"
            );
            assert_eq!(
                run(AggregationTree::new(Count), items()).unwrap(),
                expected,
                "tree on {order:?}/{pct}%"
            );
            let ivs: Vec<Interval> = relation.intervals().collect();
            let k = temporal_aggregates::sortedness::k_order(&ivs).max(1);
            assert_eq!(
                run(KOrderedAggregationTree::new(Count, k).unwrap(), items()).unwrap(),
                expected,
                "k-tree(k={k}) on {order:?}/{pct}%"
            );
            assert_eq!(
                run(BalancedAggregationTree::new(Count), items()).unwrap(),
                expected,
                "balanced on {order:?}/{pct}%"
            );
        }
    }
}

#[test]
fn grouped_aggregation_matches_filtered_runs() {
    // GROUP BY key must equal running the algorithm on each key's subset.
    let relation = generate(&WorkloadConfig::random(400).with_seed(9));
    let name_idx = relation.schema().index_of("name").unwrap();

    let mut grouped = GroupedAggregate::new(|| AggregationTree::new(Count));
    for t in &relation {
        grouped
            .push(t.value(name_idx).clone(), t.valid(), ())
            .unwrap();
    }
    let results = grouped.finish();
    assert!(results.len() > 1);

    for (key, series) in results {
        let subset: Vec<(Interval, ())> = relation
            .iter()
            .filter(|t| t.value(name_idx) == &key)
            .map(|t| (t.valid(), ()))
            .collect();
        let expected = oracle(&Count, Interval::TIMELINE, &subset);
        assert_eq!(series, expected, "group {key}");
    }
}
