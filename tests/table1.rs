//! Experiment E-T1: every algorithm and the SQL path must reproduce
//! Table 1 of the paper — `SELECT COUNT(Name) FROM Employed` over the
//! Figure 1 relation.

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::{
    employed_relation, employed_tuples, table1_expected,
};

fn rows_of(series: Series<u64>) -> Vec<(Interval, u64)> {
    series.iter().map(|e| (e.interval, e.value)).collect()
}

fn feed<G: TemporalAggregator<Count>>(mut aggregator: G) -> Series<u64> {
    for (_, _, valid) in employed_tuples() {
        aggregator
            .push(valid, ())
            .expect("example tuples fit the domain");
    }
    aggregator.finish()
}

#[test]
fn linked_list_reproduces_table1() {
    assert_eq!(
        rows_of(feed(LinkedListAggregate::new(Count))),
        table1_expected()
    );
}

#[test]
fn aggregation_tree_reproduces_table1() {
    assert_eq!(
        rows_of(feed(AggregationTree::new(Count))),
        table1_expected()
    );
}

#[test]
fn k_ordered_tree_reproduces_table1() {
    // The Employed relation as printed is 2-ordered (Richard's tuple is
    // early); any k ≥ 2 must work.
    for k in [2, 4, 10] {
        let t = KOrderedAggregationTree::new(Count, k).unwrap();
        assert_eq!(rows_of(feed(t)), table1_expected(), "k = {k}");
    }
}

#[test]
fn k1_tree_reproduces_table1_after_sorting() {
    let mut tuples = employed_tuples();
    tuples.sort_by_key(|&(_, _, iv)| (iv.start(), iv.end()));
    let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
    for (_, _, valid) in tuples {
        t.push(valid, ()).unwrap();
    }
    assert_eq!(rows_of(t.finish()), table1_expected());
}

#[test]
fn two_scan_reproduces_table1() {
    assert_eq!(
        rows_of(feed(TwoScanAggregate::new(Count))),
        table1_expected()
    );
}

#[test]
fn balanced_tree_reproduces_table1() {
    assert_eq!(
        rows_of(feed(BalancedAggregationTree::new(Count))),
        table1_expected()
    );
}

#[test]
fn sql_reproduces_table1() {
    let mut catalog = Catalog::new();
    catalog.register("Employed", employed_relation());
    let result = execute_str(&catalog, "SELECT COUNT(Name) FROM Employed E").unwrap();
    let rows: Vec<(Interval, i64)> = result
        .rows
        .iter()
        .map(|r| (r.valid, r.values[0].as_i64().unwrap()))
        .collect();
    let expected: Vec<(Interval, i64)> = table1_expected()
        .into_iter()
        .map(|(iv, v)| (iv, v as i64))
        .collect();
    assert_eq!(rows, expected);
}

#[test]
fn auto_planner_reproduces_table1() {
    let relation = employed_relation();
    let (series, _plan, _report) = evaluate_auto(
        Count,
        &relation,
        |_| (),
        &PlannerConfig::default(),
        Interval::TIMELINE,
    )
    .unwrap();
    assert_eq!(rows_of(series), table1_expected());
}

#[test]
fn all_aggregates_agree_on_constant_interval_boundaries() {
    // Different aggregates over the same relation induce the same constant
    // intervals — the boundaries come from the tuples, not the aggregate.
    let salary_series = {
        let mut t = AggregationTree::new(Sum::<i64>::new());
        for (_, salary, valid) in employed_tuples() {
            t.push(valid, salary).unwrap();
        }
        t.finish()
    };
    let count_series = feed(AggregationTree::new(Count));
    let sum_ivs: Vec<Interval> = salary_series.iter().map(|e| e.interval).collect();
    let count_ivs: Vec<Interval> = count_series.iter().map(|e| e.interval).collect();
    assert_eq!(sum_ivs, count_ivs);
}

#[test]
fn table1_values_at_spot_instants() {
    // Cross-check Figure 2's narrative at specific instants.
    let series = feed(AggregationTree::new(Count));
    assert_eq!(series.value_at(Timestamp(0)), Some(&0));
    assert_eq!(series.value_at(Timestamp(7)), Some(&1));
    assert_eq!(series.value_at(Timestamp(10)), Some(&2));
    assert_eq!(series.value_at(Timestamp(15)), Some(&1)); // Nathan's gap
    assert_eq!(series.value_at(Timestamp(19)), Some(&3));
    assert_eq!(series.value_at(Timestamp(21)), Some(&2));
    assert_eq!(series.value_at(Timestamp(1_000_000)), Some(&1)); // Richard forever
}
