//! Integration tests for the streaming result path: `finish_into` /
//! `emit_ready` must emit exactly the entries `finish` materializes, for
//! every algorithm and every aggregate, and `Series::stitch` /
//! `Series::stitch_where` must handle the degenerate part lists the
//! partitioned streaming path can produce.

use temporal_aggregates::prelude::*;
use temporal_aggregates::{Aggregate, SeriesEntry, SweepAggregate};

const DOMAIN_END: i64 = 4_000;

fn domain() -> Interval {
    Interval::at(0, DOMAIN_END)
}

/// Deterministic 16-ordered `(interval, value)` tuples inside `domain()`:
/// starts advance by 2 with a bounded backward jitter, so the k-ordered
/// tree at `k = 16` accepts them while the stream is still genuinely
/// unsorted.
fn tuples(n: usize) -> Vec<(Interval, i64)> {
    (0..n as i64)
        .map(|i| {
            let jitter = (i * 7) % 11;
            let start = (i * 2 - jitter).max(0);
            let len = 5 + (i % 37);
            (Interval::at(start, start + len), i % 23 - 11)
        })
        .collect()
}

/// Assert the three result paths agree for one aggregator constructor:
/// materialized `finish`, `finish_into` a collecting [`Series`], and a
/// bounded [`ChunkedSink`] with `emit_ready` interleaved into the feed.
fn assert_streaming_matches<A, G, F>(make: F, tuples: &[(Interval, A::Input)])
where
    A: Aggregate,
    A::Input: Clone,
    A::Output: Clone + PartialEq + std::fmt::Debug,
    G: TemporalAggregator<A>,
    F: Fn() -> G,
{
    let mut materialized = make();
    for (interval, value) in tuples {
        materialized.push(*interval, value.clone()).unwrap();
    }
    let name = materialized.algorithm();
    let batch = materialized.finish();

    let mut collector = make();
    for (interval, value) in tuples {
        collector.push(*interval, value.clone()).unwrap();
    }
    let mut collected = Series::new();
    collector.finish_into(&mut collected);
    assert_eq!(batch, collected, "{name}: finish_into(Series) != finish");

    let mut streamed: Vec<SeriesEntry<A::Output>> = Vec::new();
    {
        let mut chunked = make();
        let mut sink = ChunkedSink::new(64, |chunk: &[SeriesEntry<A::Output>]| {
            streamed.extend_from_slice(chunk);
        });
        for (batch_no, window) in tuples.chunks(256).enumerate() {
            for (interval, value) in window {
                chunked.push(*interval, value.clone()).unwrap();
            }
            if batch_no % 2 == 0 {
                chunked.emit_ready(&mut sink);
            }
        }
        chunked.finish_into(&mut sink);
        sink.flush();
    }
    assert_eq!(
        batch.entries(),
        &streamed[..],
        "{name}: emit_ready + finish_into through ChunkedSink != finish"
    );
}

/// Run the agreement check across every algorithm the aggregate supports:
/// linked list, aggregation tree, k-ordered tree, endpoint sweep, and the
/// partitioned combinator at 1, 2, and 8 partitions.
fn assert_all_algorithms_agree<A>(agg: A, tuples: &[(Interval, A::Input)])
where
    A: Aggregate + SweepAggregate + Clone + Send + Sync,
    A::Input: Clone + Send + Sync,
    A::Output: Clone + PartialEq + Send + std::fmt::Debug,
    A::State: Send,
{
    assert_streaming_matches(
        || LinkedListAggregate::with_domain(agg.clone(), domain()),
        tuples,
    );
    assert_streaming_matches(
        || AggregationTree::with_domain(agg.clone(), domain()),
        tuples,
    );
    assert_streaming_matches(
        || KOrderedAggregationTree::with_domain(agg.clone(), 16, domain()).unwrap(),
        tuples,
    );
    assert_streaming_matches(
        || SweepAggregator::with_domain(agg.clone(), domain()),
        tuples,
    );
    for partitions in [1usize, 2, 8] {
        assert_streaming_matches(
            || {
                PartitionedAggregator::new(domain(), partitions, |sub| {
                    AggregationTree::with_domain(agg.clone(), sub)
                })
            },
            tuples,
        );
    }
}

#[test]
fn count_streams_identically_across_algorithms() {
    let unit: Vec<(Interval, ())> = tuples(1_500)
        .into_iter()
        .map(|(interval, _)| (interval, ()))
        .collect();
    assert_all_algorithms_agree(Count, &unit);
}

#[test]
fn sum_streams_identically_across_algorithms() {
    assert_all_algorithms_agree(Sum::<i64>::new(), &tuples(1_500));
}

#[test]
fn min_streams_identically_across_algorithms() {
    assert_all_algorithms_agree(Min::<i64>::new(), &tuples(1_500));
}

#[test]
fn max_streams_identically_across_algorithms() {
    assert_all_algorithms_agree(Max::<i64>::new(), &tuples(1_500));
}

#[test]
fn avg_streams_identically_across_algorithms() {
    assert_all_algorithms_agree(Avg::<i64>::new(), &tuples(1_500));
}

// ---------------------------------------------------------------------------
// Series::stitch / stitch_where edge cases — the seams the partitioned
// streaming path feeds through StitchSink.
// ---------------------------------------------------------------------------

#[test]
fn stitch_of_no_parts_is_empty() {
    let out: Series<i64> = Series::stitch(Vec::new());
    assert!(out.is_empty());
    assert_eq!(out.len(), 0);
}

#[test]
fn stitch_of_single_part_is_identity() {
    let mut part = Series::new();
    part.push(Interval::at(0, 4), 1);
    part.push(Interval::at(5, 9), 2);
    let expected = part.clone();
    assert_eq!(Series::stitch(vec![part]), expected);
}

#[test]
fn stitch_of_all_empty_parts_is_empty() {
    let parts: Vec<Series<i64>> = vec![Series::new(), Series::new(), Series::new()];
    let out = Series::stitch(parts);
    assert!(out.is_empty());
}

#[test]
fn stitch_merges_equal_values_across_a_seam() {
    let mut left = Series::new();
    left.push(Interval::at(0, 9), 7);
    let mut right = Series::new();
    right.push(Interval::at(10, 20), 7);
    let out = Series::stitch(vec![left, right]);
    assert_eq!(out.entries(), &[SeriesEntry::new(Interval::at(0, 20), 7)]);
}

#[test]
fn stitch_keeps_unequal_values_across_a_seam() {
    let mut left = Series::new();
    left.push(Interval::at(0, 9), 7);
    let mut right = Series::new();
    right.push(Interval::at(10, 20), 8);
    let out = Series::stitch(vec![left, right]);
    assert_eq!(
        out.entries(),
        &[
            SeriesEntry::new(Interval::at(0, 9), 7),
            SeriesEntry::new(Interval::at(10, 20), 8),
        ]
    );
}

#[test]
fn stitch_where_keeps_equal_values_when_the_seam_is_a_real_boundary() {
    let mut left = Series::new();
    left.push(Interval::at(0, 9), 7);
    let mut right = Series::new();
    right.push(Interval::at(10, 20), 7);
    // Forbid merging across seam 0: the cut is a real constant-interval
    // boundary and must survive even though the values match.
    let out = Series::stitch_where(vec![left, right], |_seam| false);
    assert_eq!(
        out.entries(),
        &[
            SeriesEntry::new(Interval::at(0, 9), 7),
            SeriesEntry::new(Interval::at(10, 20), 7),
        ]
    );
}

#[test]
fn stitch_sink_agrees_with_stitch_on_streamed_parts() {
    let mut left = Series::new();
    left.push(Interval::at(0, 9), 1);
    left.push(Interval::at(10, 15), 2);
    let mut right = Series::new();
    right.push(Interval::at(16, 30), 2);
    right.push(Interval::at(31, 40), 3);

    let expected = Series::stitch(vec![left.clone(), right.clone()]);

    let mut sink = StitchSink::new(Series::new());
    for (p, part) in [left, right].into_iter().enumerate() {
        if p > 0 {
            sink.seam(true);
        }
        for entry in part {
            sink.accept(entry.interval, entry.value);
        }
    }
    assert_eq!(sink.finish(), expected);
}
