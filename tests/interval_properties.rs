//! Property tests for the temporal data model's algebraic laws — the
//! invariants every algorithm in the workspace leans on.

use proptest::prelude::*;
use temporal_aggregates::core::coalesce;
use temporal_aggregates::prelude::*;
use temporal_aggregates::sortedness;
use temporal_aggregates::{Schema, SeriesEntry, ValueType};

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (-500i64..500, 0i64..300).prop_map(|(s, len)| Interval::at(s, s + len))
}

fn timestamp_strategy() -> impl Strategy<Value = Timestamp> {
    (-1000i64..1000).prop_map(Timestamp::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn overlaps_is_symmetric(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn covers_implies_overlaps(a in interval_strategy(), b in interval_strategy()) {
        if a.covers(&b) {
            prop_assert!(a.overlaps(&b));
            prop_assert!(a.duration() >= b.duration());
        }
    }

    #[test]
    fn intersect_agrees_with_overlaps(a in interval_strategy(), b in interval_strategy()) {
        match a.intersect(&b) {
            Some(i) => {
                prop_assert!(a.overlaps(&b));
                prop_assert!(a.covers(&i));
                prop_assert!(b.covers(&i));
                // Intersection is the largest common sub-interval.
                prop_assert_eq!(i.start(), a.start().max(b.start()));
                prop_assert_eq!(i.end(), a.end().min(b.end()));
            }
            None => prop_assert!(!a.overlaps(&b)),
        }
    }

    #[test]
    fn intersect_commutes(a in interval_strategy(), b in interval_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
    }

    #[test]
    fn hull_contains_both_and_is_minimal(a in interval_strategy(), b in interval_strategy()) {
        let h = a.hull(&b);
        prop_assert!(h.covers(&a));
        prop_assert!(h.covers(&b));
        prop_assert!(h.start() == a.start() || h.start() == b.start());
        prop_assert!(h.end() == a.end() || h.end() == b.end());
    }

    #[test]
    fn splits_partition_exactly(iv in interval_strategy(), t in timestamp_strategy()) {
        if let Some((left, right)) = iv.split_before(t) {
            prop_assert!(left.meets(&right));
            prop_assert_eq!(left.hull(&right), iv);
            prop_assert_eq!(right.start(), t);
            prop_assert_eq!(
                left.duration() + right.duration(),
                iv.duration()
            );
        }
        if let Some((left, right)) = iv.split_after(t) {
            prop_assert!(left.meets(&right));
            prop_assert_eq!(left.hull(&right), iv);
            prop_assert_eq!(left.end(), t);
        }
    }

    #[test]
    fn contains_matches_interval_of_one(iv in interval_strategy(), t in timestamp_strategy()) {
        prop_assert_eq!(iv.contains(t), iv.overlaps(&Interval::instant(t)));
    }

    #[test]
    fn coalesce_is_idempotent_and_order_preserving(
        values in proptest::collection::vec(0u64..3, 0..30)
    ) {
        // Build a contiguous series with small values so adjacent equals
        // are common.
        let mut entries = Vec::new();
        let mut start = 0i64;
        for (i, v) in values.iter().enumerate() {
            let len = 1 + (i as i64 % 3);
            entries.push(SeriesEntry::new(Interval::at(start, start + len), *v));
            start += len + 1;
        }
        let series = Series::from_entries(entries);
        let once = series.clone().coalesce();
        let twice = once.clone().coalesce();
        prop_assert_eq!(&once, &twice, "coalesce must be idempotent");
        // No two adjacent (meeting) entries share a value afterwards.
        for w in once.entries().windows(2) {
            if w[0].interval.meets(&w[1].interval) {
                prop_assert_ne!(&w[0].value, &w[1].value);
            }
        }
        // value_at is preserved at every original boundary instant.
        for e in series.entries() {
            prop_assert_eq!(
                series.value_at(e.interval.start()),
                once.value_at(e.interval.start())
            );
        }
    }

    #[test]
    fn zip_with_preserves_time_structure(
        xs in proptest::collection::vec((0i64..50, 1i64..20, 0u64..10), 1..10),
        ys in proptest::collection::vec((0i64..50, 1i64..20, 0u64..10), 1..10),
    ) {
        fn build(parts: &[(i64, i64, u64)]) -> Series<u64> {
            let mut entries = Vec::new();
            let mut cursor = 0i64;
            for &(gap, len, v) in parts {
                let start = cursor + gap;
                entries.push(SeriesEntry::new(Interval::at(start, start + len), v));
                cursor = start + len + 1;
            }
            Series::from_entries(entries)
        }
        let a = build(&xs);
        let b = build(&ys);
        let z = a.zip_with(&b, |&x, &y| (x, y));
        // Every zipped entry agrees with point lookups in both inputs.
        for e in z.entries() {
            for t in [e.interval.start(), e.interval.end()] {
                prop_assert_eq!(a.value_at(t), Some(&e.value.0));
                prop_assert_eq!(b.value_at(t), Some(&e.value.1));
            }
        }
        // Zip is symmetric up to value order.
        let zr = b.zip_with(&a, |&y, &x| (x, y));
        prop_assert_eq!(z, zr);
    }

    #[test]
    fn sortedness_invariants(starts in proptest::collection::vec(-100i64..100, 0..60)) {
        let ivs: Vec<Interval> =
            starts.iter().map(|&s| Interval::at(s, s + 10)).collect();
        let k = sortedness::k_order(&ivs);
        // k_order is 0 iff time-ordered.
        prop_assert_eq!(k == 0, sortedness::is_time_ordered(&ivs));
        // Every relation of n tuples is at worst (n-1)-ordered.
        if !ivs.is_empty() {
            prop_assert!(k < ivs.len());
        }
        // Percentage is within [0, 1] at the measured k.
        let pct = sortedness::k_ordered_percentage(&ivs, k.max(1));
        prop_assert!((0.0..=1.0).contains(&pct), "pct = {}", pct);
        // Sorting zeroes the metrics.
        let mut sorted = ivs.clone();
        sorted.sort_by_key(|iv| (iv.start(), iv.end()));
        prop_assert_eq!(sortedness::k_order(&sorted), 0);
    }

    #[test]
    fn tuple_coalescing_preserves_instant_truth(
        rows in proptest::collection::vec((0u8..3, 0i64..60, 0i64..20), 0..25)
    ) {
        // A fact (name) is true at instant t iff some tuple with that name
        // covers t — coalescing must not change that, and must remove all
        // mergeable pairs.
        let schema = Schema::of(&[("name", ValueType::Str)]);
        let mut relation = TemporalRelation::new(schema);
        for &(who, start, len) in &rows {
            let name = ["a", "b", "c"][who as usize];
            relation
                .push(vec![Value::from(name)], Interval::at(start, start + len))
                .unwrap();
        }
        let coalesced = coalesce::coalesce_tuples(&relation);
        let deduped = coalesce::eliminate_duplicates(&relation);
        prop_assert!(coalesced.len() <= deduped.len());
        prop_assert!(deduped.len() <= relation.len());

        let truth = |rel: &TemporalRelation, name: &str, t: i64| {
            rel.iter().any(|tuple| {
                tuple.value(0).as_str() == Some(name) && tuple.valid().contains(Timestamp(t))
            })
        };
        for t in 0..80 {
            for name in ["a", "b", "c"] {
                prop_assert_eq!(
                    truth(&relation, name, t),
                    truth(&coalesced, name, t),
                    "name {} at t = {}", name, t
                );
                prop_assert_eq!(truth(&relation, name, t), truth(&deduped, name, t));
            }
        }
        // Coalescing is idempotent.
        let again = coalesce::coalesce_tuples(&coalesced);
        prop_assert_eq!(again.len(), coalesced.len());
        // And no value-equivalent mergeable pair survives.
        for (i, x) in coalesced.iter().enumerate() {
            for y in coalesced.iter().skip(i + 1) {
                if x.values() == y.values() {
                    prop_assert!(
                        !x.valid().overlaps(&y.valid()) && !x.valid().meets(&y.valid())
                            && !y.valid().meets(&x.valid()),
                        "unmerged pair {} and {}", x.valid(), y.valid()
                    );
                }
            }
        }
    }
}
