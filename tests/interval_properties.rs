//! Randomized tests for the temporal data model's algebraic laws — the
//! invariants every algorithm in the workspace leans on. Cases are drawn
//! from the workspace's deterministic [`StdRng`], seeded per test.

use temporal_aggregates::core::coalesce;
use temporal_aggregates::prelude::*;
use temporal_aggregates::sortedness;
use temporal_aggregates::workload::rng::StdRng;
use temporal_aggregates::{Schema, SeriesEntry, ValueType};

const CASES: u64 = 512;

fn random_interval(rng: &mut StdRng) -> Interval {
    let s = rng.random_range(-500i64..500);
    let len = rng.random_range(0i64..300);
    Interval::at(s, s + len)
}

fn random_timestamp(rng: &mut StdRng) -> Timestamp {
    Timestamp::new(rng.random_range(-1000i64..1000))
}

#[test]
fn overlaps_is_symmetric() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0E_0000 + case);
        let (a, b) = (random_interval(&mut rng), random_interval(&mut rng));
        assert_eq!(a.overlaps(&b), b.overlaps(&a), "case {case}");
    }
}

#[test]
fn covers_implies_overlaps() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x0C_0000 + case);
        // Nudge towards actual covers pairs: b is derived from a half the
        // time, else independent.
        let a = random_interval(&mut rng);
        let b = if rng.random_bool(0.5) {
            let s = rng.random_range(a.start().get()..=a.end().get());
            let e = rng.random_range(s..=a.end().get());
            Interval::at(s, e)
        } else {
            random_interval(&mut rng)
        };
        if a.covers(&b) {
            assert!(a.overlaps(&b), "case {case}");
            assert!(a.duration() >= b.duration(), "case {case}");
        }
    }
}

#[test]
fn intersect_agrees_with_overlaps() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x11_0000 + case);
        let (a, b) = (random_interval(&mut rng), random_interval(&mut rng));
        match a.intersect(&b) {
            Some(i) => {
                assert!(a.overlaps(&b), "case {case}");
                assert!(a.covers(&i), "case {case}");
                assert!(b.covers(&i), "case {case}");
                // Intersection is the largest common sub-interval.
                assert_eq!(i.start(), a.start().max(b.start()), "case {case}");
                assert_eq!(i.end(), a.end().min(b.end()), "case {case}");
            }
            None => assert!(!a.overlaps(&b), "case {case}"),
        }
    }
}

#[test]
fn intersect_commutes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x1C_0000 + case);
        let (a, b) = (random_interval(&mut rng), random_interval(&mut rng));
        assert_eq!(a.intersect(&b), b.intersect(&a), "case {case}");
    }
}

#[test]
fn hull_contains_both_and_is_minimal() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x40_0000 + case);
        let (a, b) = (random_interval(&mut rng), random_interval(&mut rng));
        let h = a.hull(&b);
        assert!(h.covers(&a), "case {case}");
        assert!(h.covers(&b), "case {case}");
        assert!(
            h.start() == a.start() || h.start() == b.start(),
            "case {case}"
        );
        assert!(h.end() == a.end() || h.end() == b.end(), "case {case}");
    }
}

#[test]
fn splits_partition_exactly() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x59_0000 + case);
        let iv = random_interval(&mut rng);
        // Half the cases pick a point inside the interval so the split
        // actually happens.
        let t = if rng.random_bool(0.5) {
            Timestamp::new(rng.random_range(iv.start().get()..=iv.end().get()))
        } else {
            random_timestamp(&mut rng)
        };
        if let Some((left, right)) = iv.split_before(t) {
            assert!(left.meets(&right), "case {case}");
            assert_eq!(left.hull(&right), iv, "case {case}");
            assert_eq!(right.start(), t, "case {case}");
            assert_eq!(
                left.duration() + right.duration(),
                iv.duration(),
                "case {case}"
            );
        }
        if let Some((left, right)) = iv.split_after(t) {
            assert!(left.meets(&right), "case {case}");
            assert_eq!(left.hull(&right), iv, "case {case}");
            assert_eq!(left.end(), t, "case {case}");
        }
    }
}

#[test]
fn contains_matches_interval_of_one() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0_0000 + case);
        let iv = random_interval(&mut rng);
        let t = random_timestamp(&mut rng);
        assert_eq!(
            iv.contains(t),
            iv.overlaps(&Interval::instant(t)),
            "case {case}"
        );
    }
}

#[test]
fn coalesce_is_idempotent_and_order_preserving() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0A1 + case);
        // Build a contiguous series with small values so adjacent equals
        // are common.
        let n = rng.random_range(0usize..30);
        let values: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..3)).collect();
        let mut entries = Vec::new();
        let mut start = 0i64;
        for (i, v) in values.iter().enumerate() {
            let len = 1 + (i as i64 % 3);
            entries.push(SeriesEntry::new(Interval::at(start, start + len), *v));
            start += len + 1;
        }
        let series = Series::from_entries(entries);
        let once = series.clone().coalesce();
        let twice = once.clone().coalesce();
        assert_eq!(once, twice, "coalesce must be idempotent (case {case})");
        // No two adjacent (meeting) entries share a value afterwards.
        for w in once.entries().windows(2) {
            if w[0].interval.meets(&w[1].interval) {
                assert_ne!(w[0].value, w[1].value, "case {case}");
            }
        }
        // value_at is preserved at every original boundary instant.
        for e in series.entries() {
            assert_eq!(
                series.value_at(e.interval.start()),
                once.value_at(e.interval.start()),
                "case {case}"
            );
        }
    }
}

#[test]
fn zip_with_preserves_time_structure() {
    fn build(parts: &[(i64, i64, u64)]) -> Series<u64> {
        let mut entries = Vec::new();
        let mut cursor = 0i64;
        for &(gap, len, v) in parts {
            let start = cursor + gap;
            entries.push(SeriesEntry::new(Interval::at(start, start + len), v));
            cursor = start + len + 1;
        }
        Series::from_entries(entries)
    }
    fn random_parts(rng: &mut StdRng) -> Vec<(i64, i64, u64)> {
        let n = rng.random_range(1usize..10);
        (0..n)
            .map(|_| {
                (
                    rng.random_range(0i64..50),
                    rng.random_range(1i64..20),
                    rng.random_range(0u64..10),
                )
            })
            .collect()
    }
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x21_0000 + case);
        let a = build(&random_parts(&mut rng));
        let b = build(&random_parts(&mut rng));
        let z = a.zip_with(&b, |&x, &y| (x, y));
        // Every zipped entry agrees with point lookups in both inputs.
        for e in z.entries() {
            for t in [e.interval.start(), e.interval.end()] {
                assert_eq!(a.value_at(t), Some(&e.value.0), "case {case}");
                assert_eq!(b.value_at(t), Some(&e.value.1), "case {case}");
            }
        }
        // Zip is symmetric up to value order.
        let zr = b.zip_with(&a, |&y, &x| (x, y));
        assert_eq!(z, zr, "case {case}");
    }
}

#[test]
fn sortedness_invariants() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x50_0000 + case);
        let n = rng.random_range(0usize..60);
        let ivs: Vec<Interval> = (0..n)
            .map(|_| {
                let s = rng.random_range(-100i64..100);
                Interval::at(s, s + 10)
            })
            .collect();
        let k = sortedness::k_order(&ivs);
        // k_order is 0 iff time-ordered.
        assert_eq!(k == 0, sortedness::is_time_ordered(&ivs), "case {case}");
        // Every relation of n tuples is at worst (n-1)-ordered.
        if !ivs.is_empty() {
            assert!(k < ivs.len(), "case {case}");
        }
        // Percentage is within [0, 1] at the measured k.
        let pct = sortedness::k_ordered_percentage(&ivs, k.max(1));
        assert!((0.0..=1.0).contains(&pct), "pct = {pct} (case {case})");
        // Sorting zeroes the metrics.
        let mut sorted = ivs.clone();
        sorted.sort_by_key(|iv| (iv.start(), iv.end()));
        assert_eq!(sortedness::k_order(&sorted), 0, "case {case}");
    }
}

#[test]
fn tuple_coalescing_preserves_instant_truth() {
    // A fact (name) is true at instant t iff some tuple with that name
    // covers t — coalescing must not change that, and must remove all
    // mergeable pairs. (Fewer cases: each does an 80×3 truth-table sweep.)
    for case in 0..CASES / 4 {
        let mut rng = StdRng::seed_from_u64(0x7C_0000 + case);
        let schema = Schema::of(&[("name", ValueType::Str)]);
        let mut relation = TemporalRelation::new(schema);
        let rows = rng.random_range(0usize..25);
        for _ in 0..rows {
            let name = ["a", "b", "c"][rng.random_range(0usize..3)];
            let start = rng.random_range(0i64..60);
            let len = rng.random_range(0i64..20);
            relation
                .push(vec![Value::from(name)], Interval::at(start, start + len))
                .unwrap();
        }
        let coalesced = coalesce::coalesce_tuples(&relation);
        let deduped = coalesce::eliminate_duplicates(&relation);
        assert!(coalesced.len() <= deduped.len(), "case {case}");
        assert!(deduped.len() <= relation.len(), "case {case}");

        let truth = |rel: &TemporalRelation, name: &str, t: i64| {
            rel.iter().any(|tuple| {
                tuple.value(0).as_str() == Some(name) && tuple.valid().contains(Timestamp(t))
            })
        };
        for t in 0..80 {
            for name in ["a", "b", "c"] {
                assert_eq!(
                    truth(&relation, name, t),
                    truth(&coalesced, name, t),
                    "name {name} at t = {t} (case {case})"
                );
                assert_eq!(
                    truth(&relation, name, t),
                    truth(&deduped, name, t),
                    "case {case}"
                );
            }
        }
        // Coalescing is idempotent.
        let again = coalesce::coalesce_tuples(&coalesced);
        assert_eq!(again.len(), coalesced.len(), "case {case}");
        // And no value-equivalent mergeable pair survives.
        for (i, x) in coalesced.iter().enumerate() {
            for y in coalesced.iter().skip(i + 1) {
                if x.values() == y.values() {
                    assert!(
                        !x.valid().overlaps(&y.valid())
                            && !x.valid().meets(&y.valid())
                            && !y.valid().meets(&x.valid()),
                        "unmerged pair {} and {} (case {case})",
                        x.valid(),
                        y.valid()
                    );
                }
            }
        }
    }
}
