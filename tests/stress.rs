//! Larger-scale cross-validation: the algorithms must agree with each
//! other (pairwise, no oracle — the oracle is quadratic) on
//! workload-generator output at sizes past anything the unit tests use,
//! and determinism must hold end to end.

use temporal_aggregates::prelude::*;
use temporal_aggregates::run;
use temporal_aggregates::workload::{count_stream, generate, TupleOrder, WorkloadConfig};

#[test]
fn tree_equals_list_and_balanced_at_scale() {
    let relation = generate(&WorkloadConfig::random(20_000).with_seed(77));
    let tuples = count_stream(&relation);
    let tree = run(AggregationTree::new(Count), tuples.iter().copied()).unwrap();
    let balanced = run(BalancedAggregationTree::new(Count), tuples.iter().copied()).unwrap();
    assert_eq!(tree, balanced);
    // ~2 constant intervals per tuple on mostly-unique timestamps.
    assert!(tree.len() > 30_000, "rows = {}", tree.len());
    let list = run(LinkedListAggregate::new(Count), tuples.iter().copied()).unwrap();
    assert_eq!(tree, list);
}

#[test]
fn ktree_equals_tree_at_scale_with_gc_active() {
    let relation = generate(
        &WorkloadConfig::k_ordered(20_000, 40, 0.08)
            .with_seed(78)
            .with_long_lived_pct(40),
    );
    let tuples = count_stream(&relation);
    let tree = run(AggregationTree::new(Count), tuples.iter().copied()).unwrap();
    let (ktree, stats) = temporal_aggregates::run_with_stats(
        KOrderedAggregationTree::new(Count, 40).unwrap(),
        tuples.iter().copied(),
    )
    .unwrap();
    assert_eq!(tree, ktree);
    // GC must actually have been collecting: the windowed tree's peak is
    // far below the full tree's ~2 nodes/tuple.
    assert!(
        stats.peak_nodes < 2 * tuples.len() / 2,
        "peak {} suggests GC never ran",
        stats.peak_nodes
    );
}

#[test]
fn paged_tree_equals_plain_at_scale() {
    let relation = generate(&WorkloadConfig::random(20_000).with_seed(79));
    let domain = Interval::at(0, 999_999);
    let tuples = count_stream(&relation);
    let plain = run(
        AggregationTree::with_domain(Count, domain),
        tuples.iter().copied(),
    )
    .unwrap();
    let paged = run(
        PagedAggregationTree::new(Count, domain, 64).unwrap(),
        tuples.iter().copied(),
    )
    .unwrap();
    assert_eq!(plain, paged);
}

#[test]
fn streaming_sorted_run_is_memory_flat() {
    // 50K sorted short-lived tuples through the k = 1 tree: peak nodes
    // must stay bounded by the window plus the overlap density (~25
    // concurrent tuples here), independent of n.
    let relation = generate(&WorkloadConfig::sorted(50_000).with_seed(80));
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    let mut emitted = CountingSink::new();
    let mut peak = 0usize;
    for (iv, ()) in count_stream(&relation) {
        tree.push(iv, ()).unwrap();
        peak = peak.max(tree.node_count());
        tree.emit_ready(&mut emitted);
    }
    let tail = tree.finish();
    assert!(peak < 512, "peak live nodes {peak}");
    assert!(
        emitted.entries() > 90_000,
        "streamed rows {}",
        emitted.entries()
    );
    assert!(tail.len() < 512, "tail rows {}", tail.len());
}

#[test]
fn generator_is_deterministic_end_to_end() {
    let config = WorkloadConfig {
        tuples: 10_000,
        order: TupleOrder::KOrdered {
            k: 100,
            percentage: 0.08,
        },
        long_lived_pct: 40,
        seed: 4242,
        ..Default::default()
    };
    let a = run(
        AggregationTree::new(Count),
        count_stream(&generate(&config)),
    )
    .unwrap();
    let b = run(
        AggregationTree::new(Count),
        count_stream(&generate(&config)),
    )
    .unwrap();
    assert_eq!(a, b);
}

#[test]
fn sql_at_scale_is_consistent_across_planner_paths() {
    // The same query over the same data, forced down different algorithms
    // via planner configs, must agree.
    let relation = generate(&WorkloadConfig::random(10_000).with_seed(81));
    let mut catalog = Catalog::new();
    catalog.register("r", relation);
    let q = temporal_aggregates::sql::parse(
        "SELECT COUNT(name), SUM(salary) FROM r WHERE VALID OVERLAPS [0, 500000]",
    )
    .unwrap();
    let rich =
        temporal_aggregates::sql::execute_query(&catalog, &q, &PlannerConfig::default()).unwrap();
    let tight = temporal_aggregates::sql::execute_query(
        &catalog,
        &q,
        &PlannerConfig {
            memory_budget_bytes: Some(4 * 1024),
            ..Default::default()
        },
    )
    .unwrap();
    assert_ne!(
        rich.plan.as_ref().unwrap().choice,
        tight.plan.as_ref().unwrap().choice,
        "configs should pick different algorithms"
    );
    assert_eq!(rich.rows, tight.rows);
}
