//! Robustness: hostile inputs must produce errors, never panics, and the
//! public API must uphold its documented failure modes. Randomized cases
//! come from the workspace's deterministic [`StdRng`], seeded per test.

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::employed_relation;
use temporal_aggregates::workload::rng::StdRng;
use temporal_aggregates::TempAggError;

const CASES: u64 = 512;

/// The SQL pipeline must never panic on arbitrary input strings — lexer,
/// parser, and executor all return errors instead.
#[test]
fn sql_never_panics_on_garbage() {
    // A character pool heavy on SQL-adjacent punctuation plus some
    // multi-byte characters to stress byte-indexed lexing.
    const POOL: &[char] = &[
        'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '\t', '\n', '(', ')', '[', ']', ',', '*', '=',
        '<', '>', '!', '\'', '"', ';', '.', '-', '+', '/', '%', '#', '∞', 'é', '時',
    ];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x6A_0000 + case);
        let len = rng.random_range(0usize..=80);
        let input: String = (0..len)
            .map(|_| POOL[rng.random_range(0usize..POOL.len())])
            .collect();
        let mut catalog = Catalog::new();
        catalog.register("employed", employed_relation());
        let _ = temporal_aggregates::sql::execute_statement(&mut catalog, &input);
    }
}

/// Near-SQL garbage (keyword soup) must also be handled gracefully.
#[test]
fn sql_never_panics_on_keyword_soup() {
    const WORDS: &[&str] = &[
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "SPAN", "VALID", "OVERLAPS", "COUNT", "(", ")",
        "*", ",", "employed", "name", "42", "'x'", "[", "]", "AND", "=", "EXPLAIN", "SNAPSHOT",
        "DISTINCT", "INSERT", "INTO", "VALUES", "CREATE", "TABLE",
    ];
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x500B_0000 + case);
        let n = rng.random_range(0usize..15);
        let sql = (0..n)
            .map(|_| WORDS[rng.random_range(0usize..WORDS.len())])
            .collect::<Vec<_>>()
            .join(" ");
        let mut catalog = Catalog::new();
        catalog.register("employed", employed_relation());
        let _ = temporal_aggregates::sql::execute_statement(&mut catalog, &sql);
    }
}

/// Interval constructors validate rather than wrap or panic.
#[test]
fn interval_new_validates() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x17_0000 + case);
        // Full-range i64s (including near-extreme values) half the time,
        // colliding small values the other half.
        let (a, b) = if rng.random_bool(0.5) {
            (rng.next_u64() as i64, rng.next_u64() as i64)
        } else {
            (rng.random_range(-3i64..=3), rng.random_range(-3i64..=3))
        };
        match Interval::new(a, b) {
            Ok(iv) => {
                assert!(a <= b, "case {case}");
                assert_eq!(iv.start().get(), a, "case {case}");
                assert_eq!(iv.end().get(), b, "case {case}");
            }
            Err(TempAggError::InvalidInterval { .. }) => assert!(a > b, "case {case}"),
            Err(other) => panic!("unexpected error {other:?} (case {case})"),
        }
    }
}

#[test]
fn algorithms_reject_out_of_domain_without_state_damage() {
    let domain = Interval::at(100, 200);
    let mut tree = AggregationTree::with_domain(Count, domain);
    tree.push(Interval::at(100, 150), ()).unwrap();
    // A rejected push must not corrupt the tree.
    assert!(tree.push(Interval::at(0, 300), ()).is_err());
    assert!(tree.push(Interval::at(150, 201), ()).is_err());
    let series = tree.finish();
    assert_eq!(series.len(), 2);
    assert_eq!(series.entries()[0].value, 1);
}

#[test]
fn ktree_violation_leaves_consistent_state() {
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    for i in 0..50 {
        tree.push(Interval::at(i * 100, i * 100 + 10), ()).unwrap();
    }
    // A violating push errors...
    assert!(matches!(
        tree.push(Interval::at(0, 5), ()),
        Err(TempAggError::KOrderViolation { .. })
    ));
    // ...but the tree still finishes correctly for what it accepted.
    let series = tree.finish();
    assert_eq!(
        series.iter().map(|e| e.value).filter(|&v| v == 1).count(),
        50
    );
}

#[test]
fn planner_handles_degenerate_stats() {
    // Zero tuples, absurd budgets: always a usable plan, never a panic.
    for n in [0usize, 1] {
        for budget in [Some(0usize), Some(1), None] {
            let stats = RelationStats::unknown(n);
            let config = PlannerConfig {
                memory_budget_bytes: budget,
                ..Default::default()
            };
            let p = plan(&stats, &config, 4);
            let _ = p.to_string();
        }
    }
}

#[test]
fn empty_relation_through_every_path() {
    let mut catalog = Catalog::new();
    catalog.register("empty", {
        let schema = temporal_aggregates::Schema::of(&[("x", temporal_aggregates::ValueType::Int)]);
        TemporalRelation::new(schema)
    });
    // Aggregate query over an empty relation: one empty constant interval.
    let result = execute_str(&catalog, "SELECT COUNT(x) FROM empty").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].values[0], Value::Int(0));
    // Snapshot over empty: one row of NULL/0.
    let result = execute_str(&catalog, "SELECT SNAPSHOT COUNT(x), SUM(x) FROM empty").unwrap();
    assert_eq!(result.rows[0].values[0], Value::Int(0));
    assert!(result.rows[0].values[1].is_null());
    // Plain select: no rows.
    match temporal_aggregates::sql::execute_statement(&mut catalog, "SELECT * FROM empty").unwrap()
    {
        temporal_aggregates::sql::StatementOutput::Tuples(t) => assert!(t.rows.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
}
