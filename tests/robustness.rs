//! Robustness: hostile inputs must produce errors, never panics, and the
//! public API must uphold its documented failure modes.

use proptest::prelude::*;
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::employed_relation;
use temporal_aggregates::TempAggError;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The SQL pipeline must never panic on arbitrary input strings —
    /// lexer, parser, and executor all return errors instead.
    #[test]
    fn sql_never_panics_on_garbage(input in ".{0,80}") {
        let mut catalog = Catalog::new();
        catalog.register("employed", employed_relation());
        let _ = temporal_aggregates::sql::execute_statement(&mut catalog, &input);
    }

    /// Near-SQL garbage (keyword soup) must also be handled gracefully.
    #[test]
    fn sql_never_panics_on_keyword_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("SPAN"), Just("VALID"), Just("OVERLAPS"),
                Just("COUNT"), Just("("), Just(")"), Just("*"), Just(","),
                Just("employed"), Just("name"), Just("42"), Just("'x'"),
                Just("["), Just("]"), Just("AND"), Just("="), Just("EXPLAIN"),
                Just("SNAPSHOT"), Just("DISTINCT"), Just("INSERT"),
                Just("INTO"), Just("VALUES"), Just("CREATE"), Just("TABLE"),
            ],
            0..15,
        )
    ) {
        let sql = words.join(" ");
        let mut catalog = Catalog::new();
        catalog.register("employed", employed_relation());
        let _ = temporal_aggregates::sql::execute_statement(&mut catalog, &sql);
    }

    /// Interval constructors validate rather than wrap or panic.
    #[test]
    fn interval_new_validates(a in any::<i64>(), b in any::<i64>()) {
        match Interval::new(a, b) {
            Ok(iv) => {
                prop_assert!(a <= b);
                prop_assert_eq!(iv.start().get(), a);
                prop_assert_eq!(iv.end().get(), b);
            }
            Err(TempAggError::InvalidInterval { .. }) => prop_assert!(a > b),
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

#[test]
fn algorithms_reject_out_of_domain_without_state_damage() {
    let domain = Interval::at(100, 200);
    let mut tree = AggregationTree::with_domain(Count, domain);
    tree.push(Interval::at(100, 150), ()).unwrap();
    // A rejected push must not corrupt the tree.
    assert!(tree.push(Interval::at(0, 300), ()).is_err());
    assert!(tree.push(Interval::at(150, 201), ()).is_err());
    let series = tree.finish();
    assert_eq!(series.len(), 2);
    assert_eq!(series.entries()[0].value, 1);
}

#[test]
fn ktree_violation_leaves_consistent_state() {
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    for i in 0..50 {
        tree.push(Interval::at(i * 100, i * 100 + 10), ()).unwrap();
    }
    // A violating push errors...
    assert!(matches!(
        tree.push(Interval::at(0, 5), ()),
        Err(TempAggError::KOrderViolation { .. })
    ));
    // ...but the tree still finishes correctly for what it accepted.
    let series = tree.finish();
    assert_eq!(
        series.iter().map(|e| e.value).filter(|&v| v == 1).count(),
        50
    );
}

#[test]
fn planner_handles_degenerate_stats() {
    // Zero tuples, absurd budgets: always a usable plan, never a panic.
    for n in [0usize, 1] {
        for budget in [Some(0usize), Some(1), None] {
            let stats = RelationStats::unknown(n);
            let config = PlannerConfig {
                memory_budget_bytes: budget,
                ..Default::default()
            };
            let p = plan(&stats, &config, 4);
            let _ = p.to_string();
        }
    }
}

#[test]
fn empty_relation_through_every_path() {
    let mut catalog = Catalog::new();
    catalog.register("empty", {
        let schema = temporal_aggregates::Schema::of(&[(
            "x",
            temporal_aggregates::ValueType::Int,
        )]);
        TemporalRelation::new(schema)
    });
    // Aggregate query over an empty relation: one empty constant interval.
    let result = execute_str(&catalog, "SELECT COUNT(x) FROM empty").unwrap();
    assert_eq!(result.rows.len(), 1);
    assert_eq!(result.rows[0].values[0], Value::Int(0));
    // Snapshot over empty: one row of NULL/0.
    let result = execute_str(&catalog, "SELECT SNAPSHOT COUNT(x), SUM(x) FROM empty").unwrap();
    assert_eq!(result.rows[0].values[0], Value::Int(0));
    assert!(result.rows[0].values[1].is_null());
    // Plain select: no rows.
    match temporal_aggregates::sql::execute_statement(
        &mut catalog,
        "SELECT * FROM empty",
    )
    .unwrap()
    {
        temporal_aggregates::sql::StatementOutput::Tuples(t) => assert!(t.rows.is_empty()),
        other => panic!("unexpected {other:?}"),
    }
}
