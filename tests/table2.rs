//! Experiment E-T2: the k-ordered-percentage examples of Table 2
//! (n = 10000, k = 100), both from the paper's stated displacement
//! distributions and from actually-constructed permutations.

use temporal_aggregates::sortedness::{
    displacement_histogram, k_order, k_ordered_percentage, k_ordered_percentage_from_histogram,
};
use temporal_aggregates::Interval;

const N: usize = 10_000;
const K: usize = 100;

fn intervals_from_order(starts: &[i64]) -> Vec<Interval> {
    starts.iter().map(|&s| Interval::at(s, s + 1)).collect()
}

fn sorted_starts() -> Vec<i64> {
    (0..N as i64).collect()
}

#[test]
fn row1_sorted_is_zero() {
    let ivs = intervals_from_order(&sorted_starts());
    assert_eq!(k_ordered_percentage(&ivs, K), 0.0);
}

#[test]
fn row2_two_tuples_swapped_100_apart() {
    let mut starts = sorted_starts();
    starts.swap(1234, 1334);
    let ivs = intervals_from_order(&starts);
    let pct = k_ordered_percentage(&ivs, K);
    assert!((pct - 0.0002).abs() < 1e-12, "pct = {pct}");
    assert_eq!(k_order(&ivs), 100);
}

#[test]
fn row3_twenty_tuples_100_out_of_order() {
    let mut starts = sorted_starts();
    for s in 0..10 {
        starts.swap(s * 700, s * 700 + 100);
    }
    let ivs = intervals_from_order(&starts);
    let pct = k_ordered_percentage(&ivs, K);
    assert!((pct - 0.002).abs() < 1e-12, "pct = {pct}");
}

#[test]
fn row4_one_tuple_at_each_distance() {
    // Stated as a displacement distribution: nᵢ = 1 for i = 1..=100.
    let mut hist = vec![0usize; K + 1];
    for slot in hist.iter_mut().skip(1) {
        *slot = 1;
    }
    let pct = k_ordered_percentage_from_histogram(&hist, K, N);
    assert!((pct - 0.00505).abs() < 1e-12, "pct = {pct}");
}

#[test]
fn row5_ten_tuples_at_each_distance() {
    // nᵢ = 10 for i = 1..=100.
    let mut hist = vec![0usize; K + 1];
    for slot in hist.iter_mut().skip(1) {
        *slot = 10;
    }
    let pct = k_ordered_percentage_from_histogram(&hist, K, N);
    assert!((pct - 0.0505).abs() < 1e-12, "pct = {pct}");
}

#[test]
fn histogram_route_equals_direct_route() {
    let mut starts = sorted_starts();
    for s in 0..25 {
        starts.swap(s * 397, s * 397 + 60);
    }
    let ivs = intervals_from_order(&starts);
    let direct = k_ordered_percentage(&ivs, K);
    let hist = displacement_histogram(&ivs);
    let via_hist = k_ordered_percentage_from_histogram(&hist, K, N);
    assert!((direct - via_hist).abs() < 1e-12);
}

#[test]
fn paper_section52_six_tuple_example() {
    // "For a relation with 6 tuples, with k = 3, if we swap tuples 1 with
    // 4, 2 with 5, and 3 with 6, we have a k-ordered-percentage of 1."
    let ivs = intervals_from_order(&[3, 4, 5, 0, 1, 2]);
    assert_eq!(k_order(&ivs), 3);
    let pct = k_ordered_percentage(&ivs, 3);
    assert!((pct - 1.0).abs() < 1e-12);
}

#[test]
fn generated_workloads_hit_requested_percentages() {
    // The paper's test values (Table 3): 0.02, 0.08, 0.14.
    use temporal_aggregates::workload::{generate, WorkloadConfig};
    for &target in &[0.02, 0.08, 0.14] {
        let r = generate(&WorkloadConfig::k_ordered(N, K, target).with_seed(11));
        let ivs: Vec<Interval> = r.intervals().collect();
        assert!(k_order(&ivs) <= K);
        let pct = k_ordered_percentage(&ivs, K);
        assert!(
            (pct - target).abs() < 0.01,
            "target {target}, achieved {pct}"
        );
    }
}
