//! Randomized oracle tests for the window-aggregate index (DESIGN.md §16).
//!
//! Every indexable aggregate (`COUNT(*)`, `COUNT`, `SUM`, `MIN`, `MAX`)
//! is probed through the SQL `OVER [a, b]` path and compared against the
//! engine's scan fallback — the same query with a vacuously-true `WHERE`,
//! which forces the planner off the index. The comparison runs over four
//! data shapes (random, sorted, duplicate-endpoint, touching) with
//! interleaved `INSERT`/`DELETE`/`UPDATE` between query rounds, so the
//! index answers come from incremental maintenance, not fresh builds.
//! Under `--features validate` the store additionally asserts each probe
//! byte-identical to a linear scan of the cached series.

use temporal_aggregates::core::{Interval, Schema, TemporalRelation, Timestamp, Value, ValueType};
use temporal_aggregates::prelude::*;
use temporal_aggregates::store::sweep_values;
use temporal_aggregates::{AggKind, DynAggregate, TemporalStore};

/// The workspace's dependency-free PRNG (xorshift64*), as in the other
/// integration tests.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

const LIFESPAN: i64 = 2_000;
const SHAPES: &[&str] = &["random", "sorted", "duplicate-endpoint", "touching"];
const AGGS: &[&str] = &["COUNT(*)", "COUNT(x)", "SUM(x)", "MIN(x)", "MAX(x)"];

/// One tuple interval of the given shape. `i` is the tuple's index in
/// creation order, so "sorted" and "touching" can build on it.
fn shaped_interval(shape: &str, rng: &mut u64, i: usize, n: usize) -> Interval {
    match shape {
        "sorted" => {
            // Starts ascend with i; lengths stay random.
            let start = (i as i64 * LIFESPAN) / n as i64;
            let len = (xorshift(rng) % 200) as i64;
            Interval::at(start, (start + len).min(LIFESPAN))
        }
        "duplicate-endpoint" => {
            // Endpoints drawn from a tiny palette: maximal boundary
            // collisions, the sweep's and the index's trickiest case.
            let palette = [0i64, 250, 500, 750, 1_000, 1_500, LIFESPAN];
            let a = palette[(xorshift(rng) % palette.len() as u64) as usize];
            let b = palette[(xorshift(rng) % palette.len() as u64) as usize];
            Interval::at(a.min(b), a.max(b))
        }
        "touching" => {
            // Consecutive tuples meet exactly: end + 1 == next start.
            let width = LIFESPAN / n as i64;
            let start = i as i64 * width;
            Interval::at(start, start + width - 1)
        }
        _ => {
            let start = (xorshift(rng) % (LIFESPAN as u64 - 200)) as i64;
            let len = (xorshift(rng) % 200) as i64;
            Interval::at(start, start + len)
        }
    }
}

/// A fresh `(g INT, x INT)` relation of `n` tuples in the given shape,
/// with `groups` distinct group values and positive `x` (so `x > 0` is a
/// vacuously-true fallback-forcing condition).
fn shaped_relation(shape: &str, rng: &mut u64, n: usize, groups: u64) -> TemporalRelation {
    let schema = Schema::of(&[("g", ValueType::Int), ("x", ValueType::Int)]);
    let mut relation = TemporalRelation::new(schema);
    for i in 0..n {
        let g = (xorshift(rng) % groups) as i64;
        let x = (xorshift(rng) % 1_000) as i64 + 1;
        let valid = shaped_interval(shape, rng, i, n);
        relation
            .push(vec![Value::Int(g), Value::Int(x)], valid)
            .expect("generated row fits the schema");
    }
    relation
}

/// One randomized DML statement against `t`, keeping `x` positive.
fn random_dml(rng: &mut u64, round: usize) -> String {
    match round % 3 {
        0 => {
            let g = xorshift(rng) % 8;
            let x = xorshift(rng) % 1_000 + 1;
            let start = (xorshift(rng) % (LIFESPAN as u64 - 100)) as i64;
            let len = (xorshift(rng) % 100) as i64;
            format!(
                "INSERT INTO t VALUES ({g}, {x}) VALID [{start}, {end}]",
                end = start + len
            )
        }
        1 => {
            let g = xorshift(rng) % 8;
            let x = xorshift(rng) % 1_000 + 1;
            format!("UPDATE t SET x = {x} WHERE g = {g}")
        }
        _ => {
            let g = xorshift(rng) % 8;
            let a = (xorshift(rng) % (LIFESPAN as u64 - 200)) as i64;
            format!(
                "DELETE FROM t WHERE g = {g} AND VALID OVERLAPS [{a}, {b}]",
                b = a + 200
            )
        }
    }
}

fn random_window(rng: &mut u64) -> (i64, i64) {
    let a = (xorshift(rng) % (LIFESPAN as u64 - 100)) as i64;
    let len = (xorshift(rng) % 400) as i64;
    (a, (a + len).min(LIFESPAN))
}

/// Index-served `OVER` queries equal the scan fallback, for all five
/// indexable aggregates, every data shape, across interleaved DML.
///
/// Relations are big enough (~1K runs) that the cost model picks the
/// index probe; the duplicate-endpoint shape collapses to a handful of
/// runs, where the planner legitimately prefers the cached linear scan —
/// that path must agree with the fallback too, so it stays in the sweep.
/// The store-level test below exercises the index itself on every shape.
#[test]
fn window_queries_agree_with_the_scan_fallback() {
    for (s, shape) in SHAPES.iter().enumerate() {
        let mut rng = 0xA11CE + s as u64;
        let mut catalog = Catalog::new();
        catalog.register("t", shaped_relation(shape, &mut rng, 1_024, 8));
        for round in 0..9 {
            if round > 0 {
                let dml = random_dml(&mut rng, round);
                execute_statement(&mut catalog, &dml)
                    .unwrap_or_else(|e| panic!("[{shape}] `{dml}`: {e}"));
            }
            for agg in AGGS {
                let (a, b) = random_window(&mut rng);
                let indexed =
                    execute_str(&catalog, &format!("SELECT {agg} OVER [{a}, {b}] FROM t"))
                        .unwrap_or_else(|e| panic!("[{shape}] {agg} OVER [{a}, {b}]: {e}"));
                let scanned = execute_str(
                    &catalog,
                    &format!("SELECT {agg} OVER [{a}, {b}] FROM t WHERE x > 0"),
                )
                .unwrap_or_else(|e| panic!("[{shape}] fallback {agg} OVER [{a}, {b}]: {e}"));
                assert_eq!(
                    indexed.rows, scanned.rows,
                    "[{shape}] round {round}: {agg} OVER [{a}, {b}] diverged from the fallback"
                );
            }
        }
    }
}

/// `TOP k BY … OVER … GROUP BY g` rankings equal the per-group sweep
/// fallback, across shapes, aggregates, and DML rounds.
#[test]
fn top_k_rankings_agree_with_the_grouped_fallback() {
    for (s, shape) in SHAPES.iter().enumerate() {
        let mut rng = 0xB0B0 + s as u64;
        let mut catalog = Catalog::new();
        catalog.register("t", shaped_relation(shape, &mut rng, 1_024, 8));
        for round in 0..6 {
            if round > 0 {
                let dml = random_dml(&mut rng, round);
                execute_statement(&mut catalog, &dml)
                    .unwrap_or_else(|e| panic!("[{shape}] `{dml}`: {e}"));
            }
            for agg in AGGS {
                let (a, b) = random_window(&mut rng);
                let k = (xorshift(&mut rng) % 4) as usize + 1;
                let indexed = execute_str(
                    &catalog,
                    &format!("SELECT TOP {k} BY {agg} OVER [{a}, {b}] FROM t GROUP BY g"),
                )
                .unwrap_or_else(|e| panic!("[{shape}] TOP {k} BY {agg}: {e}"));
                let scanned = execute_str(
                    &catalog,
                    &format!(
                        "SELECT TOP {k} BY {agg} OVER [{a}, {b}] FROM t WHERE x > 0 GROUP BY g"
                    ),
                )
                .unwrap_or_else(|e| panic!("[{shape}] fallback TOP {k} BY {agg}: {e}"));
                assert_eq!(
                    indexed.rows, scanned.rows,
                    "[{shape}] round {round}: TOP {k} BY {agg} OVER [{a}, {b}] \
                     diverged from the fallback"
                );
            }
        }
    }
}

/// Store-level probes are *always* index descents (no planner in the
/// way): after every DML round, each aggregate's `window_probe` must
/// equal a from-scratch sweep of the live relation scanned linearly —
/// the incremental maintenance oracle, on every data shape.
#[test]
fn window_probes_match_fresh_sweeps_across_dml() {
    use temporal_aggregates::algo::scan_window;
    let aggs = [
        (AggKind::CountStar, None),
        (AggKind::Count, Some(1)),
        (AggKind::Sum, Some(1)),
        (AggKind::Min, Some(1)),
        (AggKind::Max, Some(1)),
    ];
    for (s, shape) in SHAPES.iter().enumerate() {
        let mut rng = 0xD1CE + s as u64;
        let mut store = TemporalStore::new(shaped_relation(shape, &mut rng, 128, 8));
        for round in 0..12 {
            match round % 3 {
                0 => {
                    let g = (xorshift(&mut rng) % 8) as i64;
                    let x = (xorshift(&mut rng) % 1_000) as i64 + 1;
                    let start = (xorshift(&mut rng) % (LIFESPAN as u64 - 100)) as i64;
                    let len = (xorshift(&mut rng) % 100) as i64;
                    store
                        .insert(
                            vec![Value::Int(g), Value::Int(x)],
                            Interval::at(start, start + len),
                        )
                        .expect("insert through the store");
                }
                1 => {
                    let g = (xorshift(&mut rng) % 8) as i64;
                    let x = (xorshift(&mut rng) % 1_000) as i64 + 1;
                    store
                        .update_where(|t| t.value(0) == &Value::Int(g), &[(1, Value::Int(x))])
                        .expect("update through the store");
                }
                _ => {
                    let g = (xorshift(&mut rng) % 8) as i64;
                    let a = (xorshift(&mut rng) % (LIFESPAN as u64 - 200)) as i64;
                    let cut = Interval::at(a, a + 200);
                    store
                        .delete_where(|t| {
                            t.value(0) == &Value::Int(g) && t.valid().intersect(&cut).is_some()
                        })
                        .expect("delete through the store");
                }
            }
            let (a, b) = random_window(&mut rng);
            let window = Interval::at(a, b);
            for (kind, column) in aggs {
                let probed = store
                    .window_probe(kind, column, window)
                    .expect("indexable aggregate");
                let agg = DynAggregate::new(kind, ValueType::Int).expect("indexable pairing");
                let tuples: Vec<_> = store.relation().iter().collect();
                let fresh = sweep_values(&agg, column, &tuples);
                assert_eq!(
                    probed,
                    scan_window(&fresh, window),
                    "[{shape}] round {round}: {kind:?} probe over {window} diverged \
                     from a fresh sweep"
                );
            }
        }
    }
}

/// Extreme-instant descent agrees with a linear scan of the same cached
/// series: same extreme value, same earliest instant, also after DML.
#[test]
fn extreme_instant_probes_match_a_linear_scan() {
    let mut rng = 0xEE7;
    let mut store = TemporalStore::new(shaped_relation("random", &mut rng, 96, 8));
    let agg = DynAggregate::new(AggKind::Sum, ValueType::Int).expect("SUM over Int");
    for round in 0..12 {
        if round == 6 {
            store
                .insert(
                    vec![Value::Int(3), Value::Int(5_000)],
                    Interval::at(900, 1_100),
                )
                .expect("insert through the store");
        }
        let (a, b) = random_window(&mut rng);
        let window = Interval::at(a, b);
        for want_max in [false, true] {
            let probed = store
                .window_extreme_instant(AggKind::Sum, Some(1), window, want_max)
                .expect("SUM(x) is indexable");
            // Linear oracle over the same snapshot: earliest clipped run
            // attaining the extreme non-null value.
            let series = store
                .snapshot(AggKind::Sum, Some(1))
                .expect("cache is warm");
            let mut best: Option<(Timestamp, Value)> = None;
            for entry in series.entries() {
                let Some(clipped) = entry.interval.intersect(&window) else {
                    continue;
                };
                if entry.value.is_null() {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((_, value)) => {
                        let cmp = entry.value.total_cmp(value);
                        if want_max {
                            cmp.is_gt()
                        } else {
                            cmp.is_lt()
                        }
                    }
                };
                if better {
                    best = Some((clipped.start(), entry.value.clone()));
                }
            }
            assert_eq!(
                probed, best,
                "round {round}: extreme_instant(want_max={want_max}) over {window}"
            );
        }
        let _ = agg;
    }
}

/// `CacheReport` surfaces index traffic: a cold `OVER` query misses, a
/// warm repeat hits, and both count their probes.
#[test]
fn cache_report_counts_index_probes() {
    let mut rng = 0xC0DE;
    let mut catalog = Catalog::new();
    catalog.register("t", shaped_relation("random", &mut rng, 1_024, 4));
    let cold = execute_str(&catalog, "SELECT SUM(x) OVER [100, 900] FROM t").unwrap();
    assert!(cold.cache.served_from_cache);
    assert_eq!(cold.cache.index_misses, 1);
    assert_eq!(cold.cache.index_probes, 1);
    let warm = execute_str(&catalog, "SELECT SUM(x) OVER [200, 800] FROM t").unwrap();
    assert_eq!(warm.cache.index_hits, 1);
    assert_eq!(warm.cache.index_misses, 0);
    assert_eq!(warm.cache.index_probes, 1);
}

/// `sweep_values` (the grouped fallback's kernel) agrees with the cache
/// the store publishes for the same tuples — the byte-identity bridge
/// the TOP-k machinery depends on.
#[test]
fn grouped_sweeps_match_store_caches() {
    let mut rng = 0x5EED;
    let relation = shaped_relation("duplicate-endpoint", &mut rng, 64, 1);
    let tuples: Vec<_> = relation.iter().collect();
    let agg = DynAggregate::new(AggKind::Max, ValueType::Int).expect("MAX over Int");
    let swept = sweep_values(&agg, Some(1), &tuples);
    let store = TemporalStore::new(relation.clone());
    let cached = store.snapshot_or_build(agg, Some(1));
    assert_eq!(swept.entries(), cached.entries());
}
