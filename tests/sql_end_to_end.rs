//! End-to-end SQL tests on generated workloads: the SQL answer must equal
//! the answer computed by driving the algorithm layer directly.

use temporal_aggregates::algo::oracle::oracle;
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::{generate, WorkloadConfig};
use temporal_aggregates::QueryResult;

fn catalog_with(name: &str, relation: TemporalRelation) -> Catalog {
    let mut c = Catalog::new();
    c.register(name, relation);
    c
}

/// Flatten a SQL result (no grouping) into `(interval, value)` rows.
fn sql_rows(result: &QueryResult) -> Vec<(Interval, Value)> {
    result
        .rows
        .iter()
        .map(|r| (r.valid, r.values[0].clone()))
        .collect()
}

#[test]
fn sql_count_equals_direct_computation_on_random_workload() {
    let relation = generate(&WorkloadConfig::random(500).with_seed(3));
    let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
    let expected = oracle(&Count, Interval::TIMELINE, &tuples)
        .map(|v| Value::Int(v as i64))
        .coalesce();

    let catalog = catalog_with("r", relation);
    let result = execute_str(&catalog, "SELECT COUNT(*) FROM r").unwrap();
    let expected_rows: Vec<(Interval, Value)> = expected
        .iter()
        .map(|e| (e.interval, e.value.clone()))
        .collect();
    assert_eq!(sql_rows(&result), expected_rows);
}

#[test]
fn sql_sum_equals_direct_computation() {
    let relation = generate(&WorkloadConfig::sorted(400).with_seed(5));
    let salary_idx = relation.schema().index_of("salary").unwrap();
    let tuples: Vec<(Interval, i64)> = relation
        .iter()
        .map(|t| (t.valid(), t.value(salary_idx).as_i64().unwrap()))
        .collect();
    let expected = oracle(&Sum::<i64>::new(), Interval::TIMELINE, &tuples)
        .map(|v| v.map_or(Value::Null, Value::Int))
        .coalesce();

    let catalog = catalog_with("r", relation);
    let result = execute_str(&catalog, "SELECT SUM(salary) FROM r").unwrap();
    let expected_rows: Vec<(Interval, Value)> = expected
        .iter()
        .map(|e| (e.interval, e.value.clone()))
        .collect();
    assert_eq!(sql_rows(&result), expected_rows);
}

#[test]
fn sql_where_equals_prefiltered_direct_computation() {
    let relation = generate(&WorkloadConfig::random(500).with_seed(8));
    let salary_idx = relation.schema().index_of("salary").unwrap();
    let tuples: Vec<(Interval, ())> = relation
        .iter()
        .filter(|t| t.value(salary_idx).as_i64().unwrap() >= 60_000)
        .map(|t| (t.valid(), ()))
        .collect();
    let expected = oracle(&Count, Interval::TIMELINE, &tuples)
        .map(|v| Value::Int(v as i64))
        .coalesce();

    let catalog = catalog_with("r", relation);
    let result = execute_str(&catalog, "SELECT COUNT(name) FROM r WHERE salary >= 60000").unwrap();
    let expected_rows: Vec<(Interval, Value)> = expected
        .iter()
        .map(|e| (e.interval, e.value.clone()))
        .collect();
    assert_eq!(sql_rows(&result), expected_rows);
}

#[test]
fn sql_group_by_partitions_correctly() {
    let relation = generate(&WorkloadConfig::random(300).with_seed(13));
    let name_idx = relation.schema().index_of("name").unwrap();
    let catalog = catalog_with("r", relation.clone());
    let result = execute_str(&catalog, "SELECT COUNT(name) FROM r GROUP BY name").unwrap();

    // For each group in the SQL result, re-compute directly.
    let mut groups: Vec<Value> = result.rows.iter().filter_map(|r| r.group.clone()).collect();
    groups.sort();
    groups.dedup();
    assert!(groups.len() >= 2);

    for key in groups {
        let subset: Vec<(Interval, ())> = relation
            .iter()
            .filter(|t| t.value(name_idx) == &key)
            .map(|t| (t.valid(), ()))
            .collect();
        let expected = oracle(&Count, Interval::TIMELINE, &subset)
            .map(|v| Value::Int(v as i64))
            .coalesce();
        let got: Vec<(Interval, Value)> = result
            .rows
            .iter()
            .filter(|r| r.group.as_ref() == Some(&key))
            .map(|r| (r.valid, r.values[0].clone()))
            .collect();
        let expected_rows: Vec<(Interval, Value)> = expected
            .iter()
            .map(|e| (e.interval, e.value.clone()))
            .collect();
        assert_eq!(got, expected_rows, "group {key}");
    }
}

#[test]
fn sql_valid_window_equals_clipped_direct_computation() {
    let relation = generate(&WorkloadConfig::random(400).with_seed(21));
    let window = Interval::at(100_000, 500_000);
    let tuples: Vec<(Interval, ())> = relation
        .intervals()
        .filter_map(|iv| iv.intersect(&window))
        .map(|iv| (iv, ()))
        .collect();
    let expected = oracle(&Count, window, &tuples)
        .map(|v| Value::Int(v as i64))
        .coalesce();

    let catalog = catalog_with("r", relation);
    let result = execute_str(
        &catalog,
        "SELECT COUNT(*) FROM r WHERE VALID OVERLAPS [100000, 500000]",
    )
    .unwrap();
    let expected_rows: Vec<(Interval, Value)> = expected
        .iter()
        .map(|e| (e.interval, e.value.clone()))
        .collect();
    assert_eq!(sql_rows(&result), expected_rows);
    // Every row stays inside the window.
    assert!(result.rows.iter().all(|r| window.covers(&r.valid)));
}

#[test]
fn sql_planner_reacts_to_input_order() {
    let sorted = generate(&WorkloadConfig::sorted(1_000));
    let random = generate(&WorkloadConfig::random(1_000));
    let c1 = catalog_with("r", sorted);
    let c2 = catalog_with("r", random);
    let q = "SELECT COUNT(*) FROM r";
    let p1 = execute_str(&c1, q).unwrap().plan.unwrap();
    let p2 = execute_str(&c2, q).unwrap().plan.unwrap();
    assert_eq!(
        p1.choice,
        AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: false
        }
    );
    // Unordered COUNT (delta retraction class) routes to the columnar
    // endpoint sweep under the calibrated cost model.
    assert_eq!(p2.choice, AlgorithmChoice::Sweep);
}

#[test]
fn sql_multi_aggregate_columns_are_consistent() {
    let relation = generate(&WorkloadConfig::random(200).with_seed(2));
    let catalog = catalog_with("r", relation);
    let result = execute_str(
        &catalog,
        "SELECT COUNT(salary), MIN(salary), MAX(salary), AVG(salary) FROM r",
    )
    .unwrap();
    for row in &result.rows {
        let count = row.values[0].as_i64().unwrap();
        if count == 0 {
            assert!(row.values[1].is_null());
            assert!(row.values[2].is_null());
            assert!(row.values[3].is_null());
        } else {
            let min = row.values[1].as_i64().unwrap();
            let max = row.values[2].as_i64().unwrap();
            let avg = row.values[3].as_f64().unwrap();
            assert!(min <= max);
            assert!(min as f64 <= avg && avg <= max as f64);
        }
    }
}

#[test]
fn sql_span_total_equals_instant_weighted_check() {
    // Sanity link between span and instant grouping: a span bucket's count
    // must be at least the max instant count within it and at most the
    // total number of overlapping tuples.
    let relation = generate(
        &WorkloadConfig::random(200)
            .with_seed(33)
            .with_lifespan(100_000),
    );
    let catalog = catalog_with("r", relation.clone());
    let spans = execute_str(
        &catalog,
        "SELECT COUNT(*) FROM r WHERE VALID OVERLAPS [0, 99999] GROUP BY SPAN 10000",
    )
    .unwrap();
    let instants = execute_str(
        &catalog,
        "SELECT COUNT(*) FROM r WHERE VALID OVERLAPS [0, 99999]",
    )
    .unwrap();
    assert_eq!(spans.rows.len(), 10);
    for span_row in &spans.rows {
        let span_count = span_row.values[0].as_i64().unwrap();
        let max_instant = instants
            .rows
            .iter()
            .filter(|r| r.valid.overlaps(&span_row.valid))
            .map(|r| r.values[0].as_i64().unwrap())
            .max()
            .unwrap_or(0);
        assert!(
            span_count >= max_instant,
            "span {} count {span_count} < max instant count {max_instant}",
            span_row.valid
        );
    }
}
