//! End-to-end ingestion through the facade: the README's mutable-store
//! example, plus snapshot stability across DML (DESIGN.md §13).

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::employed_relation;
use temporal_aggregates::{AggKind, DynAggregate, ValueType};

/// The README "ingestion" snippet, verbatim: warm the cache with one
/// query, mutate through DML, and observe the repeat query served from
/// an MVCC snapshot with the writes applied.
#[test]
fn readme_ingestion_example_works() {
    let mut catalog = Catalog::new();
    catalog.register("Employed", employed_relation());

    let first = execute_str(&catalog, "SELECT COUNT(Name) FROM Employed E").unwrap();
    assert!(!first.cache.served_from_cache);

    execute_statement(
        &mut catalog,
        "INSERT INTO Employed VALUES ('Ada', 72000) VALID [3, 9]",
    )
    .unwrap();
    execute_statement(
        &mut catalog,
        "UPDATE Employed SET salary = 50000 WHERE name = 'Karen'",
    )
    .unwrap();
    execute_statement(&mut catalog, "DELETE FROM Employed WHERE name = 'Nathan'").unwrap();

    let served = execute_str(&catalog, "SELECT COUNT(Name) FROM Employed E").unwrap();
    assert!(served.cache.served_from_cache);

    // The served rows must equal a cold evaluation over the mutated
    // relation — cached maintenance is invisible except for being fast.
    let mut cold = Catalog::new();
    cold.register(
        "Employed",
        catalog.store("Employed").unwrap().relation().clone(),
    );
    let recomputed = execute_str(&cold, "SELECT COUNT(Name) FROM Employed E").unwrap();
    assert!(!recomputed.cache.served_from_cache);
    assert_eq!(served.rows, recomputed.rows);
}

/// A pinned snapshot is immutable: DML after the pin publishes newer
/// versions without disturbing the reader's view.
#[test]
fn pinned_snapshot_survives_concurrent_dml() {
    let mut store = TemporalStore::new(employed_relation());
    let count = DynAggregate::new(AggKind::CountStar, ValueType::Int).unwrap();
    store.ensure_cache(count, None);

    let pinned = store.snapshot(AggKind::CountStar, None).unwrap();
    let before: Vec<_> = pinned.entries().to_vec();

    store
        .insert(
            vec![Value::from("Grace"), Value::Int(64_000)],
            Interval::at(5, 25),
        )
        .unwrap();
    store
        .delete_where(|t| t.value(0) == &Value::from("Karen"))
        .unwrap();

    // The pinned version is byte-identical to what the reader saw...
    assert_eq!(pinned.entries(), before.as_slice());
    // ...while a fresh snapshot reflects the writes and matches a
    // from-scratch rebuild over the mutated relation.
    let fresh = store.snapshot(AggKind::CountStar, None).unwrap();
    let rebuilt = TemporalStore::new(store.relation().clone());
    assert_eq!(
        fresh.entries(),
        rebuilt.snapshot_or_build(count, None).entries()
    );
    assert_ne!(fresh.entries(), before.as_slice());
}
