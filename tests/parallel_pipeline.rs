//! Serial vs partitioned agreement for the parallel execution pipeline.
//!
//! The contract under test: a [`PartitionedAggregator`] over any seam set
//! produces output **byte-identical** to a serial run of the same inner
//! algorithm over the whole domain — artificial seam boundaries are merged
//! away, real tuple boundaries are kept, for every aggregate. Inputs are
//! drawn from the workspace's deterministic [`StdRng`] (seeded per case),
//! so failures reproduce exactly from the case number in the assert
//! message. Run with `--features validate` to additionally assert the
//! structural tiling invariant inside every `finish`.

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::rng::StdRng;

const CASES: u64 = 64;
const PARTITIONS: [usize; 4] = [1, 2, 3, 8];
const DOMAIN: Interval = Interval::TIMELINE;

/// Random tuples over `[0, width]`, sometimes clustered into a narrow band
/// so that most partitions of a wide domain stay empty.
fn random_tuples(rng: &mut StdRng, width: i64) -> Vec<(Interval, i64)> {
    let n = rng.random_range(0usize..48);
    let (band_lo, band_hi) = if rng.random_range(0u64..4) == 0 {
        // Clustered: everything lands in the first tenth of the domain.
        (0, (width / 10).max(1))
    } else {
        (0, width)
    };
    (0..n)
        .map(|_| {
            let start = rng.random_range(band_lo..band_hi);
            let len = rng.random_range(0i64..(width / 4).max(1));
            let iv = Interval::at(start, (start + len).min(width));
            (iv, rng.random_range(-1_000i64..1_000))
        })
        .collect()
}

/// Feed `tuples` through the batch pipeline in small chunks.
fn feed_chunked<A, G>(target: &mut G, tuples: &[(Interval, A::Input)])
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
{
    let mut chunk: Chunk<A::Input> = Chunk::with_capacity(16);
    for (iv, v) in tuples {
        if chunk.is_full() {
            target.push_batch(&chunk).unwrap();
            chunk.clear();
        }
        chunk.push(*iv, v.clone()).unwrap();
    }
    if !chunk.is_empty() {
        target.push_batch(&chunk).unwrap();
    }
}

/// Assert serial == partitioned for one aggregate across all partition
/// counts, with the aggregation tree as the inner algorithm.
fn assert_agreement<A>(agg: A, tuples: &[(Interval, A::Input)], label: &str, case: u64)
where
    A: Aggregate + Clone + Send,
    A::State: Send,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + std::fmt::Debug + Send,
{
    let mut serial = AggregationTree::with_domain(agg.clone(), DOMAIN);
    for (iv, v) in tuples {
        serial.push(*iv, v.clone()).unwrap();
    }
    let expected = serial.finish();

    // The unbounded TIMELINE domain is cut at seams drawn from the data's
    // start hull — the same scheme the plan executor uses.
    let hull_end = tuples
        .iter()
        .map(|(iv, _)| iv.start())
        .max()
        .unwrap_or(Timestamp(1));
    let hull = Interval::new(DOMAIN.start(), hull_end.max(Timestamp(1))).unwrap();
    for partitions in PARTITIONS {
        let seams = hull.even_seams(partitions);
        let mut par = PartitionedAggregator::with_seams(DOMAIN, seams, |sub| {
            AggregationTree::with_domain(agg.clone(), sub)
        })
        .unwrap();
        feed_chunked(&mut par, tuples);
        assert_eq!(
            par.finish(),
            expected,
            "{label}: partitioned (P = {partitions}) diverged from serial on case {case}"
        );
    }
}

#[test]
fn all_five_aggregates_agree_across_partition_counts() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0x9A_2700 + case);
        let tuples = random_tuples(&mut rng, 500);
        let unit: Vec<(Interval, ())> = tuples.iter().map(|&(iv, _)| (iv, ())).collect();
        assert_agreement(Count, &unit, "COUNT", case);
        assert_agreement(Sum::<i64>::new(), &tuples, "SUM", case);
        assert_agreement(Min::<i64>::new(), &tuples, "MIN", case);
        assert_agreement(Max::<i64>::new(), &tuples, "MAX", case);
        assert_agreement(Avg::<i64>::new(), &tuples, "AVG", case);
    }
}

#[test]
fn tuples_landing_exactly_on_seams_agree() {
    // Seams of [0, 500] at P = 8 land on multiples of 62/63; place tuples
    // that start exactly at, end exactly before, and straddle each seam.
    let hull = Interval::at(0, 500);
    for partitions in [2usize, 3, 8] {
        let seams = hull.even_seams(partitions);
        let mut tuples: Vec<(Interval, i64)> = Vec::new();
        for (i, s) in seams.iter().enumerate() {
            let at = s.get();
            tuples.push((Interval::at(at, at + 10), i as i64)); // starts at seam
            tuples.push((Interval::at(at - 10, at - 1), 7)); // ends just before
            tuples.push((Interval::at(at - 5, at + 5), -3)); // straddles
        }
        let mut serial = AggregationTree::with_domain(Sum::<i64>::new(), DOMAIN);
        for (iv, v) in &tuples {
            serial.push(*iv, *v).unwrap();
        }
        let mut par = PartitionedAggregator::with_seams(DOMAIN, seams, |sub| {
            AggregationTree::with_domain(Sum::<i64>::new(), sub)
        })
        .unwrap();
        feed_chunked(&mut par, &tuples);
        assert_eq!(par.finish(), serial.finish(), "P = {partitions}");
    }
}

#[test]
fn empty_partitions_stitch_back_into_one_entry() {
    // All data in [0, 30]; seams at 100 and 200 leave two empty
    // partitions whose single empty entries must merge with their
    // neighbours exactly as the serial output demands.
    let seams = vec![Timestamp(100), Timestamp(200)];
    let tuples = [(Interval::at(0, 30), 5i64)];
    let mut serial = AggregationTree::with_domain(Sum::<i64>::new(), DOMAIN);
    let mut par = PartitionedAggregator::with_seams(DOMAIN, seams, |sub| {
        AggregationTree::with_domain(Sum::<i64>::new(), sub)
    })
    .unwrap();
    for (iv, v) in tuples {
        serial.push(iv, v).unwrap();
        par.push(iv, v).unwrap();
    }
    let expected = serial.finish();
    let got = par.finish();
    assert_eq!(got, expected);
    // The empty tail is ONE entry spanning both empty partitions.
    assert_eq!(got.len(), 2);
}

#[test]
fn linked_list_inner_agrees_too() {
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x11_5700 + case);
        let tuples = random_tuples(&mut rng, 300);
        let mut serial = LinkedListAggregate::with_domain(Sum::<i64>::new(), DOMAIN);
        for (iv, v) in &tuples {
            serial.push(*iv, *v).unwrap();
        }
        let hull = Interval::at(0, 300);
        for partitions in PARTITIONS {
            let mut par =
                PartitionedAggregator::with_seams(DOMAIN, hull.even_seams(partitions), |sub| {
                    LinkedListAggregate::with_domain(Sum::<i64>::new(), sub)
                })
                .unwrap();
            feed_chunked(&mut par, &tuples);
            assert_eq!(
                par.finish(),
                serial.clone().finish(),
                "linked-list inner, P = {partitions}, case {case}"
            );
        }
    }
}
