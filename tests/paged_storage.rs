//! End-to-end contract of the out-of-core paged storage layer:
//!
//! * paged scans are *byte-identical* to in-RAM evaluation across every
//!   sweepable aggregate, input shape, and partition count;
//! * fence pruning is conservative — it never skips a page holding a
//!   tuple that overlaps the query window;
//! * corrupt files (truncations, bit flips) surface as [`TempAggError`]s,
//!   never panics — with or without `--features validate`;
//! * the README's persistence walkthrough works exactly as printed, and
//!   `CREATE TABLE … PERSIST TO` survives a process boundary (modelled as
//!   a fresh [`Catalog`]).
//!
//! Randomized cases come from the workspace's deterministic [`StdRng`],
//! seeded per test.

use std::path::PathBuf;
use tempagg_agg::SweepAggregate;
use temporal_aggregates::algo::{run_paged_partitioned, SweepAggregator, TemporalAggregator};
use temporal_aggregates::core::pager::{
    self, PageCursor, PagedReader, PagedWriteOptions, TupleSource,
};
use temporal_aggregates::prelude::*;
use temporal_aggregates::sql::execute_statement;
use temporal_aggregates::workload::rng::StdRng;
use temporal_aggregates::workload::{generate, WorkloadConfig};
use temporal_aggregates::{AggKind, DynAggregate, TempAggError, ValueType, DEFAULT_CHUNK_CAPACITY};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("tempagg-paged-it-{}-{name}", std::process::id()));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Write `relation` with a small page size so even modest inputs span
/// many pages, and reopen it.
fn written(relation: &TemporalRelation, name: &str) -> (Cleanup, PagedReader) {
    let path = temp_path(name);
    pager::write_relation(
        relation,
        &path,
        &PagedWriteOptions {
            page_size: 512,
            caches: Vec::new(),
        },
    )
    .unwrap();
    let reader = PagedReader::open(&path).unwrap();
    (Cleanup(path), reader)
}

/// The three input shapes of the identity matrix.
fn shapes(n: usize) -> Vec<(&'static str, TemporalRelation)> {
    vec![
        ("sorted", generate(&WorkloadConfig::sorted(n).with_seed(3))),
        ("random", generate(&WorkloadConfig::random(n).with_seed(4))),
        (
            "long-lived",
            generate(
                &WorkloadConfig::random(n)
                    .with_seed(5)
                    .with_long_lived_pct(80),
            ),
        ),
    ]
}

/// In-RAM oracle: a serial sweep over window-clipped `(interval, value)`
/// pairs.
fn ram_sweep<A, V>(
    agg: A,
    window: Interval,
    items: impl Iterator<Item = (Interval, V)>,
) -> Series<A::Output>
where
    A: SweepAggregate<Input = V>,
    V: Clone + Send,
{
    let mut sweep = SweepAggregator::with_domain(agg, window);
    for (interval, value) in items {
        if let Some(clipped) = interval.intersect(&window) {
            sweep.push(clipped, value).unwrap();
        }
    }
    sweep.finish()
}

/// One cell of the matrix for a column-valued aggregate over `salary`
/// (column 1 of the workload schema).
fn assert_int_identity<A>(
    reader: &PagedReader,
    relation: &TemporalRelation,
    window: Interval,
    partitions: usize,
    agg: A,
    label: &str,
) where
    A: SweepAggregate<Input = i64> + Clone + Send,
    A::Output: PartialEq + std::fmt::Debug + Send,
{
    let paged = run_paged_partitioned(
        reader,
        window,
        partitions,
        |cursor| cursor.int_column(1),
        |sub| SweepAggregator::with_domain(agg.clone(), sub),
    )
    .unwrap();
    let oracle = ram_sweep(
        agg,
        window,
        relation
            .iter()
            .map(|t| (t.valid(), t.value(1).as_i64().unwrap())),
    );
    assert_eq!(paged, oracle, "{label} (P = {partitions})");
}

/// Tentpole acceptance: every sweepable aggregate × input shape ×
/// partition count produces output byte-identical to the all-in-RAM
/// sweep, both over the full lifespan and over a narrow interior window.
#[test]
fn paged_matches_ram_for_all_aggregates_shapes_and_partitions() {
    for (shape, relation) in shapes(2_000) {
        let (_cleanup, reader) = written(&relation, &format!("matrix-{shape}.tapg"));
        let lifespan = reader.lifespan().unwrap();
        let narrow = {
            let span = lifespan.duration();
            let start = lifespan.start().get() + span * 2 / 5;
            Interval::new(start, start + span / 10).unwrap()
        };
        for window in [lifespan, narrow] {
            for partitions in [1usize, 2, 8] {
                let label = format!("{shape} over {window}");
                // COUNT(*) — unit input through `PageCursor::units`.
                let paged =
                    run_paged_partitioned(&reader, window, partitions, PageCursor::units, |sub| {
                        SweepAggregator::with_domain(Count, sub)
                    })
                    .unwrap();
                let oracle = ram_sweep(Count, window, relation.intervals().map(|iv| (iv, ())));
                assert_eq!(paged, oracle, "COUNT {label} (P = {partitions})");

                // The four column aggregates over `salary`.
                assert_int_identity(
                    &reader,
                    &relation,
                    window,
                    partitions,
                    Sum::<i64>::new(),
                    &format!("SUM {label}"),
                );
                assert_int_identity(
                    &reader,
                    &relation,
                    window,
                    partitions,
                    Min::<i64>::new(),
                    &format!("MIN {label}"),
                );
                assert_int_identity(
                    &reader,
                    &relation,
                    window,
                    partitions,
                    Max::<i64>::new(),
                    &format!("MAX {label}"),
                );
                assert_int_identity(
                    &reader,
                    &relation,
                    window,
                    partitions,
                    Avg::<i64>::new(),
                    &format!("AVG {label}"),
                );
            }
        }
    }
}

/// Fence pruning is *conservative*: for randomized windows, every page
/// that actually stores a tuple overlapping the window must survive
/// pruning. (Completeness — pruned scans equal full scans — rides along.)
#[test]
fn fence_pruning_never_skips_a_qualifying_page() {
    let relation = generate(&WorkloadConfig::random(3_000).with_seed(9));
    let (_cleanup, reader) = written(&relation, "prune-oracle.tapg");
    let lifespan = reader.lifespan().unwrap();
    assert!(reader.page_count() > 8, "need many pages for a real test");

    let mut rng = StdRng::seed_from_u64(0xFE2CE);
    for case in 0..64 {
        let a = rng.random_range(lifespan.start().get()..=lifespan.end().get());
        let b = rng.random_range(lifespan.start().get()..=lifespan.end().get());
        let window = Interval::new(a.min(b), a.max(b)).unwrap();
        let kept = reader.pages_overlapping(&window);

        for index in 0..reader.page_count() {
            let page = reader.read_page(index, Some(&[])).unwrap();
            let qualifies = page
                .intervals
                .iter()
                .any(|iv| iv.intersect(&window).is_some());
            if qualifies {
                assert!(
                    kept.contains(&index),
                    "case {case}: page {index} holds a tuple overlapping {window} but was pruned"
                );
            }
        }

        // And the pruned scan's output equals the forced full scan's.
        let drain = |mut cursor_source: pager::UnitSource<'_>| {
            let mut chunk: Chunk<()> = Chunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
            let mut out = Vec::new();
            while cursor_source.next_chunk(&mut chunk).unwrap() {
                out.extend(chunk.iter().map(|(iv, _)| iv));
                chunk.clear();
            }
            out
        };
        let pruned = drain(PageCursor::new(&reader, window).units());
        let full = drain(PageCursor::full_scan(&reader, window).units());
        assert_eq!(pruned, full, "case {case}: pruning changed the scan output");
    }
}

/// Every mutation of a valid file must yield `TempAggError`s (or a clean
/// read), never a panic — the corruption matrix. Runs identically under
/// `--features validate`.
#[test]
fn corrupt_files_error_instead_of_panicking() {
    let relation = generate(&WorkloadConfig::random(400).with_seed(13));
    let path = temp_path("corrupt-src.tapg");
    let _cleanup = Cleanup(path.clone());
    pager::write_relation(&relation, &path, &PagedWriteOptions::default()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let mutant_path = temp_path("corrupt-mut.tapg");
    let _mutant_cleanup = Cleanup(mutant_path.clone());

    // Exercise the full read surface; any Err is acceptable, panics are not.
    let exercise = |path: &std::path::Path| {
        let reader = match PagedReader::open(path) {
            Ok(reader) => reader,
            Err(_) => return,
        };
        for index in 0..reader.page_count() {
            let _ = reader.read_page(index, None);
        }
        let _ = reader.read_relation();
        let _ = TemporalStore::open(path);
    };

    // Truncations: empty, mid-header, header-only, mid-page, one byte short.
    for cut in [0usize, 7, 63, 64, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&mutant_path, &bytes[..cut]).unwrap();
        exercise(&mutant_path);
        assert!(
            PagedReader::open(&mutant_path)
                .and_then(|r| r.read_relation())
                .is_err(),
            "truncation to {cut} bytes must not read back cleanly"
        );
    }

    // Single bit flips swept across the file, plus a garbage magic.
    let stride = (bytes.len() / 64).max(1);
    for offset in (0..bytes.len()).step_by(stride) {
        let mut mutant = bytes.clone();
        mutant[offset] ^= 0x40;
        std::fs::write(&mutant_path, &mutant).unwrap();
        exercise(&mutant_path);
    }
    std::fs::write(&mutant_path, b"definitely not a paged file").unwrap();
    assert!(matches!(
        PagedReader::open(&mutant_path),
        Err(TempAggError::Storage { .. })
    ));
}

/// The README's "Persistence" walkthrough, statement for statement — if
/// this test fails, the README is lying.
#[test]
fn readme_persistence_example_works_as_printed() {
    let path = temp_path("readme.tapg");
    let _cleanup = Cleanup(path.clone());
    let file = path.display().to_string();

    let mut catalog = Catalog::new();
    execute_statement(
        &mut catalog,
        &format!("CREATE TABLE staff (name STRING, salary INT) PERSIST TO '{file}'"),
    )
    .unwrap();
    execute_statement(
        &mut catalog,
        "INSERT INTO staff VALUES ('Richard', 40000) VALID [5, 15], \
         ('Karen', 50000) VALID [10, 20]",
    )
    .unwrap();
    let first = execute_str(&catalog, "SELECT COUNT(*) FROM staff").unwrap();
    assert!(!first.rows.is_empty());

    // A later session (fresh catalog) reopens the same file — data and
    // cached aggregate series come back from disk.
    let mut later = Catalog::new();
    execute_statement(
        &mut later,
        &format!("CREATE TABLE staff (name STRING, salary INT) PERSIST TO '{file}'"),
    )
    .unwrap();
    let reopened = execute_str(&later, "SELECT COUNT(*) FROM staff").unwrap();
    assert_eq!(first.rows, reopened.rows);
}

/// Store-level roundtrip: mutations + flush persist both tuples and
/// cached aggregate series; reopening serves the caches without a
/// rebuild.
#[test]
fn store_flush_and_open_roundtrip_preserves_caches() {
    let path = temp_path("store-roundtrip.tapg");
    let _cleanup = Cleanup(path.clone());

    let relation = generate(&WorkloadConfig::random(300).with_seed(21));
    let mut store = TemporalStore::new(relation);
    let count_star = || DynAggregate::new(AggKind::CountStar, ValueType::Int).unwrap();
    let before = store.snapshot_or_build(count_star(), None);
    store.persist_to(&path).unwrap();

    let reopened = TemporalStore::open(&path).unwrap();
    assert_eq!(
        reopened.cache_stats().caches,
        0,
        "served from disk, not rebuilt"
    );
    let after = reopened.snapshot(AggKind::CountStar, None).unwrap();
    assert_eq!(*before, *after);
}
