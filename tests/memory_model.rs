//! Experiment E-F9 (structure-level): the Section 6.2 memory relationships
//! must hold — these are the qualitative claims behind Figure 9.

use temporal_aggregates::prelude::*;
use temporal_aggregates::run_with_stats;
use temporal_aggregates::workload::{count_stream, generate, WorkloadConfig};

fn peak(aggregator: impl TemporalAggregator<Count>, tuples: &[(Interval, ())]) -> usize {
    let (_series, stats) = run_with_stats(aggregator, tuples.iter().copied()).unwrap();
    stats.peak_nodes
}

#[test]
fn tree_uses_about_twice_the_list_nodes() {
    // "each unique timestamp adds two nodes to the aggregation tree and
    // only one in the case of the linked list algorithm" (Section 7).
    let relation = generate(&WorkloadConfig::random(2_000));
    let tuples = count_stream(&relation);
    let tree_peak = peak(AggregationTree::new(Count), &tuples);
    let list_peak = peak(LinkedListAggregate::new(Count), &tuples);
    let ratio = tree_peak as f64 / list_peak as f64;
    assert!(
        (1.8..=2.2).contains(&ratio),
        "tree/list node ratio {ratio} (tree {tree_peak}, list {list_peak})"
    );
}

#[test]
fn ktree_memory_is_tiny_on_sorted_short_lived_input() {
    // Figure 9: the k-ordered tree's curve is orders of magnitude below
    // the full tree's for sorted relations without long-lived tuples.
    let relation = generate(&WorkloadConfig::sorted(8_000));
    let tuples = count_stream(&relation);
    let full = peak(AggregationTree::new(Count), &tuples);
    let k1 = peak(KOrderedAggregationTree::new(Count, 1).unwrap(), &tuples);
    assert!(
        k1 * 50 < full,
        "k=1 peak {k1} should be ≪ full tree peak {full}"
    );
}

#[test]
fn ktree_memory_grows_with_k() {
    // Section 6.2: "the most important factor was the value of k".
    let relation = generate(&WorkloadConfig::sorted(8_000));
    let tuples = count_stream(&relation);
    let peaks: Vec<usize> = [4usize, 40, 400]
        .iter()
        .map(|&k| peak(KOrderedAggregationTree::new(Count, k).unwrap(), &tuples))
        .collect();
    assert!(
        peaks[0] < peaks[1] && peaks[1] < peaks[2],
        "peaks by k: {peaks:?}"
    );
}

#[test]
fn long_lived_tuples_hurt_only_the_ktree() {
    // Section 6.2: "the results are much worse for the k-ordered tree
    // algorithms; the memory requirements for the linked list and
    // aggregation tree algorithms are totally unaffected".
    let short = generate(&WorkloadConfig::sorted(4_000).with_seed(1));
    let long = generate(
        &WorkloadConfig::sorted(4_000)
            .with_seed(1)
            .with_long_lived_pct(80),
    );
    let short_tuples = count_stream(&short);
    let long_tuples = count_stream(&long);

    let ktree_short = peak(
        KOrderedAggregationTree::new(Count, 1).unwrap(),
        &short_tuples,
    );
    let ktree_long = peak(
        KOrderedAggregationTree::new(Count, 1).unwrap(),
        &long_tuples,
    );
    assert!(
        ktree_long > 10 * ktree_short,
        "k-tree should blow up with long-lived tuples: {ktree_short} → {ktree_long}"
    );

    // The full tree and list peaks track unique timestamps, which don't
    // change materially with tuple length.
    let tree_short = peak(AggregationTree::new(Count), &short_tuples) as f64;
    let tree_long = peak(AggregationTree::new(Count), &long_tuples) as f64;
    assert!(
        (tree_long / tree_short - 1.0).abs() < 0.05,
        "tree peak should be unaffected: {tree_short} vs {tree_long}"
    );
    let list_short = peak(LinkedListAggregate::new(Count), &short_tuples) as f64;
    let list_long = peak(LinkedListAggregate::new(Count), &long_tuples) as f64;
    assert!(
        (list_long / list_short - 1.0).abs() < 0.05,
        "list peak should be unaffected: {list_short} vs {list_long}"
    );
}

#[test]
fn sixteen_byte_node_model() {
    // Section 6.2: both tree algorithms and the list use 16 bytes per node
    // for COUNT.
    let relation = generate(&WorkloadConfig::random(100));
    let tuples = count_stream(&relation);
    let (_s, tree_stats) =
        run_with_stats(AggregationTree::new(Count), tuples.iter().copied()).unwrap();
    assert_eq!(tree_stats.node_model_bytes, 16);
    let (_s, list_stats) =
        run_with_stats(LinkedListAggregate::new(Count), tuples.iter().copied()).unwrap();
    assert_eq!(list_stats.node_model_bytes, 16);
    let mut sorted_tuples = tuples.clone();
    sorted_tuples.sort_by_key(|(iv, ())| (iv.start(), iv.end()));
    let (_s, ktree_stats) = run_with_stats(
        KOrderedAggregationTree::new(Count, 4).unwrap(),
        sorted_tuples.iter().copied(),
    )
    .unwrap();
    assert_eq!(ktree_stats.node_model_bytes, 16);
    // AVG needs 8-byte states → 20-byte nodes.
    let salary: Vec<(Interval, i64)> = relation.intervals().map(|iv| (iv, 1)).collect();
    let (_s, avg_stats) = run_with_stats(AggregationTree::new(Avg::<i64>::new()), salary).unwrap();
    assert_eq!(avg_stats.node_model_bytes, 20);
}

#[test]
fn memory_scales_linearly_with_relation_size_for_tree_and_list() {
    // Figure 9's straight lines on log-log axes.
    let mut tree_peaks = Vec::new();
    let mut list_peaks = Vec::new();
    for n in [1_000usize, 2_000, 4_000] {
        let relation = generate(&WorkloadConfig::random(n));
        let tuples = count_stream(&relation);
        tree_peaks.push(peak(AggregationTree::new(Count), &tuples) as f64);
        list_peaks.push(peak(LinkedListAggregate::new(Count), &tuples) as f64);
    }
    for peaks in [&tree_peaks, &list_peaks] {
        let r1 = peaks[1] / peaks[0];
        let r2 = peaks[2] / peaks[1];
        assert!((1.9..=2.1).contains(&r1), "doubling ratio {r1}");
        assert!((1.9..=2.1).contains(&r2), "doubling ratio {r2}");
    }
}

#[test]
fn k_ordered_percentage_affects_time_not_memory() {
    // Section 6.2: "the ordering of the tuples affects the shape of the
    // tree (and thus the evaluation time), but not the actual number of
    // nodes" — for the *full* tree. (For the k-tree it changes GC timing
    // only slightly.)
    let base = WorkloadConfig::k_ordered(4_000, 100, 0.02).with_seed(17);
    let more_disorder = WorkloadConfig::k_ordered(4_000, 100, 0.14).with_seed(17);
    let t1 = count_stream(&generate(&base));
    let t2 = count_stream(&generate(&more_disorder));
    let p1 = peak(AggregationTree::new(Count), &t1);
    let p2 = peak(AggregationTree::new(Count), &t2);
    // Same tuples, same unique timestamps → identical node counts.
    assert_eq!(p1, p2);
}
