//! Oracle and property tests for the columnar endpoint-sweep kernel.
//!
//! The contract under test: the v2 [`SweepAggregator`] at every
//! parallelism P ∈ {1, 2, 8} produces output byte-identical to the v1
//! sweep ([`SweepAggregatorV1`]) and to the quadratic reference oracle
//! for every aggregate and every input shape — random, sorted,
//! reverse-sorted, duplicate-endpoint, touching-interval, dense-instant,
//! and empty-domain — a domain-partitioned sweep agrees with the serial
//! sweep at every partition count, and the sweep-based interval join
//! agrees with a nested loop for every predicate. Run with
//! `--features validate` to additionally assert the structural tiling
//! invariant inside every `finish`.

use temporal_aggregates::algo::oracle::oracle;
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::rng::StdRng;
use temporal_aggregates::{
    Calibration, JoinPredicate, SweepAggregate, SweepAggregatorV1, SweepJoinOperator,
};

const DOMAIN: Interval = Interval::TIMELINE;

/// Drive the sweep over `tuples` inside `domain` and return its series.
fn sweep<A>(agg: A, domain: Interval, tuples: &[(Interval, A::Input)]) -> Series<A::Output>
where
    A: SweepAggregate,
    A::Input: Clone + Send,
{
    let mut s = SweepAggregator::with_domain(agg, domain);
    for (iv, v) in tuples {
        if let Some(clipped) = iv.intersect(&domain) {
            s.push(clipped, v.clone()).unwrap();
        }
    }
    s.finish()
}

/// Assert v2 sweep (P ∈ {1, 2, 8}) == v1 sweep == the quadratic oracle
/// for all five of the paper's aggregates.
fn assert_all_aggregates(tuples: &[(Interval, i64)], label: &str) {
    fn family<A>(agg: A, tuples: &[(Interval, A::Input)], label: &str, what: &str)
    where
        A: SweepAggregate + Clone,
        A::Input: Clone + Send,
        A::Output: std::fmt::Debug + PartialEq,
    {
        let want = oracle(&agg, DOMAIN, tuples);
        let mut v1 = SweepAggregatorV1::with_domain(agg.clone(), DOMAIN);
        for (iv, v) in tuples {
            v1.push(*iv, v.clone()).unwrap();
        }
        assert_eq!(
            v1.finish(),
            want,
            "v1 sweep diverged from the oracle: {what} on {label}"
        );
        for p in [1usize, 2, 8] {
            let mut v2 = SweepAggregator::with_domain(agg.clone(), DOMAIN).with_parallelism(p);
            for (iv, v) in tuples {
                v2.push(*iv, v.clone()).unwrap();
            }
            assert_eq!(
                v2.finish(),
                want,
                "v2 sweep (P = {p}) diverged: {what} on {label}"
            );
        }
    }
    let unit: Vec<(Interval, ())> = tuples.iter().map(|&(iv, _)| (iv, ())).collect();
    family(Count, &unit, label, "COUNT");
    family(Sum::<i64>::new(), tuples, label, "SUM");
    family(Min::<i64>::new(), tuples, label, "MIN");
    family(Max::<i64>::new(), tuples, label, "MAX");
    family(Avg::<i64>::new(), tuples, label, "AVG");
}

fn random_tuples(rng: &mut StdRng, n: usize, width: i64) -> Vec<(Interval, i64)> {
    (0..n)
        .map(|_| {
            let start = rng.random_range(0..width);
            let len = rng.random_range(0i64..width / 4);
            (
                Interval::at(start, (start + len).min(width)),
                rng.random_range(-500i64..500),
            )
        })
        .collect()
}

#[test]
fn sweep_matches_oracle_on_seeded_random_inputs() {
    for case in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(0x5EE9 + case);
        let tuples = random_tuples(&mut rng, 40, 400);
        assert_all_aggregates(&tuples, &format!("random case {case}"));
    }
}

#[test]
fn sweep_matches_oracle_on_sorted_and_reverse_sorted_inputs() {
    let mut rng = StdRng::seed_from_u64(0x50A7);
    let mut tuples = random_tuples(&mut rng, 60, 600);
    tuples.sort_unstable_by_key(|(iv, _)| (iv.start(), iv.end()));
    assert_all_aggregates(&tuples, "fully sorted");
    tuples.reverse();
    assert_all_aggregates(&tuples, "reverse sorted");
}

#[test]
fn sweep_matches_oracle_on_duplicate_endpoints() {
    // Many tuples sharing the same start and/or end instants: the sweep's
    // event sort sees long runs of equal keys.
    let mut tuples: Vec<(Interval, i64)> = Vec::new();
    for i in 0..12i64 {
        tuples.push((Interval::at(100, 200), i));
        tuples.push((Interval::at(100, 150 + i), 2 * i));
        tuples.push((Interval::at(50 + i, 200), -i));
    }
    assert_all_aggregates(&tuples, "duplicate endpoints");
}

#[test]
fn sweep_matches_oracle_on_touching_intervals() {
    // Chains where one tuple's end meets the next tuple's start — the
    // boundary between them must appear in the output exactly once.
    let tuples: Vec<(Interval, i64)> = (0..20i64)
        .map(|i| (Interval::at(i * 10, (i + 1) * 10 - 1), i))
        .collect();
    assert_all_aggregates(&tuples, "touching chain");
    // And the meeting variant where end + 1 == next start of a later pair.
    let pair = vec![
        (Interval::at(0, 9), 1i64),
        (Interval::at(10, 19), 2),
        (Interval::at(9, 10), 3),
    ];
    assert_all_aggregates(&pair, "meeting pair");
}

#[test]
fn sweep_matches_oracle_on_dense_instants() {
    // More events than distinct instants: the v2 lowering takes its
    // per-instant counting scatter (time positional, no comparison
    // sort). The sparser shapes elsewhere in this file take the
    // bucketed comparison sort; both regimes must replay to the same
    // series.
    let mut rng = StdRng::seed_from_u64(0xDE45E);
    let tuples = random_tuples(&mut rng, 300, 60);
    assert_all_aggregates(&tuples, "dense instants");
}

#[test]
fn sweep_handles_empty_domain_and_empty_input() {
    // No tuples at all: one empty entry covering the whole domain.
    let empty: Vec<(Interval, i64)> = Vec::new();
    assert_all_aggregates(&empty, "no tuples");

    // A bounded domain none of the tuples intersect: pushes are clipped
    // away and the output is the identity over the domain.
    let window = Interval::at(10_000, 20_000);
    let outside = vec![(Interval::at(0, 100), 7i64)];
    let got = sweep(Sum::<i64>::new(), window, &outside);
    let want = oracle(&Sum::<i64>::new(), window, &Vec::<(Interval, i64)>::new());
    assert_eq!(got, want, "empty-domain sweep");
    assert_eq!(got.len(), 1);
}

#[test]
fn partitioned_sweep_is_identical_to_serial_sweep() {
    // The acceptance matrix: P ∈ {1, 2, 8}, sweep as the inner
    // aggregator, byte-identical output — the same contract
    // tests/parallel_pipeline.rs pins for the tree and the list.
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x9A57 + case);
        let tuples = random_tuples(&mut rng, 48, 500);
        let expected = sweep(Sum::<i64>::new(), DOMAIN, &tuples);
        let hull = Interval::at(0, 500);
        for partitions in [1usize, 2, 8] {
            let seams = hull.even_seams(partitions);
            let mut par = PartitionedAggregator::with_seams(DOMAIN, seams, |sub| {
                SweepAggregator::with_domain(Sum::<i64>::new(), sub)
            })
            .unwrap();
            let mut chunk: Chunk<i64> = Chunk::with_capacity(16);
            for (iv, v) in &tuples {
                if chunk.is_full() {
                    par.push_batch(&chunk).unwrap();
                    chunk.clear();
                }
                chunk.push(*iv, *v).unwrap();
            }
            if !chunk.is_empty() {
                par.push_batch(&chunk).unwrap();
            }
            assert_eq!(
                par.finish(),
                expected,
                "partitioned sweep (P = {partitions}) diverged on case {case}"
            );
        }
    }
}

#[test]
fn sweep_join_agrees_with_a_nested_loop_for_every_predicate() {
    // The sweep-based interval join must enumerate exactly the pairs a
    // quadratic nested loop finds, for each Allen-style predicate and at
    // every sort parallelism.
    let mut rng = StdRng::seed_from_u64(0x901A);
    let mut gen_side = |n: usize| -> Vec<Interval> {
        (0..n)
            .map(|_| {
                let start = rng.random_range(0..500i64);
                let len = rng.random_range(0i64..80);
                Interval::at(start, start + len)
            })
            .collect()
    };
    let (left, right) = (gen_side(120), gen_side(150));
    for predicate in [
        JoinPredicate::Overlaps,
        JoinPredicate::Contains,
        JoinPredicate::During,
        JoinPredicate::Meets,
    ] {
        let mut want: Vec<(usize, usize)> = Vec::new();
        for (li, l) in left.iter().enumerate() {
            for (ri, r) in right.iter().enumerate() {
                if predicate.matches(*l, *r) {
                    want.push((li, ri));
                }
            }
        }
        assert!(!want.is_empty(), "degenerate case: no {predicate:?} pairs");
        for p in [1usize, 2, 8] {
            let mut op = SweepJoinOperator::new(predicate).with_parallelism(p);
            for iv in &left {
                op.push_left(*iv).unwrap();
            }
            for iv in &right {
                op.push_right(*iv).unwrap();
            }
            let mut got: Vec<(usize, usize)> = op
                .finish()
                .into_iter()
                .map(|e| (e.value.left, e.value.right))
                .collect();
            got.sort_unstable();
            assert_eq!(
                got, want,
                "{predicate:?} join (P = {p}) disagrees with the nested loop"
            );
        }
    }
}

/// The README interval-join snippet, verbatim: keep the documented
/// example compiling and producing exactly the output it claims.
#[test]
fn readme_join_snippet_compiles_and_matches() {
    let mut join = SweepJoinOperator::new(JoinPredicate::Overlaps).with_parallelism(4);
    join.push_left(Interval::at(0, 10)).unwrap(); // L0
    join.push_left(Interval::at(20, 30)).unwrap(); // L1
    join.push_right(Interval::at(5, 25)).unwrap(); // R0
    let mut lines = Vec::new();
    for entry in join.finish() {
        lines.push(format!(
            "L{} × R{} over {}",
            entry.value.left, entry.value.right, entry.interval
        ));
    }
    lines.sort();
    assert_eq!(lines, vec!["L0 × R0 over [5, 10]", "L1 × R0 over [20, 25]"]);
}

#[test]
fn committed_calibration_profile_is_the_default() {
    // The repo-root calibration.json is the cost model's documented
    // "sane committed defaults"; keep file and code in lockstep so a
    // loaded profile and `CostModel::default()` cannot silently diverge.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("calibration.json");
    let loaded = Calibration::load(&path).expect("calibration.json parses");
    assert_eq!(loaded, Calibration::default());
}
