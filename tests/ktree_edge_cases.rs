//! Edge cases of the k-ordered aggregation tree's streaming contract:
//! configuration errors, empty input, duplicate start times landing exactly
//! on the gc threshold, and the guarantee that `emit_ready` and `finish`
//! between them emit every constant interval exactly once.

use temporal_aggregates::algo::oracle::oracle;
use temporal_aggregates::core::{SeriesEntry, TempAggError};
use temporal_aggregates::prelude::*;

#[test]
fn k_zero_is_a_configuration_error() {
    let err = KOrderedAggregationTree::new(Count, 0).unwrap_err();
    assert!(matches!(err, TempAggError::InvalidK { k: 0 }));
    let err = KOrderedAggregationTree::with_domain(Count, 0, Interval::at(0, 99)).unwrap_err();
    assert!(matches!(err, TempAggError::InvalidK { k: 0 }));
}

#[test]
fn empty_relation_emits_one_empty_interval_and_nothing_to_drain() {
    let mut tree = KOrderedAggregationTree::with_domain(Count, 1, Interval::at(10, 50)).unwrap();
    let mut none: Vec<SeriesEntry<u64>> = Vec::new();
    tree.emit_ready(&mut none);
    assert!(none.is_empty());
    assert_eq!(tree.ready_len(), 0);
    let series = tree.finish();
    assert_eq!(series.len(), 1);
    assert_eq!(series.entries()[0].interval, Interval::at(10, 50));
    assert_eq!(series.entries()[0].value, 0);
}

#[test]
fn duplicate_start_times_at_the_gc_threshold() {
    // With k = 1 the gc threshold is the start time of the tuple 2k + 1 = 3
    // positions back. Runs of equal start times make the threshold collide
    // with starts still being inserted; the collected prefix always ends
    // strictly before the threshold, so these inserts stay legal and the
    // result must still match the oracle.
    let tuples: Vec<(Interval, ())> = vec![
        (Interval::at(10, 14), ()),
        (Interval::at(10, 30), ()),
        (Interval::at(10, 12), ()),
        (Interval::at(10, 19), ()), // threshold becomes 10 here
        (Interval::at(10, 25), ()), // and again — starts equal the threshold
        (Interval::at(20, 24), ()),
        (Interval::at(20, 21), ()),
        (Interval::at(31, 33), ()),
    ];
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    for &(iv, ()) in &tuples {
        tree.push(iv, ()).unwrap();
    }
    assert_eq!(tree.finish(), oracle(&Count, Interval::TIMELINE, &tuples));
}

#[test]
fn duplicate_starts_behind_the_frontier_are_rejected() {
    // Push increasing runs until gc provably advanced the frontier, then
    // replay a start from the emitted region: that is a k-order violation,
    // not a panic or a silent wrong answer.
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    for i in 0..10 {
        tree.push(Interval::at(i * 100, i * 100 + 50), ()).unwrap();
    }
    let err = tree.push(Interval::at(0, 5), ()).unwrap_err();
    assert!(matches!(err, TempAggError::KOrderViolation { .. }));
}

#[test]
fn drain_plus_finish_covers_the_domain_exactly_once() {
    let tuples: Vec<(Interval, ())> = (0..200)
        .map(|i| (Interval::at(i * 10, i * 10 + 17), ()))
        .collect();
    let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
    let mut streamed: Vec<SeriesEntry<u64>> = Vec::new();
    for &(iv, ()) in &tuples {
        tree.push(iv, ()).unwrap();
        tree.emit_ready(&mut streamed);
    }
    assert!(!streamed.is_empty(), "gc should have finalized intervals");
    let tail = tree.finish();

    // The streamed prefix and the finish tail partition the domain: no
    // gap, no overlap, no constant interval emitted by both.
    let last_streamed = streamed.last().unwrap().interval;
    let first_tail = tail.entries()[0].interval;
    assert!(
        last_streamed.meets(&first_tail),
        "streamed prefix ends at {last_streamed}, tail starts at {first_tail}"
    );
    let mut all = streamed;
    all.extend(tail.into_entries());
    for w in all.windows(2) {
        assert!(
            w[0].interval.meets(&w[1].interval),
            "{} and {} overlap or leave a gap",
            w[0].interval,
            w[1].interval
        );
    }
    assert_eq!(all[0].interval.start(), Timestamp(0));
    assert!(all.last().unwrap().interval.end().is_forever());
    assert_eq!(
        Series::from_entries(all),
        oracle(&Count, Interval::TIMELINE, &tuples)
    );
}

#[test]
fn draining_every_push_equals_never_draining() {
    let tuples: Vec<(Interval, i64)> = (0..150)
        .map(|i| (Interval::at(i * 5, i * 5 + 11), i))
        .collect();

    let mut eager = KOrderedAggregationTree::new(Sum::<i64>::new(), 2).unwrap();
    let mut streamed = Vec::new();
    for &(iv, v) in &tuples {
        eager.push(iv, v).unwrap();
        eager.emit_ready(&mut streamed);
    }
    streamed.extend(eager.finish().into_entries());

    let mut lazy = KOrderedAggregationTree::new(Sum::<i64>::new(), 2).unwrap();
    for &(iv, v) in &tuples {
        lazy.push(iv, v).unwrap();
    }
    assert_eq!(Series::from_entries(streamed), lazy.finish());
}
