//! Cross-crate tests for the extension systems: temporal algebra feeding
//! aggregation, event-window aggregation, on-disk scans, the paged tree,
//! and the cost-based planner.

use temporal_aggregates::algo::moving::{moving_aggregate, WindowAlignment};
use temporal_aggregates::algo::oracle::oracle;
use temporal_aggregates::core::{algebra, BitemporalRelation, EventRelation};
use temporal_aggregates::planner::{plan_by_cost, CostModel};
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::employed_relation;
use temporal_aggregates::workload::{generate, storage, WorkloadConfig};
use temporal_aggregates::{Schema, ValueType};

#[test]
fn algebra_pipeline_feeds_aggregation() {
    // departments ⋈ employed → select Research → COUNT per instant.
    let employed = employed_relation();
    let schema = Schema::of(&[("emp", ValueType::Str), ("dept", ValueType::Str)]);
    let mut departments = TemporalRelation::new(schema);
    for (n, d) in [
        ("Richard", "Research"),
        ("Karen", "Research"),
        ("Nathan", "Engineering"),
    ] {
        departments
            .push(vec![Value::from(n), Value::from(d)], Interval::TIMELINE)
            .unwrap();
    }
    let joined = algebra::join(&employed, &departments, &[("name", "emp")]).unwrap();
    let research = algebra::select(&joined, |t| t.value(2) == &Value::from("Research"));

    let mut tree = AggregationTree::new(Count);
    for t in &research {
        tree.push(t.valid(), ()).unwrap();
    }
    let series = tree.finish();
    // Research head count: Karen [8,20], Richard [18,∞].
    assert_eq!(series.value_at(Timestamp(10)), Some(&1));
    assert_eq!(series.value_at(Timestamp(19)), Some(&2));
    assert_eq!(series.value_at(Timestamp(30)), Some(&1));
    assert_eq!(series.value_at(Timestamp(0)), Some(&0));
}

#[test]
fn timeslice_equals_series_value_at() {
    let relation = generate(&WorkloadConfig::random(300).with_seed(4));
    let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
    let series =
        temporal_aggregates::run(AggregationTree::new(Count), tuples.iter().copied()).unwrap();
    for t in [0i64, 1_000, 250_000, 999_999] {
        let slice = algebra::timeslice(&relation, Timestamp(t));
        assert_eq!(
            series.value_at(Timestamp(t)).copied().unwrap(),
            slice.len() as u64,
            "instant {t}"
        );
    }
}

#[test]
fn union_difference_inverse_on_disjoint_windows() {
    let base = generate(&WorkloadConfig::random(100).with_seed(1));
    let early = algebra::window(&base, Interval::at(0, 400_000));
    let late = algebra::window(&base, Interval::at(400_001, 999_999));
    let both = algebra::union(&early, &late).unwrap();
    let minus_late = algebra::difference(&both, &late).unwrap();
    // Removing the late window leaves exactly the early tuples (coalesced
    // forms compared instant-by-instant via aggregation).
    let series_a = temporal_aggregates::run(
        AggregationTree::new(Count),
        minus_late.intervals().map(|iv| (iv, ())),
    )
    .unwrap();
    let series_b = temporal_aggregates::run(
        AggregationTree::new(Count),
        algebra::window(
            &algebra::union(&early, &early).unwrap(),
            Interval::at(0, 400_000),
        )
        .intervals()
        .map(|iv| (iv, ())),
    )
    .unwrap();
    assert_eq!(series_a, series_b);
}

#[test]
fn event_relation_moving_window_matches_oracle() {
    let schema = Schema::of(&[("sensor", ValueType::Int)]);
    let mut events = EventRelation::new(schema);
    for t in [3i64, 5, 5, 9, 14, 20, 21, 40] {
        events.push(vec![Value::Int(1)], t).unwrap();
    }
    // Via EventRelation::to_intervals + any algorithm...
    let as_intervals = events.to_intervals(5, WindowAlignment::Trailing).unwrap();
    let tuples: Vec<(Interval, ())> = as_intervals.intervals().map(|iv| (iv, ())).collect();
    let expected = oracle(&Count, Interval::TIMELINE, &tuples);
    // ...equals the moving_aggregate convenience.
    let pairs: Vec<(Timestamp, ())> = events.instants().map(|t| (t, ())).collect();
    let got = moving_aggregate(Count, &pairs, 5, WindowAlignment::Trailing).unwrap();
    assert_eq!(got, expected);
}

#[test]
fn storage_scan_feeds_every_algorithm_identically() {
    let relation = generate(&WorkloadConfig::sorted(400).with_seed(6));
    let mut path = std::env::temp_dir();
    path.push(format!("tempagg-ext-test-{}.rel", std::process::id()));
    storage::write_relation(&relation, &path).unwrap();

    let from_disk: Vec<(Interval, ())> = storage::Scan::open(&path)
        .unwrap()
        .map(|t| (t.unwrap().valid(), ()))
        .collect();
    let in_memory: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
    assert_eq!(from_disk, in_memory);

    // Page-shuffled scan → aggregation tree equals sorted scan → k-tree.
    let shuffled: Vec<(Interval, ())> = storage::scan_with_page_shuffle(&path, 1, 9)
        .unwrap()
        .map(|t| (t.unwrap().valid(), ()))
        .collect();
    let via_tree =
        temporal_aggregates::run(AggregationTree::new(Count), shuffled.iter().copied()).unwrap();
    let via_ktree = temporal_aggregates::run(
        KOrderedAggregationTree::new(Count, 1).unwrap(),
        in_memory.iter().copied(),
    )
    .unwrap();
    assert_eq!(via_tree, via_ktree);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn paged_tree_agrees_with_plain_tree_on_workloads() {
    let relation = generate(&WorkloadConfig::random(600).with_seed(11));
    let domain = Interval::at(0, 999_999);
    let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
    let plain = temporal_aggregates::run(
        AggregationTree::with_domain(Count, domain),
        tuples.iter().copied(),
    )
    .unwrap();
    for regions in [3usize, 10, 57] {
        let paged = temporal_aggregates::run(
            PagedAggregationTree::new(Count, domain, regions).unwrap(),
            tuples.iter().copied(),
        )
        .unwrap();
        assert_eq!(paged, plain, "regions = {regions}");
    }
}

#[test]
fn cost_planner_and_rule_planner_agree_on_generated_workloads() {
    for (config, label) in [
        (WorkloadConfig::random(2_000), "random"),
        (WorkloadConfig::sorted(2_000), "sorted"),
        (WorkloadConfig::k_ordered(2_000, 16, 0.08), "k-ordered"),
    ] {
        let relation = generate(&config);
        let stats = RelationStats::analyze(&relation);
        let rule = plan(&stats, &PlannerConfig::default(), 4).choice;
        let cost = plan_by_cost(&stats, &PlannerConfig::default(), &CostModel::default(), 4).choice;
        assert_eq!(rule, cost, "workload {label}");
    }
}

#[test]
fn weighted_series_composes_with_aggregation() {
    // Average head count over the first 30 instants of Employed, weighted
    // by duration: sums instants of employment / 30.
    let tuples: Vec<(Interval, ())> = employed_relation()
        .intervals()
        .filter_map(|iv| iv.intersect(&Interval::at(0, 29)))
        .map(|iv| (iv, ()))
        .collect();
    let series = temporal_aggregates::run(
        AggregationTree::with_domain(Count, Interval::at(0, 29)),
        tuples,
    )
    .unwrap();
    let window = Interval::at(0, 29);
    let total_instants = series.weighted_integral(window, |&c| Some(c as f64));
    // Karen 8..=20 (13) + Nathan 7..=12 (6) + Richard 18..=29 (12) +
    // Nathan 18..=21 (4) = 35 tuple-instants.
    assert_eq!(total_instants, 35.0);
    let mean = series
        .time_weighted_mean(window, |&c| Some(c as f64))
        .unwrap();
    assert!((mean - 35.0 / 30.0).abs() < 1e-12);
}

#[test]
fn aggregate_as_of_transaction_time() {
    // Build the Employed relation bitemporally: facts recorded shortly
    // after they become valid, with one retroactive correction.
    let schema = Schema::of(&[("name", ValueType::Str), ("salary", ValueType::Int)]);
    let mut db = BitemporalRelation::new(schema);
    db.insert(
        vec![Value::from("Nathan"), Value::Int(35_000)],
        Interval::at(7, 12),
        8,
    )
    .unwrap();
    db.insert(
        vec![Value::from("Karen"), Value::Int(45_000)],
        Interval::at(8, 20),
        9,
    )
    .unwrap();
    db.insert(
        vec![Value::from("Richard"), Value::Int(40_000)],
        Interval::from_start(18),
        19,
    )
    .unwrap();
    db.insert(
        vec![Value::from("Nathan"), Value::Int(37_000)],
        Interval::at(18, 21),
        19,
    )
    .unwrap();
    // Later it turns out Karen left at 15, not 20.
    db.update_where(
        30,
        |v| v.values()[0] == Value::from("Karen"),
        vec![Value::from("Karen"), Value::Int(45_000)],
        Interval::at(8, 15),
    )
    .unwrap();

    let count_as_of = |tt: i64| {
        let relation = db.as_of(tt);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        temporal_aggregates::run(AggregationTree::new(Count), tuples).unwrap()
    };

    // As believed at tt = 25 (before the correction): Table 1 exactly.
    let believed = count_as_of(25);
    assert_eq!(believed.value_at(Timestamp(19)), Some(&3));
    assert_eq!(believed.value_at(Timestamp(16)), Some(&1));
    // After the correction, instant 19 has one fewer employee (Karen gone
    // from [16, 20]).
    let corrected = count_as_of(100);
    assert_eq!(corrected.value_at(Timestamp(19)), Some(&2));
    assert_eq!(corrected.value_at(Timestamp(10)), Some(&2));
    // As of before any writes: empty timeline.
    assert_eq!(count_as_of(0).value_at(Timestamp(19)), Some(&0));
}

#[test]
fn transaction_order_feeds_the_ktree() {
    // Versions in transaction order form a retroactively bounded stream;
    // measure its k-order and run the k-ordered tree without sorting.
    let schema = Schema::of(&[("x", ValueType::Int)]);
    let mut db = BitemporalRelation::new(schema);
    for i in 0..500i64 {
        // Valid time roughly tracks transaction time with a bounded lag.
        let valid_start = i * 10 - (i % 7) * 3;
        db.insert(
            vec![Value::Int(i)],
            Interval::at(valid_start.max(0), valid_start.max(0) + 25),
            1_000 + i,
        )
        .unwrap();
    }
    let ordered: Vec<Interval> = db
        .by_transaction_order()
        .iter()
        .map(|v| v.valid())
        .collect();
    let k = temporal_aggregates::sortedness::k_order(&ordered).max(1);
    assert!(k < 16, "bounded lag must give small k, got {k}");

    let via_ktree = temporal_aggregates::run(
        KOrderedAggregationTree::new(Count, k).unwrap(),
        ordered.iter().map(|&iv| (iv, ())),
    )
    .unwrap();
    let via_tree = temporal_aggregates::run(
        AggregationTree::new(Count),
        ordered.iter().map(|&iv| (iv, ())),
    )
    .unwrap();
    assert_eq!(via_ktree, via_tree);
}
