#!/usr/bin/env bash
# The full correctness gate: build, tests, invariant-validated tests, lint.
# Run from the workspace root. Any failing step fails the gate.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test -q --workspace

echo "==> cargo test --features validate (structural invariant validators)"
cargo test -q --workspace --features validate

echo "==> tempagg-lint"
cargo run -q -p tempagg-lint

echo "check.sh: all gates passed"
