#!/usr/bin/env bash
# The full correctness gate: format, clippy, build, tests,
# invariant-validated tests, lint, bench smoke. Run from the workspace root. Any failing
# step fails the gate; the cheap static checks run first so a style or
# clippy failure is reported before the release build spends minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test -q --workspace

echo "==> cargo test --features validate (structural invariant validators)"
cargo test -q --workspace --features validate

echo "==> tempagg-lint"
cargo run -q -p tempagg-lint

echo "==> bench smoke (one-sample sweep matrix)"
cargo bench -q -p tempagg-bench --bench algorithms -- --test

echo "==> harness stream smoke (bounded-residency assertion, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- stream --test

echo "check.sh: all gates passed"
