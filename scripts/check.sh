#!/usr/bin/env bash
# The full correctness gate: format, clippy, build, tests,
# invariant-validated tests, lint, bench smoke. Run from the workspace root. Any failing
# step fails the gate; the cheap static checks run first so a style or
# clippy failure is reported before the release build spends minutes.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (default features)"
cargo test -q --workspace

echo "==> cargo test --features validate (structural invariant validators)"
cargo test -q --workspace --features validate

echo "==> tempagg-lint"
cargo run -q -p tempagg-lint

echo "==> bench smoke (one-sample sweep matrix)"
cargo bench -q -p tempagg-bench --bench algorithms -- --test

echo "==> harness stream smoke (bounded-residency assertion, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- stream --test

echo "==> harness ingest smoke (patched-vs-rebuilt series identity, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- ingest --test

echo "==> harness sweep smoke (v2-vs-v1 byte identity + join throughput, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- sweep --test

echo "==> harness paged smoke (paged-vs-RAM identity + resident budget, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- paged --test

echo "==> harness windowq smoke (probe-vs-scan byte identity + TOP-k oracle, tracked artifacts untouched)"
cargo run -q --release -p tempagg-bench --bin harness -- windowq --test

# Opt-in Miri smoke (MIRI=1 ./scripts/check.sh): interpret the tempagg-core
# and tempagg-agg unit tests under the nightly Miri interpreter to catch UB
# the type system cannot (the workspace is #![forbid(unsafe_code)], so this
# guards the std/ptr invariants of code we *call*, and keeps the gate honest
# if unsafe is ever justified in). Known-slow exclusions, skipped by name:
#   * sortedness::tests::table2_row_* — 10k-tuple sort workloads; minutes
#     under Miri's ~1000x interpretation overhead, no pointer tricks to find.
# The bigger crates (tempagg-algo's tree/paged/parallel suites) are excluded
# wholesale for the same reason — their logic is pure safe index arithmetic.
if [[ "${MIRI:-0}" == "1" ]]; then
    echo "==> cargo miri test (tempagg-core, tempagg-agg; nightly)"
    if rustup run nightly cargo miri --version >/dev/null 2>&1; then
        MIRIFLAGS="${MIRIFLAGS:--Zmiri-strict-provenance}" \
            cargo +nightly miri test -p tempagg-core -p tempagg-agg -- \
            --skip table2_row
    else
        echo "MIRI=1 requested but the nightly miri component is not installed" >&2
        echo "(offline container?). Install with:" >&2
        echo "    rustup toolchain install nightly --component miri" >&2
        echo "Skipping the Miri smoke; all other gates passed." >&2
    fi
fi

echo "check.sh: all gates passed"
