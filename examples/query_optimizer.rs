//! The Section 6.3 optimizer in action.
//!
//! Generates the same logical relation in four physical orders — random,
//! sorted, k-ordered, retroactively bounded — and shows which algorithm the
//! planner picks for each, why, and what it costs when executed.
//!
//! Run with: `cargo run --release --example query_optimizer`

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::{generate, TupleOrder, WorkloadConfig};

fn show(label: &str, relation: &TemporalRelation, config: &PlannerConfig) {
    println!("── {label} ({} tuples) ──", relation.len());
    let (series, plan, report) = evaluate_auto(Count, relation, |_| (), config, Interval::TIMELINE)
        .expect("evaluation succeeds");
    print!("{plan}");
    println!(
        "executed: {} in {:?}; peak state {} nodes = {} bytes; {} constant intervals\n",
        report.algorithm,
        report.elapsed,
        report.memory.peak_nodes,
        report.memory.peak_model_bytes(),
        series.len()
    );
}

fn main() {
    let n = 8192;
    let config = PlannerConfig::default();

    let random = generate(&WorkloadConfig::random(n));
    show("randomly ordered", &random, &config);

    let sorted = generate(&WorkloadConfig::sorted(n));
    show("sorted by time", &sorted, &config);

    let k_ordered = generate(&WorkloadConfig::k_ordered(n, 40, 0.08));
    show("k-ordered (k = 40, 8% disorder)", &k_ordered, &config);

    let retro = generate(&WorkloadConfig {
        tuples: n,
        order: TupleOrder::RetroactivelyBounded { max_delay: 2_000 },
        ..Default::default()
    });
    show(
        "retroactively bounded arrival (≤ 2000-instant lag)",
        &retro,
        &config,
    );

    // The same unordered relation under a tight memory budget: the planner
    // switches from the aggregation tree to sort + k-ordered tree.
    println!("── randomly ordered, 64 KiB state budget ──");
    let tight = PlannerConfig {
        memory_budget_bytes: Some(64 * 1024),
        ..Default::default()
    };
    show("randomly ordered (tight budget)", &random, &tight);

    // A query that restricts the result to a handful of intervals: the
    // linked list wins (Section 6.3's "single year at day granularity").
    println!("── tiny expected result ──");
    let stats = RelationStats::analyze(&random).with_expected_result_intervals(12);
    let p = plan(&stats, &config, 4);
    print!("{p}");
}
