//! An interactive mini-TSQL2 shell over the paper's example data.
//!
//! Run with: `cargo run --example tsql_repl`
//!
//! ```text
//! tsql> SELECT COUNT(Name) FROM Employed
//! tsql> EXPLAIN SELECT COUNT(*) FROM Staff
//! tsql> SELECT COUNT(*) FROM Staff WHERE VALID OVERLAPS [0, 999] GROUP BY SPAN 250
//! tsql> CREATE TABLE projects (name STRING, budget INT)
//! tsql> INSERT INTO projects VALUES ('TSQL2', 100000) VALID [0, 365]
//! tsql> SELECT * FROM projects WHERE budget > 50000
//! tsql> \d            -- list relations
//! tsql> \q            -- quit
//! ```
//!
//! Also accepts queries on stdin non-interactively:
//! `echo 'SELECT COUNT(Name) FROM Employed' | cargo run --example tsql_repl`

use std::io::{self, BufRead, Write};
use temporal_aggregates::prelude::*;
use temporal_aggregates::sql::{execute_statement, StatementOutput};
use temporal_aggregates::workload::employed::employed_relation;
use temporal_aggregates::workload::{generate, WorkloadConfig};

fn build_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.register("Employed", employed_relation());
    // A larger synthetic relation for experimentation.
    catalog.register(
        "Staff",
        generate(&WorkloadConfig::random(2_000).with_lifespan(10_000)),
    );
    catalog
}

fn main() {
    let mut catalog = build_catalog();
    println!("mini-TSQL2 shell — relations: {:?}", catalog.names());
    println!("type a query, `\\d` to describe relations, `\\q` to quit\n");

    let stdin = io::stdin();
    let mut out = io::stdout();
    loop {
        print!("tsql> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("input error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" | "quit" | "exit" => break,
            "\\d" => {
                for name in catalog.names() {
                    let r = catalog.get(name).expect("listed name exists");
                    println!("  {name}: {} tuples, schema {}", r.len(), r.schema());
                }
                continue;
            }
            _ => {}
        }
        match execute_statement(&mut catalog, line) {
            Ok(output) => {
                print!("{output}");
                if let StatementOutput::Rows(result) = &output {
                    if let Some(plan) = &result.plan {
                        if !result.explain_only {
                            println!("[{}]", plan.choice.name());
                        }
                    }
                }
                println!();
            }
            Err(e) => println!("error: {e}\n"),
        }
    }
    println!("bye");
}
