//! Streaming sensor aggregation with the k-ordered aggregation tree.
//!
//! A sensor network reports readings as validity intervals ("the
//! temperature was X from t₁ to t₂"). Reports arrive roughly in time order
//! but delivery lag reorders them by a bounded number of positions — a
//! *retroactively bounded* stream, exactly the case Section 5.3's k-ordered
//! aggregation tree handles without sorting and with a constant-size
//! window. Results stream out of `emit_ready` while the scan runs.
//!
//! Run with: `cargo run --example sensor_network`

use std::sync::Arc;
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::perturb;
use temporal_aggregates::{Schema, ValueType};

/// Synthesize readings: each sensor reports every ~60 s, each reading valid
/// until the next one.
fn readings() -> TemporalRelation {
    let schema: Arc<Schema> =
        Schema::of(&[("sensor", ValueType::Int), ("celsius", ValueType::Float)]);
    let mut r = TemporalRelation::new(schema);
    for sensor in 0..4i64 {
        let phase = sensor * 13;
        for slot in 0..200i64 {
            let start = phase + slot * 60;
            let end = start + 59;
            // A smooth, sensor-dependent temperature curve.
            let temp = 20.0
                + 5.0 * ((slot as f64) / 25.0).sin()
                + sensor as f64 * 0.5
                + if slot % 37 == 0 { 8.0 } else { 0.0 }; // occasional spike
            r.push(
                vec![Value::Int(sensor), Value::Float(temp)],
                Interval::at(start, end),
            )
            .unwrap();
        }
    }
    // Interleave the four sensors by time, then apply bounded delivery lag.
    r.sort_by_time();
    perturb::order_by_bounded_arrival(&mut r, 120, 7);
    r
}

fn main() -> temporal_aggregates::Result<()> {
    let relation = readings();
    let ivs: Vec<Interval> = relation.intervals().collect();
    let measured_k = temporal_aggregates::sortedness::k_order(&ivs);
    println!(
        "{} readings from 4 sensors; delivery lag makes the stream {measured_k}-ordered",
        relation.len()
    );

    // Stream MAX temperature per constant interval with a window of
    // k = measured_k — no sort, bounded memory.
    let temp_idx = relation.schema().index_of("celsius")?;
    let mut tree = KOrderedAggregationTree::new(Max::<OrderedTemp>::new(), measured_k.max(1))?;
    let mut streamed_rows = 0usize;
    let mut hottest: Option<(Interval, f64)> = None;
    let mut peak_nodes = 0usize;
    let mut batch = Vec::new();

    for tuple in &relation {
        let temp = tuple.value(temp_idx).as_f64().unwrap();
        tree.push(tuple.valid(), OrderedTemp(temp))?;
        peak_nodes = peak_nodes.max(tree.node_count());
        // Results finalized by garbage collection stream out immediately;
        // the batch buffer's capacity is reused across drains.
        tree.emit_ready(&mut batch);
        for entry in batch.drain(..) {
            streamed_rows += 1;
            if let Some(OrderedTemp(t)) = entry.value {
                if hottest.map_or(true, |(_, best)| t > best) {
                    hottest = Some((entry.interval, t));
                }
            }
        }
    }
    let tail = tree.finish();
    println!(
        "streamed {} rows during the scan, {} at finish; peak live tree nodes: {}",
        streamed_rows,
        tail.len(),
        peak_nodes
    );
    if let Some((iv, t)) = hottest {
        println!("hottest streamed interval: {iv} at {t:.1} °C");
    }

    // Compare: per-sensor average over 10-minute spans, via SQL.
    let mut catalog = Catalog::new();
    catalog.register("readings", relation);
    let result = execute_str(
        &catalog,
        "SELECT AVG(celsius), MIN(celsius), MAX(celsius) FROM readings \
         WHERE VALID OVERLAPS [0, 3599] GROUP BY sensor, SPAN 600",
    )?;
    println!("\n== First hour, per sensor, 10-minute spans ==\n\n{result}");
    Ok(())
}

/// `f64` wrapper with a total order so it can feed `Min`/`Max`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct OrderedTemp(f64);

impl Eq for OrderedTemp {}

impl PartialOrd for OrderedTemp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedTemp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}
