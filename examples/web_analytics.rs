//! Event-relation analytics: moving windows and distinct counting.
//!
//! Page-view *events* (instant-stamped) become interval relations via
//! windows of influence, and the paper's algorithms answer classic
//! analytics questions: requests per minute at every moment, concurrently
//! active users (distinct!), and per-session aggregation.
//!
//! Run with: `cargo run --example web_analytics`

use temporal_aggregates::agg::CountDistinct;
use temporal_aggregates::algo::moving::{moving_aggregate_sorted, WindowAlignment};
use temporal_aggregates::core::EventRelation;
use temporal_aggregates::prelude::*;
use temporal_aggregates::{Schema, ValueType};

fn main() -> temporal_aggregates::Result<()> {
    // ── Synthesize a click stream: (user, at), time in seconds. ─────────
    let schema = Schema::of(&[("user", ValueType::Int)]);
    let mut clicks = EventRelation::new(schema);
    let mut t = 0i64;
    for i in 0..2_000i64 {
        // Bursty arrivals: a burst every ~5 minutes.
        t += 1 + (i % 7) + if i % 120 == 0 { 240 } else { 0 };
        let user = (i * 31) % 40; // 40 users
        clicks.push(vec![Value::Int(user)], t)?;
    }
    println!("{} click events over {} seconds", clicks.len(), t);

    // ── Requests in the trailing 60 s, at every instant, streamed. ──────
    let events: Vec<(Timestamp, ())> = clicks.instants().map(|at| (at, ())).collect();
    let rpm = moving_aggregate_sorted(Count, &events, 60)?;
    let peak = rpm
        .iter()
        .max_by_key(|e| e.value)
        .expect("non-empty series");
    println!(
        "peak load: {} requests in the trailing minute, during {}",
        peak.value, peak.interval
    );
    let busy_fraction =
        rpm.weighted_integral(Interval::at(0, t), |&c| Some((c > 10) as i64 as f64)) / t as f64;
    println!("time with >10 req/min: {:.1}%", 100.0 * busy_fraction);

    // ── Concurrently active users: distinct users in a 5-minute window. ──
    // Each click keeps its user "active" for 300 s; COUNT(DISTINCT user)
    // per constant interval is the concurrency curve.
    let sessions = clicks.to_intervals(300, WindowAlignment::Trailing)?;
    let mut tree = AggregationTree::new(CountDistinct::<i64>::new());
    for tuple in &sessions {
        tree.push(tuple.valid(), tuple.value(0).as_i64().unwrap())?;
    }
    let active = tree.finish();
    let peak_users = active.iter().map(|e| e.value).max().unwrap();
    println!("peak concurrently-active users (5-minute window): {peak_users}");
    let mean_users = active
        .time_weighted_mean(Interval::at(0, t), |&u| Some(u as f64))
        .unwrap();
    println!("time-weighted mean active users: {mean_users:.1}");

    // ── Same question through SQL over the derived interval relation. ───
    let mut catalog = Catalog::new();
    catalog.register("sessions", sessions);
    let result = execute_str(
        &catalog,
        "SELECT SNAPSHOT COUNT(DISTINCT user), COUNT(*) FROM sessions",
    )?;
    println!("\nsnapshot over the whole log:\n{result}");
    Ok(())
}
