//! Quick start: compute a temporal aggregate three ways.
//!
//! Reproduces the paper's running example — `SELECT COUNT(Name) FROM
//! Employed` over the Figure 1 relation — with the low-level algorithm API,
//! the automatic planner, and the SQL front end, and shows the aggregation
//! tree being built step by step (Figure 3).
//!
//! Run with: `cargo run --example quickstart`

use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::employed::{employed_relation, employed_tuples};

fn main() -> temporal_aggregates::Result<()> {
    // ── 1. The low-level API: build the aggregation tree by hand. ──────
    println!("== Aggregation tree, step by step (Figure 3) ==\n");
    let mut tree = AggregationTree::new(Count);
    println!("initial tree:\n{}", tree.render());
    for (name, _salary, valid) in employed_tuples() {
        tree.push(valid, ())?;
        println!("after inserting {name} {valid}:\n{}", tree.render());
    }

    println!("== Result: COUNT per constant interval (Table 1) ==\n");
    let result = tree.finish();
    for entry in &result {
        println!("  {:<10} {}", entry.interval.to_string(), entry.value);
    }

    // ── 2. The planner: let Section 6.3's rules pick the algorithm. ────
    println!("\n== Automatic algorithm selection ==\n");
    let relation = employed_relation();
    let (series, plan, report) = evaluate_auto(
        Count,
        &relation,
        |_| (),
        &PlannerConfig::default(),
        Interval::TIMELINE,
    )?;
    println!("{plan}");
    println!(
        "ran `{}` over {} tuples in {:?}, peak state {} bytes, {} rows\n",
        report.algorithm,
        report.tuples,
        report.elapsed,
        report.memory.peak_model_bytes(),
        series.len()
    );

    // ── 3. SQL: the paper's TSQL2 query. ────────────────────────────────
    println!("== SQL ==\n");
    let mut catalog = Catalog::new();
    catalog.register("Employed", employed_relation());
    let result = execute_str(&catalog, "SELECT COUNT(Name) FROM Employed E")?;
    println!("{result}");
    Ok(())
}
