//! Employment history analytics — the paper's motivating domain.
//!
//! A company keeps an `Employed(name, dept, salary)` relation with
//! valid-time intervals and asks time-varying questions: how many people
//! were employed at each moment, what was the payroll, the average salary
//! per department, and per-quarter head counts.
//!
//! Run with: `cargo run --example employment_history`

use std::sync::Arc;
use temporal_aggregates::prelude::*;
use temporal_aggregates::{Schema, ValueType};

fn build_relation() -> TemporalRelation {
    let schema: Arc<Schema> = Schema::of(&[
        ("name", ValueType::Str),
        ("dept", ValueType::Str),
        ("salary", ValueType::Int),
    ]);
    let mut r = TemporalRelation::new(schema);
    // (name, dept, salary, hired, left); 0 = company founding day,
    // instants are days, 720 = "today" (still employed → 720).
    let people: &[(&str, &str, i64, i64, i64)] = &[
        ("Richard", "Research", 40_000, 18, 720),
        ("Karen", "Research", 45_000, 8, 20),
        ("Nathan", "Engineering", 35_000, 7, 12),
        ("Nathan", "Engineering", 37_000, 18, 21),
        ("Ilsoo", "Engineering", 52_000, 30, 400),
        ("Suchen", "Research", 61_000, 45, 500),
        ("Curtis", "Sales", 38_000, 60, 720),
        ("Mike", "Sales", 41_000, 90, 240),
        ("Andrey", "Engineering", 58_000, 120, 720),
        ("Sampath", "Research", 66_000, 150, 650),
    ];
    for &(name, dept, salary, hired, left) in people {
        r.push(
            vec![Value::from(name), Value::from(dept), Value::Int(salary)],
            Interval::at(hired, left),
        )
        .unwrap();
    }
    r
}

fn main() -> temporal_aggregates::Result<()> {
    let relation = build_relation();
    let mut catalog = Catalog::new();
    catalog.register("Employed", relation.clone());

    println!("== Head count over time (coalesced constant intervals) ==\n");
    let result = execute_str(&catalog, "SELECT COUNT(*) FROM Employed")?;
    println!("{result}");

    println!("== Payroll: SUM, AVG, MIN, MAX of salary while 3+ employed ==\n");
    let result = execute_str(
        &catalog,
        "SELECT COUNT(name), SUM(salary), AVG(salary), MIN(salary), MAX(salary) \
         FROM Employed WHERE VALID OVERLAPS [100, 300]",
    )?;
    println!("{result}");

    println!("== Average salary per department over time (GROUP BY) ==\n");
    let result = execute_str(
        &catalog,
        "SELECT AVG(salary), COUNT(name) FROM Employed \
         WHERE VALID OVERLAPS [0, 720] GROUP BY dept",
    )?;
    println!("{result}");

    println!("== Head count per quarter (span grouping, 90-day spans) ==\n");
    let result = execute_str(
        &catalog,
        "SELECT COUNT(name) FROM Employed WHERE VALID OVERLAPS [0, 719] GROUP BY SPAN 90",
    )?;
    println!("{result}");

    println!("== Low-level: time-varying payroll with the k-ordered tree ==\n");
    // The relation is (almost) sorted by hire date; the planner notices.
    let stats = RelationStats::analyze(&relation);
    let the_plan = plan(&stats, &PlannerConfig::default(), 4);
    println!("{the_plan}");
    let salary_idx = relation.schema().index_of("salary")?;
    let (series, report) = temporal_aggregates::execute(
        &the_plan,
        Sum::<i64>::new(),
        &relation,
        |t| t.value(salary_idx).as_i64().unwrap(),
        Interval::TIMELINE,
    )?;
    for e in series.iter().filter(|e| e.value.is_some()) {
        println!(
            "  {:<12} payroll {}",
            e.interval.to_string(),
            e.value.unwrap()
        );
    }
    println!(
        "\n({} rows from `{}` in {:?})",
        report.result_rows, report.algorithm, report.elapsed
    );
    Ok(())
}
