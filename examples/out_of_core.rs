//! Limited-memory and on-disk evaluation — the paper's Section 5.1 / 7
//! sketches, end to end.
//!
//! 1. Writes a *sorted* relation to a paged columnar file (checksummed
//!    header, fence-indexed fixed-size pages).
//! 2. Scans it three ways into an aggregation tree:
//!    * sequentially (sorted input — the tree's O(n²) worst case);
//!    * with tuples shuffled *within each page group* as they are read —
//!      "randomize the pages when they are read to avoid linearizing the
//!      aggregation tree … would not affect the I/O time";
//!    * through the region-paged tree, which bounds peak tree memory.
//!
//! Run with: `cargo run --release --example out_of_core`

use std::time::Instant;
use temporal_aggregates::prelude::*;
use temporal_aggregates::workload::{generate, storage, WorkloadConfig};

fn main() -> tempagg_core::Result<()> {
    let n = 16_384;
    let relation = generate(&WorkloadConfig::sorted(n));
    let mut path = std::env::temp_dir();
    path.push(format!("tempagg-out-of-core-{}.rel", std::process::id()));
    let stats = storage::write_relation(&relation, &path)?;
    println!(
        "wrote {} tuples ({} bytes, {} pages of {} B) to {}",
        stats.tuples,
        stats.file_bytes,
        stats.pages,
        storage::PAGE_BYTES,
        path.display()
    );

    // 1. Sequential scan of sorted data: the tree linearizes.
    let started = Instant::now();
    let mut tree = AggregationTree::new(Count);
    for tuple in storage::Scan::open(&path)? {
        let tuple = tuple?;
        tree.push(tuple.valid(), ())
            .expect("tuples fit the timeline");
    }
    let sequential_peak = tree.memory().peak_model_bytes();
    let rows = tree.finish().len();
    println!(
        "\nsequential scan  → aggregation tree: {:>10.3?}  ({rows} rows, peak {sequential_peak} B)",
        started.elapsed()
    );

    // 2. Page-group shuffle: same I/O order, randomized insertion order.
    let started = Instant::now();
    let mut tree = AggregationTree::new(Count);
    for tuple in storage::scan_with_page_shuffle(&path, 8, 42)? {
        let tuple = tuple?;
        tree.push(tuple.valid(), ())
            .expect("tuples fit the timeline");
    }
    let shuffled_peak = tree.memory().peak_model_bytes();
    let rows = tree.finish().len();
    println!(
        "page-shuffled    → aggregation tree: {:>10.3?}  ({rows} rows, peak {shuffled_peak} B)",
        started.elapsed()
    );

    // 3. Region-paged tree: bounded peak memory regardless of input.
    let lifespan = relation.lifespan().expect("non-empty relation");
    let started = Instant::now();
    let mut paged = PagedAggregationTree::new(Count, lifespan, 32).expect("bounded lifespan");
    for tuple in storage::Scan::open(&path)? {
        let tuple = tuple?;
        paged
            .push(tuple.valid(), ())
            .expect("tuples fit the lifespan");
    }
    let (series, stats) = paged.finish_with_stats();
    println!(
        "sequential scan  → paged tree (32 regions): {:>4.3?}  ({} rows, peak {} B)",
        started.elapsed(),
        series.len(),
        stats.peak_model_bytes()
    );
    println!(
        "(the paged tree aggregates over the bounded lifespan {lifespan}, so it omits \
         the two empty [0,…]/[…,∞] edge intervals the unbounded runs report)"
    );

    println!(
        "\nSame results, three cost profiles: the shuffle fixes the sorted-input \
         blow-up without touching I/O order, and paging caps tree memory."
    );
    tempagg_core::pager::remove_file(&path)?;
    Ok(())
}
