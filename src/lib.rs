//! # temporal-aggregates
//!
//! A from-scratch reproduction of **“Computing Temporal Aggregates”**
//! (Nick Kline & Richard T. Snodgrass, ICDE 1995) as a production-quality
//! Rust library.
//!
//! Temporal aggregation asks, for an interval-timestamped relation, “what
//! is the aggregate value *at every point in time*?” The answer is a
//! sequence of **constant intervals** — maximal intervals over which the
//! set of overlapping tuples does not change. This crate provides the
//! paper's three algorithms plus the baselines and extensions it discusses:
//!
//! * [`LinkedListAggregate`] — the naive ordered-list algorithm (§4.2);
//! * [`AggregationTree`] — the incremental, unbalanced tree that excels on
//!   randomly ordered relations (§5.1);
//! * [`KOrderedAggregationTree`] — the aggregation tree with garbage
//!   collection for sorted / k-ordered / retroactively bounded relations,
//!   the paper's recommended strategy with `k = 1` after a sort (§5.3);
//! * [`TwoScanAggregate`] — Tuma's prior two-scan approach (§4.1);
//! * [`BalancedAggregationTree`] — the balanced variant from the paper's
//!   future-work list (§7);
//! * [`SweepAggregator`] — a columnar endpoint-sweep kernel (beyond the
//!   paper): buffer, one unstable sort, one branch-light scan — chosen by
//!   the calibrated cost model ([`choose_algorithm`]) for large unordered
//!   inputs;
//! * [`SpanGrouper`] / [`GroupedAggregate`] — span grouping and
//!   `GROUP BY` value grouping (§2);
//! * a cost-based algorithm selector implementing §6.3 ([`plan`],
//!   [`evaluate_auto`]);
//! * a mini-TSQL2 front end ([`execute_str`], [`Catalog`]);
//! * the §5.2 sortedness metrics ([`sortedness`]) and the §6 workload
//!   generators ([`workload`]).
//!
//! ## Quick start
//!
//! ```
//! use temporal_aggregates::prelude::*;
//!
//! // The paper's Employed relation (Figure 1).
//! let mut tree = AggregationTree::new(Count);
//! tree.push(Interval::from_start(18), ()).unwrap(); // Richard
//! tree.push(Interval::at(8, 20), ()).unwrap();      // Karen
//! tree.push(Interval::at(7, 12), ()).unwrap();      // Nathan
//! tree.push(Interval::at(18, 21), ()).unwrap();     // Nathan again
//!
//! // Table 1: COUNT grouped by instant, as constant intervals.
//! let result = tree.finish();
//! assert_eq!(result.len(), 7);
//! assert_eq!(result.value_at(Timestamp(19)), Some(&3));
//! ```
//!
//! Or in SQL:
//!
//! ```
//! use temporal_aggregates::prelude::*;
//! use temporal_aggregates::workload::employed::employed_relation;
//!
//! let mut catalog = Catalog::new();
//! catalog.register("Employed", employed_relation());
//! let result = execute_str(&catalog, "SELECT COUNT(Name) FROM Employed E").unwrap();
//! println!("{result}");
//! ```

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

/// The temporal data model: instants, intervals, values, relations, series.
pub mod core {
    pub use tempagg_core::*;
}

/// Aggregate functions as mergeable partial states.
pub mod agg {
    pub use tempagg_agg::*;
}

/// The paper's algorithms and extensions.
pub mod algo {
    pub use tempagg_algo::*;
}

/// The §6.3 query planner and executor.
pub mod planner {
    pub use tempagg_plan::*;
}

/// The mini-TSQL2 front end.
pub mod sql {
    pub use tempagg_sql::*;
}

/// The mutable temporal store: DML, incrementally maintained aggregate
/// caches, MVCC snapshot reads (DESIGN.md §13).
pub mod store {
    pub use tempagg_store::*;
}

/// The §6 workload generators and the paper's `Employed` example.
pub mod workload {
    pub use tempagg_workload::*;
}

/// The §5.2 sortedness metrics (k-order, k-ordered-percentage).
pub mod sortedness {
    pub use tempagg_core::sortedness::*;
}

// Curated top-level re-exports.
pub use tempagg_agg::{
    AggKind, Aggregate, Avg, BoolAnd, BoolOr, Count, CountDistinct, DynAggregate, Max, Min, StdDev,
    Sum, SweepAggregate, SweepClass, Variance,
};
pub use tempagg_algo::{
    run, run_with_stats, scoped_map, AggregationTree, BalancedAggregationTree, GroupedAggregate,
    JoinPair, JoinPredicate, KOrderedAggregationTree, LinkedListAggregate, MemoryStats,
    PagedAggregationTree, PartitionReport, PartitionedAggregator, SpanGrouper, SweepAggregator,
    SweepAggregatorV1, SweepJoinOperator, TemporalAggregator, TwoScanAggregate,
};
pub use tempagg_core::{
    BitemporalRelation, Calendar, Chunk, ChunkedSink, CountingSink, EventRelation, Interval,
    Result, Schema, Series, SeriesEntry, SeriesSink, StitchSink, TempAggError, TemporalRelation,
    TimeUnit, Timestamp, Tuple, Value, ValueType, WindowAlignment, DEFAULT_CHUNK_CAPACITY,
};
pub use tempagg_plan::{
    choose_algorithm, choose_parallelism, evaluate_auto, execute, execute_streaming, plan,
    plan_by_cost, AlgorithmChoice, CacheReport, Calibration, CostModel, ExecutionReport,
    OrderingKnowledge, Plan, PlannerConfig, RelationStats,
};
pub use tempagg_sql::{
    execute_statement, execute_str, execute_streaming_str, Catalog, QueryResult, StatementOutput,
    StreamSummary,
};
pub use tempagg_store::{StoreCacheStats, TemporalStore};

/// Everything most programs need, in one import.
pub mod prelude {
    pub use crate::{
        evaluate_auto, execute_statement, execute_str, plan, Aggregate, AggregationTree,
        AlgorithmChoice, Avg, BalancedAggregationTree, Catalog, Chunk, ChunkedSink, Count,
        CountingSink, GroupedAggregate, Interval, KOrderedAggregationTree, LinkedListAggregate,
        Max, MemoryStats, Min, OrderingKnowledge, PagedAggregationTree, PartitionedAggregator,
        PlannerConfig, RelationStats, Series, SeriesSink, SpanGrouper, StitchSink, Sum,
        SweepAggregator, TemporalAggregator, TemporalRelation, TemporalStore, Timestamp,
        TwoScanAggregate, Value,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_compiles_and_works() {
        let mut tree = AggregationTree::new(Count);
        tree.push(Interval::at(0, 9), ()).unwrap();
        let s = tree.finish();
        assert_eq!(s.value_at(Timestamp(5)), Some(&1));
    }
}
