//! `tempagg` — command-line front end for the temporal-aggregates library.
//!
//! ```text
//! tempagg gen   --out data.rel [--tuples N] [--order random|sorted|k=K,PCT|retro=D]
//!               [--long-lived P] [--lifespan L] [--seed S]
//! tempagg stats --in data.rel
//! tempagg query --in data.rel 'SELECT COUNT(name) FROM data'
//! tempagg repl  [--in data.rel]
//! ```
//!
//! `gen` writes the paper's 128-byte-record page format; `stats` prints the
//! Section 5.2 sortedness metrics and the Section 6.3 plan for the file;
//! `query` registers the file as relation `data` and runs one statement;
//! `repl` opens the interactive shell.

use std::io::{self, BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use temporal_aggregates::prelude::*;
use temporal_aggregates::sortedness;
use temporal_aggregates::sql::{execute_statement, StatementOutput};
use temporal_aggregates::workload::{generate, storage, TupleOrder, WorkloadConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        return usage("missing command");
    };
    let result = match command.as_str() {
        "gen" => cmd_gen(rest),
        "stats" => cmd_stats(rest),
        "query" => cmd_query(rest),
        "repl" => cmd_repl(rest),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(())
        }
        other => {
            return usage(&format!("unknown command `{other}`"));
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Write to stdout, exiting quietly if the pipe closed (`tempagg … | head`
/// must not panic).
fn emit(text: impl std::fmt::Display) {
    use std::io::Write;
    let mut stdout = io::stdout();
    if write!(stdout, "{text}")
        .and_then(|()| stdout.flush())
        .is_err()
    {
        std::process::exit(0);
    }
}

fn emit_line(text: impl std::fmt::Display) {
    emit(format_args!("{text}\n"));
}

fn print_usage() {
    eprintln!(
        "usage:\n  tempagg gen   --out FILE [--tuples N] [--order random|sorted|k=K,PCT|retro=D]\n\
         \x20               [--long-lived P] [--lifespan L] [--seed S]\n\
         \x20 tempagg stats --in FILE\n\
         \x20 tempagg query --in FILE 'SQL STATEMENT'\n\
         \x20 tempagg repl  [--in FILE]"
    );
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("error: {problem}");
    print_usage();
    ExitCode::FAILURE
}

/// Parsed command line: `--flag value` pairs plus positionals.
type Flags = Vec<(String, String)>;

/// Minimal `--flag value` parser; returns (flags, positionals).
fn parse_flags(args: &[String]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positionals = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = iter
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?;
            flags.push((name.to_owned(), value.clone()));
        } else {
            positionals.push(arg.clone());
        }
    }
    Ok((flags, positionals))
}

fn flag<'a>(flags: &'a [(String, String)], name: &str) -> Option<&'a str> {
    flags
        .iter()
        .rev()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_order(spec: &str) -> Result<TupleOrder, String> {
    if spec == "random" {
        return Ok(TupleOrder::Random);
    }
    if spec == "sorted" {
        return Ok(TupleOrder::Sorted);
    }
    if let Some(body) = spec.strip_prefix("k=") {
        let (k, pct) = body
            .split_once(',')
            .ok_or_else(|| format!("expected k=K,PCT, got `{spec}`"))?;
        return Ok(TupleOrder::KOrdered {
            k: k.parse().map_err(|e| format!("bad k: {e}"))?,
            percentage: pct.parse().map_err(|e| format!("bad percentage: {e}"))?,
        });
    }
    if let Some(delay) = spec.strip_prefix("retro=") {
        return Ok(TupleOrder::RetroactivelyBounded {
            max_delay: delay.parse().map_err(|e| format!("bad delay: {e}"))?,
        });
    }
    Err(format!("unknown order `{spec}`"))
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (flags, positionals) = parse_flags(args)?;
    if !positionals.is_empty() {
        return Err(format!("unexpected argument `{}`", positionals[0]));
    }
    let out = flag(&flags, "out").ok_or("gen requires --out FILE")?;
    let mut config = WorkloadConfig {
        tuples: 4_096,
        ..Default::default()
    };
    if let Some(n) = flag(&flags, "tuples") {
        config.tuples = n.parse().map_err(|e| format!("bad --tuples: {e}"))?;
    }
    if let Some(order) = flag(&flags, "order") {
        config.order = parse_order(order)?;
    }
    if let Some(pct) = flag(&flags, "long-lived") {
        config.long_lived_pct = pct.parse().map_err(|e| format!("bad --long-lived: {e}"))?;
    }
    if let Some(lifespan) = flag(&flags, "lifespan") {
        config.lifespan = lifespan
            .parse()
            .map_err(|e| format!("bad --lifespan: {e}"))?;
    }
    if let Some(seed) = flag(&flags, "seed") {
        config.seed = seed.parse().map_err(|e| format!("bad --seed: {e}"))?;
    }
    config.validate()?;
    let relation = generate(&config);
    let stats = storage::write_relation(&relation, Path::new(out)).map_err(|e| e.to_string())?;
    emit_line(format_args!(
        "wrote {} tuples ({} bytes, {} pages) to {out}",
        stats.tuples, stats.file_bytes, stats.pages
    ));
    Ok(())
}

fn load(path: &str) -> Result<TemporalRelation, String> {
    storage::read_relation(Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let input = flag(&flags, "in").ok_or("stats requires --in FILE")?;
    let relation = load(input)?;
    let intervals: Vec<Interval> = relation.intervals().collect();
    let report = sortedness::analyze(&intervals);
    emit_line(format_args!("tuples:               {}", report.n));
    if let Some(lifespan) = relation.lifespan() {
        emit_line(format_args!("lifespan:             {lifespan}"));
    }
    emit_line(format_args!("k-order:              {}", report.k_order));
    emit_line(format_args!(
        "k-ordered-percentage: {:.5} (at k = {})",
        report.percentage_at_k_order,
        report.k_order.max(1)
    ));
    emit_line(format_args!(
        "tuples displaced:     {:.1}%",
        100.0 * report.fraction_displaced
    ));

    let stats = RelationStats::analyze(&relation);
    emit_line(format_args!(
        "long-lived fraction:  {:.1}%",
        100.0 * stats.long_lived_fraction
    ));
    emit_line(format_args!(
        "\n{}",
        plan(&stats, &PlannerConfig::default(), 4)
    ));
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (flags, positionals) = parse_flags(args)?;
    let input = flag(&flags, "in").ok_or("query requires --in FILE")?;
    let [sql] = positionals.as_slice() else {
        return Err("query requires exactly one SQL statement".into());
    };
    let mut catalog = Catalog::new();
    catalog.register("data", load(input)?);
    let output = execute_statement(&mut catalog, sql).map_err(|e| e.to_string())?;
    emit(output);
    Ok(())
}

fn cmd_repl(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let mut catalog = Catalog::new();
    if let Some(input) = flag(&flags, "in") {
        catalog.register("data", load(input)?);
    }
    catalog.register(
        "employed",
        temporal_aggregates::workload::employed::employed_relation(),
    );
    println!(
        "tempagg repl — relations: {:?} (\\q to quit)",
        catalog.names()
    );
    let stdin = io::stdin();
    loop {
        print!("tempagg> ");
        let _ = io::stdout().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => return Err(e.to_string()),
        }
        let line = line.trim();
        match line {
            "" => continue,
            "\\q" | "quit" | "exit" => break,
            _ => match execute_statement(&mut catalog, line) {
                Ok(output) => {
                    print!("{output}");
                    if let StatementOutput::Rows(result) = &output {
                        if let Some(plan) = &result.plan {
                            if !result.explain_only {
                                println!("[{}]", plan.choice.name());
                            }
                        }
                    }
                    println!();
                }
                Err(e) => println!("error: {e}\n"),
            },
        }
    }
    Ok(())
}
