//! Snapshot (conventional) aggregate computation — Section 3.
//!
//! The paper builds on Epstein's classic two-step algorithm for scalar
//! aggregates in snapshot databases: allocate a result tuple holding a
//! *counter* and a *result attribute*, then fold every qualifying tuple
//! into both. The counter serves aggregates that need cardinality (COUNT,
//! AVG) and lets MIN/MAX recognise the first tuple. GROUP BY is handled
//! with a temporary relation keyed by the grouping value — the technique
//! Section 4.2 extends with interval keys to obtain the temporal linked
//! list.
//!
//! These routines also answer *timeslice* queries: the temporal aggregate
//! at one instant is the scalar aggregate of the tuples overlapping it.

use std::collections::BTreeMap;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Timestamp};

/// Epstein's result tuple: the aggregate output plus the qualifying-tuple
/// counter.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarResult<O> {
    pub value: O,
    /// Number of tuples folded in ("used to count the number of tuples
    /// that satisfy this aggregate's qualification").
    pub count: u64,
}

/// Compute one scalar aggregate over a stream of qualifying values
/// (Section 3, step 1–2).
pub fn scalar<A, I>(agg: &A, values: I) -> ScalarResult<A::Output>
where
    A: Aggregate,
    I: IntoIterator<Item = A::Input>,
{
    let mut state = agg.empty_state();
    let mut count = 0u64;
    for value in values {
        agg.insert(&mut state, &value);
        count += 1;
    }
    ScalarResult {
        value: agg.finish(&state),
        count,
    }
}

/// Scalar aggregation with GROUP BY via Epstein's temporary relation: one
/// `(counter, result)` entry per distinct grouping value, returned in key
/// order.
pub fn grouped_scalar<K, A, I>(agg: &A, items: I) -> Vec<(K, ScalarResult<A::Output>)>
where
    K: Ord,
    A: Aggregate,
    I: IntoIterator<Item = (K, A::Input)>,
{
    let mut groups: BTreeMap<K, (A::State, u64)> = BTreeMap::new();
    for (key, value) in items {
        let entry = groups.entry(key).or_insert_with(|| (agg.empty_state(), 0));
        agg.insert(&mut entry.0, &value);
        entry.1 += 1;
    }
    groups
        .into_iter()
        .map(|(k, (state, count))| {
            (
                k,
                ScalarResult {
                    value: agg.finish(&state),
                    count,
                },
            )
        })
        .collect()
}

/// Timeslice aggregate: the temporal aggregate's value at one instant —
/// the scalar aggregate of the tuples whose valid time contains `t`.
///
/// When only a handful of instants matter, this beats materializing all
/// constant intervals (the situation where Section 6.3 recommends the
/// linked list; a timeslice is the degenerate one-instant case).
pub fn at_instant<'a, A, I>(agg: &A, t: Timestamp, tuples: I) -> ScalarResult<A::Output>
where
    A: Aggregate,
    A::Input: Clone + 'a,
    I: IntoIterator<Item = &'a (Interval, A::Input)>,
{
    scalar(
        agg,
        tuples
            .into_iter()
            .filter(|(iv, _)| iv.contains(t))
            .map(|(_, v)| v.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Avg, Count, Max, Min, Sum};

    fn employed() -> Vec<(Interval, i64)> {
        vec![
            (Interval::from_start(18), 40_000),
            (Interval::at(8, 20), 45_000),
            (Interval::at(7, 12), 35_000),
            (Interval::at(18, 21), 37_000),
        ]
    }

    #[test]
    fn scalar_avg_salary() {
        // The paper's opening example: AVG(Salary) over all employees.
        let r = scalar(&Avg::<i64>::new(), employed().iter().map(|&(_, s)| s));
        assert_eq!(r.count, 4);
        assert_eq!(
            r.value,
            Some((40_000.0 + 45_000.0 + 35_000.0 + 37_000.0) / 4.0)
        );
    }

    #[test]
    fn scalar_over_empty_input() {
        let r = scalar(&Sum::<i64>::new(), std::iter::empty());
        assert_eq!(r.count, 0);
        assert_eq!(r.value, None);
        let r = scalar(&Count, std::iter::empty());
        assert_eq!(r.value, 0);
    }

    #[test]
    fn counter_recognises_first_tuple_for_extrema() {
        let r = scalar(&Min::<i64>::new(), [5, 3, 9]);
        assert_eq!(r.value, Some(3));
        assert_eq!(r.count, 3);
        let r = scalar(&Max::<i64>::new(), [5]);
        assert_eq!(r.value, Some(5));
        assert_eq!(r.count, 1);
    }

    #[test]
    fn grouped_scalar_by_department() {
        // AVG(Salary) GROUP BY Dept, the paper's second example query.
        let items = [
            ("Research", 40_000i64),
            ("Research", 45_000),
            ("Engineering", 35_000),
            ("Engineering", 37_000),
        ];
        let groups = grouped_scalar(&Avg::<i64>::new(), items);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, "Engineering");
        assert_eq!(groups[0].1.value, Some(36_000.0));
        assert_eq!(groups[0].1.count, 2);
        assert_eq!(groups[1].0, "Research");
        assert_eq!(groups[1].1.value, Some(42_500.0));
    }

    #[test]
    fn timeslice_matches_table1() {
        let tuples: Vec<(Interval, ())> = employed().into_iter().map(|(iv, _)| (iv, ())).collect();
        for (t, expected) in [
            (0, 0u64),
            (7, 1),
            (10, 2),
            (15, 1),
            (19, 3),
            (21, 2),
            (30, 1),
        ] {
            let r = at_instant(&Count, Timestamp(t), &tuples);
            assert_eq!(r.value, expected, "instant {t}");
        }
    }

    #[test]
    fn timeslice_sum() {
        let tuples = employed();
        let r = at_instant(&Sum::<i64>::new(), Timestamp(19), &tuples);
        assert_eq!(r.value, Some(122_000));
        assert_eq!(r.count, 3);
    }
}
