//! A memory-bounded, region-paged aggregation tree — the limited-memory
//! evaluation sketched at the end of Section 5.1:
//!
//! > "If we do not balance the aggregation tree, then it is simple to page
//! > portions of the tree to disk. … Simply accumulate the tuples which
//! > would overlap this region of the tree and process them later."
//!
//! The domain is split into `regions` contiguous sub-intervals. During the
//! scan, each tuple is clipped to the regions it overlaps and *accumulated*
//! per region (the stand-in for the paper's on-disk runs — see DESIGN.md's
//! substitution notes). At `finish`, one region at a time is aggregated
//! with a private aggregation tree, so peak tree memory is bounded by the
//! busiest region rather than the whole relation.
//!
//! Region edges are not tuple endpoints, so naive concatenation would
//! split genuine constant intervals at artificial boundaries. The fix is
//! exact: a boundary between two regions is *real* only if some tuple
//! starts at the boundary's right edge or ends at its left edge; otherwise
//! the tuple set crossing it is unchanged and the adjacent result entries
//! are stitched back together.

use crate::agg_tree::AggregationTree;
use crate::memory::{model_node_bytes, MemoryStats};
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, Series, SeriesSink, StitchSink, TempAggError, Timestamp};

/// The paged (memory-bounded) aggregation tree.
///
/// Requires a *bounded* domain (region arithmetic over `[t, ∞]` is
/// meaningless); use the plain [`AggregationTree`] for open-ended
/// time-lines, or bound the query with a valid-time window.
#[derive(Clone, Debug)]
pub struct PagedAggregationTree<A: Aggregate> {
    agg: A,
    domain: Interval,
    region_len: i64,
    /// Per-region accumulated tuples, clipped to the region.
    buffers: Vec<Vec<(Interval, A::Input)>>,
    /// `true` when some tuple starts exactly at region `i`'s first instant
    /// (making the boundary between regions `i−1` and `i` real).
    boundary_start_real: Vec<bool>,
    /// `true` when some tuple ends exactly at region `i`'s last instant.
    boundary_end_real: Vec<bool>,
    tuples: usize,
    peak_tree_nodes: usize,
}

impl<A: Aggregate + Clone> PagedAggregationTree<A>
where
    A::Input: Clone,
{
    /// Split `domain` into `regions` near-equal parts.
    ///
    /// Errors if the domain is unbounded, `regions` is zero, or there are
    /// more regions than instants.
    pub fn new(agg: A, domain: Interval, regions: usize) -> Result<Self> {
        let regions_i64 = i64::try_from(regions).unwrap_or(i64::MAX);
        if domain.end().is_forever() || regions == 0 || regions_i64 > domain.duration() {
            return Err(TempAggError::InvalidSpan {
                length: regions_i64,
            });
        }
        let region_len = (domain.duration() + regions_i64 - 1) / regions_i64;
        // The rounded-up length may need fewer regions to cover the domain.
        // lint: allow(no-as-cast): the quotient is positive and no larger than the requested region count
        let actual = ((domain.duration() + region_len - 1) / region_len) as usize;
        Ok(PagedAggregationTree {
            agg,
            domain,
            region_len,
            buffers: (0..actual).map(|_| Vec::new()).collect(),
            boundary_start_real: vec![false; actual],
            boundary_end_real: vec![false; actual],
            tuples: 0,
            peak_tree_nodes: 0,
        })
    }

    /// Number of regions the domain was split into.
    pub fn region_count(&self) -> usize {
        self.buffers.len()
    }

    /// Tuples pushed so far.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Total buffered `(interval, input)` entries across regions (a tuple
    /// spanning r regions contributes r entries). This models the size of
    /// the paper's on-disk runs.
    pub fn buffered_entries(&self) -> usize {
        self.buffers.iter().map(Vec::len).sum()
    }

    fn region_interval(&self, i: usize) -> Interval {
        // lint: allow(no-as-cast): region indices are derived from an i64 region count, so they convert back losslessly
        let start = self.domain.start() + (i as i64 * self.region_len);
        let end = (start + (self.region_len - 1)).min(self.domain.end());
        // lint: allow(no-unwrap): every region starts inside the bounded domain and ends no earlier than it starts
        Interval::new(start, end).expect("regions are well-formed")
    }

    fn region_of(&self, t: Timestamp) -> usize {
        // lint: allow(no-as-cast): t lies inside the bounded domain, so the quotient is a non-negative region index
        (t.distance_from(self.domain.start()) / self.region_len) as usize
    }
}

impl<A: Aggregate + Clone> PagedAggregationTree<A>
where
    A::Input: Clone,
{
    /// Like [`TemporalAggregator::finish`], but also reports the true peak
    /// tree memory over all regions (the `memory` method can only estimate
    /// before the regions have been processed).
    pub fn finish_with_stats(mut self) -> (Series<A::Output>, MemoryStats) {
        let mut series = Series::new();
        self.finish_regions_into(&mut series);
        let stats = MemoryStats {
            live_nodes: 0,
            peak_nodes: self.peak_tree_nodes.max(1),
            node_model_bytes: model_node_bytes(self.agg.state_model_bytes()),
            node_actual_bytes: std::mem::size_of::<crate::tree::arena::Node<A::State>>(),
        };
        (series, stats)
    }

    /// Process every region in time order, streaming the pieces through a
    /// [`StitchSink`] that merges across artificial region boundaries (a
    /// boundary is real when a tuple endpoint lands on it). Records the
    /// busiest region's peak in `self.peak_tree_nodes`. Only one region's
    /// tree is ever resident, and its output flows straight to the sink.
    fn finish_regions_into(&mut self, sink: &mut impl SeriesSink<A::Output>) {
        let mut stitch = StitchSink::new(&mut *sink);
        let mut peak = 0usize;
        for region in 0..self.buffers.len() {
            if region > 0 {
                let boundary_real =
                    // lint: allow(indexing): region < buffers.len() and the boundary tables share that length
                    self.boundary_start_real[region] || self.boundary_end_real[region - 1];
                // lint: allow(seam-protocol): page edges are this aggregator's own partition seams — same audited marking as parallel.rs, byte-identity covered by paged tests
                stitch.seam(!boundary_real);
            }
            let region_iv = self.region_interval(region);
            let mut tree = AggregationTree::with_domain(self.agg.clone(), region_iv);
            // lint: allow(indexing): region ranges over 0..buffers.len()
            for (iv, value) in self.buffers[region].drain(..) {
                tree.push(iv, value)
                    // lint: allow(no-unwrap): push only rejects out-of-domain tuples and every buffered tuple was clipped to this region
                    .expect("clipped tuples fit their region");
            }
            peak = peak.max(tree.memory().peak_nodes);
            tree.finish_into(&mut stitch);
        }
        self.peak_tree_nodes = peak;
        stitch.finish();
    }
}

impl<A: Aggregate + Clone> TemporalAggregator<A> for PagedAggregationTree<A>
where
    A::Input: Clone,
{
    fn algorithm(&self) -> &'static str {
        "paged-aggregation-tree"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        let first = self.region_of(interval.start());
        let last = self.region_of(interval.end());
        for region in first..=last {
            let region_iv = self.region_interval(region);
            let clipped = interval.intersect(&region_iv).ok_or_else(|| {
                TempAggError::internal(format!(
                    "tuple {interval} does not overlap region {region} ({region_iv}) \
                     despite lying between its first and last regions"
                ))
            })?;
            // Record whether the tuple's own endpoints land on region
            // edges — those boundaries are real constant-interval breaks.
            if clipped.start() == interval.start() && clipped.start() == region_iv.start() {
                // lint: allow(indexing): region_of clamps to the last region, so region < boundary_start_real.len()
                self.boundary_start_real[region] = true;
            }
            if clipped.end() == interval.end() && clipped.end() == region_iv.end() {
                // lint: allow(indexing): region_of clamps to the last region, so region < boundary_end_real.len()
                self.boundary_end_real[region] = true;
            }
            // lint: allow(indexing): region_of clamps to the last region, so region < buffers.len()
            self.buffers[region].push((clipped, value.clone()));
        }
        self.tuples += 1;
        Ok(())
    }

    fn finish_into(mut self, sink: &mut impl SeriesSink<A::Output>) {
        self.finish_regions_into(sink);
    }

    fn memory(&self) -> MemoryStats {
        // Peak *tree* memory: the busiest single region (the buffers stand
        // in for disk). Before `finish`, estimate from the busiest buffer.
        let peak = if self.peak_tree_nodes > 0 {
            self.peak_tree_nodes
        } else {
            self.buffers
                .iter()
                .map(|b| 4 * b.len() + 1)
                .max()
                .unwrap_or(1)
        };
        MemoryStats {
            live_nodes: 0,
            peak_nodes: peak,
            node_model_bytes: model_node_bytes(self.agg.state_model_bytes()),
            node_actual_bytes: std::mem::size_of::<crate::tree::arena::Node<A::State>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle;
    use tempagg_agg::{Count, Sum};

    const DOMAIN: Interval = Interval::TIMELINE;

    fn bounded() -> Interval {
        Interval::at(0, 9_999)
    }

    fn run_paged(regions: usize, tuples: &[(Interval, ())]) -> (Series<u64>, usize, MemoryStats) {
        let mut paged = PagedAggregationTree::new(Count, bounded(), regions).unwrap();
        for &(iv, ()) in tuples {
            paged.push(iv, ()).unwrap();
        }
        let buffered = paged.buffered_entries();
        let _ = DOMAIN;
        let memory_estimate = paged.memory();
        let series = paged.finish();
        (series, buffered, memory_estimate)
    }

    fn random_ish_tuples(n: usize) -> Vec<(Interval, ())> {
        (0..n)
            .map(|i| {
                let start = (i * 7919 + 13) % 9_000;
                let len = (i * 104_729) % 800 + 1;
                let end = (start + len).min(9_999);
                (Interval::at(start as i64, end as i64), ())
            })
            .collect()
    }

    #[test]
    fn matches_oracle_across_region_counts() {
        let tuples = random_ish_tuples(200);
        let expected = oracle(&Count, bounded(), &tuples);
        for regions in [1usize, 2, 3, 7, 16, 100] {
            let (series, _, _) = run_paged(regions, &tuples);
            assert_eq!(series, expected, "regions = {regions}");
        }
    }

    #[test]
    fn stitches_constant_intervals_across_region_edges() {
        // One tuple spanning the whole domain: the result must be a single
        // constant interval even with many regions.
        let tuples = vec![(bounded(), ())];
        let (series, _, _) = run_paged(10, &tuples);
        assert_eq!(series.len(), 1);
        assert_eq!(series.entries()[0].interval, bounded());
        assert_eq!(series.entries()[0].value, 1);
    }

    #[test]
    fn real_boundaries_are_preserved() {
        // A tuple ending exactly at a region edge (region_len = 1000 for
        // 10 regions of [0, 9999]).
        let tuples = vec![(Interval::at(0, 999), ()), (Interval::at(1000, 1999), ())];
        let (series, _, _) = run_paged(10, &tuples);
        let expected = oracle(&Count, bounded(), &tuples);
        assert_eq!(series, expected);
        assert_eq!(series.len(), 3); // [0,999]=1, [1000,1999]=1, rest=0
    }

    #[test]
    fn memory_is_bounded_by_busiest_region() {
        let tuples = random_ish_tuples(2_000);
        let expected = oracle(&Count, bounded(), &tuples);

        // Full (unpaged) tree peak for reference.
        let mut full = AggregationTree::with_domain(Count, bounded());
        for &(iv, ()) in &tuples {
            full.push(iv, ()).unwrap();
        }
        let full_peak = full.memory().peak_nodes;

        // True paged peaks shrink as the region count grows.
        let mut peaks = Vec::new();
        for regions in [1usize, 4, 16] {
            let mut paged = PagedAggregationTree::new(Count, bounded(), regions).unwrap();
            for &(iv, ()) in &tuples {
                paged.push(iv, ()).unwrap();
            }
            let (series, stats) = paged.finish_with_stats();
            assert_eq!(series, expected, "regions = {regions}");
            peaks.push(stats.peak_nodes);
        }
        assert_eq!(peaks[0], full_peak, "1 region ≡ the plain tree");
        assert!(
            peaks[2] < peaks[1] && peaks[1] < peaks[0],
            "peaks = {peaks:?}"
        );
        assert!(
            peaks[2] * 4 < full_peak,
            "16 regions should cut peak memory well below {full_peak}, got {}",
            peaks[2]
        );
    }

    #[test]
    fn buffered_entries_count_region_spans() {
        let mut paged = PagedAggregationTree::new(Count, bounded(), 10).unwrap();
        paged.push(Interval::at(0, 2_500), ()).unwrap(); // 3 regions
        paged.push(Interval::at(5_000, 5_001), ()).unwrap(); // 1 region
        assert_eq!(paged.buffered_entries(), 4);
        assert_eq!(paged.len(), 2);
    }

    #[test]
    fn sum_through_paging() {
        let tuples: Vec<(Interval, i64)> = (0..300)
            .map(|i| {
                let start = (i * 37) % 9_000;
                (Interval::at(start, start + 500), i)
            })
            .collect();
        let mut paged = PagedAggregationTree::new(Sum::<i64>::new(), bounded(), 8).unwrap();
        for &(iv, v) in &tuples {
            paged.push(iv, v).unwrap();
        }
        assert_eq!(
            paged.finish(),
            oracle(&Sum::<i64>::new(), bounded(), &tuples)
        );
    }

    #[test]
    fn rejects_bad_configurations() {
        assert!(PagedAggregationTree::new(Count, Interval::TIMELINE, 4).is_err());
        assert!(PagedAggregationTree::new(Count, bounded(), 0).is_err());
        assert!(PagedAggregationTree::new(Count, Interval::at(0, 3), 10).is_err());
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut paged = PagedAggregationTree::new(Count, bounded(), 4).unwrap();
        assert!(paged.push(Interval::at(9_000, 10_000), ()).is_err());
        assert!(paged.is_empty());
    }

    #[test]
    fn empty_input_covers_domain() {
        let paged = PagedAggregationTree::new(Count, bounded(), 4).unwrap();
        let series = paged.finish();
        assert_eq!(series.len(), 1);
        assert_eq!(series.entries()[0].interval, bounded());
        assert_eq!(series.entries()[0].value, 0);
    }
}
