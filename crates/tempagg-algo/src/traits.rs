//! The common interface of all temporal aggregation algorithms.

use crate::memory::MemoryStats;
use tempagg_agg::Aggregate;
use tempagg_core::{Chunk, Interval, Result, Series, SeriesSink};

/// A single-pass temporal aggregation algorithm computing one aggregate
/// grouped by instant.
///
/// All of the paper's algorithms read the underlying relation once, feeding
/// each tuple's valid-time interval and extracted attribute value through
/// [`TemporalAggregator::push`]; [`TemporalAggregator::finish`] then yields
/// the constant intervals of the result in time order, spanning the
/// configured domain (empty regions included — filter them with
/// [`Series::filter_values`] if undesired).
pub trait TemporalAggregator<A: Aggregate> {
    /// Short algorithm name for reports and plans.
    fn algorithm(&self) -> &'static str;

    /// The domain the algorithm was configured with: the result series of
    /// [`TemporalAggregator::finish`] exactly tiles this interval. The
    /// `validate` feature's coverage checkers key off this hook, which is
    /// why every algorithm gets them for free through [`run`] /
    /// [`run_with_stats`].
    fn domain(&self) -> Interval;

    /// Fold one tuple in.
    ///
    /// Errors if the interval lies outside the algorithm's domain, or — for
    /// the k-ordered aggregation tree — if the tuple provably violates the
    /// promised k-ordering.
    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()>;

    /// Fold a whole [`Chunk`] of tuples in.
    ///
    /// The default is a per-tuple loop over [`TemporalAggregator::push`];
    /// algorithms override it where a batch enables something a lone tuple
    /// cannot — the linked list switches its head scan for a binary search
    /// across the batch, and the partitioned combinator fans the chunk out
    /// to one worker per sub-domain. Executors feed chunks whenever the
    /// input is batched, so overrides are on the hot path.
    fn push_batch(&mut self, chunk: &Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        for (interval, value) in chunk {
            self.push(interval, value.clone())?;
        }
        Ok(())
    }

    /// Complete the computation and emit the result series.
    ///
    /// This is a thin wrapper over [`TemporalAggregator::finish_into`]
    /// with a collecting [`Series`] sink. Implementors must override at
    /// least one of `finish` / `finish_into` — the defaults delegate to
    /// each other, so overriding neither recurses. Every algorithm in
    /// this crate overrides `finish_into`.
    fn finish(self) -> Series<A::Output>
    where
        Self: Sized,
    {
        let mut out = Series::new();
        self.finish_into(&mut out);
        out
    }

    /// Complete the computation, streaming the constant intervals of the
    /// result into `sink` in time order.
    ///
    /// The streaming result path: a bounded sink (e.g.
    /// [`tempagg_core::ChunkedSink`]) caps resident result memory where
    /// [`TemporalAggregator::finish`] materializes everything. Emitted
    /// entries are byte-identical to the materialized path. The default
    /// delegates to `finish` — see the override note there.
    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>)
    where
        Self: Sized,
    {
        for e in self.finish() {
            sink.accept(e.interval, e.value);
        }
    }

    /// Drain any result entries that are already final into `sink`,
    /// without consuming the aggregator.
    ///
    /// Most algorithms cannot finalize anything before end of input and
    /// keep the default no-op. The k-ordered aggregation tree overrides
    /// it: its garbage collection finalizes the leftmost constant
    /// intervals while input is still arriving, so a caller alternating
    /// `push_batch` / `emit_ready` sees O(k)-resident results on
    /// k-ordered input. Entries emitted here are exactly the prefix that
    /// [`TemporalAggregator::finish_into`] would otherwise emit first.
    fn emit_ready(&mut self, sink: &mut impl SeriesSink<A::Output>) {
        let _ = sink;
    }

    /// Current/peak state-memory usage under the paper's model.
    fn memory(&self) -> MemoryStats;
}

/// Run an aggregator to completion over `(interval, value)` pairs.
///
/// Under the `validate` feature the emitted series is checked to exactly
/// tile [`TemporalAggregator::domain`].
pub fn run<A, G, I>(mut aggregator: G, items: I) -> Result<Series<A::Output>>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
    I: IntoIterator<Item = (Interval, A::Input)>,
{
    for (interval, value) in items {
        aggregator.push(interval, value)?;
    }
    #[cfg(feature = "validate")]
    let (domain, name) = (aggregator.domain(), aggregator.algorithm());
    let series = aggregator.finish();
    #[cfg(feature = "validate")]
    crate::validate::assert_series_tiles(series.entries(), domain, name);
    Ok(series)
}

/// Run an aggregator to completion, also reporting peak memory.
///
/// Under the `validate` feature the emitted series is checked to exactly
/// tile [`TemporalAggregator::domain`].
pub fn run_with_stats<A, G, I>(
    mut aggregator: G,
    items: I,
) -> Result<(Series<A::Output>, MemoryStats)>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
    I: IntoIterator<Item = (Interval, A::Input)>,
{
    for (interval, value) in items {
        aggregator.push(interval, value)?;
    }
    let stats = aggregator.memory();
    #[cfg(feature = "validate")]
    let (domain, name) = (aggregator.domain(), aggregator.algorithm());
    let series = aggregator.finish();
    #[cfg(feature = "validate")]
    crate::validate::assert_series_tiles(series.entries(), domain, name);
    Ok((series, stats))
}
