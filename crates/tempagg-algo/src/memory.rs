//! Memory accounting, following the paper's Section 6.2 model.
//!
//! The paper charges 16 bytes per "node" to every algorithm: the trees store
//! two child pointers, an aggregate value and a split timestamp; the linked
//! list stores two timestamps and an aggregate value. We reproduce that
//! model (parameterised by the aggregate's state size, since the paper notes
//! `AVG` would need 8 bytes instead of `COUNT`'s 4) and additionally report
//! honest `size_of`-based numbers for the modern layout.

/// Bytes for two child pointers (or two timestamps in the list) under the
/// paper's 4-byte-word model.
pub const MODEL_POINTER_BYTES: usize = 8;
/// Bytes for the single split timestamp per tree node under the paper's
/// model.
pub const MODEL_TIMESTAMP_BYTES: usize = 4;

/// Snapshot of an algorithm's state-memory usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Nodes (tree nodes or list cells) currently allocated.
    pub live_nodes: usize,
    /// High-water mark of `live_nodes` over the whole run. This is the
    /// quantity Figure 9 plots (×16 bytes).
    pub peak_nodes: usize,
    /// Bytes per node under the paper's model (16 for `COUNT`).
    pub node_model_bytes: usize,
    /// Actual bytes per node for the compiled state type on this platform.
    pub node_actual_bytes: usize,
}

impl MemoryStats {
    /// Peak bytes under the paper's Section 6.2 model — the Figure 9
    /// quantity.
    pub fn peak_model_bytes(&self) -> usize {
        self.peak_nodes * self.node_model_bytes
    }

    /// Peak bytes for the actual in-memory representation.
    pub fn peak_actual_bytes(&self) -> usize {
        self.peak_nodes * self.node_actual_bytes
    }

    /// Combine two independent structures' stats (used by GROUP BY, which
    /// runs one aggregator per group). Peaks add conservatively: the true
    /// combined peak is at most the sum.
    pub fn combine(&self, other: &MemoryStats) -> MemoryStats {
        MemoryStats {
            live_nodes: self.live_nodes + other.live_nodes,
            peak_nodes: self.peak_nodes + other.peak_nodes,
            node_model_bytes: self.node_model_bytes.max(other.node_model_bytes),
            node_actual_bytes: self.node_actual_bytes.max(other.node_actual_bytes),
        }
    }
}

/// The paper's per-node byte count for a given aggregate-state size:
/// pointers + timestamp + state (16 when the state is `COUNT`'s 4 bytes).
pub fn model_node_bytes(state_model_bytes: usize) -> usize {
    MODEL_POINTER_BYTES + MODEL_TIMESTAMP_BYTES + state_model_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_nodes_are_sixteen_bytes() {
        // "Both aggregation tree algorithms used 16 bytes per node … the
        // linked list algorithm used 16 bytes per node" (Section 6.2).
        assert_eq!(model_node_bytes(4), 16);
        assert_eq!(model_node_bytes(8), 20); // AVG
    }

    #[test]
    fn peak_bytes() {
        let m = MemoryStats {
            live_nodes: 10,
            peak_nodes: 32,
            node_model_bytes: 16,
            node_actual_bytes: 40,
        };
        assert_eq!(m.peak_model_bytes(), 512);
        assert_eq!(m.peak_actual_bytes(), 1280);
    }

    #[test]
    fn combine_adds_counts() {
        let a = MemoryStats {
            live_nodes: 3,
            peak_nodes: 5,
            node_model_bytes: 16,
            node_actual_bytes: 32,
        };
        let b = MemoryStats {
            live_nodes: 2,
            peak_nodes: 8,
            node_model_bytes: 20,
            node_actual_bytes: 24,
        };
        let c = a.combine(&b);
        assert_eq!(c.live_nodes, 5);
        assert_eq!(c.peak_nodes, 13);
        assert_eq!(c.node_model_bytes, 20);
        assert_eq!(c.node_actual_bytes, 32);
    }
}
