//! The k-ordered aggregation tree (Section 5.3) — the aggregation tree plus
//! garbage collection, for *k-ordered* relations.
//!
//! If every tuple is at most `k` positions from its place in the totally
//! ordered relation, then once the algorithm has seen the tuple `2k + 1`
//! positions back, no future tuple can start before that tuple's start time
//! (the paper's Figure 4 argument). Every constant interval ending before
//! that *gc-threshold* is final: it is emitted to the next stage of query
//! evaluation and its nodes are reclaimed. The tree therefore holds only a
//! sliding window of the time-line, which is what collapses the memory
//! curve in Figure 9 — and with a pre-sorted relation and `k = 1`, yields
//! the paper's recommended overall strategy.

use crate::memory::{model_node_bytes, MemoryStats};
use crate::traits::TemporalAggregator;
use crate::tree::{ops, Arena, NodeId};
use std::collections::VecDeque;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesEntry, SeriesSink, TempAggError, Timestamp};

/// The k-ordered aggregation tree algorithm.
///
/// # Example
///
/// Stream a sorted relation with `k = 1` — the paper's recommended
/// strategy — draining finalized constant intervals as they appear:
///
/// ```
/// use tempagg_agg::Count;
/// use tempagg_algo::{KOrderedAggregationTree, TemporalAggregator};
/// use tempagg_core::{Interval, Series};
///
/// let mut tree = KOrderedAggregationTree::new(Count, 1).unwrap();
/// let mut streamed = Series::new();
/// for i in 0..100 {
///     tree.push(Interval::at(i * 10, i * 10 + 14), ()).unwrap();
///     tree.emit_ready(&mut streamed); // GC output flows straight out
///     assert!(tree.node_count() < 32, "GC keeps the tree tiny");
/// }
/// let tail = tree.finish();
/// assert!(streamed.len() > 150 && tail.len() < 16); // nearly everything streamed
/// ```
///
/// Results become available *incrementally*:
/// [`TemporalAggregator::emit_ready`] streams the constant intervals that
/// garbage collection has already finalized into any
/// [`SeriesSink`], so downstream operators can consume them while the
/// scan is still running — with no per-drain allocation.
/// [`TemporalAggregator::finish`] returns the complete series (anything
/// already emitted is not repeated in the stream but is always part of
/// `finish`'s bookkeeping — see `emit_ready`).
#[derive(Clone, Debug)]
pub struct KOrderedAggregationTree<A: Aggregate> {
    agg: A,
    arena: Arena<A::State>,
    root: NodeId,
    /// Original domain; `finish` must cover all of it.
    domain: Interval,
    /// Left edge of the part of the domain still in the tree. Everything
    /// before it has been emitted.
    frontier: Timestamp,
    k: usize,
    /// Start times of the last `2k + 1` tuples, oldest first.
    window: VecDeque<Timestamp>,
    /// Finalized constant intervals not yet drained.
    ready: Vec<SeriesEntry<A::Output>>,
    tuples: usize,
    /// Start of the first constant interval not yet handed out by
    /// `emit_ready`; every drained batch must tile exactly
    /// `[drained_through, frontier)`, so nothing is emitted twice or
    /// resurrected after garbage collection.
    #[cfg(feature = "validate")]
    drained_through: Timestamp,
}

impl<A: Aggregate> KOrderedAggregationTree<A> {
    /// A k-ordered tree over the paper's time-line `[0, ∞]`.
    ///
    /// Errors if `k == 0`; the paper's sorted-relation configuration is
    /// `k = 1`.
    pub fn new(agg: A, k: usize) -> Result<Self> {
        Self::with_domain(agg, k, Interval::TIMELINE)
    }

    /// A k-ordered tree over an explicit domain.
    pub fn with_domain(agg: A, k: usize, domain: Interval) -> Result<Self> {
        if k == 0 {
            return Err(TempAggError::InvalidK { k });
        }
        let mut arena = Arena::new();
        let root = arena.alloc_leaf(agg.empty_state());
        Ok(KOrderedAggregationTree {
            agg,
            arena,
            root,
            domain,
            frontier: domain.start(),
            k,
            window: VecDeque::with_capacity(2 * k + 2),
            ready: Vec::new(),
            tuples: 0,
            #[cfg(feature = "validate")]
            drained_through: domain.start(),
        })
    }

    /// The configured `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Tuples inserted so far.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Nodes currently held in the (windowed) tree.
    pub fn node_count(&self) -> usize {
        self.arena.live()
    }

    /// Number of finalized-but-undrained entries.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// The extent still covered by the in-memory tree.
    fn live_range(&self) -> Interval {
        Interval::new(self.frontier, self.domain.end())
            // lint: allow(no-unwrap): gc only ever advances the frontier to split + 1 with split < domain end
            .expect("frontier never passes the domain end")
    }

    /// Garbage-collect every constant interval ending before `threshold`
    /// (Section 5.3, Figure 5).
    ///
    /// Walks the left spine; whenever a node's entire left subtree ends
    /// before the threshold, the subtree is emitted in time order, the node
    /// is replaced by its right child (the removed node's partial state is
    /// pushed down into that child, preserving path sums), and the walk
    /// continues from the replacement. Only the earliest consecutive part
    /// of the tree is collected, so no hole can appear.
    ///
    /// Errors only if the frontier bookkeeping regressed
    /// ([`TempAggError::Internal`] — a bug, not bad input).
    fn gc(&mut self, threshold: Timestamp) -> Result<()> {
        // Path state accumulated from ancestors we have *descended through*
        // (they remain in the tree and remain ancestors of anything we
        // emit below them).
        let mut acc = self.agg.empty_state();
        // Parent of `cur` along the left spine, if any.
        let mut parent: Option<NodeId> = None;
        let mut cur = self.root;
        // lint: hot-loop(ktree-gc) — the left-spine collection walk; per-node work must not allocate beyond the required state clones below
        loop {
            let node = self.arena.get(cur);
            if node.is_leaf() {
                break;
            }
            let (split, left, right) = (node.split, node.left, node.right);
            if split < threshold {
                // Whole left subtree [frontier, split] is final.
                // lint: allow(no-alloc-in-scan): the emit pass needs its own path-sum copy; O(|state|), amortized by the nodes reclaimed below
                let mut emit_acc = acc.clone();
                self.agg.merge(&mut emit_acc, &self.arena.get(cur).state);
                let emitted_range = Interval::new(self.frontier, split).map_err(|_| {
                    // lint: allow(no-alloc-in-scan): error-path only — formatting happens at most once, as gc aborts
                    TempAggError::internal(format!(
                        "gc frontier regressed: frontier {} passed collectable split {split}",
                        self.frontier
                    ))
                })?;
                ops::emit(
                    &self.arena,
                    &self.agg,
                    left,
                    emitted_range,
                    emit_acc,
                    &mut self.ready,
                );
                self.arena.free_subtree(left);
                // `cur` goes away: push its state down into the surviving
                // right child so every path through that child still sums
                // the same.
                // lint: allow(no-alloc-in-scan): the pushed-down state must outlive the freed node; O(|state|) per reclaimed node
                let cur_state = self.arena.get(cur).state.clone();
                self.agg
                    .merge(&mut self.arena.get_mut(right).state, &cur_state);
                match parent {
                    None => self.root = right,
                    Some(p) => self.arena.get_mut(p).left = right,
                }
                self.arena.free_one(cur);
                self.frontier = split.next();
                cur = right;
            } else {
                // Descend left, keeping the node: its state applies to the
                // left subtree too.
                // lint: allow(no-alloc-in-scan): descending accumulates the path sum; the borrow of the arena forces a copy
                let state = self.arena.get(cur).state.clone();
                self.agg.merge(&mut acc, &state);
                parent = Some(cur);
                cur = left;
            }
        }
        Ok(())
    }
}

impl<A: Aggregate> TemporalAggregator<A> for KOrderedAggregationTree<A> {
    fn algorithm(&self) -> &'static str {
        "k-ordered-aggregation-tree"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        if interval.start() < self.frontier {
            // The tuple reaches into already-emitted constant intervals:
            // the input was not k-ordered as promised.
            return Err(TempAggError::KOrderViolation {
                start: interval.start(),
                gc_threshold: self.frontier,
                k: self.k,
            });
        }
        let live_range = self.live_range();
        ops::insert(
            &mut self.arena,
            &self.agg,
            self.root,
            live_range,
            interval,
            &value,
        )?;
        self.tuples += 1;
        // After processing a tuple, look back at the start time of the
        // tuple 2k + 1 positions earlier; constant intervals ending before
        // it are final. The length check makes the window non-empty here.
        if self.window.len() == 2 * self.k + 1 {
            if let Some(&threshold) = self.window.front() {
                self.gc(threshold)?;
                self.window.pop_front();
            }
        }
        self.window.push_back(interval.start());
        Ok(())
    }

    /// Streams the constant intervals that garbage collection has already
    /// finalized — no intermediate `Vec` beyond the internal buffer, whose
    /// capacity is reused across drains.
    ///
    /// Under the `validate` feature every non-empty batch is checked to
    /// tile `[previously drained, frontier)` exactly: batches are
    /// contiguous, monotonically forward, and never repeat an already
    /// drained constant interval.
    fn emit_ready(&mut self, sink: &mut impl SeriesSink<A::Output>) {
        #[cfg(feature = "validate")]
        if !self.ready.is_empty() {
            let window = Interval::new(self.drained_through, self.frontier.prev())
                // lint: allow(no-unwrap): validate-only check; a malformed drain window is exactly the bug it reports
                .expect("drained constant intervals precede the frontier");
            crate::validate::assert_series_tiles(&self.ready, window, "k-ordered emit_ready");
            self.drained_through = self.frontier;
        }
        for e in self.ready.drain(..) {
            sink.accept(e.interval, e.value);
        }
    }

    fn finish_into(mut self, sink: &mut impl SeriesSink<A::Output>) {
        #[cfg(feature = "validate")]
        {
            // Materialize the undrained tail so it can be checked to tile
            // the remaining domain before anything reaches the sink.
            ops::emit(
                &self.arena,
                &self.agg,
                self.root,
                self.live_range(),
                self.agg.empty_state(),
                &mut self.ready,
            );
            let expected = Interval::new(self.drained_through, self.domain.end())
                // lint: allow(no-unwrap): validate-only check; drained_through never passes the domain end
                .expect("undrained tail is a well-formed interval");
            crate::validate::assert_series_tiles(&self.ready, expected, "k-ordered finish");
            for e in self.ready.drain(..) {
                sink.accept(e.interval, e.value);
            }
        }
        #[cfg(not(feature = "validate"))]
        {
            for e in self.ready.drain(..) {
                sink.accept(e.interval, e.value);
            }
            ops::emit(
                &self.arena,
                &self.agg,
                self.root,
                self.live_range(),
                self.agg.empty_state(),
                sink,
            );
        }
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.arena.live(),
            peak_nodes: self.arena.peak_live(),
            node_model_bytes: model_node_bytes(self.agg.state_model_bytes()),
            node_actual_bytes: std::mem::size_of::<crate::tree::arena::Node<A::State>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_tree::AggregationTree;
    use crate::oracle::oracle;
    use tempagg_agg::{Count, Sum};
    use tempagg_core::Series;

    fn sorted_run(n: i64) -> Vec<(Interval, ())> {
        (0..n)
            .map(|i| (Interval::at(i * 10, i * 10 + 15), ()))
            .collect()
    }

    #[test]
    fn rejects_k_zero() {
        assert!(matches!(
            KOrderedAggregationTree::new(Count, 0),
            Err(TempAggError::InvalidK { k: 0 })
        ));
    }

    #[test]
    fn matches_oracle_on_sorted_input_k1() {
        let tuples = sorted_run(50);
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
        }
        let expected = oracle(&Count, Interval::TIMELINE, &tuples);
        assert_eq!(t.finish(), expected);
    }

    #[test]
    fn matches_plain_tree_on_k_ordered_input() {
        // Perturb a sorted run by distance ≤ 3 swaps, run with k = 3.
        let mut tuples = sorted_run(60);
        for i in (0..54).step_by(9) {
            tuples.swap(i, i + 3);
        }
        let mut kt = KOrderedAggregationTree::new(Count, 3).unwrap();
        let mut plain = AggregationTree::new(Count);
        for &(iv, ()) in &tuples {
            kt.push(iv, ()).unwrap();
            plain.push(iv, ()).unwrap();
        }
        assert_eq!(kt.finish(), plain.finish());
    }

    #[test]
    fn gc_bounds_live_nodes_on_sorted_input() {
        let tuples = sorted_run(500);
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut max_live = 0;
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
            max_live = max_live.max(t.node_count());
        }
        // Without GC the tree would hold ~2·2·500 nodes; with k = 1 the
        // window keeps it to a small constant.
        assert!(max_live <= 32, "live nodes reached {max_live}");
        assert!(t.memory().peak_nodes <= 32);
        // Results must still be complete and correct.
        let expected = oracle(&Count, Interval::TIMELINE, &tuples);
        assert_eq!(t.finish(), expected);
    }

    #[test]
    fn streaming_drain_plus_finish_equals_batch() {
        let tuples = sorted_run(100);
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut streamed: Vec<SeriesEntry<u64>> = Vec::new();
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
            t.emit_ready(&mut streamed);
        }
        assert!(
            !streamed.is_empty(),
            "GC should finalize intervals during the scan"
        );
        let tail = t.finish();
        // finish() after draining returns only the un-drained remainder...
        let mut all = streamed;
        all.extend(tail.into_entries());
        let expected = oracle(&Count, Interval::TIMELINE, &tuples);
        assert_eq!(Series::from_entries(all), expected);
    }

    #[test]
    fn emit_ready_streams_straight_into_a_series() {
        // The whole result can flow through one sink: emit_ready during
        // the scan, finish_into for the tail, byte-identical to finish.
        let tuples = sorted_run(100);
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut out = Series::new();
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
            t.emit_ready(&mut out);
        }
        t.finish_into(&mut out);
        let expected = oracle(&Count, Interval::TIMELINE, &tuples);
        assert_eq!(out, expected);
    }

    #[test]
    fn detects_k_order_violation() {
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        // Strongly increasing starts...
        for i in 0..20 {
            t.push(Interval::at(i * 100, i * 100 + 5), ()).unwrap();
        }
        // ...then a tuple far in the emitted past.
        let err = t.push(Interval::at(0, 3), ()).unwrap_err();
        assert!(matches!(err, TempAggError::KOrderViolation { .. }));
    }

    #[test]
    fn long_lived_tuples_delay_collection() {
        // A long-lived first tuple keeps its end-time node alive until the
        // scan passes it (Section 6.1's explanation of the k-tree's
        // sensitivity to long-lived tuples).
        let mut long_lived: Vec<(Interval, ())> = vec![(Interval::at(0, 100_000), ())];
        long_lived.extend(sorted_run(200));
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut max_live_long = 0;
        for &(iv, ()) in &long_lived {
            t.push(iv, ()).unwrap();
            max_live_long = max_live_long.max(t.node_count());
        }
        let expected = oracle(&Count, Interval::TIMELINE, &long_lived);
        assert_eq!(t.finish(), expected);

        let mut t2 = KOrderedAggregationTree::new(Count, 1).unwrap();
        let mut max_live_short = 0;
        for (iv, ()) in sorted_run(200) {
            t2.push(iv, ()).unwrap();
            max_live_short = max_live_short.max(t2.node_count());
        }
        assert!(
            max_live_long > max_live_short,
            "long-lived: {max_live_long} vs short-lived: {max_live_short}"
        );
    }

    #[test]
    fn larger_k_keeps_more_state() {
        let tuples = sorted_run(300);
        let mut peaks = Vec::new();
        for k in [1usize, 10, 100] {
            let mut t = KOrderedAggregationTree::new(Count, k).unwrap();
            for &(iv, ()) in &tuples {
                t.push(iv, ()).unwrap();
            }
            peaks.push(t.memory().peak_nodes);
            let expected = oracle(&Count, Interval::TIMELINE, &tuples);
            assert_eq!(t.finish(), expected, "k = {k}");
        }
        assert!(
            peaks[0] < peaks[1] && peaks[1] < peaks[2],
            "peaks = {peaks:?}"
        );
    }

    #[test]
    fn sum_aggregate_through_gc() {
        let tuples: Vec<(Interval, i64)> = (0..100)
            .map(|i| (Interval::at(i * 7, i * 7 + 20), i))
            .collect();
        let mut t = KOrderedAggregationTree::new(Sum::<i64>::new(), 2).unwrap();
        for &(iv, v) in &tuples {
            t.push(iv, v).unwrap();
        }
        let expected = oracle(&Sum::<i64>::new(), Interval::TIMELINE, &tuples);
        assert_eq!(t.finish(), expected);
    }

    #[test]
    fn empty_finish_covers_domain() {
        let t = KOrderedAggregationTree::with_domain(Count, 1, Interval::at(0, 50)).unwrap();
        let s = t.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, Interval::at(0, 50));
    }

    #[test]
    fn duplicate_start_times_within_window() {
        let tuples: Vec<(Interval, ())> = vec![
            (Interval::at(5, 10), ()),
            (Interval::at(5, 8), ()),
            (Interval::at(5, 20), ()),
            (Interval::at(6, 6), ()),
            (Interval::at(7, 30), ()),
            (Interval::at(8, 9), ()),
        ];
        let mut t = KOrderedAggregationTree::new(Count, 1).unwrap();
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
        }
        let expected = oracle(&Count, Interval::TIMELINE, &tuples);
        assert_eq!(t.finish(), expected);
    }
}
