//! Moving-window aggregates over event relations (Section 2's "aggregates
//! may also be evaluated over event relations").
//!
//! A trailing window query — "the aggregate of the events in the last `w`
//! instants, at every instant" — is exactly a temporal aggregate over the
//! interval relation where each event holds for its window of influence.
//! That reduction lets every algorithm in this crate answer event-window
//! queries; this module packages it.

use crate::agg_tree::AggregationTree;
use crate::ktree::KOrderedAggregationTree;
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, Series, Timestamp};

/// Re-exported so callers need only this module for window queries.
pub use tempagg_core::WindowAlignment;

/// Compute a moving-window aggregate over `(instant, value)` events.
///
/// Each event influences `window` instants per `alignment`; the result is
/// the aggregate per constant interval over the whole time-line. Events
/// need not be ordered — the aggregation tree handles any order. When the
/// events *are* time-ordered and the alignment is `Trailing`, the derived
/// intervals are sorted too and the k-ordered tree with `k = 1` streams
/// the computation in constant memory ([`moving_aggregate_sorted`]).
pub fn moving_aggregate<A: Aggregate>(
    agg: A,
    events: &[(Timestamp, A::Input)],
    window: i64,
    alignment: WindowAlignment,
) -> Result<Series<A::Output>>
where
    A::Input: Clone,
{
    let mut tree = AggregationTree::new(agg);
    for (at, value) in events {
        tree.push(influence(*at, window, alignment)?, value.clone())?;
    }
    Ok(tree.finish())
}

/// Streaming variant for time-ordered events with trailing windows: the
/// derived intervals arrive sorted by start time, so the k-ordered tree
/// with `k = 1` applies and peak memory stays window-bound.
pub fn moving_aggregate_sorted<A: Aggregate>(
    agg: A,
    events: &[(Timestamp, A::Input)],
    window: i64,
) -> Result<Series<A::Output>>
where
    A::Input: Clone,
{
    let mut tree = KOrderedAggregationTree::new(agg, 1)?;
    for (at, value) in events {
        tree.push(
            influence(*at, window, WindowAlignment::Trailing)?,
            value.clone(),
        )?;
    }
    Ok(tree.finish())
}

/// The interval of instants an event at `at` influences.
fn influence(at: Timestamp, window: i64, alignment: WindowAlignment) -> Result<Interval> {
    if window <= 0 {
        return Err(tempagg_core::TempAggError::InvalidSpan { length: window });
    }
    let (start, end) = match alignment {
        WindowAlignment::Trailing => (at, at + (window - 1)),
        WindowAlignment::Leading => (at - (window - 1), at),
        WindowAlignment::Centered => {
            let back = (window - 1) / 2;
            (at - back, at + (window - 1 - back))
        }
    };
    Interval::new(start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Count, Sum};

    /// Brute-force trailing-window count at one instant.
    fn brute_count(events: &[(Timestamp, i64)], t: i64, w: i64) -> u64 {
        events
            .iter()
            .filter(|(at, _)| at.get() > t - w && at.get() <= t)
            .count() as u64
    }

    #[test]
    fn trailing_count_matches_brute_force() {
        let events: Vec<(Timestamp, i64)> = [3i64, 5, 5, 9, 14, 20, 21]
            .iter()
            .map(|&t| (Timestamp(t), 1))
            .collect();
        let series =
            moving_aggregate(Count, &count_events(&events), 5, WindowAlignment::Trailing).unwrap();
        for t in 0..30 {
            let expected = brute_count(&events, t, 5);
            let got = series.value_at(Timestamp(t)).copied().unwrap_or(0);
            assert_eq!(got, expected, "t = {t}");
        }
    }

    fn count_events(events: &[(Timestamp, i64)]) -> Vec<(Timestamp, ())> {
        events.iter().map(|&(t, _)| (t, ())).collect()
    }

    #[test]
    fn sorted_streaming_equals_batch() {
        let events: Vec<(Timestamp, ())> = (0..200).map(|i| (Timestamp(i * 3), ())).collect();
        let batch = moving_aggregate(Count, &events, 10, WindowAlignment::Trailing).unwrap();
        let streamed = moving_aggregate_sorted(Count, &events, 10).unwrap();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn moving_sum() {
        let events = vec![(Timestamp(0), 10i64), (Timestamp(2), 5), (Timestamp(10), 7)];
        let series =
            moving_aggregate(Sum::<i64>::new(), &events, 4, WindowAlignment::Trailing).unwrap();
        assert_eq!(series.value_at(Timestamp(0)), Some(&Some(10)));
        assert_eq!(series.value_at(Timestamp(3)), Some(&Some(15)));
        assert_eq!(series.value_at(Timestamp(4)), Some(&Some(5)));
        assert_eq!(series.value_at(Timestamp(6)), Some(&None));
        assert_eq!(series.value_at(Timestamp(12)), Some(&Some(7)));
    }

    #[test]
    fn alignments_shift_the_series() {
        let events = vec![(Timestamp(10), ())];
        let trailing = moving_aggregate(Count, &events, 3, WindowAlignment::Trailing).unwrap();
        let leading = moving_aggregate(Count, &events, 3, WindowAlignment::Leading).unwrap();
        let centered = moving_aggregate(Count, &events, 3, WindowAlignment::Centered).unwrap();
        assert_eq!(trailing.value_at(Timestamp(12)), Some(&1));
        assert_eq!(leading.value_at(Timestamp(8)), Some(&1));
        assert_eq!(centered.value_at(Timestamp(9)), Some(&1));
        assert_eq!(centered.value_at(Timestamp(11)), Some(&1));
        assert_eq!(centered.value_at(Timestamp(12)), Some(&0));
    }

    #[test]
    fn zero_window_rejected() {
        assert!(
            moving_aggregate(Count, &[(Timestamp(0), ())], 0, WindowAlignment::Trailing).is_err()
        );
    }
}
