//! An implicit segment-tree **window index** over a constant-interval
//! series, answering arbitrary-window aggregates in `O(log n)` probes.
//!
//! Ranking Large Temporal Data (Jestes et al., see PAPERS.md) builds a
//! balanced aggregate tree over the temporal domain so that windowed
//! aggregates and top-k ranking become logarithmic probes with
//! branch-and-bound pruning. This module is that index, specialised to the
//! constant-interval series our sweep kernel and store caches already
//! maintain:
//!
//! * **Array-backed and pointer-free.** The tree is the classic implicit
//!   power-of-two layout (`nodes[1]` the root, `nodes[2i]`/`nodes[2i+1]`
//!   the children, leaves at `nodes[size..size+leaves]`), built bottom-up
//!   in `O(n)` from any series.
//! * **Leaves are fixed time *cuts*, not runs.** Each leaf owns the
//!   half-open time range between two build-time run boundaries and
//!   summarises whatever runs *currently* overlap it. Later DML that
//!   splits or merges runs inside a leaf only dirties that leaf: a
//!   [`refresh`](WindowIndex::refresh) recomputes the touched leaves from
//!   the live series and fixes their `O(log n)` ancestor paths — no
//!   rebuild.
//! * **Duration-weighted combine per class.** `Integral` nodes (the
//!   delta classes: `COUNT`-family and integer `SUM`) hold the exact
//!   `i128` time integral `Σ value·instants` plus the covered duration;
//!   `Extremes` nodes (the ordered classes: `MIN`/`MAX`) hold the
//!   min/max series value over the node's span. Every node additionally
//!   carries the min/max *instantaneous* value as an augmentation, which
//!   is what branch-and-bound top-k prunes on.
//! * **Partial leaves consult the series.** A probe window cuts through
//!   at most two leaves; those edges are resolved against the underlying
//!   [`RunSource`] (a binary search plus a short scan), and everything
//!   between folds through at most `2 log n` interior nodes.
//!
//! Floating-point series (`Approximate` class: float `SUM`, `AVG`,
//! variance) are deliberately **not** indexable: tree-order float
//! summation differs from scan order, so probe results could not be
//! byte-identical to the linear oracle. Callers fall back to a linear
//! window scan for those, exactly as the sweep gate excludes them from
//! retraction.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use tempagg_core::{Interval, Result, Series, TempAggError, Timestamp, Value};

/// What the index nodes combine, decided by the aggregate's retraction
/// class and value type (see [`WindowIndex::build`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexMode {
    /// Duration-weighted integral of integer series values (`COUNT(*)`,
    /// `COUNT`, `COUNT DISTINCT`, integer `SUM`): a window probe returns
    /// `Σ value·instants` over the window, exactly, in `i128`.
    Integral,
    /// Min/max of the instantaneous series value (`MIN`, `MAX` over any
    /// totally-ordered column type).
    Extremes,
}

impl IndexMode {
    /// Stable on-disk / display name.
    pub fn name(self) -> &'static str {
        match self {
            IndexMode::Integral => "integral",
            IndexMode::Extremes => "extremes",
        }
    }

    /// Inverse of [`name`](IndexMode::name).
    pub fn parse(text: &str) -> Option<IndexMode> {
        match text {
            "integral" => Some(IndexMode::Integral),
            "extremes" => Some(IndexMode::Extremes),
            _ => None,
        }
    }
}

/// Read access to the constant-interval runs an index summarises: the
/// series it was built from, kept current by whoever maintains it (a
/// store cache, or the immutable series itself).
pub trait RunSource {
    /// Visit every run overlapping `window`, in time order, **clipped to
    /// the window**.
    fn for_each_run_in(&self, window: Interval, f: &mut dyn FnMut(Interval, &Value));
}

impl RunSource for Series<Value> {
    fn for_each_run_in(&self, window: Interval, f: &mut dyn FnMut(Interval, &Value)) {
        let entries = self.entries();
        let lo = entries.partition_point(|e| e.interval.end() < window.start());
        for entry in entries.iter().skip(lo) {
            if entry.interval.start() > window.end() {
                break;
            }
            if let Some(clipped) = entry.interval.intersect(&window) {
                f(clipped, &entry.value);
            }
        }
    }
}

/// One tree node: the duration-weighted integral payload plus the
/// min/max-value augmentation. All fields are exact; see the module docs
/// for why floats never reach an index.
#[derive(Clone, Debug, PartialEq)]
pub struct IndexNode {
    /// `Σ value·instants` over the node's span, counting only runs with a
    /// non-null integer value (saturating `i128`).
    pub integral: i128,
    /// Instants covered by non-null runs in the node's span.
    pub covered: i128,
    /// Minimum non-null series value over the span; `Null` when none.
    pub min_value: Value,
    /// Maximum non-null series value over the span; `Null` when none.
    pub max_value: Value,
}

impl IndexNode {
    /// The combine identity: an empty span.
    pub fn neutral() -> IndexNode {
        IndexNode {
            integral: 0,
            covered: 0,
            min_value: Value::Null,
            max_value: Value::Null,
        }
    }

    fn absorb_run(&mut self, clipped: Interval, value: &Value) {
        if value.is_null() {
            return;
        }
        let instants = i128::from(clipped.duration());
        if let Some(v) = value.as_i64() {
            self.integral = self
                .integral
                .saturating_add(i128::from(v).saturating_mul(instants));
        }
        self.covered = self.covered.saturating_add(instants);
        if self.min_value.is_null() || value.total_cmp(&self.min_value).is_lt() {
            self.min_value = value.clone();
        }
        if self.max_value.is_null() || value.total_cmp(&self.max_value).is_gt() {
            self.max_value = value.clone();
        }
    }

    fn merge_from(&mut self, other: &IndexNode) {
        self.integral = self.integral.saturating_add(other.integral);
        self.covered = self.covered.saturating_add(other.covered);
        if !other.min_value.is_null()
            && (self.min_value.is_null() || other.min_value.total_cmp(&self.min_value).is_lt())
        {
            self.min_value = other.min_value.clone();
        }
        if !other.max_value.is_null()
            && (self.max_value.is_null() || other.max_value.total_cmp(&self.max_value).is_gt())
        {
            self.max_value = other.max_value.clone();
        }
    }

    fn merged(a: &IndexNode, b: &IndexNode) -> IndexNode {
        let mut out = a.clone();
        out.merge_from(b);
        out
    }
}

/// What a window probe returns: the duration-weighted integral and the
/// window extremes, exactly as a linear scan of the same runs would
/// compute them ([`scan_window`] is that oracle).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowAggregate {
    /// `Σ value·instants` over non-null integer runs in the window.
    pub integral: i128,
    /// Instants covered by non-null runs in the window.
    pub covered: i128,
    /// Minimum non-null series value in the window; `Null` when none.
    pub min: Value,
    /// Maximum non-null series value in the window; `Null` when none.
    pub max: Value,
}

impl WindowAggregate {
    /// An empty window.
    pub fn empty() -> WindowAggregate {
        WindowAggregate {
            integral: 0,
            covered: 0,
            min: Value::Null,
            max: Value::Null,
        }
    }

    /// The integral as a SQL value (saturated to `i64`).
    pub fn integral_value(&self) -> Value {
        Value::Int(
            i64::try_from(self.integral).unwrap_or(if self.integral > 0 {
                i64::MAX
            } else {
                i64::MIN
            }),
        )
    }

    fn from_node(node: &IndexNode) -> WindowAggregate {
        WindowAggregate {
            integral: node.integral,
            covered: node.covered,
            min: node.min_value.clone(),
            max: node.max_value.clone(),
        }
    }
}

/// The linear oracle (and pre-index baseline): fold every run overlapping
/// `window` directly. `O(runs in window)` — what every windowed query
/// cost before the index existed, and what probe results are asserted
/// byte-identical to.
pub fn scan_window(source: &dyn RunSource, window: Interval) -> WindowAggregate {
    let mut node = IndexNode::neutral();
    source.for_each_run_in(window, &mut |clipped, value| {
        node.absorb_run(clipped, value);
    });
    WindowAggregate::from_node(&node)
}

/// The implicit segment-tree window index. See the module docs for the
/// layout; construction is [`build`](WindowIndex::build), queries are
/// [`probe`](WindowIndex::probe) /
/// [`extreme_instant`](WindowIndex::extreme_instant) / [`top_k`], and
/// maintenance is [`refresh`](WindowIndex::refresh).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowIndex {
    mode: IndexMode,
    /// Real leaves (build-time runs); the tree is padded to `size`.
    leaves: usize,
    /// Padded leaf capacity: the smallest power of two `>= leaves`.
    size: usize,
    /// Leaf `l` owns `[starts[l], starts[l+1] - 1]` (the last leaf ends at
    /// `end`). These cuts are fixed at build time; DML inside a leaf's
    /// range only dirties that leaf.
    starts: Vec<Timestamp>,
    /// End of the last leaf's range (inclusive).
    end: Timestamp,
    /// Implicit tree, 1-indexed; `nodes[size + l]` is leaf `l`, padding
    /// leaves are neutral.
    nodes: Vec<IndexNode>,
}

impl WindowIndex {
    /// Build in `O(n)` from a constant-interval series: one leaf per run,
    /// then one bottom-up pass over the internal levels.
    pub fn build(mode: IndexMode, series: &Series<Value>) -> WindowIndex {
        let entries = series.entries();
        let leaves = entries.len().max(1);
        let size = leaves.next_power_of_two();
        let mut nodes = vec![IndexNode::neutral(); 2 * size];
        let mut starts = Vec::with_capacity(leaves);
        let mut end = Timestamp::ORIGIN;
        if entries.is_empty() {
            starts.push(Timestamp::ORIGIN);
        } else {
            for (l, entry) in entries.iter().enumerate() {
                starts.push(entry.interval.start());
                end = entry.interval.end();
                let Some(leaf) = nodes.get_mut(size + l) else {
                    continue;
                };
                leaf.absorb_run(entry.interval, &entry.value);
            }
        }
        let mut index = WindowIndex {
            mode,
            leaves,
            size,
            starts,
            end,
            nodes,
        };
        index.rebuild_internal(0, leaves.saturating_sub(1));
        index
    }

    /// Reassemble an index from persisted parts: the leaf cuts and leaf
    /// payloads (internal nodes are derived bottom-up, so corruption of a
    /// persisted block can only fail loudly here, never mis-answer).
    pub fn from_leaves(
        mode: IndexMode,
        starts: Vec<Timestamp>,
        end: Timestamp,
        leaf_nodes: Vec<IndexNode>,
    ) -> Result<WindowIndex> {
        if starts.is_empty() || starts.len() != leaf_nodes.len() {
            return Err(TempAggError::storage(
                "window-index block has mismatched cut and leaf counts",
            ));
        }
        if !starts.windows(2).all(|w| w[0] < w[1]) {
            return Err(TempAggError::storage(
                "window-index block has non-increasing leaf cuts",
            ));
        }
        let leaves = starts.len();
        let size = leaves.next_power_of_two();
        let mut nodes = vec![IndexNode::neutral(); 2 * size];
        for (l, leaf) in leaf_nodes.into_iter().enumerate() {
            if let Some(slot) = nodes.get_mut(size + l) {
                *slot = leaf;
            }
        }
        let mut index = WindowIndex {
            mode,
            leaves,
            size,
            starts,
            end,
            nodes,
        };
        index.rebuild_internal(0, leaves - 1);
        Ok(index)
    }

    pub fn mode(&self) -> IndexMode {
        self.mode
    }

    /// Leaf count (the build-time run count).
    pub fn leaf_count(&self) -> usize {
        self.leaves
    }

    /// The leaf cut timestamps (leaf `l` starts at `starts()[l]`).
    pub fn leaf_starts(&self) -> &[Timestamp] {
        &self.starts
    }

    /// End of the indexed extent (inclusive).
    pub fn extent_end(&self) -> Timestamp {
        self.end
    }

    /// The leaf payloads, for persistence.
    pub fn leaf_nodes(&self) -> impl Iterator<Item = &IndexNode> {
        self.nodes.iter().skip(self.size).take(self.leaves)
    }

    /// The root's augmentation: a bound on any window probe.
    fn root(&self) -> &IndexNode {
        // lint: allow(indexing): nodes has 2·size ≥ 2 slots, the root is slot 1
        &self.nodes[1]
    }

    /// The time range leaf `l` owns.
    fn leaf_range(&self, l: usize) -> Interval {
        let start = self.starts.get(l).copied().unwrap_or(Timestamp::ORIGIN);
        let end = self.starts.get(l + 1).map_or(self.end, |next| next.prev());
        Interval::new(start, end.max(start)).unwrap_or(Interval::TIMELINE)
    }

    /// Leaf containing instant `t` (`t` must be ≥ the first cut).
    fn leaf_of(&self, t: Timestamp) -> usize {
        self.starts.partition_point(|s| *s <= t).saturating_sub(1)
    }

    /// The indexed extent.
    fn extent(&self) -> Interval {
        let start = self.starts.first().copied().unwrap_or(Timestamp::ORIGIN);
        Interval::new(start, self.end.max(start)).unwrap_or(Interval::TIMELINE)
    }

    /// Recompute internal nodes above the leaf range `[l0, l1]`,
    /// level by level. `O(log n + l1 - l0)`.
    fn rebuild_internal(&mut self, l0: usize, l1: usize) {
        let mut lo = (self.size + l0) / 2;
        let mut hi = (self.size + l1.min(self.size.saturating_sub(1))) / 2;
        while lo >= 1 {
            for i in lo..=hi {
                let merged = IndexNode::merged(
                    // lint: allow(indexing): i ≤ hi < size, so both children 2i and 2i+1 < 2·size
                    &self.nodes[2 * i],
                    // lint: allow(indexing): same bound as the sibling above
                    &self.nodes[2 * i + 1],
                );
                // lint: allow(indexing): i ranges over internal slots 1..size
                self.nodes[i] = merged;
            }
            if lo == 1 {
                break;
            }
            lo /= 2;
            hi /= 2;
        }
    }

    /// Answer an arbitrary-window aggregate in `O(log n)`: the two edge
    /// leaves are resolved against `source`, everything between folds
    /// through at most `2 log n` interior nodes. Probe results are
    /// byte-identical to [`scan_window`] over the same source.
    pub fn probe(&self, window: Interval, source: &dyn RunSource) -> WindowAggregate {
        let Some(win) = window.intersect(&self.extent()) else {
            return WindowAggregate::empty();
        };
        let l0 = self.leaf_of(win.start());
        let l1 = self.leaf_of(win.end());
        if l1 <= l0 + 1 {
            // The window lives inside one or two leaves: a short scan.
            return scan_window(source, win);
        }
        // Edge leaves partially covered: resolve the clipped parts from
        // the live runs.
        let mut acc = IndexNode::neutral();
        let left_edge = Interval::new(win.start(), self.leaf_range(l0).end()).unwrap_or(win);
        source.for_each_run_in(left_edge, &mut |clipped, value| {
            acc.absorb_run(clipped, value);
        });
        let right_edge = Interval::new(self.leaf_range(l1).start(), win.end()).unwrap_or(win);
        source.for_each_run_in(right_edge, &mut |clipped, value| {
            acc.absorb_run(clipped, value);
        });

        // Interior leaves [l0+1, l1-1] are fully covered: fold their
        // already-combined nodes bottom-up. Exact node arithmetic only —
        // `i128` adds and `total_cmp` against indexed nodes.
        let mut integral = 0i128;
        let mut covered = 0i128;
        let mut min_at: Option<usize> = None;
        let mut max_at: Option<usize> = None;
        let mut l = self.size + l0 + 1;
        let mut r = self.size + l1; // exclusive
                                    // lint: hot-loop(windex-descent) — the partial-overlap descent is the probe's O(log n) core and must stay allocation-free
        while l < r {
            if l & 1 == 1 {
                self.fold_interior(l, &mut integral, &mut covered, &mut min_at, &mut max_at);
                l += 1;
            }
            if r & 1 == 1 {
                r -= 1;
                self.fold_interior(r, &mut integral, &mut covered, &mut min_at, &mut max_at);
            }
            l /= 2;
            r /= 2;
        }
        acc.integral = acc.integral.saturating_add(integral);
        acc.covered = acc.covered.saturating_add(covered);
        if let Some(node) = min_at.and_then(|i| self.nodes.get(i)) {
            if !node.min_value.is_null()
                && (acc.min_value.is_null() || node.min_value.total_cmp(&acc.min_value).is_lt())
            {
                acc.min_value = node.min_value.clone();
            }
        }
        if let Some(node) = max_at.and_then(|i| self.nodes.get(i)) {
            if !node.max_value.is_null()
                && (acc.max_value.is_null() || node.max_value.total_cmp(&acc.max_value).is_gt())
            {
                acc.max_value = node.max_value.clone();
            }
        }
        WindowAggregate::from_node(&acc)
    }

    /// Fold one interior node into the descent accumulator without
    /// cloning: extremes are tracked as node indices and materialised
    /// once after the loop.
    #[inline]
    fn fold_interior(
        &self,
        i: usize,
        integral: &mut i128,
        covered: &mut i128,
        min_at: &mut Option<usize>,
        max_at: &mut Option<usize>,
    ) {
        let Some(node) = self.nodes.get(i) else {
            return;
        };
        *integral = integral.saturating_add(node.integral);
        *covered = covered.saturating_add(node.covered);
        if !node.min_value.is_null() {
            let better = match min_at.and_then(|b| self.nodes.get(b)) {
                Some(best) => {
                    best.min_value.is_null() || node.min_value.total_cmp(&best.min_value).is_lt()
                }
                None => true,
            };
            if better {
                *min_at = Some(i);
            }
        }
        if !node.max_value.is_null() {
            let better = match max_at.and_then(|b| self.nodes.get(b)) {
                Some(best) => {
                    best.max_value.is_null() || node.max_value.total_cmp(&best.max_value).is_gt()
                }
                None => true,
            };
            if better {
                *max_at = Some(i);
            }
        }
    }

    /// Recompute the leaves overlapping `dirty` from the live runs and
    /// fix their ancestor paths: `O(runs in dirty + log n)`. Called by the
    /// store after every cache patch so probes stay byte-identical to a
    /// from-scratch rebuild. Returns the number of leaves recomputed.
    pub fn refresh(&mut self, dirty: Interval, source: &dyn RunSource) -> usize {
        let Some(dirty) = dirty.intersect(&self.extent()) else {
            return 0;
        };
        let l0 = self.leaf_of(dirty.start());
        let l1 = self.leaf_of(dirty.end());
        for l in l0..=l1 {
            let range = self.leaf_range(l);
            let mut node = IndexNode::neutral();
            source.for_each_run_in(range, &mut |clipped, value| node.absorb_run(clipped, value));
            if let Some(slot) = self.nodes.get_mut(self.size + l) {
                *slot = node;
            }
        }
        self.rebuild_internal(l0, l1);
        l1 - l0 + 1
    }

    /// The earliest instant in `window` where the series attains its
    /// extreme (max when `want_max`, else min) value, with that value.
    /// `None` when the window holds no non-null run. `O(log² n)`.
    pub fn extreme_instant(
        &self,
        window: Interval,
        want_max: bool,
        source: &dyn RunSource,
    ) -> Option<(Timestamp, Value)> {
        let aggregate = self.probe(window, source);
        let target = if want_max {
            aggregate.max
        } else {
            aggregate.min
        };
        if target.is_null() {
            return None;
        }
        let win = window.intersect(&self.extent())?;
        // Walk the window's leaves left to right, skipping subtrees whose
        // augmentation says the target cannot occur inside; the first
        // leaf that can contain it is scanned for the first matching run.
        let l0 = self.leaf_of(win.start());
        let l1 = self.leaf_of(win.end());
        let mut found: Option<Timestamp> = None;
        self.first_leaf_with(
            1,
            0,
            self.size,
            l0,
            l1,
            &target,
            want_max,
            &mut |leaf| {
                let range = self.leaf_range(leaf).intersect(&win)?;
                let mut at: Option<Timestamp> = None;
                source.for_each_run_in(range, &mut |clipped, value| {
                    if at.is_none() && value.total_cmp(&target).is_eq() {
                        at = Some(clipped.start());
                    }
                });
                at
            },
            &mut found,
        );
        found.map(|t| (t, target))
    }

    /// Left-to-right search for the first leaf in `[l0, l1]` whose
    /// subtree augmentation admits `target`; `check` confirms against the
    /// live runs (edge leaves are window-clipped, so the augmentation
    /// alone is not enough there).
    #[allow(clippy::too_many_arguments)]
    fn first_leaf_with(
        &self,
        node: usize,
        node_lo: usize,
        node_len: usize,
        l0: usize,
        l1: usize,
        target: &Value,
        want_max: bool,
        check: &mut dyn FnMut(usize) -> Option<Timestamp>,
        found: &mut Option<Timestamp>,
    ) {
        if found.is_some() || node_lo > l1 || node_lo + node_len <= l0 {
            return;
        }
        let Some(payload) = self.nodes.get(node) else {
            return;
        };
        let admits = if want_max {
            !payload.max_value.is_null() && payload.max_value.total_cmp(target).is_ge()
        } else {
            !payload.min_value.is_null() && payload.min_value.total_cmp(target).is_le()
        };
        if !admits {
            return;
        }
        if node_len == 1 {
            if let Some(at) = check(node_lo) {
                *found = Some(at);
            }
            return;
        }
        let half = node_len / 2;
        self.first_leaf_with(
            2 * node,
            node_lo,
            half,
            l0,
            l1,
            target,
            want_max,
            check,
            found,
        );
        self.first_leaf_with(
            2 * node + 1,
            node_lo + half,
            half,
            l0,
            l1,
            target,
            want_max,
            check,
            found,
        );
    }

    /// The branch-and-bound upper bound on any probe of `window`, from
    /// the root augmentation alone — never below the true probe value.
    fn root_bound(&self, window: Interval) -> RankKey {
        let root = self.root();
        match self.mode {
            IndexMode::Integral => {
                let m = root.max_value.as_i64().unwrap_or(0).max(0);
                let dur = i128::from(window.duration().max(0));
                RankKey::Int(i128::from(m).saturating_mul(dur))
            }
            IndexMode::Extremes => RankKey::Val(root.max_value.clone()),
        }
    }

    /// The rank of an exact probe result under this index's mode.
    fn rank_of(&self, aggregate: &WindowAggregate) -> RankKey {
        match self.mode {
            IndexMode::Integral => RankKey::Int(aggregate.integral),
            IndexMode::Extremes => RankKey::Val(aggregate.max.clone()),
        }
    }
}

/// One group's index and its live run source, for [`top_k`].
pub struct GroupProbe<'a> {
    pub index: &'a WindowIndex,
    pub source: &'a dyn RunSource,
}

impl std::fmt::Debug for GroupProbe<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupProbe")
            .field("leaves", &self.index.leaf_count())
            .finish()
    }
}

/// What [`top_k`] reports: the winning groups (caller indices) with their
/// exact window aggregates, best first, plus how many groups were
/// actually probed — the pruning metric.
#[derive(Clone, Debug)]
pub struct TopKOutcome {
    /// `(group index, exact window aggregate)`, ranked best-first.
    pub ranked: Vec<(usize, WindowAggregate)>,
    /// Groups whose index was actually probed. Pruned groups (root bound
    /// below the k-th best exact value) never pay their `O(log n)`.
    pub probes: u64,
}

/// Jestes-style top-k across a grouped relation: one window index per
/// group, one shared bound heap. Every group enters the heap with its
/// free root-augmentation bound; groups are probed (an `O(log n)` exact
/// refine) only while their bound can still beat the k-th best exact
/// value, so cold groups are pruned without touching their tree.
///
/// Ranking is by the windowed integral for [`IndexMode::Integral`]
/// indexes and by the window maximum for [`IndexMode::Extremes`]; ties
/// break toward the lower group index, deterministically.
pub fn top_k(groups: &[GroupProbe<'_>], window: Interval, k: usize) -> TopKOutcome {
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::with_capacity(groups.len());
    for (g, group) in groups.iter().enumerate() {
        heap.push(HeapEntry {
            key: group.index.root_bound(window),
            exact: None,
            group: g,
        });
    }
    let mut ranked = Vec::with_capacity(k.min(groups.len()));
    let mut probes = 0u64;
    while ranked.len() < k {
        let Some(top) = heap.pop() else {
            break;
        };
        match top.exact {
            Some(aggregate) => ranked.push((top.group, aggregate)),
            None => {
                let Some(group) = groups.get(top.group) else {
                    continue;
                };
                let aggregate = group.index.probe(window, group.source);
                probes += 1;
                heap.push(HeapEntry {
                    key: group.index.rank_of(&aggregate),
                    exact: Some(aggregate),
                    group: top.group,
                });
            }
        }
    }
    TopKOutcome { ranked, probes }
}

/// Total-order rank for the bound heap: integral (`i128`) or window
/// maximum ([`Value::total_cmp`], where `Null` sorts first/lowest).
#[derive(Clone, Debug)]
enum RankKey {
    Int(i128),
    Val(Value),
}

impl RankKey {
    fn order(&self, other: &RankKey) -> Ordering {
        match (self, other) {
            (RankKey::Int(a), RankKey::Int(b)) => a.cmp(b),
            (RankKey::Val(a), RankKey::Val(b)) => a.total_cmp(b),
            // Mixed-mode heaps never arise (one ranking aggregate per
            // query); order arbitrarily but totally for safety.
            (RankKey::Int(_), RankKey::Val(_)) => Ordering::Less,
            (RankKey::Val(_), RankKey::Int(_)) => Ordering::Greater,
        }
    }
}

/// Max-heap entry: higher rank pops first; at equal rank, exact results
/// pop before bounds (so an exact value is emitted rather than probing a
/// group whose bound merely ties it), then lower group index first.
struct HeapEntry {
    key: RankKey,
    exact: Option<WindowAggregate>,
    group: usize,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key
            .order(&other.key)
            .then_with(|| self.exact.is_some().cmp(&other.exact.is_some()))
            .then_with(|| other.group.cmp(&self.group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_core::SeriesEntry;

    /// A deterministic xorshift generator (no external dependencies).
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n.max(1)
        }
    }

    fn series_of(values: &[(i64, i64, Option<i64>)]) -> Series<Value> {
        Series::from_entries(
            values
                .iter()
                .map(|&(s, e, v)| {
                    SeriesEntry::new(Interval::at(s, e), v.map_or(Value::Null, Value::Int))
                })
                .collect(),
        )
    }

    fn random_series(rng: &mut Rng, runs: usize) -> Series<Value> {
        let mut entries = Vec::with_capacity(runs);
        let mut t = 0i64;
        for _ in 0..runs {
            let len = 1 + rng.below(9) as i64;
            let v = match rng.below(10) {
                0 => Value::Null,
                _ => Value::Int(rng.below(2001) as i64 - 1000),
            };
            entries.push(SeriesEntry::new(Interval::at(t, t + len - 1), v));
            t += len;
        }
        Series::from_entries(entries)
    }

    #[test]
    fn probe_matches_scan_on_random_windows() {
        let mut rng = Rng(0x5eed);
        for runs in [1usize, 2, 3, 7, 64, 257, 1000] {
            let series = random_series(&mut rng, runs);
            let extent = series.extent().unwrap();
            let index = WindowIndex::build(IndexMode::Integral, &series);
            for _ in 0..200 {
                let a = rng.below(extent.duration() as u64) as i64;
                let b = rng.below(extent.duration() as u64) as i64;
                let window = Interval::at(a.min(b), a.max(b));
                assert_eq!(
                    index.probe(window, &series),
                    scan_window(&series, window),
                    "runs {runs} window {window}"
                );
            }
            // Degenerate and boundary windows.
            assert_eq!(
                index.probe(extent, &series),
                scan_window(&series, extent),
                "full extent"
            );
            let outside = Interval::at(extent.end().get() + 10, extent.end().get() + 20);
            assert_eq!(index.probe(outside, &series), WindowAggregate::empty());
        }
    }

    #[test]
    fn refresh_tracks_changing_runs() {
        let mut rng = Rng(0xfeed);
        let series = random_series(&mut rng, 300);
        let mut index = WindowIndex::build(IndexMode::Integral, &series);
        let extent = series.extent().unwrap();
        // Simulate DML: splice new values over random windows of a
        // mutable copy of the series, refreshing only the dirty interval.
        let mut entries: Vec<SeriesEntry<Value>> = series.entries().to_vec();
        for round in 0..50 {
            let a = rng.below(extent.duration() as u64) as i64;
            let b = (a + 1 + rng.below(40) as i64).min(extent.end().get());
            let dirty = Interval::at(a.min(b), b.max(a.min(b)));
            let v = Value::Int(rng.below(100) as i64);
            // Split any run straddling the dirty edges, then overwrite.
            let mut next: Vec<SeriesEntry<Value>> = Vec::new();
            for entry in &entries {
                match entry.interval.intersect(&dirty) {
                    None => next.push(entry.clone()),
                    Some(hit) => {
                        if entry.interval.start() < hit.start() {
                            next.push(SeriesEntry::new(
                                Interval::new(entry.interval.start(), hit.start().prev()).unwrap(),
                                entry.value.clone(),
                            ));
                        }
                        next.push(SeriesEntry::new(hit, v.clone()));
                        if entry.interval.end() > hit.end() {
                            next.push(SeriesEntry::new(
                                Interval::new(hit.end().next(), entry.interval.end()).unwrap(),
                                entry.value.clone(),
                            ));
                        }
                    }
                }
            }
            entries = next;
            let current = Series::from_entries(entries.clone());
            index.refresh(dirty, &current);
            // Probes agree with the oracle and with a from-scratch build.
            let fresh = WindowIndex::build(IndexMode::Integral, &current);
            for _ in 0..20 {
                let x = rng.below(extent.duration() as u64) as i64;
                let y = rng.below(extent.duration() as u64) as i64;
                let window = Interval::at(x.min(y), x.max(y));
                let probed = index.probe(window, &current);
                assert_eq!(probed, scan_window(&current, window), "round {round}");
                assert_eq!(probed, fresh.probe(window, &current), "round {round}");
            }
        }
    }

    #[test]
    fn extremes_mode_answers_min_max() {
        let series = series_of(&[
            (0, 9, Some(5)),
            (10, 19, None),
            (20, 29, Some(-3)),
            (30, 39, Some(8)),
        ]);
        let index = WindowIndex::build(IndexMode::Extremes, &series);
        let probe = index.probe(Interval::at(5, 25), &series);
        assert_eq!(probe.min, Value::Int(-3));
        assert_eq!(probe.max, Value::Int(5));
        let probe = index.probe(Interval::at(10, 19), &series);
        assert_eq!(probe.min, Value::Null);
        assert_eq!(probe.max, Value::Null);
    }

    #[test]
    fn extreme_instant_finds_the_earliest_peak() {
        let series = series_of(&[
            (0, 9, Some(2)),
            (10, 19, Some(7)),
            (20, 29, Some(1)),
            (30, 39, Some(7)),
            (40, 49, Some(4)),
        ]);
        let index = WindowIndex::build(IndexMode::Extremes, &series);
        assert_eq!(
            index.extreme_instant(Interval::at(0, 49), true, &series),
            Some((Timestamp::new(10), Value::Int(7)))
        );
        // Window excludes the first peak: the second is found, clipped.
        assert_eq!(
            index.extreme_instant(Interval::at(25, 49), true, &series),
            Some((Timestamp::new(30), Value::Int(7)))
        );
        // Mid-run window start clips the reported instant.
        assert_eq!(
            index.extreme_instant(Interval::at(15, 22), true, &series),
            Some((Timestamp::new(15), Value::Int(7)))
        );
        assert_eq!(
            index.extreme_instant(Interval::at(0, 49), false, &series),
            Some((Timestamp::new(20), Value::Int(1)))
        );
        // All-null window.
        let nulls = series_of(&[(0, 9, None)]);
        let idx = WindowIndex::build(IndexMode::Extremes, &nulls);
        assert_eq!(idx.extreme_instant(Interval::at(0, 9), true, &nulls), None);
    }

    #[test]
    fn extreme_instant_randomized_against_oracle() {
        let mut rng = Rng(0xabcd);
        let series = random_series(&mut rng, 400);
        let extent = series.extent().unwrap();
        let index = WindowIndex::build(IndexMode::Extremes, &series);
        for _ in 0..100 {
            let a = rng.below(extent.duration() as u64) as i64;
            let b = rng.below(extent.duration() as u64) as i64;
            let window = Interval::at(a.min(b), a.max(b));
            for want_max in [true, false] {
                // Oracle: linear scan for the extreme and its first instant.
                let oracle_aggregate = scan_window(&series, window);
                let target = if want_max {
                    oracle_aggregate.max.clone()
                } else {
                    oracle_aggregate.min.clone()
                };
                let mut expect: Option<(Timestamp, Value)> = None;
                if !target.is_null() {
                    series.for_each_run_in(window, &mut |clipped, value| {
                        if expect.is_none() && value.total_cmp(&target).is_eq() {
                            expect = Some((clipped.start(), value.clone()));
                        }
                    });
                }
                assert_eq!(
                    index.extreme_instant(window, want_max, &series),
                    expect,
                    "window {window} want_max {want_max}"
                );
            }
        }
    }

    #[test]
    fn top_k_agrees_with_exhaustive_ranking_and_prunes() {
        let mut rng = Rng(0xc0de);
        let groups: Vec<Series<Value>> = (0..64).map(|_| random_series(&mut rng, 200)).collect();
        let indexes: Vec<WindowIndex> = groups
            .iter()
            .map(|s| WindowIndex::build(IndexMode::Integral, s))
            .collect();
        let probes: Vec<GroupProbe> = indexes
            .iter()
            .zip(&groups)
            .map(|(index, source)| GroupProbe {
                index,
                source: source as &dyn RunSource,
            })
            .collect();
        for window in [
            Interval::at(100, 200),
            Interval::at(0, 1_000),
            Interval::at(500, 505),
        ] {
            for k in [1usize, 5, 10] {
                let outcome = top_k(&probes, window, k);
                // Exhaustive oracle: probe every group, sort by integral
                // descending with index tiebreak.
                let mut all: Vec<(usize, i128)> = groups
                    .iter()
                    .enumerate()
                    .map(|(g, s)| (g, scan_window(s, window).integral))
                    .collect();
                all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let expect: Vec<(usize, i128)> = all.into_iter().take(k).collect();
                let got: Vec<(usize, i128)> = outcome
                    .ranked
                    .iter()
                    .map(|(g, wa)| (*g, wa.integral))
                    .collect();
                assert_eq!(got, expect, "window {window} k {k}");
                assert!(outcome.probes <= groups.len() as u64);
            }
        }
        // A narrow window with k = 1 must prune most groups: bounds are
        // value·duration, and only contenders get probed.
        let outcome = top_k(&probes, Interval::at(500, 505), 1);
        assert!(
            outcome.probes < groups.len() as u64,
            "expected pruning, probed {} of {}",
            outcome.probes,
            groups.len()
        );
    }

    #[test]
    fn top_k_extremes_ranks_by_window_max() {
        let groups = [
            series_of(&[(0, 99, Some(3))]),
            series_of(&[(0, 49, Some(9)), (50, 99, Some(1))]),
            series_of(&[(0, 99, None)]),
        ];
        let indexes: Vec<WindowIndex> = groups
            .iter()
            .map(|s| WindowIndex::build(IndexMode::Extremes, s))
            .collect();
        let probes: Vec<GroupProbe> = indexes
            .iter()
            .zip(&groups)
            .map(|(index, source)| GroupProbe {
                index,
                source: source as &dyn RunSource,
            })
            .collect();
        // Over [60, 99] group 0 has max 3, group 1 max 1, group 2 none.
        let outcome = top_k(&probes, Interval::at(60, 99), 2);
        let got: Vec<(usize, Value)> = outcome
            .ranked
            .iter()
            .map(|(g, wa)| (*g, wa.max.clone()))
            .collect();
        assert_eq!(got, vec![(0, Value::Int(3)), (1, Value::Int(1))],);
    }

    #[test]
    fn from_leaves_roundtrips_and_rejects_corruption() {
        let mut rng = Rng(0xd15c);
        let series = random_series(&mut rng, 137);
        let index = WindowIndex::build(IndexMode::Integral, &series);
        let rebuilt = WindowIndex::from_leaves(
            index.mode(),
            index.leaf_starts().to_vec(),
            index.extent_end(),
            index.leaf_nodes().cloned().collect(),
        )
        .unwrap();
        assert_eq!(rebuilt, index);
        // Mismatched counts and unsorted cuts fail loudly.
        assert!(WindowIndex::from_leaves(
            IndexMode::Integral,
            vec![Timestamp::new(0)],
            Timestamp::new(9),
            vec![]
        )
        .is_err());
        assert!(WindowIndex::from_leaves(
            IndexMode::Integral,
            vec![Timestamp::new(5), Timestamp::new(5)],
            Timestamp::new(9),
            vec![IndexNode::neutral(), IndexNode::neutral()]
        )
        .is_err());
    }

    #[test]
    fn saturating_arithmetic_never_panics() {
        let series = series_of(&[(0, 0, Some(i64::MAX)), (1, 1, Some(i64::MAX))]);
        let index = WindowIndex::build(IndexMode::Integral, &series);
        let probe = index.probe(Interval::TIMELINE, &series);
        assert_eq!(probe.integral, 2 * i128::from(i64::MAX));
        assert_eq!(probe.integral_value(), Value::Int(i64::MAX));
        // A forever run saturates cleanly.
        let forever = Series::from_entries(vec![SeriesEntry::new(
            Interval::TIMELINE,
            Value::Int(i64::MAX),
        )]);
        let idx = WindowIndex::build(IndexMode::Integral, &forever);
        let p = idx.probe(Interval::TIMELINE, &forever);
        assert!(p.integral > 0);
        assert_eq!(p, scan_window(&forever, Interval::TIMELINE));
    }

    #[test]
    fn empty_series_probes_empty() {
        let series = Series::new();
        let index = WindowIndex::build(IndexMode::Integral, &series);
        assert_eq!(
            index.probe(Interval::at(0, 100), &series),
            WindowAggregate::empty()
        );
        assert_eq!(index.leaf_count(), 1);
    }
}
