//! Structural invariant validators, compiled in under the `validate`
//! cargo feature.
//!
//! Every check here is a *debug aid* in the spirit of `debug_assert!`:
//! with the feature off nothing is compiled and the algorithms run at full
//! speed; with it on, each algorithm re-derives the invariants its
//! correctness argument rests on and panics with a descriptive message the
//! moment one fails. The checks are wired in three places:
//!
//! 1. **Output coverage** — [`assert_series_tiles`] runs on the result of
//!    [`crate::run`] / [`crate::run_with_stats`] for *every*
//!    [`crate::TemporalAggregator`], via the new
//!    [`crate::TemporalAggregator::domain`] hook: the emitted constant
//!    intervals must exactly tile the configured domain — sorted, gap-free
//!    and overlap-free (Section 2 defines the result as a partition of the
//!    time-line).
//! 2. **Tree shape** — [`assert_tree_shape`] walks the arena after every
//!    insertion (`tree/ops.rs`): splits lie strictly inside node extents,
//!    children tile their parent, no node is reachable twice, and the
//!    reachable count equals the arena's live count (no leaks, no cycles).
//!    [`assert_exact_cover`] additionally proves each insertion recorded
//!    the tuple on a set of nodes whose extents tile the tuple's interval
//!    exactly — the path-sum conservation the covering-insert optimisation
//!    (Section 5.1) depends on.
//! 3. **Streaming** — the k-ordered tree checks frontier monotonicity and
//!    that `emit_ready` batches tile `[previously-drained, frontier)`
//!    contiguously, so no constant interval is ever emitted twice or
//!    resurrected after garbage collection (Section 5.3).
//!
//! `agg_tree.rs` and `balanced.rs` go one step further and replay their
//! input through the O(n²) [`crate::oracle::oracle`] at `finish`, comparing
//! the full series (capped at [`ORACLE_CAP`] tuples to keep stress tests
//! tractable).

use crate::tree::{Arena, NodeId};
use std::collections::HashSet;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Series, SeriesEntry, Timestamp};

/// Largest input size for which `finish` replays the O(n²) oracle.
pub const ORACLE_CAP: usize = 2_048;

/// Largest arena (live nodes) for which every insertion re-walks the whole
/// tree shape. Beyond this the per-insert walk would turn the stress tests
/// quadratic; the exact-cover check (O(depth) per insert) still runs.
pub const SHAPE_CAP: usize = 4_096;

/// Panic unless `actual` equals an O(n²) linear replay of `recorded` — one
/// singleton state per pushed tuple, merged per constant interval. This is
/// path-sum conservation for the whole computation: the tree's path-merge
/// order must agree with a flat left-to-right merge, which the commutative
/// monoid laws of [`Aggregate`] promise.
///
/// Equality is exact, which is safe for the integral aggregates the test
/// suite exercises; floating-point states built from integer-valued data
/// also compare exactly because every partial sum is representable.
pub(crate) fn assert_matches_replay<A: Aggregate>(
    agg: &A,
    domain: Interval,
    recorded: &[(Interval, A::State)],
    actual: &Series<A::Output>,
    algorithm: &str,
) {
    let mut boundaries: Vec<Timestamp> = Vec::with_capacity(2 * recorded.len() + 1);
    boundaries.push(domain.start());
    for (interval, _) in recorded {
        if interval.start() > domain.start() {
            boundaries.push(interval.start());
        }
        if interval.end() < domain.end() {
            boundaries.push(interval.end().next());
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();
    assert!(
        actual.len() == boundaries.len(),
        "validate[{algorithm}]: result has {} constant intervals but the replay \
         expects {}",
        actual.len(),
        boundaries.len()
    );
    for (i, entry) in actual.entries().iter().enumerate() {
        // lint: allow(indexing): i < boundaries.len() — the lengths are asserted equal above
        let start = boundaries[i];
        let end = boundaries.get(i + 1).map_or(domain.end(), |b| b.prev());
        assert!(
            entry.interval.start() == start && entry.interval.end() == end,
            "validate[{algorithm}]: constant interval {} at position {i} does not \
             match the replay's [{start}, {end}]",
            entry.interval
        );
        let mut state = agg.empty_state();
        for (interval, singleton) in recorded {
            if interval.overlaps(&entry.interval) {
                agg.merge(&mut state, singleton);
            }
        }
        let expected = agg.finish(&state);
        assert!(
            entry.value == expected,
            "validate[{algorithm}]: value {:?} over {} disagrees with the replay's \
             {expected:?}",
            entry.value,
            entry.interval
        );
    }
}

/// Panic unless `entries` exactly tile `expected`: the first entry starts
/// at its start, consecutive entries meet, and the last ends at its end.
///
/// An empty entry list is rejected — even an empty relation produces one
/// all-empty constant interval spanning the domain.
pub fn assert_series_tiles<T>(entries: &[SeriesEntry<T>], expected: Interval, algorithm: &str) {
    assert!(
        !entries.is_empty(),
        "validate[{algorithm}]: empty result series; expected coverage of {expected}"
    );
    let first = entries[0].interval;
    assert!(
        first.start() == expected.start(),
        "validate[{algorithm}]: first constant interval {first} does not start at {expected}"
    );
    for (i, w) in entries.windows(2).enumerate() {
        let [a, b] = w else { continue };
        assert!(
            a.interval.meets(&b.interval),
            "validate[{algorithm}]: constant intervals {} and {} (positions {i}, {}) \
             do not meet — the result has a gap or an overlap",
            a.interval,
            b.interval,
            i + 1
        );
    }
    let last = entries[entries.len() - 1].interval;
    assert!(
        last.end() == expected.end(),
        "validate[{algorithm}]: last constant interval {last} does not end at {expected}"
    );
}

/// Panic unless the (unordered) `covered` extents tile `tuple` exactly:
/// sorted by start they must be pairwise disjoint, consecutive ones must
/// meet, and the union must equal `tuple`. This is path-sum conservation
/// for a single covering insertion: the tuple contributes to every instant
/// of its interval exactly once.
pub(crate) fn assert_exact_cover(tuple: Interval, covered: &mut Vec<Interval>, context: &str) {
    covered.sort_unstable_by_key(Interval::start);
    assert!(
        !covered.is_empty(),
        "validate[{context}]: insertion of {tuple} recorded the tuple on no node"
    );
    assert!(
        covered[0].start() == tuple.start(),
        "validate[{context}]: covering nodes for {tuple} start at {} instead",
        covered[0]
    );
    for w in covered.windows(2) {
        let [a, b] = w else { continue };
        assert!(
            a.meets(b),
            "validate[{context}]: covering nodes {} and {} for {tuple} leave a gap \
             or double-count",
            a,
            b
        );
    }
    let last = covered[covered.len() - 1];
    assert!(
        last.end() == tuple.end(),
        "validate[{context}]: covering nodes for {tuple} end at {last} instead"
    );
}

/// Panic unless the subtree rooted at `root` (covering `range`) is a
/// well-formed aggregation tree: every internal node's split lies strictly
/// inside its extent (so both children cover non-empty halves), children
/// tile their parent, no node is visited twice (no sharing, no cycles),
/// and every live arena node is reachable (no leaks).
pub(crate) fn assert_tree_shape<S>(arena: &Arena<S>, root: NodeId, range: Interval, context: &str) {
    let mut seen: HashSet<NodeId> = HashSet::with_capacity(arena.live());
    let mut stack: Vec<(NodeId, Interval)> = vec![(root, range)];
    while let Some((id, extent)) = stack.pop() {
        assert!(
            seen.insert(id),
            "validate[{context}]: node {id:?} reachable twice — the tree has a cycle \
             or shares a subtree"
        );
        let node = arena.get(id);
        if node.is_leaf() {
            continue;
        }
        assert!(
            extent.start() <= node.split && node.split < extent.end(),
            "validate[{context}]: split {} of node {id:?} lies outside its extent {extent}",
            node.split
        );
        // Children tile the parent by construction of the two ranges; what
        // must be checked recursively is each child's own split ordering.
        let left = Interval::new(extent.start(), node.split);
        let right = Interval::new(node.split.next(), extent.end());
        match (left, right) {
            (Ok(left), Ok(right)) => {
                stack.push((node.right, right));
                stack.push((node.left, left));
            }
            // lint: allow(no-unwrap): validators report broken invariants by panicking, like debug_assert!
            _ => panic!(
                "validate[{context}]: node {id:?} extent {extent} with split {} does not \
                 produce two well-formed child extents",
                node.split
            ),
        }
    }
    assert!(
        seen.len() == arena.live(),
        "validate[{context}]: {} nodes reachable from the root but {} live in the arena \
         — leaked or orphaned nodes",
        seen.len(),
        arena.live()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_core::Timestamp;

    fn entry(lo: i64, hi: i64) -> SeriesEntry<u64> {
        SeriesEntry::new(Interval::at(lo, hi), 0)
    }

    #[test]
    fn tiling_accepts_exact_partition() {
        let entries = [entry(0, 4), entry(5, 9), entry(10, 20)];
        assert_series_tiles(&entries, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "do not meet")]
    fn tiling_rejects_gap() {
        let entries = [entry(0, 4), entry(6, 20)];
        assert_series_tiles(&entries, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "does not start")]
    fn tiling_rejects_late_start() {
        let entries = [entry(1, 20)];
        assert_series_tiles(&entries, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "does not end")]
    fn tiling_rejects_early_end() {
        let entries = [entry(0, 19)];
        assert_series_tiles(&entries, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "empty result series")]
    fn tiling_rejects_empty() {
        assert_series_tiles(&[] as &[SeriesEntry<u64>], Interval::at(0, 20), "test");
    }

    #[test]
    fn exact_cover_accepts_unordered_tiles() {
        let mut covered = vec![Interval::at(5, 9), Interval::at(0, 4)];
        assert_exact_cover(Interval::at(0, 9), &mut covered, "test");
    }

    #[test]
    #[should_panic(expected = "leave a gap")]
    fn exact_cover_rejects_overlap() {
        let mut covered = vec![Interval::at(0, 5), Interval::at(5, 9)];
        assert_exact_cover(Interval::at(0, 9), &mut covered, "test");
    }

    #[test]
    fn tree_shape_accepts_real_tree() {
        let mut arena: Arena<u64> = Arena::new();
        let left = arena.alloc_leaf(0);
        let right = arena.alloc_leaf(0);
        let root = arena.alloc_leaf(0);
        let node = arena.get_mut(root);
        node.split = Timestamp(9);
        node.left = left;
        node.right = right;
        assert_tree_shape(&arena, root, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "outside its extent")]
    fn tree_shape_rejects_out_of_range_split() {
        let mut arena: Arena<u64> = Arena::new();
        let left = arena.alloc_leaf(0);
        let right = arena.alloc_leaf(0);
        let root = arena.alloc_leaf(0);
        let node = arena.get_mut(root);
        node.split = Timestamp(30);
        node.left = left;
        node.right = right;
        assert_tree_shape(&arena, root, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "live in the arena")]
    fn tree_shape_rejects_leaked_nodes() {
        let mut arena: Arena<u64> = Arena::new();
        let root = arena.alloc_leaf(0);
        let _orphan = arena.alloc_leaf(0);
        assert_tree_shape(&arena, root, Interval::at(0, 20), "test");
    }

    #[test]
    #[should_panic(expected = "reachable twice")]
    fn tree_shape_rejects_shared_subtree() {
        let mut arena: Arena<u64> = Arena::new();
        let shared = arena.alloc_leaf(0);
        let root = arena.alloc_leaf(0);
        let node = arena.get_mut(root);
        node.split = Timestamp(9);
        node.left = shared;
        node.right = shared;
        assert_tree_shape(&arena, root, Interval::at(0, 20), "test");
    }
}
