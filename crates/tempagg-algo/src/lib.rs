//! # tempagg-algo
//!
//! The temporal aggregation algorithms of *Computing Temporal Aggregates*
//! (Kline & Snodgrass, ICDE 1995), plus the baselines and extensions the
//! paper discusses:
//!
//! | Algorithm | Paper section | Best for |
//! |---|---|---|
//! | [`LinkedListAggregate`] | §4.2 | few constant intervals in the result |
//! | [`AggregationTree`] | §5.1 | unordered relations, memory plentiful |
//! | [`KOrderedAggregationTree`] | §5.3 | sorted / k-ordered / retroactively bounded relations |
//! | [`SweepAggregator`] | — (Piatov/Colley, see PAPERS.md) | large unsorted batches, invertible aggregates |
//! | [`TwoScanAggregate`] | §4.1 | baseline (Tuma's prior implementation) |
//! | [`BalancedAggregationTree`] | §7 (future work) | order-insensitive, buffered |
//! | [`PagedAggregationTree`] | §5.1 (limited memory) | memory-bounded, region-at-a-time |
//! | [`SpanGrouper`] | §2, §7 | grouping by span instead of instant |
//! | [`GroupedAggregate`] | §2 | GROUP BY attribute × time |
//!
//! All algorithms implement [`TemporalAggregator`] and produce a
//! [`tempagg_core::Series`] of constant intervals. The [`oracle`] module
//! holds an O(n²) executable specification used to validate them, and the
//! `validate` cargo feature compiles in structural invariant checkers (see
//! the `validate` module) that every algorithm runs as it executes.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod agg_tree;
mod balanced;
mod group_by;
mod join;
mod ktree;
mod linked_list;
pub mod memory;
pub mod moving;
pub mod oracle;
mod paged;
pub mod parallel;
pub mod scan;
pub mod snapshot;
mod span_group;
mod sweep;
mod sweep_v1;
mod traits;
mod tree;
mod two_scan;
#[cfg(feature = "validate")]
pub mod validate;
pub mod windex;

pub use agg_tree::AggregationTree;
pub use balanced::BalancedAggregationTree;
pub use group_by::GroupedAggregate;
pub use join::{JoinPair, JoinPredicate, SweepJoinOperator};
pub use ktree::KOrderedAggregationTree;
pub use linked_list::LinkedListAggregate;
pub use memory::MemoryStats;
pub use paged::PagedAggregationTree;
pub use parallel::{scoped_map, PartitionReport, PartitionedAggregator};
pub use scan::{feed, feed_streaming, page_seams, run_paged_partitioned};
pub use span_group::SpanGrouper;
pub use sweep::SweepAggregator;
pub use sweep_v1::SweepAggregatorV1;
pub use traits::{run, run_with_stats, TemporalAggregator};
pub use two_scan::TwoScanAggregate;
pub use windex::{
    scan_window, top_k, GroupProbe, IndexMode, IndexNode, RunSource, TopKOutcome, WindowAggregate,
    WindowIndex,
};
