//! Temporal grouping *by span* — the paper's second kind of temporal
//! partitioning (Section 2: "by a span, a calendar-defined length of time,
//! such as a year") and a future-work item (Section 7).
//!
//! The time-line inside a bounded window is cut into fixed-length spans and
//! the aggregate is computed per span over every tuple overlapping it.
//! Because the number of buckets is fixed up front (and usually far smaller
//! than the number of constant intervals), a flat bucket array suffices —
//! the paper predicts exactly this: "If the number of spans is much smaller
//! than the number of constant intervals, then fewer 'buckets' need to be
//! maintained."

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError};

/// Aggregation grouped by fixed-length spans of a bounded window.
#[derive(Clone, Debug)]
pub struct SpanGrouper<A: Aggregate> {
    agg: A,
    window: Interval,
    span: i64,
    buckets: Vec<A::State>,
    tuples: usize,
}

impl<A: Aggregate> SpanGrouper<A> {
    /// Group `window` into spans of `span_length` instants (the last span
    /// may be shorter). The window must be bounded — a span partition of
    /// `[t, ∞]` would need infinitely many buckets.
    pub fn new(agg: A, window: Interval, span_length: i64) -> Result<Self> {
        if span_length <= 0 {
            return Err(TempAggError::InvalidSpan {
                length: span_length,
            });
        }
        if window.end().is_forever() {
            return Err(TempAggError::InvalidSpan {
                length: span_length,
            });
        }
        // lint: allow(no-as-cast): the quotient is positive (bounded window, positive span) and a bucket count always fits usize
        let n = ((window.duration() + span_length - 1) / span_length) as usize;
        let buckets = (0..n).map(|_| agg.empty_state()).collect();
        Ok(SpanGrouper {
            agg,
            window,
            span: span_length,
            buckets,
            tuples: 0,
        })
    }

    /// Number of spans.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Tuples folded in so far (tuples entirely outside the window are
    /// ignored, not counted).
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first in-window insertion.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// The span interval of bucket `i`.
    fn bucket_interval(&self, i: usize) -> Interval {
        // lint: allow(no-as-cast): bucket indices are derived from an i64 span count, so they convert back losslessly
        let start = self.window.start() + (i as i64 * self.span);
        let end = (start + (self.span - 1)).min(self.window.end());
        // lint: allow(no-unwrap): every bucket starts inside the window and ends no earlier than it starts
        Interval::new(start, end).expect("bucket bounds are valid")
    }
}

impl<A: Aggregate> TemporalAggregator<A> for SpanGrouper<A> {
    fn algorithm(&self) -> &'static str {
        "span-grouping"
    }

    fn domain(&self) -> Interval {
        self.window
    }

    /// Fold a tuple into every span it overlaps. Unlike the instant-grouped
    /// algorithms, tuples need not lie inside the window: the portion
    /// outside is simply ignored (TSQL2 span grouping restricted to a
    /// window behaves the same way).
    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        let Some(clipped) = interval.intersect(&self.window) else {
            return Ok(());
        };
        // lint: allow(no-as-cast): clipped lies inside the bounded window, so both quotients are non-negative bucket indices
        let lo = (clipped.start().distance_from(self.window.start()) / self.span) as usize;
        // lint: allow(no-as-cast): same bounded-window argument as `lo`
        let hi = (clipped.end().distance_from(self.window.start()) / self.span) as usize;
        for bucket in &mut self.buckets[lo..=hi] {
            self.agg.insert(bucket, &value);
        }
        self.tuples += 1;
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        for (i, bucket) in self.buckets.iter().enumerate() {
            sink.accept(self.bucket_interval(i), self.agg.finish(bucket));
        }
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.buckets.len(),
            peak_nodes: self.buckets.len(),
            node_model_bytes: MODEL_POINTER_BYTES + self.agg.state_model_bytes(),
            node_actual_bytes: std::mem::size_of::<A::State>() + std::mem::size_of::<Interval>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Count, Sum};

    #[test]
    fn spans_partition_the_window() {
        let g = SpanGrouper::new(Count, Interval::at(0, 99), 25).unwrap();
        assert_eq!(g.bucket_count(), 4);
        let s = g.finish();
        let ivs: Vec<Interval> = s.iter().map(|e| e.interval).collect();
        assert_eq!(
            ivs,
            vec![
                Interval::at(0, 24),
                Interval::at(25, 49),
                Interval::at(50, 74),
                Interval::at(75, 99),
            ]
        );
    }

    #[test]
    fn ragged_final_span() {
        let g = SpanGrouper::new(Count, Interval::at(0, 9), 4).unwrap();
        assert_eq!(g.bucket_count(), 3);
        let s = g.finish();
        assert_eq!(s.entries()[2].interval, Interval::at(8, 9));
    }

    #[test]
    fn tuples_count_in_every_overlapped_span() {
        let mut g = SpanGrouper::new(Count, Interval::at(0, 99), 25).unwrap();
        g.push(Interval::at(10, 60), ()).unwrap(); // spans 0, 1, 2
        g.push(Interval::at(0, 0), ()).unwrap(); // span 0
        g.push(Interval::at(99, 99), ()).unwrap(); // span 3
        let s = g.finish();
        let counts: Vec<u64> = s.iter().map(|e| e.value).collect();
        assert_eq!(counts, vec![2, 1, 1, 1]);
    }

    #[test]
    fn out_of_window_tuples_are_clipped_or_ignored() {
        let mut g = SpanGrouper::new(Count, Interval::at(100, 199), 50).unwrap();
        g.push(Interval::at(0, 99), ()).unwrap(); // entirely before
        assert!(g.is_empty());
        g.push(Interval::at(0, 120), ()).unwrap(); // clipped to [100, 120]
        assert_eq!(g.len(), 1);
        let s = g.finish();
        let counts: Vec<u64> = s.iter().map(|e| e.value).collect();
        assert_eq!(counts, vec![1, 0]);
    }

    #[test]
    fn rejects_bad_configuration() {
        assert!(SpanGrouper::new(Count, Interval::at(0, 9), 0).is_err());
        assert!(SpanGrouper::new(Count, Interval::at(0, 9), -5).is_err());
        assert!(SpanGrouper::new(Count, Interval::TIMELINE, 10).is_err());
    }

    #[test]
    fn sum_per_year_example() {
        // Salaries per "year" of 360 instants.
        let mut g = SpanGrouper::new(Sum::<i64>::new(), Interval::at(0, 1079), 360).unwrap();
        g.push(Interval::at(0, 719), 40_000).unwrap(); // years 0, 1
        g.push(Interval::at(360, 1079), 45_000).unwrap(); // years 1, 2
        let s = g.finish();
        let sums: Vec<Option<i64>> = s.iter().map(|e| e.value).collect();
        assert_eq!(sums, vec![Some(40_000), Some(85_000), Some(45_000)]);
    }

    #[test]
    fn memory_is_bucket_bound() {
        let g = SpanGrouper::new(Count, Interval::at(0, 999_999), 100_000).unwrap();
        assert_eq!(g.memory().peak_nodes, 10);
    }
}
