//! The aggregation tree (Section 5.1) — the paper's algorithm of choice for
//! *unordered* relations.
//!
//! An unbalanced binary tree over the time-line is built incrementally:
//! each tuple's start and end times split at most one constant interval
//! each, and a tuple whose interval completely covers a node records its
//! contribution at that node instead of descending to the leaves. A final
//! depth-first search accumulates the partial states along each path and
//! emits one result row per leaf (constant interval), in time order.
//!
//! The tree is intentionally *not* balanced: its shape is determined by
//! insertion order, which is why the paper finds it excellent on randomly
//! ordered relations (expected `O(n log n)`) and quadratic on sorted ones —
//! reproduced by this implementation and measured in Figures 6–8.

use crate::memory::{model_node_bytes, MemoryStats};
use crate::traits::TemporalAggregator;
use crate::tree::{ops, Arena, NodeId};
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError};

/// The aggregation tree algorithm.
///
/// # Example
///
/// Reproduce the paper's running `COUNT(Name)` query over the `Employed`
/// relation (Table 1):
///
/// ```
/// use tempagg_agg::Count;
/// use tempagg_algo::{AggregationTree, TemporalAggregator};
/// use tempagg_core::Interval;
///
/// let mut tree = AggregationTree::new(Count);
/// tree.push(Interval::from_start(18), ()).unwrap(); // Richard
/// tree.push(Interval::at(8, 20), ()).unwrap();      // Karen
/// tree.push(Interval::at(7, 12), ()).unwrap();      // Nathan
/// tree.push(Interval::at(18, 21), ()).unwrap();     // Nathan
///
/// let result = tree.finish();
/// let rows: Vec<(Interval, u64)> =
///     result.iter().map(|e| (e.interval, e.value)).collect();
/// assert_eq!(rows, vec![
///     (Interval::at(0, 6), 0),
///     (Interval::at(7, 7), 1),
///     (Interval::at(8, 12), 2),
///     (Interval::at(13, 17), 1),
///     (Interval::at(18, 20), 3),
///     (Interval::at(21, 21), 2),
///     (Interval::from_start(22), 1),
/// ]);
/// ```
#[derive(Clone, Debug)]
pub struct AggregationTree<A: Aggregate> {
    agg: A,
    arena: Arena<A::State>,
    root: NodeId,
    domain: Interval,
    tuples: usize,
    /// Every pushed interval with a singleton state of its value, replayed
    /// against the tree's output at `finish` (path-sum conservation).
    #[cfg(feature = "validate")]
    recorded: Vec<(Interval, A::State)>,
}

impl<A: Aggregate> AggregationTree<A> {
    /// A tree over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// A tree over an explicit domain; every pushed interval must lie
    /// within it. The initial tree is a single constant interval spanning
    /// the domain with an empty aggregate (Figure 3.a).
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        let mut arena = Arena::new();
        let root = arena.alloc_leaf(agg.empty_state());
        AggregationTree {
            agg,
            arena,
            root,
            domain,
            tuples: 0,
            #[cfg(feature = "validate")]
            recorded: Vec::new(),
        }
    }

    /// The configured domain.
    pub fn domain(&self) -> Interval {
        self.domain
    }

    /// Tuples inserted so far.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Number of tree nodes currently allocated (leaves + internal).
    pub fn node_count(&self) -> usize {
        self.arena.live()
    }

    /// Maximum root→leaf depth; ≈ `node_count` on the sorted-input worst
    /// case, ≈ `log₂(node_count)` on random input.
    pub fn depth(&self) -> usize {
        ops::depth(&self.arena, self.root)
    }

    /// The constant intervals currently at the leaves, in time order.
    pub fn leaf_intervals(&self) -> Vec<Interval> {
        ops::leaf_intervals(&self.arena, self.root, self.domain)
    }

    /// Multi-line rendering of the current tree (see Figure 3).
    pub fn render(&self) -> String {
        ops::render(&self.arena, self.root, self.domain)
    }
}

impl<A: Aggregate> TemporalAggregator<A> for AggregationTree<A> {
    fn algorithm(&self) -> &'static str {
        "aggregation-tree"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        ops::insert(
            &mut self.arena,
            &self.agg,
            self.root,
            self.domain,
            interval,
            &value,
        )?;
        self.tuples += 1;
        #[cfg(feature = "validate")]
        {
            let mut singleton = self.agg.empty_state();
            self.agg.insert(&mut singleton, &value);
            self.recorded.push((interval, singleton));
        }
        Ok(())
    }

    /// Batched insert: the SoA timestamp columns are scanned first so the
    /// whole batch is domain-checked (and rejected atomically) without
    /// touching the values, and the node arena is grown once for the worst
    /// case — each tuple splits at most two constant intervals, adding at
    /// most four nodes — instead of re-allocating mid-batch.
    fn push_batch(&mut self, chunk: &tempagg_core::Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        for i in 0..chunk.len() {
            let Some(interval) = chunk.interval(i) else {
                return Err(TempAggError::internal("chunk columns out of step"));
            };
            if !self.domain.covers(&interval) {
                return Err(TempAggError::OutOfDomain {
                    tuple: (interval.start(), interval.end()),
                    domain: (self.domain.start(), self.domain.end()),
                });
            }
        }
        self.arena.reserve(chunk.len().saturating_mul(4));
        #[cfg(feature = "validate")]
        self.recorded.reserve(chunk.len());
        for (interval, value) in chunk {
            ops::insert(
                &mut self.arena,
                &self.agg,
                self.root,
                self.domain,
                interval,
                value,
            )?;
            self.tuples += 1;
            #[cfg(feature = "validate")]
            {
                let mut singleton = self.agg.empty_state();
                self.agg.insert(&mut singleton, value);
                self.recorded.push((interval, singleton));
            }
        }
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        #[cfg(feature = "validate")]
        {
            // Materialize so the replay oracle can inspect the whole
            // series before anything reaches the sink.
            let series = ops::emit_series(&self.arena, &self.agg, self.root, self.domain);
            if self.recorded.len() <= crate::validate::ORACLE_CAP {
                crate::validate::assert_matches_replay(
                    &self.agg,
                    self.domain,
                    &self.recorded,
                    &series,
                    "aggregation-tree",
                );
            }
            for e in series {
                sink.accept(e.interval, e.value);
            }
        }
        #[cfg(not(feature = "validate"))]
        ops::emit(
            &self.arena,
            &self.agg,
            self.root,
            self.domain,
            self.agg.empty_state(),
            sink,
        );
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.arena.live(),
            peak_nodes: self.arena.peak_live(),
            node_model_bytes: model_node_bytes(self.agg.state_model_bytes()),
            node_actual_bytes: std::mem::size_of::<crate::tree::arena::Node<A::State>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Avg, Count, Max, Min, Sum};
    use tempagg_core::Series;

    /// The paper's `Employed` relation (Figure 1): (name, salary, valid).
    fn employed() -> Vec<(&'static str, i64, Interval)> {
        vec![
            ("Richard", 40_000, Interval::from_start(18)),
            ("Karen", 45_000, Interval::at(8, 20)),
            ("Nathan", 35_000, Interval::at(7, 12)),
            ("Nathan", 37_000, Interval::at(18, 21)),
        ]
    }

    fn count_tree() -> AggregationTree<Count> {
        let mut t = AggregationTree::new(Count);
        for (_, _, iv) in employed() {
            t.push(iv, ()).unwrap();
        }
        t
    }

    #[test]
    fn figure3_stepwise_construction() {
        let mut t = AggregationTree::new(Count);
        // 3.a: a single, empty constant interval.
        assert_eq!(t.leaf_intervals(), vec![Interval::TIMELINE]);
        assert_eq!(t.node_count(), 1);

        // 3.b: [18, ∞] — one unique timestamp, one new constant interval.
        t.push(Interval::from_start(18), ()).unwrap();
        assert_eq!(
            t.leaf_intervals(),
            vec![Interval::at(0, 17), Interval::from_start(18)]
        );

        // 3.c: [8, 20] — two unique timestamps, two new constant intervals.
        t.push(Interval::at(8, 20), ()).unwrap();
        assert_eq!(
            t.leaf_intervals(),
            vec![
                Interval::at(0, 7),
                Interval::at(8, 17),
                Interval::at(18, 20),
                Interval::from_start(21),
            ]
        );
        // "The node [8,17] has a count of 1": visible via the rendering.
        let r = t.render();
        assert!(r.contains("[8, 17] leaf state 1"), "render was:\n{r}");

        // 3.d: [7, 12] and [18, 21] — the final seven constant intervals
        // (6 unique timestamps + the initial interval).
        t.push(Interval::at(7, 12), ()).unwrap();
        t.push(Interval::at(18, 21), ()).unwrap();
        assert_eq!(
            t.leaf_intervals(),
            vec![
                Interval::at(0, 6),
                Interval::at(7, 7),
                Interval::at(8, 12),
                Interval::at(13, 17),
                Interval::at(18, 20),
                Interval::at(21, 21),
                Interval::from_start(22),
            ]
        );
        // Each unique timestamp adds two nodes: 1 + 2·6 = 13.
        assert_eq!(t.node_count(), 13);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table1_result() {
        let values: Vec<u64> = count_tree().finish().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![0, 1, 2, 1, 3, 2, 1]);
    }

    #[test]
    fn dfs_accumulates_path_values() {
        // The paper's example: in the final tree the leaf [8, 12] stores 1
        // and its ancestors contribute 0 + 0 + 1, giving 2.
        let t = count_tree();
        let s = t.finish();
        assert_eq!(s.entries()[2].interval, Interval::at(8, 12));
        assert_eq!(s.entries()[2].value, 2);
    }

    #[test]
    fn covering_insert_does_not_descend() {
        // Adding [5, 50] to the final tree updates interior node [8, 17]
        // (fully covered) without reaching its leaves.
        let mut t = count_tree();
        let before = t.node_count();
        t.push(Interval::at(5, 50), ()).unwrap();
        // [5, 50] splits [0, 6] at 5 and [21, 21]? No: 50 splits [22, ∞].
        // Exactly two new splits → four new nodes.
        assert_eq!(t.node_count(), before + 4);
        let r = t.render();
        assert!(
            r.contains("[8, 17] split 12 state 2"),
            "interior node should absorb the covering tuple:\n{r}"
        );
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut t = AggregationTree::with_domain(Count, Interval::at(0, 100));
        assert!(t.push(Interval::at(50, 101), ()).is_err());
        assert!(t.push(Interval::at(50, 100), ()).is_ok());
    }

    #[test]
    fn empty_tree_emits_single_empty_interval() {
        let t = AggregationTree::new(Count);
        let s = t.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, Interval::TIMELINE);
        assert_eq!(s.entries()[0].value, 0);
    }

    #[test]
    fn duplicate_timestamps_do_not_add_nodes() {
        let mut t = AggregationTree::new(Count);
        t.push(Interval::at(10, 20), ()).unwrap();
        let n = t.node_count();
        t.push(Interval::at(10, 20), ()).unwrap();
        assert_eq!(
            t.node_count(),
            n,
            "identical interval reuses existing splits"
        );
        let s = t.finish();
        assert_eq!(s.entries()[1].interval, Interval::at(10, 20));
        assert_eq!(s.entries()[1].value, 2);
    }

    #[test]
    fn sorted_input_linearizes_the_tree() {
        let mut t = AggregationTree::new(Count);
        for i in 0..100 {
            let s = i * 10;
            t.push(Interval::at(s, s + 5), ()).unwrap();
        }
        // Worst case: depth grows with n rather than log n.
        assert!(t.depth() > 100, "depth = {}", t.depth());
    }

    #[test]
    fn sum_over_employed() {
        let mut t = AggregationTree::new(Sum::<i64>::new());
        for (_, salary, iv) in employed() {
            t.push(iv, salary).unwrap();
        }
        let s = t.finish();
        let values: Vec<Option<i64>> = s.iter().map(|e| e.value).collect();
        assert_eq!(
            values,
            vec![
                None,
                Some(35_000),
                Some(80_000),
                Some(45_000),
                Some(122_000),
                Some(77_000),
                Some(40_000),
            ]
        );
    }

    #[test]
    fn min_max_avg_over_employed() {
        let mut min_t = AggregationTree::new(Min::<i64>::new());
        let mut max_t = AggregationTree::new(Max::<i64>::new());
        let mut avg_t = AggregationTree::new(Avg::<i64>::new());
        for (_, salary, iv) in employed() {
            min_t.push(iv, salary).unwrap();
            max_t.push(iv, salary).unwrap();
            avg_t.push(iv, salary).unwrap();
        }
        let at = |s: &Series<Option<i64>>, i: usize| s.entries()[i].value;
        let min_s = min_t.finish();
        let max_s = max_t.finish();
        // Over [18, 20]: Richard 40K, Karen 45K, Nathan 37K.
        assert_eq!(at(&min_s, 4), Some(37_000));
        assert_eq!(at(&max_s, 4), Some(45_000));
        let avg_s = avg_t.finish();
        let avg = avg_s.entries()[4].value.unwrap();
        assert!((avg - (40_000.0 + 45_000.0 + 37_000.0) / 3.0).abs() < 1e-9);
        // Empty leading interval.
        assert_eq!(at(&min_s, 0), None);
    }

    #[test]
    fn memory_stats_track_peak() {
        let t = count_tree();
        let m = t.memory();
        assert_eq!(m.live_nodes, 13);
        assert_eq!(m.peak_nodes, 13);
        assert_eq!(m.node_model_bytes, 16);
        assert_eq!(m.peak_model_bytes(), 13 * 16);
        assert_eq!(
            TemporalAggregator::<Count>::algorithm(&t),
            "aggregation-tree"
        );
    }

    #[test]
    fn instant_tuples() {
        let mut t = AggregationTree::new(Count);
        t.push(Interval::instant(5), ()).unwrap();
        t.push(Interval::instant(5), ()).unwrap();
        let s = t.finish();
        assert_eq!(s.entries()[1].interval, Interval::instant(5));
        assert_eq!(s.entries()[1].value, 2);
        assert_eq!(s.entries()[0].interval, Interval::at(0, 4));
    }

    #[test]
    fn tuple_at_domain_edges() {
        let mut t = AggregationTree::with_domain(Count, Interval::at(0, 10));
        t.push(Interval::at(0, 10), ()).unwrap();
        t.push(Interval::at(0, 3), ()).unwrap();
        t.push(Interval::at(8, 10), ()).unwrap();
        let s = t.finish();
        let rows: Vec<(Interval, u64)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 3), 2),
                (Interval::at(4, 7), 1),
                (Interval::at(8, 10), 2),
            ]
        );
    }
}
