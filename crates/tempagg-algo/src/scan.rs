//! Driving aggregators from streaming [`TupleSource`]s — the out-of-core
//! execution path.
//!
//! Before the pager existed, every algorithm implicitly assumed "the
//! relation is a slice in memory". [`feed`] replaces that assumption: any
//! [`TemporalAggregator`] (the sweep-v2 lowering included — its
//! `push_batch` is the fused event-scatter entry point) now consumes
//! chunk-sized batches pulled from a [`TupleSource`], so its input can be
//! a fence-pruned paged scan just as well as a resident slice.
//!
//! [`page_seams`] + [`run_paged_partitioned`] connect the pager to the
//! [`PartitionedAggregator`]: seams are drawn from page-boundary fence
//! starts, so each partition's tuples arrive from a contiguous page range
//! of a sorted file while the file itself is read once, sequentially.
//! Correctness never depends on the seam placement — the combinator clips
//! every tuple to every partition it overlaps — so fence-aligned seams are
//! purely a locality optimisation, and the stitched output stays
//! byte-identical to a serial run.

use crate::parallel::PartitionedAggregator;
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::pager::{PageCursor, PageFence, PagedReader};
use tempagg_core::{
    Chunk, Interval, Result, Series, SeriesSink, Timestamp, TupleSource, DEFAULT_CHUNK_CAPACITY,
};

/// Pump `source` dry into `aggregator` through one reused bounded
/// [`Chunk`]: peak resident input memory is a single chunk (plus whatever
/// the source holds per page).
pub fn feed<A, G, S>(aggregator: &mut G, source: &mut S) -> Result<()>
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
    S: TupleSource<A::Input>,
{
    let mut chunk: Chunk<A::Input> = Chunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    while source.next_chunk(&mut chunk)? {
        aggregator.push_batch(&chunk)?;
        chunk.clear();
    }
    Ok(())
}

/// Like [`feed`], but drains already-final result entries into `sink`
/// after every batch ([`TemporalAggregator::emit_ready`]). With the
/// k-ordered tree over a sorted paged scan this bounds *result* memory
/// too: the whole pipeline holds one page, one chunk, and O(k) pending
/// state, however large the file is.
pub fn feed_streaming<A, G, S, K>(aggregator: &mut G, source: &mut S, sink: &mut K) -> Result<()>
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
    S: TupleSource<A::Input>,
    K: SeriesSink<A::Output>,
{
    let mut chunk: Chunk<A::Input> = Chunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    while source.next_chunk(&mut chunk)? {
        aggregator.push_batch(&chunk)?;
        aggregator.emit_ready(sink);
        chunk.clear();
    }
    Ok(())
}

/// Draw up to `partitions − 1` seams for `domain` from page-boundary
/// fences: seam `p` is the min-start of the page `p/P` of the way through
/// the fence table. On a sorted file this maps each partition onto a
/// contiguous page range. Seams violating [`PartitionedAggregator`]'s
/// preconditions (interior, strictly increasing) are simply dropped —
/// fewer partitions, never an error.
pub fn page_seams(fences: &[PageFence], domain: Interval, partitions: usize) -> Vec<Timestamp> {
    let mut seams: Vec<Timestamp> = Vec::new();
    if partitions <= 1 {
        return seams;
    }
    for p in 1..partitions {
        let idx = p * fences.len() / partitions;
        let Some(fence) = fences.get(idx) else {
            continue;
        };
        let candidate = fence.min_start;
        let interior = candidate > domain.start() && candidate <= domain.end();
        if interior && seams.last().map_or(true, |last| *last < candidate) {
            seams.push(candidate);
        }
    }
    seams
}

/// Run a page-partitioned aggregate over a paged file in one sequential,
/// fence-pruned pass.
///
/// The window's domain is cut at [`page_seams`] and one inner aggregator
/// built per sub-domain via `factory`; `make_source` adapts the
/// fence-pruned [`PageCursor`] into the aggregate's input shape (pass
/// [`PageCursor::units`] for COUNT-style aggregates, or a closure calling
/// [`PageCursor::int_column`] for column aggregates). Output is
/// byte-identical to a serial run of the inner algorithm over the same
/// window-clipped tuples.
pub fn run_paged_partitioned<'r, A, G, S, M, F>(
    reader: &'r PagedReader,
    window: Interval,
    partitions: usize,
    make_source: M,
    factory: F,
) -> Result<Series<A::Output>>
where
    A: Aggregate,
    A::Input: Clone + Sync,
    A::Output: PartialEq + Send,
    G: TemporalAggregator<A> + Send,
    S: TupleSource<A::Input>,
    M: FnOnce(PageCursor<'r>) -> S,
    F: FnMut(Interval) -> G,
{
    let seams = page_seams(reader.fences(), window, partitions);
    let mut aggregator = PartitionedAggregator::with_seams(window, seams, factory)?;
    let mut source = make_source(PageCursor::new(reader, window));
    feed(&mut aggregator, &mut source)?;
    Ok(aggregator.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ktree::KOrderedAggregationTree;
    use crate::linked_list::LinkedListAggregate;
    use crate::sweep::SweepAggregator;
    use tempagg_agg::{Count, Sum};
    use tempagg_core::pager::{write_relation, PagedWriteOptions, SliceSource};
    use tempagg_core::{Schema, TemporalRelation, Value, ValueType};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tempagg-scan-{}-{name}", std::process::id()));
        p
    }

    fn write_sorted(n: i64, name: &str) -> std::path::PathBuf {
        let schema = Schema::of(&[("v", ValueType::Int)]);
        let mut rel = TemporalRelation::new(schema);
        for i in 0..n {
            rel.push(vec![Value::Int(i % 13)], Interval::at(i, i + 7))
                .unwrap();
        }
        let path = temp_path(name);
        write_relation(
            &rel,
            &path,
            &PagedWriteOptions {
                page_size: 256,
                caches: Vec::new(),
            },
        )
        .unwrap();
        path
    }

    #[test]
    fn feed_from_slice_matches_direct_pushes() {
        let domain = Interval::at(0, 200);
        let items: Vec<(Interval, i64)> =
            (0..100).map(|i| (Interval::at(i, i + 7), i % 13)).collect();
        let mut direct = SweepAggregator::with_domain(Sum::<i64>::new(), domain);
        for &(iv, v) in &items {
            direct.push(iv, v).unwrap();
        }
        let mut fed = SweepAggregator::with_domain(Sum::<i64>::new(), domain);
        let mut source = SliceSource::new(&items, domain);
        feed(&mut fed, &mut source).unwrap();
        assert_eq!(fed.finish(), direct.finish());
    }

    #[test]
    fn paged_partitioned_matches_in_ram_sweep() {
        let path = write_sorted(300, "paged-part.tapg");
        let reader = PagedReader::open(&path).unwrap();
        let window = Interval::at(0, 306);
        for partitions in [1usize, 2, 8] {
            let paged = run_paged_partitioned(
                &reader,
                window,
                partitions,
                |cursor| cursor.int_column(0),
                |sub| LinkedListAggregate::with_domain(Sum::<i64>::new(), sub),
            )
            .unwrap();
            let mut sweep = SweepAggregator::with_domain(Sum::<i64>::new(), window);
            for i in 0..300 {
                sweep.push(Interval::at(i, i + 7), i % 13).unwrap();
            }
            assert_eq!(paged, sweep.finish(), "P = {partitions}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_seams_are_valid_for_with_seams() {
        let path = write_sorted(500, "seams.tapg");
        let reader = PagedReader::open(&path).unwrap();
        let domain = Interval::at(0, 506);
        for p in [2usize, 4, 8, 64] {
            let seams = page_seams(reader.fences(), domain, p);
            assert!(seams.len() < p.max(1));
            // Must satisfy with_seams' preconditions outright.
            PartitionedAggregator::with_seams(domain, seams, |sub| {
                LinkedListAggregate::with_domain(Count, sub)
            })
            .unwrap();
        }
        // Degenerate inputs yield no seams, not errors.
        assert!(page_seams(reader.fences(), domain, 0).is_empty());
        assert!(page_seams(reader.fences(), domain, 1).is_empty());
        assert!(page_seams(&[], domain, 8).is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn feed_streaming_drains_ktree_results_early() {
        let path = write_sorted(400, "streaming.tapg");
        let reader = PagedReader::open(&path).unwrap();
        let window = Interval::at(0, 406);
        let mut agg = KOrderedAggregationTree::with_domain(Count, 1, window).unwrap();
        let mut source = PageCursor::new(&reader, window).units();
        let mut out = Series::new();
        feed_streaming(&mut agg, &mut source, &mut out).unwrap();
        let streamed_early = out.len();
        agg.finish_into(&mut out);
        assert!(streamed_early > 0, "GC never drained anything early");

        let mut serial = KOrderedAggregationTree::with_domain(Count, 1, window).unwrap();
        for i in 0..400 {
            serial.push(Interval::at(i, i + 7), ()).unwrap();
        }
        assert_eq!(out, serial.finish());
        std::fs::remove_file(&path).ok();
    }
}
