//! Sweep-based interval join: the endpoint-sweep kernel generalized from
//! one relation to two.
//!
//! Piatov et al. (arXiv:2008.12665) show the same machinery that powers
//! the aggregation sweep — one sorted endpoint-event array plus a gapless
//! live set — evaluates interval (overlap) joins: co-sort the endpoints
//! of *both* relations, keep one [`GaplessSlots`] live set per side, and
//! on every admit enumerate the **other** side's live set. Two tuples are
//! co-live exactly when their intervals intersect, so each qualifying
//! pair is found exactly once: at the admit of whichever tuple starts
//! later (ties broken by the deterministic event order). The cost is
//! `O((n + m) log (n + m))` for the sort — shared with the aggregation
//! kernel, including its cache-partitioned parallel path
//! ([`sort_endpoint_events`](crate::sweep::sort_endpoint_events)) — plus
//! `O(result)` for the dense, branch-light enumeration.
//!
//! The retract-before-admit tie order baked into
//! [`EndpointEvent`](tempagg_core::EndpointEvent) is what makes closed
//! intervals exact here: a tuple ending at `t − 1` leaves its live set
//! before a tuple starting at `t` looks for partners.
//!
//! # Emission order
//!
//! Each pair is emitted with the **intersection** of the two intervals
//! and the pair's tuple indices. Starts are nondecreasing (they follow
//! the sweep), but unlike the aggregation kernels the intervals of
//! different pairs may *overlap* — a join result is not a constant-
//! interval tiling. Collect through a relaxed [`SeriesSink`] such as
//! `Vec<SeriesEntry<JoinPair>>` or
//! [`CountingSink`](tempagg_core::CountingSink); the strictly-increasing
//! sinks ([`Series`](tempagg_core::Series),
//! [`ChunkedSink`](tempagg_core::ChunkedSink)) will reject join output.

use crate::sweep::sort_endpoint_events;
use tempagg_core::{
    EndpointEvent, GaplessSlots, Interval, Result, SeriesEntry, SeriesSink, TempAggError,
};

/// The temporal join predicates of the first Allen-algebra slice.
///
/// All four select only pairs whose closed intervals share at least one
/// instant (that is what a sweep can enumerate), so `Meets` is the
/// closed-interval reading of adjacency: the left tuple's last instant
/// *is* the right tuple's first (`left.end == right.start`, intersection
/// a single instant). Allen's strict *meets* — `left.end.next() ==
/// right.start`, no shared instant — selects pairs that are never
/// co-live and is not expressible as a co-live filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum JoinPredicate {
    /// The intervals share at least one instant (always true for a
    /// co-live pair).
    Overlaps,
    /// The left interval contains the right:
    /// `left.start <= right.start && right.end <= left.end`.
    Contains,
    /// The left interval lies within the right:
    /// `right.start <= left.start && left.end <= right.end`.
    During,
    /// The left interval's last instant is the right's first:
    /// `left.end == right.start` (closed-interval adjacency).
    Meets,
}

impl JoinPredicate {
    /// SQL keyword / display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinPredicate::Overlaps => "OVERLAPS",
            JoinPredicate::Contains => "CONTAINS",
            JoinPredicate::During => "DURING",
            JoinPredicate::Meets => "MEETS",
        }
    }

    /// Does the ordered pair `(left, right)` satisfy this predicate?
    /// Total — also usable by a nested-loop oracle over non-co-live
    /// pairs.
    #[inline]
    pub fn matches(self, left: Interval, right: Interval) -> bool {
        match self {
            JoinPredicate::Overlaps => left.start() <= right.end() && right.start() <= left.end(),
            JoinPredicate::Contains => left.start() <= right.start() && right.end() <= left.end(),
            JoinPredicate::During => right.start() <= left.start() && left.end() <= right.end(),
            JoinPredicate::Meets => left.end() == right.start(),
        }
    }
}

/// One join result: indices into the left and right relations, in push
/// order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct JoinPair {
    pub left: usize,
    pub right: usize,
}

/// The sweep-based interval-join operator.
///
/// # Example
///
/// ```
/// use tempagg_algo::{JoinPredicate, SweepJoinOperator};
/// use tempagg_core::Interval;
///
/// let mut join = SweepJoinOperator::new(JoinPredicate::Overlaps);
/// join.push_left(Interval::at(0, 10)).unwrap();
/// join.push_right(Interval::at(5, 15)).unwrap();
/// let pairs = join.finish();
/// assert_eq!(pairs.len(), 1);
/// assert_eq!(pairs[0].interval, Interval::at(5, 10));
/// ```
#[derive(Clone, Debug)]
pub struct SweepJoinOperator {
    predicate: JoinPredicate,
    domain: Interval,
    left: Vec<Interval>,
    right: Vec<Interval>,
    threads: usize,
}

impl SweepJoinOperator {
    /// A join over the paper's time-line `[0, ∞]`.
    pub fn new(predicate: JoinPredicate) -> Self {
        Self::with_domain(predicate, Interval::TIMELINE)
    }

    /// A join over an explicit domain; both inputs must lie within it.
    pub fn with_domain(predicate: JoinPredicate, domain: Interval) -> Self {
        SweepJoinOperator {
            predicate,
            domain,
            left: Vec::new(),
            right: Vec::new(),
            threads: 1,
        }
    }

    /// Sort the co-mingled endpoint events on `threads` workers at
    /// finish. Purely a throughput knob — the pair set and its emission
    /// order are identical for every value.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The predicate this operator filters by.
    pub fn predicate(&self) -> JoinPredicate {
        self.predicate
    }

    /// Left tuples buffered so far.
    pub fn len_left(&self) -> usize {
        self.left.len()
    }

    /// Right tuples buffered so far.
    pub fn len_right(&self) -> usize {
        self.right.len()
    }

    fn check_domain(&self, interval: Interval) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        Ok(())
    }

    /// Buffer a left tuple. Its [`JoinPair::left`] index is the push
    /// order.
    pub fn push_left(&mut self, interval: Interval) -> Result<()> {
        self.check_domain(interval)?;
        self.left.push(interval);
        Ok(())
    }

    /// Buffer a right tuple. Its [`JoinPair::right`] index is the push
    /// order.
    pub fn push_right(&mut self, interval: Interval) -> Result<()> {
        self.check_domain(interval)?;
        self.right.push(interval);
        Ok(())
    }

    /// Lower both relations to one event array: tag `idx × 2 + side`
    /// (side 0 = left, 1 = right). A tuple reaching the domain end never
    /// retracts — no partner can be admitted after the domain ends.
    fn build_events(&self) -> Vec<EndpointEvent> {
        let mut events = Vec::with_capacity(2 * (self.left.len() + self.right.len()));
        for (side, tuples) in [(0u64, &self.left), (1u64, &self.right)] {
            for (idx, iv) in tuples.iter().enumerate() {
                let tag = u64::try_from(idx).unwrap_or(u64::MAX) * 2 + side;
                events.push(EndpointEvent::admit(iv.start(), tag));
                if iv.end() < self.domain.end() {
                    events.push(EndpointEvent::retract(iv.end().next(), tag));
                }
            }
        }
        events
    }

    /// Run the sweep, emitting every qualifying pair with the
    /// intersection of its two intervals. See the module docs for the
    /// (relaxed, possibly overlapping) emission order; pair order is
    /// deterministic and thread-count-independent.
    pub fn finish_into(self, sink: &mut impl SeriesSink<JoinPair>) {
        let events = sort_endpoint_events(self.build_events(), self.threads);
        let mut left_live: GaplessSlots<Interval> = GaplessSlots::new();
        let mut right_live: GaplessSlots<Interval> = GaplessSlots::new();
        left_live.reserve_slots(self.left.len());
        right_live.reserve_slots(self.right.len());
        // lint: hot-loop(join-scan) — the co-live enumeration must stay allocation-free
        for ev in &events {
            let tag = ev.tag();
            let idx = usize::try_from(tag >> 1).unwrap_or(usize::MAX);
            let is_left = tag & 1 == 0;
            if !ev.is_admit() {
                if is_left {
                    left_live.remove(idx);
                } else {
                    right_live.remove(idx);
                }
                continue;
            }
            // Admit: this tuple starts at `ev.time`, strictly after (or
            // tied with) everything live — so the intersection with any
            // live partner starts exactly here.
            let t = ev.time;
            if is_left {
                // lint: allow(indexing): tags were baked from 0..len at event build
                let mine = self.left[idx];
                left_live.insert(idx, mine);
                for (ridx, other) in right_live.iter() {
                    if self.predicate.matches(mine, *other) {
                        let until = mine.end().min(other.end());
                        // lint: allow(no-unwrap): t is the later start of two co-live tuples, so t <= until
                        let seg = Interval::new(t, until).expect("co-live intervals intersect");
                        sink.accept(
                            seg,
                            JoinPair {
                                left: idx,
                                right: ridx,
                            },
                        );
                    }
                }
            } else {
                // lint: allow(indexing): tags were baked from 0..len at event build
                let mine = self.right[idx];
                right_live.insert(idx, mine);
                for (lidx, other) in left_live.iter() {
                    if self.predicate.matches(*other, mine) {
                        let until = mine.end().min(other.end());
                        // lint: allow(no-unwrap): t is the later start of two co-live tuples, so t <= until
                        let seg = Interval::new(t, until).expect("co-live intervals intersect");
                        sink.accept(
                            seg,
                            JoinPair {
                                left: lidx,
                                right: idx,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Collect the join into a vector of `(intersection, pair)` entries.
    pub fn finish(self) -> Vec<SeriesEntry<JoinPair>> {
        let mut out: Vec<SeriesEntry<JoinPair>> = Vec::new();
        self.finish_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The executable specification: test every ordered pair.
    fn nested_loop(
        predicate: JoinPredicate,
        left: &[Interval],
        right: &[Interval],
    ) -> Vec<(Interval, usize, usize)> {
        let mut out = Vec::new();
        for (li, l) in left.iter().enumerate() {
            for (ri, r) in right.iter().enumerate() {
                if predicate.matches(*l, *r) {
                    let start = l.start().max(r.start());
                    let end = l.end().min(r.end());
                    if start <= end {
                        out.push((Interval::new(start, end).unwrap(), li, ri));
                    }
                }
            }
        }
        out.sort();
        out
    }

    fn sweep(
        predicate: JoinPredicate,
        left: &[Interval],
        right: &[Interval],
        threads: usize,
    ) -> Vec<(Interval, usize, usize)> {
        let mut join = SweepJoinOperator::new(predicate).with_parallelism(threads);
        for iv in left {
            join.push_left(*iv).unwrap();
        }
        for iv in right {
            join.push_right(*iv).unwrap();
        }
        let mut out: Vec<(Interval, usize, usize)> = join
            .finish()
            .into_iter()
            .map(|e| (e.interval, e.value.left, e.value.right))
            .collect();
        out.sort();
        out
    }

    #[test]
    fn overlap_join_matches_nested_loop() {
        let left = vec![
            Interval::at(0, 10),
            Interval::at(5, 15),
            Interval::at(20, 30),
            Interval::at(40, 40),
        ];
        let right = vec![
            Interval::at(8, 25),
            Interval::at(11, 19),
            Interval::at(31, 45),
        ];
        let want = nested_loop(JoinPredicate::Overlaps, &left, &right);
        assert!(!want.is_empty());
        for threads in [1, 4] {
            assert_eq!(sweep(JoinPredicate::Overlaps, &left, &right, threads), want);
        }
    }

    #[test]
    fn allen_slice_matches_nested_loop() {
        let left = vec![
            Interval::at(0, 20),
            Interval::at(5, 10),
            Interval::at(10, 15),
            Interval::at(15, 15),
        ];
        let right = vec![
            Interval::at(5, 10),
            Interval::at(0, 30),
            Interval::at(10, 12),
            Interval::at(15, 20),
        ];
        for predicate in [
            JoinPredicate::Contains,
            JoinPredicate::During,
            JoinPredicate::Meets,
        ] {
            let want = nested_loop(predicate, &left, &right);
            assert!(!want.is_empty(), "{predicate:?} oracle found nothing");
            assert_eq!(sweep(predicate, &left, &right, 1), want, "{predicate:?}");
        }
    }

    #[test]
    fn touching_at_one_instant_still_joins() {
        // [0,10] and [10,20] share exactly the instant 10.
        let got = sweep(
            JoinPredicate::Overlaps,
            &[Interval::at(0, 10)],
            &[Interval::at(10, 20)],
            1,
        );
        assert_eq!(got, vec![(Interval::at(10, 10), 0, 0)]);
        // [0,9] and [10,20] share nothing: the retract-before-admit tie
        // order must keep them apart.
        let none = sweep(
            JoinPredicate::Overlaps,
            &[Interval::at(0, 9)],
            &[Interval::at(10, 20)],
            1,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn meets_is_closed_interval_adjacency() {
        let got = sweep(
            JoinPredicate::Meets,
            &[Interval::at(0, 10), Interval::at(0, 9)],
            &[Interval::at(10, 20)],
            1,
        );
        // Only [0,10] meets [10,20] under the closed-interval reading;
        // the intersection is the single shared instant.
        assert_eq!(got, vec![(Interval::at(10, 10), 0, 0)]);
    }

    #[test]
    fn equal_starts_emit_exactly_once() {
        let got = sweep(
            JoinPredicate::Overlaps,
            &[Interval::at(5, 10), Interval::at(5, 20)],
            &[Interval::at(5, 7)],
            1,
        );
        assert_eq!(
            got,
            vec![(Interval::at(5, 7), 0, 0), (Interval::at(5, 7), 1, 0)]
        );
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut join =
            SweepJoinOperator::with_domain(JoinPredicate::Overlaps, Interval::at(10, 20));
        assert!(join.push_left(Interval::at(0, 15)).is_err());
        assert!(join.push_right(Interval::at(10, 20)).is_ok());
        assert_eq!(join.len_left(), 0);
        assert_eq!(join.len_right(), 1);
    }

    #[test]
    fn randomized_overlap_join_agrees_across_parallelism() {
        let mut state = 0x13198a2e03707344u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut gen = |n: u64, span: u64, width: u64| -> Vec<Interval> {
            (0..n)
                .map(|_| {
                    let s = i64::try_from(step() % span).unwrap();
                    let w = i64::try_from(step() % width).unwrap();
                    Interval::at(s, s + w)
                })
                .collect()
        };
        let left = gen(150, 5_000, 300);
        let right = gen(170, 5_000, 250);
        let want = nested_loop(JoinPredicate::Overlaps, &left, &right);
        for threads in [1, 2, 8] {
            assert_eq!(
                sweep(JoinPredicate::Overlaps, &left, &right, threads),
                want,
                "threads = {threads}"
            );
        }
    }
}
