//! The columnar endpoint-sweep algorithm, v2 — cache-partitioned sort,
//! gapless live set, O(n log n) worst case.
//!
//! Not in the 1995 paper: this is the modern cache-conscious evaluation
//! strategy of Piatov et al. (arXiv:2008.12665) and Colley et al.'s delta
//! summation (arXiv:2211.05896) applied to grouping by instant. Pushed
//! tuples are buffered into three columnar `(start, end, value)` runs —
//! nothing else happens at push time, so ingest is a column append and
//! [`TemporalAggregator::push_batch`] is a straight column memcpy from a
//! [`Chunk`](tempagg_core::Chunk).
//!
//! At [`finish`](TemporalAggregator::finish) the runs are lowered
//! straight into time-bucketed `(event, value)` pairs — an admit at each
//! start, a retract at the instant after each end, the tuple index baked
//! into the 16-byte [`EndpointEvent`] payload and a copy of the tuple's
//! value riding alongside — and each bucket is sorted once, directly. v1
//! ([`SweepAggregatorV1`](crate::sweep_v1::SweepAggregatorV1)) paid three
//! sorts (a boundary sort-and-dedup plus two indirect permutation sorts
//! whose comparisons chase random-access keys) and a double-indirect
//! scan; v2 pays one sort of flat self-contained records. The fused
//! build-and-scatter ([`scatter_event_pairs`]) radix-partitions the
//! pairs into disjoint ascending [`TimeBuckets`] sized to L2 as it
//! builds them — no intermediate event array — so each `sort_unstable`
//! run stays cache-resident; buckets sort in parallel via [`scoped_map`]
//! and concatenate without a merge pass. When the event times are dense
//! — span smaller than a small multiple of the event count, the common
//! shape for long-lived relations over a bounded lifespan — the scatter
//! sharpens into a per-instant counting sort that emits the total
//! `(time, payload)` order directly and skips the comparison sorts
//! entirely. Carrying the value inside the
//! pair means the replay below never random-accesses a values column:
//! every pass (scatter, per-bucket sort, scan) is sequential or
//! bucket-local. Because the event order is total (tags are unique), the
//! sorted sequence — and therefore the emitted series — is byte-identical
//! for every thread and bucket count.
//!
//! The scan is a single forward replay: each admit/retract applies
//! through the slot-handle hooks of [`SweepAggregate`]
//! (`active_insert_slot`/`active_remove_slot`), which the `Ordered`-class
//! extremes back with a gapless dense slot map
//! ([`SlotExtremes`](tempagg_agg::SlotExtremes)) instead of a
//! pointer-chasing multiset — O(1) branch-light updates, allocation-free
//! end to end after one `active_reserve`. Segment boundaries fall out of
//! the replay (a segment closes whenever the event time advances), so the
//! explicit boundary vector is gone too. The output is exactly the same
//! constant intervals as every other algorithm (one entry per boundary
//! segment, not value-coalesced), so v2 drops into
//! [`PartitionedAggregator`] and the seam-stitching executor unchanged
//! and byte-identically.
//!
//! [`PartitionedAggregator`]: crate::parallel::PartitionedAggregator

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::parallel::scoped_map;
use crate::traits::TemporalAggregator;
use tempagg_agg::SweepAggregate;
#[cfg(feature = "validate")]
use tempagg_core::SeriesEntry;
use tempagg_core::{
    scatter_by_time, Chunk, EndpointEvent, Interval, Result, SeriesSink, TempAggError, TimeBuckets,
    Timestamp,
};

/// Below this many events a partitioned sort cannot recoup the scatter
/// pass; sort directly.
const PARALLEL_SORT_MIN: usize = 8 * 1024;

/// Upper bound passed to [`scatter_by_time`]; the scatter itself clamps
/// to one bucket per ~16 Ki events, so this only caps degenerate cases.
const MAX_SORT_BUCKETS: usize = 4096;

/// Sort endpoint events into one globally ordered array.
///
/// With `threads <= 1` or a small input this is a single direct
/// `sort_unstable`. Otherwise the events are radix-scattered into
/// disjoint ascending time buckets sized to stay L2-resident and each
/// bucket is sorted independently on the [`scoped_map`] worker pool;
/// concatenation (in place — the buckets are contiguous) is already the
/// global order, no merge needed. The result is identical in every mode:
/// the `(time, payload)` key is a total order.
pub(crate) fn sort_endpoint_events(
    mut events: Vec<EndpointEvent>,
    threads: usize,
) -> Vec<EndpointEvent> {
    if events.len() < PARALLEL_SORT_MIN {
        events.sort_unstable();
        return events;
    }
    let (mut scattered, offsets) = scatter_by_time(&events, MAX_SORT_BUCKETS);
    let mut runs: Vec<&mut [EndpointEvent]> = Vec::with_capacity(offsets.len());
    let mut rest: &mut [EndpointEvent] = &mut scattered;
    let mut prev = 0usize;
    for &off in offsets.iter().skip(1) {
        let (run, tail) = rest.split_at_mut(off - prev);
        runs.push(run);
        rest = tail;
        prev = off;
    }
    scoped_map(runs, threads, |run: &mut [EndpointEvent]| {
        run.sort_unstable();
    });
    scattered
}

/// Past this ratio of time-span to event count a per-instant counting
/// scatter would touch more memory than the comparison sort it replaces;
/// the sparse regime keeps the bucketed comparison sort instead.
const DENSE_SPAN_FACTOR: i128 = 2;

/// The lowered, time-ordered event stream of a sweep.
///
/// Both shapes carry a clone of each tuple's value next to its events,
/// so the replay in `finish_into` never random-accesses a values column.
enum LoweredEvents<V> {
    /// Dense regime: the event time is positional. `pairs` holds bare
    /// `(payload, value)` words grouped by instant;
    /// `group_ends[i]` is the end offset of the group for instant
    /// `lo + i` (its start is the previous group's end). Groups are
    /// already in the total `(time, payload)` order — retracts were
    /// scattered before admits, tuples in tag order — so no sort runs.
    Dense {
        pairs: Vec<(u64, V)>,
        group_ends: Vec<u32>,
        lo: i64,
    },
    /// Sparse regime: whole 16-byte [`EndpointEvent`]s, radix-scattered
    /// into ascending cache-sized bucket runs
    /// (`pairs[offsets[b]..offsets[b + 1]]`), each still needing its own
    /// sort.
    Sparse {
        pairs: Vec<(EndpointEvent, V)>,
        offsets: Vec<usize>,
    },
}

/// Lower columnar `(start, end, value)` runs straight into time-ordered
/// `(event, value)` pairs — the fused build-and-scatter step of the v2
/// sort. Ends at `domain_end` (or `FOREVER`) need no retract — nothing
/// is ever emitted past them.
///
/// The regime is chosen by the density of the event times: a span
/// smaller than [`DENSE_SPAN_FACTOR`] × the event count takes the
/// per-instant counting scatter ([`LoweredEvents::Dense`], sort-free);
/// anything wider takes the [`TimeBuckets`] radix scatter into at most
/// `max_buckets` runs ([`LoweredEvents::Sparse`]). With
/// `max_buckets == 1` the sparse scatter degenerates to a plain build,
/// which is what small inputs use. Both regimes replay to the same
/// series — the event order is total.
fn lower_events<V: Clone>(
    starts: &[Timestamp],
    ends: &[Timestamp],
    values: &[V],
    domain_end: Timestamp,
    max_buckets: usize,
) -> LoweredEvents<V> {
    // Pass 1: the event-time range and the event count.
    let mut lo = i64::MAX;
    let mut hi = i64::MIN;
    let mut n_events = 0usize;
    for (&start, &end) in starts.iter().zip(ends.iter()) {
        lo = lo.min(start.get());
        hi = hi.max(start.get());
        n_events += 1;
        if end < domain_end {
            hi = hi.max(end.next().get());
            n_events += 1;
        }
    }
    if n_events == 0 {
        return LoweredEvents::Sparse {
            pairs: Vec::new(),
            offsets: vec![0],
        };
    }
    let span = i128::from(hi) - i128::from(lo);
    // The u32 bound keeps the counting scatter's cursor array half the
    // size of a usize one (it is hammered with random accesses); inputs
    // past 4 Gi events take the sparse path instead.
    let n_events_wide = i128::try_from(n_events).unwrap_or(i128::MAX);
    if span < DENSE_SPAN_FACTOR * n_events_wide && u32::try_from(n_events).is_ok() {
        let span_len = usize::try_from(span).unwrap_or(usize::MAX);
        let (pairs, group_ends) =
            counting_scatter(starts, ends, values, domain_end, lo, span_len, n_events);
        return LoweredEvents::Dense {
            pairs,
            group_ends,
            lo,
        };
    }
    let layout = TimeBuckets::layout(Timestamp(lo), Timestamp(hi), n_events, max_buckets);

    // Pass 2: per-bucket counts, then exclusive prefix sums as both the
    // returned offsets and (cloned below) the write cursors.
    let mut counts = vec![0usize; layout.count()];
    for (&start, &end) in starts.iter().zip(ends.iter()) {
        // lint: allow(indexing): bucket_of is < count() for in-range times by construction
        counts[layout.bucket_of(start)] += 1;
        if end < domain_end {
            // lint: allow(indexing): same bucket bound as above
            counts[layout.bucket_of(end.next())] += 1;
        }
    }
    let mut offsets = Vec::with_capacity(layout.count() + 1);
    let mut total = 0usize;
    for &c in &counts {
        offsets.push(total);
        total += c;
    }
    offsets.push(total);

    // Pass 3: scatter. The placeholder fill is one sequential pass and
    // every slot is overwritten exactly once.
    let mut cursors = offsets.clone();
    cursors.pop();
    // lint: allow(indexing): n_events > 0 implies at least one tuple, so values is non-empty
    let placeholder = (
        EndpointEvent::retract(Timestamp::ORIGIN, 0),
        values[0].clone(),
    );
    let mut out: Vec<(EndpointEvent, V)> = vec![placeholder; n_events];
    for (idx, ((&start, &end), value)) in starts
        .iter()
        .zip(ends.iter())
        .zip(values.iter())
        .enumerate()
    {
        let tag = u64::try_from(idx).unwrap_or(u64::MAX);
        let b = layout.bucket_of(start);
        // lint: allow(indexing): b < buckets and cursors[b] < offsets[b + 1] ≤ len by the counting pass
        out[cursors[b]] = (EndpointEvent::admit(start, tag), value.clone());
        // lint: allow(indexing): same bucket bound as above
        cursors[b] += 1;
        if end < domain_end {
            let at = end.next();
            let b = layout.bucket_of(at);
            // lint: allow(indexing): same counting-pass bound as the admit arm
            out[cursors[b]] = (EndpointEvent::retract(at, tag), value.clone());
            // lint: allow(indexing): same bucket bound as above
            cursors[b] += 1;
        }
    }
    LoweredEvents::Sparse {
        pairs: out,
        offsets,
    }
}

/// The dense-regime scatter: one group per instant in `[lo, lo + span]`,
/// retracts written before admits, tuples visited in tag order — the
/// output is already in the total `(time, payload)` order. This is a
/// counting sort, O(events + span) with no comparisons, which is why the
/// caller only takes it when the span is small relative to the event
/// count. The event time is not stored at all: it is recovered
/// positionally from the returned per-instant group ends (after the
/// scatter, cursor `i` has advanced to the end of instant `i`'s group),
/// shrinking each stored pair to a bare `(payload, value)`.
/// The per-instant cursor slot of time `t`: its offset from the dense
/// range's first instant. The caller's range pass proves every admit and
/// retract time lies in `[lo, lo + span]`, so the subtraction cannot
/// underflow and the result indexes the cursor array.
#[inline]
fn dense_slot(t: Timestamp, lo: i64) -> usize {
    // lint: allow(no-raw-i64-arith): the dense regime is positional by design — the slot IS the raw offset from lo
    usize::try_from(t.get() - lo).unwrap_or(0)
}

#[allow(clippy::type_complexity)]
fn counting_scatter<V: Clone>(
    starts: &[Timestamp],
    ends: &[Timestamp],
    values: &[V],
    domain_end: Timestamp,
    lo: i64,
    span: usize,
    n_events: usize,
) -> (Vec<(u64, V)>, Vec<u32>) {
    // Per-instant counts -> exclusive prefix sums as write cursors. u32
    // cursors (the caller guarantees the event count fits) keep this
    // randomly-accessed array as small — as cache-resident — as it gets.
    let mut cursors = vec![0u32; span + 1];
    for (&start, &end) in starts.iter().zip(ends.iter()) {
        // lint: allow(indexing): start - lo <= hi - lo == span by the range pass
        cursors[dense_slot(start, lo)] += 1;
        if end < domain_end {
            // lint: allow(indexing): retract times were folded into hi by the range pass
            cursors[dense_slot(end.next(), lo)] += 1;
        }
    }
    let mut total = 0u32;
    for c in &mut cursors {
        let here = *c;
        *c = total;
        total += here;
    }

    // lint: allow(indexing): n_events > 0 implies at least one tuple, so values is non-empty
    let placeholder = (EndpointEvent::retract_payload(0), values[0].clone());
    let mut out: Vec<(u64, V)> = vec![placeholder; n_events];
    // Retracts first: at equal times every retract payload (kind bit
    // clear) sorts below every admit payload, and within each kind the
    // tag order is the tuple order we visit in.
    for (idx, (&end, value)) in ends.iter().zip(values.iter()).enumerate() {
        if end < domain_end {
            let slot = dense_slot(end.next(), lo);
            let tag = u64::try_from(idx).unwrap_or(u64::MAX);
            // lint: allow(indexing): cursor slots were counted above; each is bumped once per counted event
            let at = usize::try_from(cursors[slot]).unwrap_or(0);
            // lint: allow(indexing): the cursor stays below the next slot's prefix sum ≤ n_events
            out[at] = (EndpointEvent::retract_payload(tag), value.clone());
            // lint: allow(indexing): same per-instant bound as above
            cursors[slot] += 1;
        }
    }
    for (idx, (&start, value)) in starts.iter().zip(values.iter()).enumerate() {
        let slot = dense_slot(start, lo);
        let tag = u64::try_from(idx).unwrap_or(u64::MAX);
        // lint: allow(indexing): same counting bound as the retract pass
        let at = usize::try_from(cursors[slot]).unwrap_or(0);
        // lint: allow(indexing): the cursor stays below the next slot's prefix sum ≤ n_events
        out[at] = (EndpointEvent::admit_payload(tag), value.clone());
        // lint: allow(indexing): same per-instant bound as above
        cursors[slot] += 1;
    }
    // Each cursor has marched from its group's start to its end, so the
    // cursor array *is* the group-ends array.
    (out, cursors)
}

/// Sort each bucket run of `pairs` independently on up to `threads`
/// workers. The buckets hold disjoint ascending time ranges, so the
/// concatenation is already the global order — and the key (the
/// [`EndpointEvent`], compared whole) is total, so the result is
/// identical for every thread and bucket count.
fn sort_bucket_runs<V: Send>(pairs: &mut [(EndpointEvent, V)], offsets: &[usize], threads: usize) {
    let mut runs: Vec<&mut [(EndpointEvent, V)]> =
        Vec::with_capacity(offsets.len().saturating_sub(1));
    let mut rest = pairs;
    let mut prev = 0usize;
    for &off in offsets.iter().skip(1) {
        let (run, tail) = rest.split_at_mut(off - prev);
        if run.len() > 1 {
            runs.push(run);
        }
        rest = tail;
        prev = off;
    }
    scoped_map(runs, threads, |run: &mut [(EndpointEvent, V)]| {
        run.sort_unstable_by_key(|pair| pair.0);
    });
}

/// The columnar endpoint-sweep algorithm (v2: partitioned event sort +
/// gapless live set).
///
/// # Example
///
/// ```
/// use tempagg_agg::Sum;
/// use tempagg_algo::{SweepAggregator, TemporalAggregator};
/// use tempagg_core::{Interval, Timestamp};
///
/// let mut sweep = SweepAggregator::new(Sum::<i64>::new());
/// sweep.push(Interval::at(0, 10), 5).unwrap();
/// sweep.push(Interval::at(5, 15), 7).unwrap();
/// let series = sweep.finish();
/// assert_eq!(series.value_at(Timestamp(7)), Some(&Some(12)));
/// ```
#[derive(Clone, Debug)]
pub struct SweepAggregator<A: SweepAggregate> {
    agg: A,
    domain: Interval,
    starts: Vec<Timestamp>,
    ends: Vec<Timestamp>,
    values: Vec<A::Input>,
    threads: usize,
}

impl<A: SweepAggregate> SweepAggregator<A> {
    /// A sweep over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// A sweep over an explicit domain.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        SweepAggregator {
            agg,
            domain,
            starts: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
            threads: 1,
        }
    }

    /// Sort the endpoint events on `threads` workers at finish. The
    /// emitted series is byte-identical for every value — the event order
    /// is total — so this is purely a throughput knob.
    #[must_use]
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Tuples buffered so far.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }
}

impl<A: SweepAggregate> TemporalAggregator<A> for SweepAggregator<A>
where
    A::Input: Clone + Send,
{
    fn algorithm(&self) -> &'static str {
        "endpoint-sweep"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        self.starts.push(interval.start());
        self.ends.push(interval.end());
        self.values.push(value);
        Ok(())
    }

    /// Batched insert: a straight column append — three `memcpy`-style
    /// `extend_from_slice` calls via
    /// [`Chunk::append_columns_to`](tempagg_core::Chunk::append_columns_to).
    /// The whole batch is domain-checked before any column is touched.
    fn push_batch(&mut self, chunk: &Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        if let Some(outside) = chunk.first_outside(self.domain) {
            return Err(TempAggError::OutOfDomain {
                tuple: (outside.start(), outside.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        chunk.append_columns_to(&mut self.starts, &mut self.ends, &mut self.values);
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        let n = self.starts.len();
        // Small inputs skip the scatter (one bucket, one direct sort);
        // past the threshold the fused scatter pays for itself.
        let max_buckets = if 2 * n < PARALLEL_SORT_MIN {
            1
        } else {
            MAX_SORT_BUCKETS
        };
        let lowered = lower_events(
            &self.starts,
            &self.ends,
            &self.values,
            self.domain.end(),
            max_buckets,
        );

        // Under `validate` the scan is materialized first so the tiling
        // check can inspect it; otherwise every segment streams straight
        // out of the event replay.
        #[cfg(feature = "validate")]
        let mut entries: Vec<SeriesEntry<A::Output>> = Vec::new();
        let mut active = self.agg.active_empty();
        self.agg.active_reserve(&mut active, n);
        let mut seg_start = self.domain.start();
        // The event time advanced to `t`: the segment that started at
        // `seg_start` is constant up to the instant before `t`.
        macro_rules! close_segment_before {
            ($t:expr) => {{
                let t = $t;
                if t > seg_start {
                    let segment = Interval::new(seg_start, t.prev())
                        // lint: allow(no-unwrap): events replay in time order, so seg_start < t means seg_start <= t.prev()
                        .expect("event times increase");
                    let out = self.agg.active_output(&active);
                    #[cfg(feature = "validate")]
                    entries.push(SeriesEntry::new(segment, out));
                    #[cfg(not(feature = "validate"))]
                    sink.accept(segment, out);
                    seg_start = t;
                }
            }};
        }
        match lowered {
            LoweredEvents::Sparse { mut pairs, offsets } => {
                sort_bucket_runs(&mut pairs, &offsets, self.threads);
                // lint: hot-loop(endpoint-scan) — the event replay (admit/retract + segment emission) must stay allocation-free
                for (ev, value) in &pairs {
                    close_segment_before!(ev.time);
                    let slot = usize::try_from(ev.tag()).unwrap_or(usize::MAX);
                    if ev.is_admit() {
                        self.agg.active_insert_slot(&mut active, slot, value);
                    } else {
                        self.agg.active_remove_slot(&mut active, slot, value);
                    }
                }
            }
            LoweredEvents::Dense {
                pairs,
                group_ends,
                lo,
            } => {
                // Counting scatter: already ordered, time positional.
                // Instants with no events close no segment.
                let mut prev = 0usize;
                // lint: hot-loop(endpoint-scan) — the event replay (admit/retract + segment emission) must stay allocation-free
                for (i, &group_end) in group_ends.iter().enumerate() {
                    let end = usize::try_from(group_end).unwrap_or(usize::MAX);
                    if end == prev {
                        continue;
                    }
                    let offset = i64::try_from(i).unwrap_or(i64::MAX);
                    close_segment_before!(Timestamp(lo + offset));
                    // lint: allow(indexing): group ends are the counting scatter's prefix sums, bounded by pairs.len()
                    for (payload, value) in &pairs[prev..end] {
                        let slot = usize::try_from(EndpointEvent::payload_tag(*payload))
                            .unwrap_or(usize::MAX);
                        if EndpointEvent::payload_is_admit(*payload) {
                            self.agg.active_insert_slot(&mut active, slot, value);
                        } else {
                            self.agg.active_remove_slot(&mut active, slot, value);
                        }
                    }
                    prev = end;
                }
            }
        }
        // The final segment runs to the domain end. Every event time lies
        // within the domain (admits are covered starts; retracts only
        // exist below the domain end), so seg_start <= domain.end().
        // lint: allow(no-unwrap): seg_start never exceeds the domain end, see above
        let last = Interval::new(seg_start, self.domain.end()).expect("domain covers the tail");
        let value = self.agg.active_output(&active);
        #[cfg(feature = "validate")]
        {
            entries.push(SeriesEntry::new(last, value));
            crate::validate::assert_series_tiles(&entries, self.domain, "endpoint-sweep");
            for e in entries {
                sink.accept(e.interval, e.value);
            }
        }
        #[cfg(not(feature = "validate"))]
        sink.accept(last, value);
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.starts.len(),
            peak_nodes: self.starts.len(),
            // One buffered run: two timestamps plus the aggregate value
            // under the paper's 4-byte-word model. No pointers — that is
            // the point of the columnar layout.
            node_model_bytes: MODEL_POINTER_BYTES + self.agg.state_model_bytes(),
            node_actual_bytes: 2 * std::mem::size_of::<Timestamp>()
                + std::mem::size_of::<A::Input>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle;
    use crate::sweep_v1::SweepAggregatorV1;
    use tempagg_agg::{Count, Max, Min, Sum};

    fn employed_sweep() -> SweepAggregator<Count> {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::from_start(18), ()).unwrap();
        s.push(Interval::at(8, 20), ()).unwrap();
        s.push(Interval::at(7, 12), ()).unwrap();
        s.push(Interval::at(18, 21), ()).unwrap();
        s
    }

    #[test]
    fn table1_result() {
        let s = employed_sweep().finish();
        let rows: Vec<(Interval, u64)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 6), 0),
                (Interval::at(7, 7), 1),
                (Interval::at(8, 12), 2),
                (Interval::at(13, 17), 1),
                (Interval::at(18, 20), 3),
                (Interval::at(21, 21), 2),
                (Interval::from_start(22), 1),
            ]
        );
    }

    #[test]
    fn empty_sweep_emits_domain() {
        let s: SweepAggregator<Count> = SweepAggregator::with_domain(Count, Interval::at(0, 9));
        assert!(s.is_empty());
        let out = s.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out.entries()[0].interval, Interval::at(0, 9));
        assert_eq!(out.entries()[0].value, 0);
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut s = SweepAggregator::with_domain(Count, Interval::at(10, 20));
        assert!(s.push(Interval::at(5, 15), ()).is_err());
        assert_eq!(s.len(), 0);
        assert!(s.push(Interval::at(10, 20), ()).is_ok());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_batch_is_column_append() {
        let mut chunk: Chunk<i64> = Chunk::with_capacity(8);
        chunk.push(Interval::at(0, 10), 5).unwrap();
        chunk.push(Interval::at(5, 15), 7).unwrap();

        let mut batched = SweepAggregator::new(Sum::<i64>::new());
        batched.push_batch(&chunk).unwrap();
        assert_eq!(batched.len(), 2);

        let mut serial = SweepAggregator::new(Sum::<i64>::new());
        for (iv, v) in &chunk {
            serial.push(iv, *v).unwrap();
        }
        assert_eq!(batched.finish().entries(), serial.finish().entries());
    }

    #[test]
    fn push_batch_checks_whole_batch_first() {
        let mut chunk: Chunk<i64> = Chunk::with_capacity(8);
        chunk.push(Interval::at(0, 10), 1).unwrap();
        chunk.push(Interval::at(90, 120), 2).unwrap();
        let mut s = SweepAggregator::with_domain(Sum::<i64>::new(), Interval::at(0, 100));
        assert!(s.push_batch(&chunk).is_err());
        // Nothing was ingested — not even the in-domain tuple.
        assert!(s.is_empty());
    }

    #[test]
    fn min_multiset_survives_duplicate_values() {
        // Two tuples with the same value; one expires first. A naive
        // extremum would lose the survivor.
        let mut s = SweepAggregator::with_domain(Min::<i64>::new(), Interval::at(0, 30));
        s.push(Interval::at(0, 10), 5).unwrap();
        s.push(Interval::at(0, 20), 5).unwrap();
        s.push(Interval::at(0, 30), 9).unwrap();
        let out = s.finish();
        let rows: Vec<(Interval, Option<i64>)> =
            out.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 10), Some(5)),
                (Interval::at(11, 20), Some(5)),
                (Interval::at(21, 30), Some(9)),
            ]
        );
    }

    #[test]
    fn duplicate_endpoints_collapse_to_one_boundary() {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::at(5, 9), ()).unwrap();
        s.push(Interval::at(5, 9), ()).unwrap();
        let out = s.finish();
        let rows: Vec<(Interval, u64)> = out.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 4), 0),
                (Interval::at(5, 9), 2),
                (Interval::from_start(10), 0),
            ]
        );
    }

    #[test]
    fn matches_oracle_on_touching_intervals() {
        let tuples = vec![
            (Interval::at(0, 9), 3i64),
            (Interval::at(10, 19), 4),
            (Interval::at(20, 20), 5),
        ];
        let domain = Interval::at(0, 25);
        let mut s = SweepAggregator::with_domain(Max::<i64>::new(), domain);
        for (iv, v) in &tuples {
            s.push(*iv, *v).unwrap();
        }
        let want = oracle(&Max::<i64>::new(), domain, &tuples);
        assert_eq!(s.finish().entries(), want.entries());
    }

    #[test]
    fn forever_end_needs_no_boundary() {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::from_start(5), ()).unwrap();
        let out = s.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out.entries()[1].interval, Interval::from_start(5));
        assert_eq!(out.entries()[1].value, 1);
    }

    #[test]
    fn memory_reports_columnar_runs() {
        let s = employed_sweep();
        let m = s.memory();
        assert_eq!(m.live_nodes, 4);
        assert_eq!(m.peak_nodes, 4);
        // Two 4-byte timestamps + COUNT's 4-byte state under the paper's
        // model: 12 bytes per run, pointer-free.
        assert_eq!(m.node_model_bytes, 12);
    }

    #[test]
    fn agrees_with_v1_at_every_parallelism() {
        // A seeded workload big enough to exercise the scatter path, run
        // through v2 at P∈{1,2,8} — every series must be byte-identical
        // to the v1 reference kernel.
        let mut state = 0x243f6a8885a308d3u64;
        let mut step = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let domain = Interval::at(0, 200_000);
        let mut tuples = Vec::new();
        for _ in 0..10_000 {
            let start = i64::try_from(step() % 190_000).unwrap();
            let width = i64::try_from(step() % 5_000).unwrap();
            let iv = Interval::at(start, (start + width).min(200_000));
            let v = i64::try_from(step() % 1_000).unwrap();
            tuples.push((iv, v));
        }
        let mut v1 = SweepAggregatorV1::with_domain(Sum::<i64>::new(), domain);
        for (iv, v) in &tuples {
            v1.push(*iv, *v).unwrap();
        }
        let want = v1.finish();
        for p in [1usize, 2, 8] {
            let mut v2 =
                SweepAggregator::with_domain(Sum::<i64>::new(), domain).with_parallelism(p);
            for (iv, v) in &tuples {
                v2.push(*iv, *v).unwrap();
            }
            assert_eq!(v2.finish().entries(), want.entries(), "P = {p}");
        }
    }

    #[test]
    fn parallel_sort_exercises_the_scatter_path() {
        // Enough events to clear PARALLEL_SORT_MIN so the bucketed sort
        // actually runs, including duplicate endpoints across buckets.
        let domain = Interval::at(0, 1_000_000);
        let mut v2 = SweepAggregator::with_domain(Count, domain).with_parallelism(4);
        let mut v1 = SweepAggregatorV1::with_domain(Count, domain);
        for i in 0..6_000i64 {
            let iv = Interval::at((i * 97) % 900_000, (i * 97) % 900_000 + 50_000);
            v2.push(iv, ()).unwrap();
            v1.push(iv, ()).unwrap();
        }
        assert_eq!(v2.finish().entries(), v1.finish().entries());
    }
}
