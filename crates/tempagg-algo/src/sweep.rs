//! The columnar endpoint-sweep algorithm — O(n log n) worst case.
//!
//! Not in the 1995 paper: this is the modern cache-conscious evaluation
//! strategy of Piatov et al. (arXiv:2008.12665) and Colley et al.'s delta
//! summation (arXiv:2211.05896) applied to grouping by instant. Pushed
//! tuples are buffered into three columnar `(start, end, value)` runs —
//! nothing else happens at push time, so ingest is a column append and
//! [`TemporalAggregator::push_batch`] is a straight column memcpy from a
//! [`Chunk`](tempagg_core::Chunk). At [`finish`](TemporalAggregator::finish)
//! the endpoints are sorted **once** with `sort_unstable`, and one
//! branch-light scan over the merged boundaries maintains a retractable
//! running state ([`SweepAggregate`]): delta summation (+v at start, −v
//! past end) for `COUNT`/`SUM`/`AVG`, an ordered multiset for `MIN`/`MAX`.
//!
//! Contrast with the paper's structures: the aggregation tree degenerates
//! to O(n²) on sorted input and chases pointers on every insertion; the
//! linked list re-scans its cells per tuple. The sweep's costs are two
//! `sort_unstable` passes over flat `i64` columns plus a linear merge —
//! the layout the CPU prefetcher was built for — and it is completely
//! insensitive to tuple ordering. It produces exactly the same constant
//! intervals as the other algorithms (one entry per boundary segment, not
//! value-coalesced), so it drops into [`PartitionedAggregator`] and the
//! seam-stitching executor unchanged and byte-identically.
//!
//! [`PartitionedAggregator`]: crate::parallel::PartitionedAggregator

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::traits::TemporalAggregator;
use tempagg_agg::SweepAggregate;
#[cfg(feature = "validate")]
use tempagg_core::SeriesEntry;
use tempagg_core::{Chunk, Interval, Result, SeriesSink, TempAggError, Timestamp};

/// The columnar endpoint-sweep algorithm.
///
/// # Example
///
/// ```
/// use tempagg_agg::Sum;
/// use tempagg_algo::{SweepAggregator, TemporalAggregator};
/// use tempagg_core::{Interval, Timestamp};
///
/// let mut sweep = SweepAggregator::new(Sum::<i64>::new());
/// sweep.push(Interval::at(0, 10), 5).unwrap();
/// sweep.push(Interval::at(5, 15), 7).unwrap();
/// let series = sweep.finish();
/// assert_eq!(series.value_at(Timestamp(7)), Some(&Some(12)));
/// ```
#[derive(Clone, Debug)]
pub struct SweepAggregator<A: SweepAggregate> {
    agg: A,
    domain: Interval,
    starts: Vec<Timestamp>,
    ends: Vec<Timestamp>,
    values: Vec<A::Input>,
}

impl<A: SweepAggregate> SweepAggregator<A> {
    /// A sweep over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// A sweep over an explicit domain.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        SweepAggregator {
            agg,
            domain,
            starts: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Tuples buffered so far.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The constant-interval boundaries induced by the buffered runs: the
    /// domain start, every tuple start, and the instant after every tuple
    /// end — sorted and deduplicated.
    fn boundaries(&self) -> Vec<Timestamp> {
        let mut boundaries = Vec::with_capacity(2 * self.starts.len() + 1);
        boundaries.push(self.domain.start());
        for &s in &self.starts {
            if s > self.domain.start() {
                boundaries.push(s);
            }
        }
        for &e in &self.ends {
            if e < self.domain.end() {
                boundaries.push(e.next());
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries
    }
}

impl<A: SweepAggregate> TemporalAggregator<A> for SweepAggregator<A> {
    fn algorithm(&self) -> &'static str {
        "endpoint-sweep"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        self.starts.push(interval.start());
        self.ends.push(interval.end());
        self.values.push(value);
        Ok(())
    }

    /// Batched insert: a straight column append — three `memcpy`-style
    /// `extend_from_slice` calls via
    /// [`Chunk::append_columns_to`](tempagg_core::Chunk::append_columns_to).
    /// The whole batch is domain-checked before any column is touched.
    fn push_batch(&mut self, chunk: &Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        if let Some(outside) = chunk.first_outside(self.domain) {
            return Err(TempAggError::OutOfDomain {
                tuple: (outside.start(), outside.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        chunk.append_columns_to(&mut self.starts, &mut self.ends, &mut self.values);
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        let n = self.starts.len();
        let boundaries = self.boundaries();

        // Two endpoint orders over the same runs, sorted once. Indirect
        // sort keeps the value column untouched — only flat index arrays
        // and `i64` keys move.
        let mut by_start: Vec<usize> = (0..n).collect();
        by_start.sort_unstable_by_key(|&i| self.starts[i]);
        let mut by_end: Vec<usize> = (0..n).collect();
        by_end.sort_unstable_by_key(|&i| self.ends[i]);

        // Under `validate` the scan is materialized first so the tiling
        // check can inspect it; otherwise every segment streams straight
        // out of the endpoint scan.
        #[cfg(feature = "validate")]
        let mut entries: Vec<SeriesEntry<A::Output>> = Vec::with_capacity(boundaries.len());
        let mut active = self.agg.active_empty();
        let (mut si, mut ei) = (0usize, 0usize);
        // lint: hot-loop(endpoint-scan) — the per-boundary admit/retract scan must stay allocation-free
        for (i, &start) in boundaries.iter().enumerate() {
            // A constant interval starting at `start` covers exactly the
            // tuples with tuple.start <= start <= tuple.end: admit newly
            // started runs, retract runs that ended before `start`.
            // lint: allow(indexing): by_start is a permutation of 0..n and si < n is the loop guard
            while si < n && self.starts[by_start[si]] <= start {
                self.agg
                    // lint: allow(indexing): same permutation bound as the loop guard above
                    .active_insert(&mut active, &self.values[by_start[si]]);
                si += 1;
            }
            // lint: allow(indexing): by_end is a permutation of 0..n and ei < n is the loop guard
            while ei < n && self.ends[by_end[ei]] < start {
                self.agg
                    // lint: allow(indexing): same permutation bound as the loop guard above
                    .active_remove(&mut active, &self.values[by_end[ei]]);
                ei += 1;
            }
            let end = boundaries
                .get(i + 1)
                .map_or(self.domain.end(), |next| next.prev());
            // lint: allow(no-unwrap): boundaries are sorted and deduplicated, so start <= end by construction
            let segment = Interval::new(start, end).expect("boundaries are increasing");
            let value = self.agg.active_output(&active);
            #[cfg(feature = "validate")]
            entries.push(SeriesEntry::new(segment, value));
            #[cfg(not(feature = "validate"))]
            sink.accept(segment, value);
        }
        #[cfg(feature = "validate")]
        {
            crate::validate::assert_series_tiles(&entries, self.domain, "endpoint-sweep");
            for e in entries {
                sink.accept(e.interval, e.value);
            }
        }
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.starts.len(),
            peak_nodes: self.starts.len(),
            // One buffered run: two timestamps plus the aggregate value
            // under the paper's 4-byte-word model. No pointers — that is
            // the point of the columnar layout.
            node_model_bytes: MODEL_POINTER_BYTES + self.agg.state_model_bytes(),
            node_actual_bytes: 2 * std::mem::size_of::<Timestamp>()
                + std::mem::size_of::<A::Input>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle;
    use tempagg_agg::{Count, Max, Min, Sum};

    fn employed_sweep() -> SweepAggregator<Count> {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::from_start(18), ()).unwrap();
        s.push(Interval::at(8, 20), ()).unwrap();
        s.push(Interval::at(7, 12), ()).unwrap();
        s.push(Interval::at(18, 21), ()).unwrap();
        s
    }

    #[test]
    fn table1_result() {
        let s = employed_sweep().finish();
        let rows: Vec<(Interval, u64)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 6), 0),
                (Interval::at(7, 7), 1),
                (Interval::at(8, 12), 2),
                (Interval::at(13, 17), 1),
                (Interval::at(18, 20), 3),
                (Interval::at(21, 21), 2),
                (Interval::from_start(22), 1),
            ]
        );
    }

    #[test]
    fn empty_sweep_emits_domain() {
        let s: SweepAggregator<Count> = SweepAggregator::with_domain(Count, Interval::at(0, 9));
        assert!(s.is_empty());
        let out = s.finish();
        assert_eq!(out.len(), 1);
        assert_eq!(out.entries()[0].interval, Interval::at(0, 9));
        assert_eq!(out.entries()[0].value, 0);
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut s = SweepAggregator::with_domain(Count, Interval::at(10, 20));
        assert!(s.push(Interval::at(5, 15), ()).is_err());
        assert_eq!(s.len(), 0);
        assert!(s.push(Interval::at(10, 20), ()).is_ok());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn push_batch_is_column_append() {
        let mut chunk: Chunk<i64> = Chunk::with_capacity(8);
        chunk.push(Interval::at(0, 10), 5).unwrap();
        chunk.push(Interval::at(5, 15), 7).unwrap();

        let mut batched = SweepAggregator::new(Sum::<i64>::new());
        batched.push_batch(&chunk).unwrap();
        assert_eq!(batched.len(), 2);

        let mut serial = SweepAggregator::new(Sum::<i64>::new());
        for (iv, v) in &chunk {
            serial.push(iv, *v).unwrap();
        }
        assert_eq!(batched.finish().entries(), serial.finish().entries());
    }

    #[test]
    fn push_batch_checks_whole_batch_first() {
        let mut chunk: Chunk<i64> = Chunk::with_capacity(8);
        chunk.push(Interval::at(0, 10), 1).unwrap();
        chunk.push(Interval::at(90, 120), 2).unwrap();
        let mut s = SweepAggregator::with_domain(Sum::<i64>::new(), Interval::at(0, 100));
        assert!(s.push_batch(&chunk).is_err());
        // Nothing was ingested — not even the in-domain tuple.
        assert!(s.is_empty());
    }

    #[test]
    fn min_multiset_survives_duplicate_values() {
        // Two tuples with the same value; one expires first. A naive
        // extremum would lose the survivor.
        let mut s = SweepAggregator::with_domain(Min::<i64>::new(), Interval::at(0, 30));
        s.push(Interval::at(0, 10), 5).unwrap();
        s.push(Interval::at(0, 20), 5).unwrap();
        s.push(Interval::at(0, 30), 9).unwrap();
        let out = s.finish();
        let rows: Vec<(Interval, Option<i64>)> =
            out.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 10), Some(5)),
                (Interval::at(11, 20), Some(5)),
                (Interval::at(21, 30), Some(9)),
            ]
        );
    }

    #[test]
    fn duplicate_endpoints_collapse_to_one_boundary() {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::at(5, 9), ()).unwrap();
        s.push(Interval::at(5, 9), ()).unwrap();
        let out = s.finish();
        let rows: Vec<(Interval, u64)> = out.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 4), 0),
                (Interval::at(5, 9), 2),
                (Interval::from_start(10), 0),
            ]
        );
    }

    #[test]
    fn matches_oracle_on_touching_intervals() {
        let tuples = vec![
            (Interval::at(0, 9), 3i64),
            (Interval::at(10, 19), 4),
            (Interval::at(20, 20), 5),
        ];
        let domain = Interval::at(0, 25);
        let mut s = SweepAggregator::with_domain(Max::<i64>::new(), domain);
        for (iv, v) in &tuples {
            s.push(*iv, *v).unwrap();
        }
        let want = oracle(&Max::<i64>::new(), domain, &tuples);
        assert_eq!(s.finish().entries(), want.entries());
    }

    #[test]
    fn forever_end_needs_no_boundary() {
        let mut s = SweepAggregator::new(Count);
        s.push(Interval::from_start(5), ()).unwrap();
        let out = s.finish();
        assert_eq!(out.len(), 2);
        assert_eq!(out.entries()[1].interval, Interval::from_start(5));
        assert_eq!(out.entries()[1].value, 1);
    }

    #[test]
    fn memory_reports_columnar_runs() {
        let s = employed_sweep();
        let m = s.memory();
        assert_eq!(m.live_nodes, 4);
        assert_eq!(m.peak_nodes, 4);
        // Two 4-byte timestamps + COUNT's 4-byte state under the paper's
        // model: 12 bytes per run, pointer-free.
        assert_eq!(m.node_model_bytes, 12);
    }
}
