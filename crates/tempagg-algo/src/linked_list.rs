//! The linked-list ("naive") algorithm (Section 4.2).
//!
//! An ordered list of constant intervals, each with a partial aggregate
//! state, is maintained over the whole domain. For each tuple, the list is
//! scanned from the head for the element containing the tuple's start time
//! (exactly as the paper's implementation "simply compare[s] the tuple's
//! start and end times with the start and end times of each interval in the
//! list"); that element and the element containing the end time are split,
//! and every element in between has its state updated.
//!
//! This is a one-scan improvement over Tuma's two-scan approach, but the
//! per-tuple head scan makes it `O(n · |result|)` — the paper measures it
//! ~300× slower than the aggregation tree at 64K tuples, while noting it is
//! perfectly adequate when the result has few constant intervals and that
//! it is completely insensitive to tuple lifespans and ordering.

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError};

/// One list element: a constant interval and its partial aggregate.
#[derive(Clone, Debug)]
struct Cell<S> {
    interval: Interval,
    state: S,
}

/// The linked-list algorithm.
///
/// # Example
///
/// ```
/// use tempagg_agg::Sum;
/// use tempagg_algo::{LinkedListAggregate, TemporalAggregator};
/// use tempagg_core::{Interval, Timestamp};
///
/// let mut list = LinkedListAggregate::new(Sum::<i64>::new());
/// list.push(Interval::at(0, 10), 5).unwrap();
/// list.push(Interval::at(5, 15), 7).unwrap();
/// let series = list.finish();
/// assert_eq!(series.value_at(Timestamp(7)), Some(&Some(12)));
/// ```
///
/// The cells are kept in a `Vec` in time order; lookup still scans from the
/// head, faithful to the paper's cost model, and splits splice into the
/// vector. (A pointer-chained list would only add cache misses on top of
/// the same asymptotics.)
#[derive(Clone, Debug)]
pub struct LinkedListAggregate<A: Aggregate> {
    agg: A,
    cells: Vec<Cell<A::State>>,
    domain: Interval,
    peak_cells: usize,
    tuples: usize,
}

impl<A: Aggregate> LinkedListAggregate<A> {
    /// A list over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// A list over an explicit domain, initially one empty constant
    /// interval spanning it.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        let cells = vec![Cell {
            interval: domain,
            state: agg.empty_state(),
        }];
        LinkedListAggregate {
            agg,
            cells,
            domain,
            peak_cells: 1,
            tuples: 0,
        }
    }

    /// Tuples inserted so far.
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Current number of list cells (constant intervals).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Split the cell at `idx` so that a constant interval begins exactly
    /// at `s` (no-op if it already does). After the call, `idx` addresses
    /// the cell starting at `s`.
    fn ensure_start_boundary(&mut self, idx: usize, s: tempagg_core::Timestamp) -> usize {
        if let Some((left, right)) = self.cells[idx].interval.split_before(s) {
            let state = self.cells[idx].state.clone();
            self.cells[idx].interval = left;
            self.cells.insert(
                idx + 1,
                Cell {
                    interval: right,
                    state,
                },
            );
            idx + 1
        } else {
            idx
        }
    }

    /// Split the cell at `idx` so that a constant interval ends exactly at
    /// `e` (no-op if it already does). `idx` keeps addressing the left
    /// (ending-at-`e`) part.
    fn ensure_end_boundary(&mut self, idx: usize, e: tempagg_core::Timestamp) {
        if let Some((left, right)) = self.cells[idx].interval.split_after(e) {
            let state = self.cells[idx].state.clone();
            self.cells[idx].interval = left;
            self.cells.insert(
                idx + 1,
                Cell {
                    interval: right,
                    state,
                },
            );
        }
    }

    /// Split boundaries and fold `value` into every covered cell, starting
    /// from the cell at `idx`, which must contain the tuple's start time.
    /// The shared tail of the head-scan and binary-search insert paths.
    fn apply_at(&mut self, mut idx: usize, interval: Interval, value: &A::Input) {
        idx = self.ensure_start_boundary(idx, interval.start());
        // Update every wholly-covered element until the one containing the
        // end time, splitting it if the end falls inside.
        loop {
            // lint: allow(indexing): idx starts at a cell containing interval.start and the break below fires before idx can pass the cell containing interval.end
            let cell_end = self.cells[idx].interval.end();
            if cell_end >= interval.end() {
                self.ensure_end_boundary(idx, interval.end());
                // lint: allow(indexing): same walk invariant — idx still addresses the end-containing cell
                self.agg.insert(&mut self.cells[idx].state, value);
                break;
            }
            // lint: allow(indexing): same walk invariant — idx is behind the end-containing cell here
            self.agg.insert(&mut self.cells[idx].state, value);
            idx += 1;
        }
        self.peak_cells = self.peak_cells.max(self.cells.len());
        self.tuples += 1;
    }
}

impl<A: Aggregate> TemporalAggregator<A> for LinkedListAggregate<A> {
    fn algorithm(&self) -> &'static str {
        "linked-list"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        // Head scan for the element containing the start time — the
        // paper's list walk. The list partitions the domain, so this always
        // finds one.
        let idx = self
            .cells
            .iter()
            .position(|c| c.interval.contains(interval.start()))
            .ok_or_else(|| {
                TempAggError::internal(format!(
                    "no list cell contains {} — the cells no longer partition the domain",
                    interval.start()
                ))
            })?;
        self.apply_at(idx, interval, &value);
        Ok(())
    }

    /// Batched insert: the start cell is found by *binary search* over the
    /// time-ordered cells instead of the paper's head scan, turning the
    /// per-tuple lookup from `O(cells)` into `O(log cells)`. The serial
    /// [`push`](TemporalAggregator::push) keeps the head scan to stay
    /// faithful to the paper's cost model; the batch path is the modern
    /// fast path the executors use. The whole batch is domain-checked
    /// before any cell is touched.
    fn push_batch(&mut self, chunk: &tempagg_core::Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        for i in 0..chunk.len() {
            let Some(interval) = chunk.interval(i) else {
                return Err(TempAggError::internal("chunk columns out of step"));
            };
            if !self.domain.covers(&interval) {
                return Err(TempAggError::OutOfDomain {
                    tuple: (interval.start(), interval.end()),
                    domain: (self.domain.start(), self.domain.end()),
                });
            }
        }
        for (interval, value) in chunk {
            // The cells tile the domain in time order, so the first cell
            // not ending before the start time contains it.
            let idx = self
                .cells
                .partition_point(|c| c.interval.end() < interval.start());
            if idx >= self.cells.len() {
                return Err(TempAggError::internal(format!(
                    "no list cell contains {} — the cells no longer partition the domain",
                    interval.start()
                )));
            }
            self.apply_at(idx, interval, value);
        }
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        let agg = self.agg;
        for c in self.cells {
            sink.accept(c.interval, agg.finish(&c.state));
        }
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.cells.len(),
            peak_nodes: self.peak_cells,
            // "The linked list algorithm used 16 bytes per node as it
            // stored two timestamps" (plus the aggregate value).
            node_model_bytes: MODEL_POINTER_BYTES
                + self.agg.state_model_bytes()
                + MODEL_POINTER_BYTES / 2,
            node_actual_bytes: std::mem::size_of::<Cell<A::State>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Count, Sum};

    fn employed_list() -> LinkedListAggregate<Count> {
        let mut l = LinkedListAggregate::new(Count);
        l.push(Interval::from_start(18), ()).unwrap();
        l.push(Interval::at(8, 20), ()).unwrap();
        l.push(Interval::at(7, 12), ()).unwrap();
        l.push(Interval::at(18, 21), ()).unwrap();
        l
    }

    #[test]
    fn table1_result() {
        let s = employed_list().finish();
        let rows: Vec<(Interval, u64)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 6), 0),
                (Interval::at(7, 7), 1),
                (Interval::at(8, 12), 2),
                (Interval::at(13, 17), 1),
                (Interval::at(18, 20), 3),
                (Interval::at(21, 21), 2),
                (Interval::from_start(22), 1),
            ]
        );
    }

    #[test]
    fn one_cell_per_unique_timestamp_plus_one() {
        // "each unique timestamp adds … only one [node] in the case of the
        // linked list algorithm" (Section 7): 6 unique timestamps → 7 cells.
        let l = employed_list();
        assert_eq!(l.cell_count(), 7);
        let m = l.memory();
        assert_eq!(m.live_nodes, 7);
        assert_eq!(m.peak_nodes, 7);
        assert_eq!(m.node_model_bytes, 16);
    }

    #[test]
    fn duplicate_intervals_share_cells() {
        let mut l = LinkedListAggregate::new(Count);
        l.push(Interval::at(5, 9), ()).unwrap();
        l.push(Interval::at(5, 9), ()).unwrap();
        assert_eq!(l.cell_count(), 3);
        let s = l.finish();
        assert_eq!(s.entries()[1].value, 2);
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut l = LinkedListAggregate::with_domain(Count, Interval::at(10, 20));
        assert!(l.push(Interval::at(5, 15), ()).is_err());
        assert_eq!(l.len(), 0);
        assert!(l.push(Interval::at(10, 20), ()).is_ok());
        assert_eq!(l.len(), 1);
        assert!(!l.is_empty());
    }

    #[test]
    fn empty_list_emits_domain() {
        let l: LinkedListAggregate<Count> = LinkedListAggregate::new(Count);
        let s = l.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, Interval::TIMELINE);
        assert_eq!(s.entries()[0].value, 0);
    }

    #[test]
    fn sum_with_overlapping_updates() {
        let mut l = LinkedListAggregate::new(Sum::<i64>::new());
        l.push(Interval::at(0, 10), 5).unwrap();
        l.push(Interval::at(5, 15), 7).unwrap();
        let s = l.finish();
        let rows: Vec<(Interval, Option<i64>)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 4), Some(5)),
                (Interval::at(5, 10), Some(12)),
                (Interval::at(11, 15), Some(7)),
                (Interval::from_start(16), None),
            ]
        );
    }

    #[test]
    fn boundary_reuse_no_split() {
        let mut l = LinkedListAggregate::new(Count);
        l.push(Interval::at(0, 9), ()).unwrap();
        // Starts exactly where the previous ended + 1: boundary exists.
        l.push(Interval::at(10, 19), ()).unwrap();
        assert_eq!(l.cell_count(), 3);
    }

    #[test]
    fn covering_whole_domain() {
        let mut l = LinkedListAggregate::with_domain(Count, Interval::at(0, 99));
        l.push(Interval::at(0, 99), ()).unwrap();
        assert_eq!(l.cell_count(), 1);
        let s = l.finish();
        assert_eq!(s.entries()[0].value, 1);
    }
}
