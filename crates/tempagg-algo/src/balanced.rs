//! A *balanced* aggregation tree — the first item on the paper's
//! future-work list (Section 7): "One alternative to examine is a balanced
//! aggregation tree, which should be especially efficient in the case of a
//! k-ordered relation."
//!
//! Buffering the input lets us know every constant-interval boundary up
//! front, so the tree can be built perfectly balanced over the sorted
//! boundaries (this is exactly the segment tree of Preparata & Shamos that
//! Section 5.1 cites). Insertions then cost `O(log n)` regardless of input
//! order, trading the incremental algorithms' single-pass property for
//! immunity to the sorted-input `O(n²)` blow-up — an ablation measured by
//! the benchmark harness.

use crate::memory::{model_node_bytes, MemoryStats};
use crate::traits::TemporalAggregator;
use crate::tree::arena::Node;
use crate::tree::{ops, Arena, NodeId};
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError, Timestamp};

/// The balanced aggregation tree (buffered; two passes over the input like
/// the two-scan baseline, but with the aggregation tree's covering
/// insertions).
#[derive(Clone, Debug)]
pub struct BalancedAggregationTree<A: Aggregate> {
    agg: A,
    domain: Interval,
    buffered: Vec<(Interval, A::Input)>,
}

impl<A: Aggregate> BalancedAggregationTree<A> {
    /// Over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// Over an explicit domain.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        BalancedAggregationTree {
            agg,
            domain,
            buffered: Vec::new(),
        }
    }

    /// Tuples buffered so far.
    pub fn len(&self) -> usize {
        self.buffered.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }

    /// Build a perfectly balanced tree whose leaves are the constant
    /// intervals delimited by `boundaries` (which starts with the domain
    /// start). Returns the root.
    fn build(arena: &mut Arena<A::State>, agg: &A, boundaries: &[Timestamp]) -> NodeId {
        // Recursion depth is log₂(n) — safe.
        fn rec<A: Aggregate>(
            arena: &mut Arena<A::State>,
            agg: &A,
            boundaries: &[Timestamp],
            lo: usize,
            hi: usize,
        ) -> NodeId {
            if hi - lo == 1 {
                return arena.alloc_leaf(agg.empty_state());
            }
            let mid = lo + (hi - lo) / 2;
            let left = rec(arena, agg, boundaries, lo, mid);
            let right = rec(arena, agg, boundaries, mid, hi);
            let split = boundaries[mid].prev();
            let id = arena.alloc_leaf(agg.empty_state());
            let node = arena.get_mut(id);
            node.split = split;
            node.left = left;
            node.right = right;
            id
        }
        rec(arena, agg, boundaries, 0, boundaries.len())
    }
}

impl<A: Aggregate> TemporalAggregator<A> for BalancedAggregationTree<A> {
    fn algorithm(&self) -> &'static str {
        "balanced-aggregation-tree"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        self.buffered.push((interval, value));
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        // Pass 1: boundaries (each boundary is the first instant of a
        // constant interval).
        let mut boundaries: Vec<Timestamp> = Vec::with_capacity(2 * self.buffered.len() + 1);
        boundaries.push(self.domain.start());
        for (iv, _) in &self.buffered {
            if iv.start() > self.domain.start() {
                boundaries.push(iv.start());
            }
            if iv.end() < self.domain.end() {
                boundaries.push(iv.end().next());
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut arena: Arena<A::State> = Arena::with_capacity(2 * boundaries.len());
        let root = Self::build(&mut arena, &self.agg, &boundaries);

        // Pass 2: covering insertions; every endpoint is an existing
        // boundary, so no leaf ever splits and each insert is O(depth).
        for (iv, value) in &self.buffered {
            ops::insert(&mut arena, &self.agg, root, self.domain, *iv, value)
                // lint: allow(no-unwrap): pass 1 registered both endpoints as boundaries, so insert cannot hit a malformed split
                .expect("pass 1 registered every endpoint as a boundary");
        }

        #[cfg(feature = "validate")]
        {
            // Materialize so the oracle comparison can inspect the whole
            // series before anything reaches the sink.
            let series = ops::emit_series(&arena, &self.agg, root, self.domain);
            if self.buffered.len() <= crate::validate::ORACLE_CAP {
                assert!(
                    series == crate::oracle::oracle(&self.agg, self.domain, &self.buffered),
                    "validate[balanced-aggregation-tree]: series disagrees with the oracle"
                );
            }
            for e in series {
                sink.accept(e.interval, e.value);
            }
        }
        #[cfg(not(feature = "validate"))]
        ops::emit(
            &arena,
            &self.agg,
            root,
            self.domain,
            self.agg.empty_state(),
            sink,
        );
    }

    fn memory(&self) -> MemoryStats {
        // `finish` builds 2·boundaries − 1 nodes; before it runs, report
        // the worst-case estimate (every endpoint unique) so the planner
        // can compare against the incremental algorithms.
        let estimated_nodes = 2 * (2 * self.buffered.len() + 1) - 1;
        MemoryStats {
            live_nodes: estimated_nodes,
            peak_nodes: estimated_nodes,
            node_model_bytes: model_node_bytes(self.agg.state_model_bytes()),
            node_actual_bytes: std::mem::size_of::<Node<A::State>>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle;
    use tempagg_agg::{Count, Sum};

    #[test]
    fn matches_oracle_on_table1() {
        let tuples = vec![
            (Interval::from_start(18), ()),
            (Interval::at(8, 20), ()),
            (Interval::at(7, 12), ()),
            (Interval::at(18, 21), ()),
        ];
        let mut t = BalancedAggregationTree::new(Count);
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
        }
        assert_eq!(t.finish(), oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn sorted_input_stays_logarithmic() {
        // The unbalanced tree would become a linear list here; the
        // balanced tree's shape is input-order independent.
        let tuples: Vec<(Interval, ())> = (0..1_000)
            .map(|i| (Interval::at(i * 10, i * 10 + 5), ()))
            .collect();
        let mut t = BalancedAggregationTree::new(Count);
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
        }
        assert_eq!(t.finish(), oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn random_order_equals_sorted_order() {
        let sorted: Vec<(Interval, i64)> = (0..200)
            .map(|i| (Interval::at(i * 5, i * 5 + 12), i))
            .collect();
        let mut shuffled = sorted.clone();
        // Deterministic shuffle.
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, (i * 7919) % (i + 1));
        }
        let run = |tuples: &[(Interval, i64)]| {
            let mut t = BalancedAggregationTree::new(Sum::<i64>::new());
            for &(iv, v) in tuples {
                t.push(iv, v).unwrap();
            }
            t.finish()
        };
        assert_eq!(run(&sorted), run(&shuffled));
    }

    #[test]
    fn empty_input() {
        let t = BalancedAggregationTree::with_domain(Count, Interval::at(0, 10));
        let s = t.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].value, 0);
    }

    #[test]
    fn single_tuple_covering_domain() {
        let mut t = BalancedAggregationTree::with_domain(Count, Interval::at(0, 10));
        t.push(Interval::at(0, 10), ()).unwrap();
        let s = t.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].value, 1);
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut t = BalancedAggregationTree::with_domain(Count, Interval::at(0, 10));
        assert!(t.push(Interval::at(0, 11), ()).is_err());
    }
}
