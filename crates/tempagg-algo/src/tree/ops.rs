//! Tree operations shared by the aggregation tree, the k-ordered
//! aggregation tree, and the balanced variant: covering insertion, ordered
//! emission, and diagnostics.
//!
//! All walks are iterative with explicit stacks: the paper's worst case
//! (sorted input) degenerates the tree into a linear list of depth `n`,
//! which would overflow the call stack long before it troubles a `Vec`.

use super::arena::{Arena, NodeId};
use tempagg_agg::Aggregate;
#[cfg(any(test, feature = "validate"))]
use tempagg_core::Series;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError, Timestamp};

/// Insert a tuple's interval and value into the subtree rooted at `root`
/// (which covers `range`), splitting leaves at the tuple's start and end
/// times as needed (Section 5.1).
///
/// Requires `range.covers(interval)`; callers validate against their
/// domain first. Errors only if a tree invariant has been violated
/// ([`TempAggError::Internal`]), which indicates a bug rather than bad
/// input. Under the `validate` feature the updated subtree's shape and the
/// insertion's exact-cover property are checked before returning.
pub fn insert<A: Aggregate>(
    arena: &mut Arena<A::State>,
    agg: &A,
    root: NodeId,
    range: Interval,
    interval: Interval,
    value: &A::Input,
) -> Result<()> {
    debug_assert!(range.covers(&interval));
    #[cfg(feature = "validate")]
    let mut covered: Vec<Interval> = Vec::new();
    // (node, node's extent); only nodes overlapping `interval` are pushed.
    let mut stack: Vec<(NodeId, Interval)> = vec![(root, range)];
    while let Some((id, node_range)) = stack.pop() {
        if interval.covers(&node_range) {
            // The tuple spans this whole node: record it here and do not
            // descend — the key saving over per-leaf updates.
            agg.insert(&mut arena.get_mut(id).state, value);
            #[cfg(feature = "validate")]
            covered.push(node_range);
            continue;
        }
        if arena.get(id).is_leaf() {
            // Partial overlap with a constant interval: split it in two at
            // whichever tuple endpoint falls strictly inside, then
            // reprocess this node as an internal one.
            let (split, halves) = if interval.start() > node_range.start() {
                (
                    interval.start().prev(),
                    node_range.split_before(interval.start()).ok_or_else(|| {
                        TempAggError::internal(format!(
                            "tuple start {} does not lie strictly inside leaf {node_range}",
                            interval.start()
                        ))
                    })?,
                )
            } else {
                (
                    interval.end(),
                    node_range.split_after(interval.end()).ok_or_else(|| {
                        TempAggError::internal(format!(
                            "tuple end {} does not lie strictly inside leaf {node_range}",
                            interval.end()
                        ))
                    })?,
                )
            };
            debug_assert_eq!(halves.0.end(), split);
            // Children start empty: the old leaf's state stays on what is
            // now their parent and continues to apply to both halves via
            // path accumulation.
            let left = arena.alloc_leaf(agg.empty_state());
            let right = arena.alloc_leaf(agg.empty_state());
            let node = arena.get_mut(id);
            node.split = split;
            node.left = left;
            node.right = right;
            stack.push((id, node_range));
            continue;
        }
        let node = arena.get(id);
        let (split, left, right) = (node.split, node.left, node.right);
        if interval.start() <= split {
            let child = Interval::new(node_range.start(), split).map_err(|_| {
                TempAggError::internal(format!(
                    "split {split} precedes its node's extent {node_range}"
                ))
            })?;
            stack.push((left, child));
        }
        if interval.end() > split {
            let child = Interval::new(split.next(), node_range.end()).map_err(|_| {
                TempAggError::internal(format!(
                    "split {split} passes its node's extent {node_range}"
                ))
            })?;
            stack.push((right, child));
        }
    }
    #[cfg(feature = "validate")]
    {
        crate::validate::assert_exact_cover(interval, &mut covered, "tree-insert");
        if arena.live() <= crate::validate::SHAPE_CAP {
            crate::validate::assert_tree_shape(arena, root, range, "tree-insert");
        }
    }
    Ok(())
}

/// Depth-first, time-ordered emission of a subtree's constant intervals,
/// accumulating partial states along each root→leaf path (Section 5.1's
/// final step). Streams `(interval, finish(acc ⊕ path states ⊕ leaf state))`
/// for every leaf into `out` — any [`SeriesSink`], so results can flow to
/// a bounded sink without an intermediate `Vec`.
pub fn emit<A: Aggregate>(
    arena: &Arena<A::State>,
    agg: &A,
    root: NodeId,
    range: Interval,
    acc: A::State,
    out: &mut impl SeriesSink<A::Output>,
) {
    let mut stack: Vec<(NodeId, Interval, A::State)> = vec![(root, range, acc)];
    while let Some((id, range, mut acc)) = stack.pop() {
        let node = arena.get(id);
        agg.merge(&mut acc, &node.state);
        if node.is_leaf() {
            out.accept(range, agg.finish(&acc));
        } else {
            // LIFO: push right first so the left (earlier) half pops first.
            stack.push((
                node.right,
                // lint: allow(no-unwrap): split ordering is enforced by insert and re-checked by the validate feature's tree-shape walk
                Interval::new(node.split.next(), range.end()).expect("valid split"),
                acc.clone(),
            ));
            stack.push((
                node.left,
                // lint: allow(no-unwrap): same split-ordering invariant as the right child
                Interval::new(range.start(), node.split).expect("valid split"),
                acc,
            ));
        }
    }
}

/// Emit a whole tree as a [`Series`].
#[cfg(any(test, feature = "validate"))]
pub fn emit_series<A: Aggregate>(
    arena: &Arena<A::State>,
    agg: &A,
    root: NodeId,
    range: Interval,
) -> Series<A::Output> {
    let mut out = Vec::new();
    emit(arena, agg, root, range, agg.empty_state(), &mut out);
    Series::from_entries(out)
}

/// The leaf extents of a subtree in time order (each is one constant
/// interval). Diagnostic; used by tests reproducing Figure 3.
pub fn leaf_intervals<S>(arena: &Arena<S>, root: NodeId, range: Interval) -> Vec<Interval> {
    let mut out = Vec::new();
    let mut stack = vec![(root, range)];
    while let Some((id, range)) = stack.pop() {
        let node = arena.get(id);
        if node.is_leaf() {
            out.push(range);
        } else {
            stack.push((
                node.right,
                // lint: allow(no-unwrap): split ordering is enforced by insert; diagnostics walk the same tree
                Interval::new(node.split.next(), range.end()).expect("valid split"),
            ));
            stack.push((
                node.left,
                // lint: allow(no-unwrap): same split-ordering invariant as the right child
                Interval::new(range.start(), node.split).expect("valid split"),
            ));
        }
    }
    out
}

/// Maximum root→leaf depth (1 for a single leaf). Diagnostic; the paper's
/// sorted-input worst case shows up as depth ≈ node count.
pub fn depth<S>(arena: &Arena<S>, root: NodeId) -> usize {
    let mut max = 0;
    let mut stack = vec![(root, 1usize)];
    while let Some((id, d)) = stack.pop() {
        let node = arena.get(id);
        if node.is_leaf() {
            max = max.max(d);
        } else {
            stack.push((node.left, d + 1));
            stack.push((node.right, d + 1));
        }
    }
    max
}

/// Multi-line rendering of a subtree for debugging and doc examples, e.g.:
///
/// ```text
/// [0, ∞] split 17 state 0
///   [0, 17] leaf state 0
///   [18, ∞] leaf state 1
/// ```
pub fn render<S: std::fmt::Debug>(arena: &Arena<S>, root: NodeId, range: Interval) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // (node, extent, indent); pushed right-then-left for pre-order output.
    let mut stack = vec![(root, range, 0usize)];
    while let Some((id, range, indent)) = stack.pop() {
        let node = arena.get(id);
        for _ in 0..indent {
            out.push_str("  ");
        }
        if node.is_leaf() {
            let _ = writeln!(out, "{} leaf state {:?}", range, node.state);
        } else {
            let _ = writeln!(out, "{} split {} state {:?}", range, node.split, node.state);
            stack.push((
                node.right,
                // lint: allow(no-unwrap): split ordering is enforced by insert; rendering walks the same tree
                Interval::new(node.split.next(), range.end()).expect("valid split"),
                indent + 1,
            ));
            stack.push((
                node.left,
                // lint: allow(no-unwrap): same split-ordering invariant as the right child
                Interval::new(range.start(), node.split).expect("valid split"),
                indent + 1,
            ));
        }
    }
    out
}

/// Split bookkeeping helper: the split value that separates `[lo, s-1]`
/// from `[s, hi]`.
#[allow(dead_code)]
pub fn split_for_start(s: Timestamp) -> Timestamp {
    s.prev()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::Count;

    fn new_tree() -> (Arena<u64>, NodeId) {
        let mut arena = Arena::new();
        let root = arena.alloc_leaf(0);
        (arena, root)
    }

    #[test]
    fn insert_figure3_first_tuple() {
        // Figure 3.b: inserting [18, ∞] into the initial tree [0, ∞].
        let (mut arena, root) = new_tree();
        insert(
            &mut arena,
            &Count,
            root,
            Interval::TIMELINE,
            Interval::from_start(18),
            &(),
        )
        .unwrap();
        let leaves = leaf_intervals(&arena, root, Interval::TIMELINE);
        assert_eq!(leaves, vec![Interval::at(0, 17), Interval::from_start(18)]);
        // The covered half carries the count.
        let s = emit_series(&arena, &Count, root, Interval::TIMELINE);
        assert_eq!(s.entries()[0].value, 0);
        assert_eq!(s.entries()[1].value, 1);
        assert_eq!(arena.live(), 3);
    }

    #[test]
    fn insert_fully_covering_updates_root_only() {
        let (mut arena, root) = new_tree();
        insert(
            &mut arena,
            &Count,
            root,
            Interval::TIMELINE,
            Interval::TIMELINE,
            &(),
        )
        .unwrap();
        assert_eq!(arena.live(), 1, "no split needed");
        let s = emit_series(&arena, &Count, root, Interval::TIMELINE);
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].value, 1);
    }

    #[test]
    fn insert_interior_interval_splits_twice() {
        let (mut arena, root) = new_tree();
        insert(
            &mut arena,
            &Count,
            root,
            Interval::TIMELINE,
            Interval::at(8, 20),
            &(),
        )
        .unwrap();
        let leaves = leaf_intervals(&arena, root, Interval::TIMELINE);
        assert_eq!(
            leaves,
            vec![
                Interval::at(0, 7),
                Interval::at(8, 20),
                Interval::from_start(21)
            ]
        );
        let s = emit_series(&arena, &Count, root, Interval::TIMELINE);
        let values: Vec<u64> = s.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![0, 1, 0]);
        // Two splits → four new nodes beyond the original root.
        assert_eq!(arena.live(), 5);
    }

    #[test]
    fn depth_and_render() {
        let (mut arena, root) = new_tree();
        assert_eq!(depth(&arena, root), 1);
        insert(
            &mut arena,
            &Count,
            root,
            Interval::TIMELINE,
            Interval::from_start(18),
            &(),
        )
        .unwrap();
        assert_eq!(depth(&arena, root), 2);
        let r = render(&arena, root, Interval::TIMELINE);
        assert!(r.contains("[0, ∞] split 17"), "render was:\n{r}");
        assert!(r.contains("[18, ∞] leaf state 1"), "render was:\n{r}");
    }
}
