//! Internal building blocks shared by the tree-based algorithms.

pub(crate) mod arena;
pub(crate) mod ops;

pub(crate) use arena::{Arena, NodeId};
