//! Index-based node arena shared by the tree algorithms.
//!
//! Nodes live in a `Vec` and refer to children by `u32` index, which (a)
//! avoids `Box`-chain recursion and its stack hazards on the paper's
//! worst-case linear trees, (b) is cache-friendlier than pointer chasing,
//! and (c) makes the live/peak node counting that Figure 9 needs — and the
//! k-ordered tree's garbage collection — trivial via a free list.

use tempagg_core::Timestamp;

/// Index of a node in an [`Arena`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Sentinel for "no child".
    pub const NIL: NodeId = NodeId(u32::MAX);

    #[inline]
    pub fn is_nil(self) -> bool {
        self == Self::NIL
    }

    #[inline]
    fn index(self) -> usize {
        // lint: allow(no-as-cast): u32 → usize is lossless on every supported target
        self.0 as usize
    }
}

/// One aggregation-tree node (Section 5.1, "the more efficient, single
/// timestamp per node variation: two child pointers, an aggregate-value,
/// and a timestamp split value").
///
/// A node covering `[lo, hi]` with split `m` has a left child covering
/// `[lo, m]` and a right child covering `[m+1, hi]`; node extents are
/// implicit in the path from the root. Leaves have `NIL` children and
/// represent constant intervals. `state` holds the partial aggregate of
/// tuples whose interval exactly covered this node during insertion.
#[derive(Clone, Debug)]
pub struct Node<S> {
    pub split: Timestamp,
    pub left: NodeId,
    pub right: NodeId,
    pub state: S,
}

impl<S> Node<S> {
    #[inline]
    pub fn is_leaf(&self) -> bool {
        self.left.is_nil()
    }
}

/// Slab of nodes with a free list and peak-usage tracking.
#[derive(Clone, Debug)]
pub struct Arena<S> {
    nodes: Vec<Node<S>>,
    free: Vec<NodeId>,
    live: usize,
    peak_live: usize,
}

impl<S> Arena<S> {
    pub fn new() -> Arena<S> {
        Arena {
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    pub fn with_capacity(capacity: usize) -> Arena<S> {
        Arena {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            live: 0,
            peak_live: 0,
        }
    }

    /// Pre-grow the slab for `additional` more live nodes, so a batch of
    /// insertions does not re-allocate mid-way.
    pub fn reserve(&mut self, additional: usize) {
        let projected = self.live + additional;
        self.nodes
            .reserve(projected.saturating_sub(self.nodes.len()));
    }

    /// Allocate a leaf with the given state.
    pub fn alloc_leaf(&mut self, state: S) -> NodeId {
        self.alloc(Node {
            split: Timestamp::ORIGIN,
            left: NodeId::NIL,
            right: NodeId::NIL,
            state,
        })
    }

    fn alloc(&mut self, node: Node<S>) -> NodeId {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        if let Some(id) = self.free.pop() {
            self.nodes[id.index()] = node;
            id
        } else {
            // lint: allow(no-unwrap): 4 billion nodes is past any workload this crate models; aborting beats corrupting ids
            let id = NodeId(u32::try_from(self.nodes.len()).expect("arena exceeds u32 indices"));
            self.nodes.push(node);
            id
        }
    }

    /// Return one node to the free list. The caller must not reference it
    /// afterwards; its slot will be recycled.
    pub fn free_one(&mut self, id: NodeId) {
        debug_assert!(!id.is_nil());
        self.live -= 1;
        self.free.push(id);
    }

    /// Free an entire subtree (iteratively — worst-case trees are linear).
    pub fn free_subtree(&mut self, root: NodeId) {
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            // lint: allow(indexing): NodeIds are only minted by alloc and the arena never shrinks, so index() < nodes.len()
            let node = &self.nodes[id.index()];
            if !node.is_leaf() {
                stack.push(node.left);
                stack.push(node.right);
            }
            self.free_one(id);
        }
    }

    #[inline]
    pub fn get(&self, id: NodeId) -> &Node<S> {
        &self.nodes[id.index()]
    }

    #[inline]
    pub fn get_mut(&mut self, id: NodeId) -> &mut Node<S> {
        &mut self.nodes[id.index()]
    }

    /// Number of nodes currently allocated.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live nodes.
    pub fn peak_live(&self) -> usize {
        self.peak_live
    }
}

impl<S> Default for Arena<S> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_peak_tracking() {
        let mut a: Arena<u64> = Arena::new();
        let n1 = a.alloc_leaf(0);
        let n2 = a.alloc_leaf(1);
        assert_ne!(n1, n2);
        assert_eq!(a.live(), 2);
        assert_eq!(a.peak_live(), 2);
        a.free_one(n1);
        assert_eq!(a.live(), 1);
        assert_eq!(a.peak_live(), 2, "peak survives frees");
        // Recycled slot keeps peak at 2.
        let n3 = a.alloc_leaf(2);
        assert_eq!(n3, n1, "free list recycles slots");
        assert_eq!(a.peak_live(), 2);
        assert_eq!(a.get(n3).state, 2);
    }

    #[test]
    fn leaves_have_nil_children() {
        let mut a: Arena<u64> = Arena::new();
        let id = a.alloc_leaf(7);
        assert!(a.get(id).is_leaf());
        assert!(a.get(id).left.is_nil());
        a.get_mut(id).state = 9;
        assert_eq!(a.get(id).state, 9);
    }

    #[test]
    fn free_subtree_releases_all() {
        let mut a: Arena<u64> = Arena::new();
        let l = a.alloc_leaf(0);
        let r = a.alloc_leaf(1);
        let root = a.alloc(Node {
            split: Timestamp(5),
            left: l,
            right: r,
            state: 0,
        });
        assert_eq!(a.live(), 3);
        a.free_subtree(root);
        assert_eq!(a.live(), 0);
        assert_eq!(a.peak_live(), 3);
    }
}
