//! The two-scan baseline (Section 4.1) modelled on Tuma's TempIS
//! implementation — the only temporal aggregation algorithm implemented
//! prior to the paper.
//!
//! Scan 1 determines the periods during which the relation remained fixed
//! (the constant intervals); scan 2 computes the aggregate value for each.
//! The paper's criticism is architectural: the relation must be *read
//! twice*. An in-memory reproduction cannot charge disk I/O, so this
//! implementation materializes the first scan's input and reports a
//! `scans() == 2` cost marker that the planner's cost model uses instead.

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::traits::TemporalAggregator;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, SeriesSink, TempAggError, Timestamp};

/// The two-scan (Tuma-style) algorithm.
#[derive(Clone, Debug)]
pub struct TwoScanAggregate<A: Aggregate> {
    agg: A,
    domain: Interval,
    /// Scan 1's buffered input (stands in for re-reading the relation).
    buffered: Vec<(Interval, A::Input)>,
    peak_cells: usize,
}

impl<A: Aggregate> TwoScanAggregate<A> {
    /// Over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// Over an explicit domain.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        TwoScanAggregate {
            agg,
            domain,
            buffered: Vec::new(),
            peak_cells: 0,
        }
    }

    /// Number of passes over the underlying relation this algorithm
    /// charges (always 2 — the paper's algorithms charge 1).
    pub const fn scans(&self) -> usize {
        2
    }

    /// Tuples buffered so far.
    pub fn len(&self) -> usize {
        self.buffered.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.buffered.is_empty()
    }
}

impl<A: Aggregate> TemporalAggregator<A> for TwoScanAggregate<A> {
    fn algorithm(&self) -> &'static str {
        "two-scan"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        self.buffered.push((interval, value));
        Ok(())
    }

    fn finish_into(mut self, sink: &mut impl SeriesSink<A::Output>) {
        // Scan 1: the constant-interval boundaries.
        let mut boundaries: Vec<Timestamp> = Vec::with_capacity(2 * self.buffered.len() + 1);
        boundaries.push(self.domain.start());
        for (iv, _) in &self.buffered {
            if iv.start() > self.domain.start() {
                boundaries.push(iv.start());
            }
            if iv.end() < self.domain.end() {
                boundaries.push(iv.end().next());
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();

        let mut cells: Vec<(Interval, A::State)> = boundaries
            .iter()
            .enumerate()
            .map(|(i, &start)| {
                let end = boundaries
                    .get(i + 1)
                    .map_or(self.domain.end(), |next| next.prev());
                (
                    // lint: allow(no-unwrap): boundaries are sorted and deduplicated, so start <= end by construction
                    Interval::new(start, end).expect("boundaries are increasing"),
                    self.agg.empty_state(),
                )
            })
            .collect();
        self.peak_cells = cells.len();

        // Scan 2: select the tuples overlapping each constant interval.
        // (Transposed: for each tuple, binary-search its first interval and
        // update every interval it overlaps — the same work order as
        // selecting per interval, without the quadratic re-scans.)
        for (iv, value) in &self.buffered {
            let first = cells.partition_point(|(cell, _)| cell.end() < iv.start());
            for (cell, state) in cells.iter_mut().skip(first) {
                if cell.start() > iv.end() {
                    break;
                }
                self.agg.insert(state, value);
            }
        }

        let agg = self.agg;
        for (iv, state) in cells {
            sink.accept(iv, agg.finish(&state));
        }
    }

    fn memory(&self) -> MemoryStats {
        // Before `finish` runs, estimate the constant-interval array at
        // its worst case (every endpoint unique: 2n + 1 cells).
        let peak = if self.peak_cells > 0 {
            self.peak_cells
        } else {
            2 * self.buffered.len() + 1
        };
        MemoryStats {
            live_nodes: peak,
            peak_nodes: peak,
            node_model_bytes: MODEL_POINTER_BYTES + self.agg.state_model_bytes() + 4,
            node_actual_bytes: std::mem::size_of::<(Interval, A::State)>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle;
    use tempagg_agg::{Avg, Count};

    fn employed() -> Vec<(Interval, ())> {
        vec![
            (Interval::from_start(18), ()),
            (Interval::at(8, 20), ()),
            (Interval::at(7, 12), ()),
            (Interval::at(18, 21), ()),
        ]
    }

    #[test]
    fn matches_oracle_on_table1() {
        let tuples = employed();
        let mut t = TwoScanAggregate::new(Count);
        for &(iv, ()) in &tuples {
            t.push(iv, ()).unwrap();
        }
        assert_eq!(t.finish(), oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn charges_two_scans() {
        let t = TwoScanAggregate::new(Count);
        assert_eq!(t.scans(), 2);
        assert_eq!(TemporalAggregator::<Count>::algorithm(&t), "two-scan");
    }

    #[test]
    fn empty_input() {
        let t = TwoScanAggregate::with_domain(Count, Interval::at(5, 9));
        let s = t.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, Interval::at(5, 9));
    }

    #[test]
    fn avg_matches_oracle() {
        let tuples: Vec<(Interval, i64)> = vec![
            (Interval::at(0, 10), 10),
            (Interval::at(5, 20), 30),
            (Interval::at(15, 25), 50),
        ];
        let mut t = TwoScanAggregate::new(Avg::<i64>::new());
        for &(iv, v) in &tuples {
            t.push(iv, v).unwrap();
        }
        assert_eq!(
            t.finish(),
            oracle(&Avg::<i64>::new(), Interval::TIMELINE, &tuples)
        );
    }

    #[test]
    fn out_of_domain_rejected() {
        let mut t = TwoScanAggregate::with_domain(Count, Interval::at(0, 10));
        assert!(t.push(Interval::at(5, 11), ()).is_err());
    }
}
