//! Domain-partitioned parallel execution.
//!
//! The partial aggregate states every algorithm maintains form a
//! commutative monoid ([`Aggregate::merge`]), so the valid-time domain can
//! be cut into sub-domains, each aggregated independently, and the
//! per-partition result series concatenated back together — the same
//! decomposition that lets concurrent aggregate structures scale. The
//! [`PartitionedAggregator`] combinator implements that: it clips each
//! incoming tuple to the partitions it overlaps, feeds one inner
//! [`TemporalAggregator`] per partition (on scoped OS threads for batched
//! input), and stitches the finished pieces with
//! [`Series::stitch_where`].
//!
//! # Seams and byte-identical output
//!
//! Serial output is split at tuple start/end times but *not* coalesced, so
//! two adjacent entries may carry equal values across a real tuple
//! boundary. A partition cut adds an artificial boundary at each seam;
//! stitching must merge exactly the artificial ones back. The aggregator
//! therefore records, per seam `s`, whether any pushed tuple started at
//! `s` or ended at `s − 1`; only unmarked seams are merged. When a seam is
//! unmarked, the tuple set covering `s − 1` equals the set covering `s`,
//! so the adjoining values are guaranteed equal and the merged series is
//! byte-identical to the serial result.
//!
//! This module is the only place in the workspace allowed to touch
//! `std::thread` (enforced by `tempagg-lint`'s `no-raw-thread` rule);
//! other code parallelises through [`scoped_map`] or the combinator.

use crate::memory::MemoryStats;
use crate::traits::TemporalAggregator;
use std::time::{Duration, Instant};
use tempagg_agg::Aggregate;
use tempagg_core::{
    Chunk, Interval, Result, Series, SeriesSink, StitchSink, TempAggError, Timestamp,
};

/// Map `f` over `items` on up to `threads` scoped OS threads, preserving
/// input order in the output.
///
/// Items are dealt round-robin into per-thread batches; with one thread
/// (or one item) the map runs inline with no spawn at all. A worker panic
/// propagates to the caller.
pub fn scoped_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1).min(items.len());
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut batches: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        // lint: allow(indexing): i % threads < threads == batches.len() by construction
        batches[i % threads].push((i, item));
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| {
                scope.spawn(move || {
                    batch
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            // lint: allow(no-unwrap): a worker panic is already a crash; re-raising it here keeps the backtrace
            for (i, r) in handle.join().expect("scoped_map worker panicked") {
                // lint: allow(indexing): i came from enumerate over items and slots was sized to items.len()
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        // lint: allow(no-unwrap): the scope joined every worker, so each slot was filled exactly once
        .map(|slot| slot.expect("every item mapped"))
        .collect()
}

/// Per-partition facts reported after a partitioned run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionReport {
    /// The sub-domain this partition aggregated.
    pub domain: Interval,
    /// Clipped tuples routed into the partition (a tuple spanning `k`
    /// partitions counts `k` times).
    pub tuples: usize,
    /// Wall-clock time this partition's worker spent inserting.
    pub busy: Duration,
    /// The inner aggregator's state memory.
    pub memory: MemoryStats,
}

struct Partition<G> {
    sub: Interval,
    inner: G,
    tuples: usize,
    busy: Duration,
}

/// Domain-partitioned execution of any inner [`TemporalAggregator`].
///
/// The domain is cut at `P − 1` seam timestamps into `P` sub-domains, one
/// inner aggregator each. [`push`](TemporalAggregator::push) routes a
/// single tuple serially; [`push_batch`](TemporalAggregator::push_batch)
/// fans a shared [`Chunk`] out to one scoped worker per partition, each
/// clipping the batch to its sub-domain.
/// [`finish`](TemporalAggregator::finish) finishes the partitions in
/// parallel and stitches the pieces seam-aware, producing output
/// byte-identical to a serial run of the inner algorithm over the whole
/// domain (see the module docs);
/// [`finish_into`](TemporalAggregator::finish_into) streams the
/// partitions sequentially through a [`StitchSink`] instead, emitting the
/// same entries at bounded resident memory.
///
/// # Example
///
/// ```
/// use tempagg_agg::Count;
/// use tempagg_algo::{AggregationTree, PartitionedAggregator, TemporalAggregator};
/// use tempagg_core::Interval;
///
/// let domain = Interval::at(0, 99);
/// let mut par = PartitionedAggregator::new(domain, 4, |sub| {
///     AggregationTree::with_domain(Count, sub)
/// });
/// par.push(Interval::at(10, 60), ()).unwrap(); // spans two seams
/// let series = par.finish();
/// assert_eq!(series.len(), 3); // [0,9]=0, [10,60]=1, [61,99]=0
/// ```
pub struct PartitionedAggregator<A, G>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
{
    domain: Interval,
    /// Partition `i + 1` begins at `seams[i]`; strictly increasing,
    /// all interior to the domain.
    seams: Vec<Timestamp>,
    /// `seam_real[i]`: some tuple started at `seams[i]` or ended at
    /// `seams[i] − 1`, so the boundary also exists in serial output.
    seam_real: Vec<bool>,
    parts: Vec<Partition<G>>,
    threads: usize,
    tuples: usize,
    _marker: std::marker::PhantomData<A>,
}

impl<A, G> std::fmt::Debug for PartitionedAggregator<A, G>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedAggregator")
            .field("domain", &self.domain)
            .field("seams", &self.seams)
            .field("partitions", &self.parts.len())
            .field("tuples", &self.tuples)
            .finish()
    }
}

impl<A, G> PartitionedAggregator<A, G>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
{
    /// Cut `domain` into up to `partitions` near-equal sub-domains and
    /// build one inner aggregator per sub-domain with `factory`.
    ///
    /// An unbounded domain has no meaningful even cut, so it yields a
    /// single partition; use [`PartitionedAggregator::with_seams`] with
    /// seams drawn from a bounded hull of the data instead.
    pub fn new(domain: Interval, partitions: usize, factory: impl FnMut(Interval) -> G) -> Self {
        let seams = domain.even_seams(partitions);
        // Even seams are interior and strictly increasing by construction.
        // lint: allow(no-unwrap): even_seams output always satisfies with_seams' preconditions
        Self::with_seams(domain, seams, factory).expect("even seams are always valid")
    }

    /// Cut `domain` at explicit seam timestamps: partition `i + 1` begins
    /// at `seams[i]`. Seams must be strictly increasing and interior
    /// (`domain.start() < seam ≤ domain.end()`); errors otherwise.
    pub fn with_seams(
        domain: Interval,
        seams: Vec<Timestamp>,
        mut factory: impl FnMut(Interval) -> G,
    ) -> Result<Self> {
        for (prev, next) in seams.iter().zip(seams.iter().skip(1)) {
            if prev >= next {
                return Err(TempAggError::InvalidPartitioning {
                    detail: format!("seams not strictly increasing: {prev} then {next}"),
                });
            }
        }
        if let (Some(first), Some(last)) = (seams.first(), seams.last()) {
            if *first <= domain.start() || *last > domain.end() {
                return Err(TempAggError::InvalidPartitioning {
                    detail: format!(
                        "seams must lie strictly inside the domain {domain}: got [{first}, {last}]"
                    ),
                });
            }
        }
        let mut parts = Vec::with_capacity(seams.len() + 1);
        let mut start = domain.start();
        for seam in &seams {
            let sub = Interval::new(start, seam.prev())?;
            parts.push(Partition {
                sub,
                inner: factory(sub),
                tuples: 0,
                busy: Duration::ZERO,
            });
            start = *seam;
        }
        let sub = Interval::new(start, domain.end())?;
        parts.push(Partition {
            sub,
            inner: factory(sub),
            tuples: 0,
            busy: Duration::ZERO,
        });
        let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        Ok(PartitionedAggregator {
            domain,
            seam_real: vec![false; seams.len()],
            seams,
            parts,
            threads,
            tuples: 0,
            _marker: std::marker::PhantomData,
        })
    }

    /// Cap the scoped workers used per batch (default: the machine's
    /// available parallelism). Partitions are dealt round-robin across
    /// workers, so fewer threads than partitions still covers them all.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of sub-domains.
    pub fn partition_count(&self) -> usize {
        self.parts.len()
    }

    /// The sub-domains, in time order.
    pub fn partition_domains(&self) -> Vec<Interval> {
        self.parts.iter().map(|p| p.sub).collect()
    }

    /// Tuples pushed so far (each counted once, however many partitions it
    /// overlapped).
    pub fn len(&self) -> usize {
        self.tuples
    }

    /// `true` before the first push.
    pub fn is_empty(&self) -> bool {
        self.tuples == 0
    }

    /// Per-partition routing counts, worker busy time, and memory.
    pub fn partition_reports(&self) -> Vec<PartitionReport> {
        self.parts
            .iter()
            .map(|p| PartitionReport {
                domain: p.sub,
                tuples: p.tuples,
                busy: p.busy,
                memory: p.inner.memory(),
            })
            .collect()
    }

    fn check_domain(&self, interval: Interval) -> Result<()> {
        if self.domain.covers(&interval) {
            Ok(())
        } else {
            Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            })
        }
    }

    /// Record which seams coincide with this tuple's real boundaries.
    fn mark_seams(&mut self, interval: Interval) {
        if let Ok(i) = self.seams.binary_search(&interval.start()) {
            self.seam_real[i] = true;
        }
        if !interval.end().is_forever() {
            if let Ok(i) = self.seams.binary_search(&interval.end().next()) {
                self.seam_real[i] = true;
            }
        }
    }

    /// Index of the first partition overlapping `t`: the one whose
    /// sub-domain contains it.
    fn partition_of(&self, t: Timestamp) -> usize {
        self.seams.partition_point(|s| *s <= t)
    }
}

impl<A, G> TemporalAggregator<A> for PartitionedAggregator<A, G>
where
    A: Aggregate,
    A::Input: Clone + Sync,
    A::Output: PartialEq + Send,
    G: TemporalAggregator<A> + Send,
{
    fn algorithm(&self) -> &'static str {
        "partitioned"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        self.check_domain(interval)?;
        self.mark_seams(interval);
        let first = self.partition_of(interval.start());
        for part in &mut self.parts[first..] {
            let Some(clipped) = interval.intersect(&part.sub) else {
                break; // partitions are in time order: no later overlap
            };
            part.inner.push(clipped, value.clone())?;
            part.tuples += 1;
        }
        self.tuples += 1;
        Ok(())
    }

    /// Fan the chunk out to one scoped worker per partition.
    ///
    /// The whole batch is domain-checked up front (scanning only the SoA
    /// timestamp columns), so a rejected batch leaves the aggregator
    /// untouched; an inner-algorithm error mid-batch does not.
    fn push_batch(&mut self, chunk: &Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        for i in 0..chunk.len() {
            let Some(interval) = chunk.interval(i) else {
                return Err(TempAggError::internal("chunk columns out of step"));
            };
            self.check_domain(interval)?;
        }
        for i in 0..chunk.len() {
            if let Some(interval) = chunk.interval(i) {
                self.mark_seams(interval);
            }
        }
        let threads = self.threads;
        let workers: Vec<&mut Partition<G>> = self.parts.iter_mut().collect();
        let results = scoped_map(workers, threads, |part| -> Result<()> {
            let t0 = Instant::now();
            for (interval, value) in chunk {
                if let Some(clipped) = interval.intersect(&part.sub) {
                    part.inner.push(clipped, value.clone())?;
                    part.tuples += 1;
                }
            }
            part.busy += t0.elapsed();
            Ok(())
        });
        for r in results {
            r?;
        }
        self.tuples += chunk.len();
        Ok(())
    }

    fn finish(self) -> Series<A::Output> {
        let threads = self.threads;
        let seam_real = self.seam_real;
        #[cfg(feature = "validate")]
        let domain = self.domain;
        let pieces = scoped_map(self.parts, threads, |p| p.inner.finish());
        let stitched = Series::stitch_where(pieces, |seam| !seam_real[seam]);
        #[cfg(feature = "validate")]
        crate::validate::assert_series_tiles(stitched.entries(), domain, "partitioned");
        stitched
    }

    /// Stream the partitions sequentially in domain order through a
    /// [`StitchSink`], so seam-aware stitching happens inline at O(1)
    /// extra resident memory — no per-partition `Series` is materialized.
    /// The [`finish`](TemporalAggregator::finish) override above finishes
    /// partitions in parallel instead; both emit identical entries.
    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        #[cfg(feature = "validate")]
        {
            // The materialized path carries the whole-domain tiling check;
            // reuse it, then forward.
            for e in self.finish() {
                sink.accept(e.interval, e.value);
            }
        }
        #[cfg(not(feature = "validate"))]
        {
            let seam_real = self.seam_real;
            let mut stitch = StitchSink::new(&mut *sink);
            for (p, part) in self.parts.into_iter().enumerate() {
                if p > 0 {
                    // lint: allow(indexing): guarded by p > 0 and seam_real has parts.len() - 1 entries
                    stitch.seam(!seam_real[p - 1]);
                }
                part.inner.finish_into(&mut stitch);
            }
            stitch.finish();
        }
    }

    fn memory(&self) -> MemoryStats {
        self.parts
            .iter()
            .map(|p| p.inner.memory())
            .fold(MemoryStats::default(), |acc, m| acc.combine(&m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_tree::AggregationTree;
    use crate::linked_list::LinkedListAggregate;
    use tempagg_agg::{Count, Sum};

    fn count_tree(sub: Interval) -> AggregationTree<Count> {
        AggregationTree::with_domain(Count, sub)
    }

    #[test]
    fn scoped_map_preserves_order() {
        let squares = scoped_map((0..100usize).collect(), 7, |i| i * i);
        assert_eq!(squares, (0..100usize).map(|i| i * i).collect::<Vec<_>>());
        // Degenerate thread counts.
        assert_eq!(scoped_map(vec![1, 2, 3], 0, |i| i), vec![1, 2, 3]);
        let empty: Vec<usize> = scoped_map(Vec::new(), 4, |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn partitions_tile_the_domain() {
        let par = PartitionedAggregator::new(Interval::at(0, 99), 4, count_tree);
        assert_eq!(par.partition_count(), 4);
        let subs = par.partition_domains();
        assert_eq!(subs[0], Interval::at(0, 24));
        assert_eq!(subs[3], Interval::at(75, 99));
        // Unbounded domains fall back to a single partition.
        let par = PartitionedAggregator::new(Interval::TIMELINE, 4, count_tree);
        assert_eq!(par.partition_count(), 1);
    }

    #[test]
    fn with_seams_validates() {
        let d = Interval::at(0, 99);
        assert!(PartitionedAggregator::with_seams(
            d,
            vec![Timestamp(10), Timestamp(10)],
            count_tree
        )
        .is_err());
        assert!(PartitionedAggregator::with_seams(d, vec![Timestamp(0)], count_tree).is_err());
        assert!(PartitionedAggregator::with_seams(d, vec![Timestamp(100)], count_tree).is_err());
        // A seam at the very end leaves a one-instant last partition.
        let par = PartitionedAggregator::with_seams(d, vec![Timestamp(99)], count_tree).unwrap();
        assert_eq!(par.partition_domains()[1], Interval::at(99, 99));
    }

    #[test]
    fn matches_serial_with_spanning_tuples() {
        let domain = Interval::at(0, 99);
        let tuples = [
            (Interval::at(0, 99), ()),  // spans every seam
            (Interval::at(10, 30), ()), // spans seam 25
            (Interval::at(25, 49), ()), // starts exactly at seam 25
            (Interval::at(50, 74), ()), // exactly one partition
            (Interval::at(74, 75), ()), // crosses seam 75 by one instant
        ];
        let mut serial = AggregationTree::with_domain(Count, domain);
        let mut par = PartitionedAggregator::new(domain, 4, count_tree);
        for &(iv, v) in &tuples {
            serial.push(iv, v).unwrap();
            par.push(iv, v).unwrap();
        }
        assert_eq!(par.finish(), serial.finish());
    }

    #[test]
    fn artificial_seams_merge_real_seams_stay() {
        let domain = Interval::at(0, 19);
        // Seam at 10. One tuple covering [0, 19]: the cut is artificial.
        let mut par = PartitionedAggregator::with_seams(domain, vec![Timestamp(10)], |sub| {
            LinkedListAggregate::with_domain(Count, sub)
        })
        .unwrap();
        par.push(Interval::at(0, 19), ()).unwrap();
        let s = par.finish();
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, domain);

        // Now a tuple *ends* at 9 and another *starts* at 10: the boundary
        // is real, and serial output keeps the equal-valued entries apart.
        let mut par = PartitionedAggregator::with_seams(domain, vec![Timestamp(10)], |sub| {
            LinkedListAggregate::with_domain(Count, sub)
        })
        .unwrap();
        par.push(Interval::at(0, 9), ()).unwrap();
        par.push(Interval::at(10, 19), ()).unwrap();
        let parallel = par.finish();

        let mut serial = LinkedListAggregate::with_domain(Count, domain);
        serial.push(Interval::at(0, 9), ()).unwrap();
        serial.push(Interval::at(10, 19), ()).unwrap();
        let serial = serial.finish();
        assert_eq!(parallel, serial);
        assert_eq!(parallel.len(), 2); // both entries COUNT = 1, not merged
    }

    #[test]
    fn push_batch_equals_per_tuple_push() {
        let domain = Interval::at(0, 999);
        let mut chunk: Chunk<i64> = Chunk::with_capacity(64);
        let mut serial = LinkedListAggregate::with_domain(Sum::<i64>::new(), domain);
        for i in 0..60i64 {
            let start = (i * 37) % 900;
            let iv = Interval::at(start, start + 90);
            chunk.push(iv, i).unwrap();
            serial.push(iv, i).unwrap();
        }
        let mut par = PartitionedAggregator::new(domain, 8, |sub| {
            LinkedListAggregate::with_domain(Sum::<i64>::new(), sub)
        });
        par.push_batch(&chunk).unwrap();
        assert_eq!(par.len(), 60);
        assert_eq!(par.finish(), serial.finish());
    }

    #[test]
    fn out_of_domain_batch_is_rejected_atomically() {
        let domain = Interval::at(0, 99);
        let mut chunk: Chunk<()> = Chunk::with_capacity(4);
        chunk.push(Interval::at(0, 50), ()).unwrap();
        chunk.push(Interval::at(90, 150), ()).unwrap(); // outside
        let mut par = PartitionedAggregator::new(domain, 2, count_tree);
        assert!(par.push_batch(&chunk).is_err());
        assert!(par.is_empty());
        let s = par.finish();
        assert_eq!(s.len(), 1); // untouched: one empty constant interval
    }

    #[test]
    fn reports_cover_every_partition() {
        let mut par = PartitionedAggregator::new(Interval::at(0, 99), 4, count_tree);
        par.push(Interval::at(0, 49), ()).unwrap();
        let reports = par.partition_reports();
        assert_eq!(reports.len(), 4);
        assert_eq!(reports[0].tuples, 1);
        assert_eq!(reports[1].tuples, 1);
        assert_eq!(reports[2].tuples, 0);
        assert_eq!(
            par.memory().peak_nodes,
            reports.iter().map(|r| r.memory.peak_nodes).sum()
        );
    }

    #[test]
    fn single_partition_is_transparent() {
        let mut serial = AggregationTree::with_domain(Count, Interval::at(0, 9));
        let mut par = PartitionedAggregator::new(Interval::at(0, 9), 1, count_tree);
        for iv in [Interval::at(0, 3), Interval::at(2, 9)] {
            serial.push(iv, ()).unwrap();
            par.push(iv, ()).unwrap();
        }
        assert_eq!(par.finish(), serial.finish());
    }
}
