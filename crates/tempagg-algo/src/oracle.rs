//! A brute-force reference implementation used to validate the real
//! algorithms.
//!
//! Temporal grouping by instant is *defined* (Section 2) as: partition the
//! time-line at every instant, compute the aggregate over the tuples
//! overlapping each instant, and coalesce runs of instants with identical
//! tuple sets into constant intervals. This module implements that
//! definition directly — O(n²), no shared code with the algorithms under
//! test — so every algorithm can be checked against it.

use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Series, SeriesEntry, Timestamp};

/// Compute the aggregate series over `domain` by explicit constant-interval
/// enumeration and per-interval scans of all tuples.
pub fn oracle<A: Aggregate>(
    agg: &A,
    domain: Interval,
    tuples: &[(Interval, A::Input)],
) -> Series<A::Output> {
    // Constant-interval boundaries: the domain start, every tuple start,
    // and the instant after every tuple end (closed-interval semantics).
    let mut boundaries: Vec<Timestamp> = Vec::with_capacity(2 * tuples.len() + 1);
    boundaries.push(domain.start());
    for (iv, _) in tuples {
        assert!(
            domain.covers(iv),
            "oracle tuple {iv} outside domain {domain}"
        );
        if iv.start() > domain.start() {
            boundaries.push(iv.start());
        }
        if iv.end() < domain.end() {
            boundaries.push(iv.end().next());
        }
    }
    boundaries.sort_unstable();
    boundaries.dedup();

    let mut entries: Vec<SeriesEntry<A::Output>> = Vec::with_capacity(boundaries.len());
    for (i, &start) in boundaries.iter().enumerate() {
        let end = boundaries
            .get(i + 1)
            .map_or(domain.end(), |next| next.prev());
        // lint: allow(no-unwrap): boundaries are sorted and deduplicated, so start <= end by construction
        let segment = Interval::new(start, end).expect("boundaries are increasing");
        let mut state = agg.empty_state();
        for (iv, value) in tuples {
            if iv.overlaps(&segment) {
                agg.insert(&mut state, value);
            }
        }
        entries.push(SeriesEntry::new(segment, agg.finish(&state)));
    }
    Series::from_entries(entries)
}

/// The aggregate value at a single instant, by direct scan. Used to
/// cross-check [`oracle`] itself in property tests.
pub fn value_at_instant<A: Aggregate>(
    agg: &A,
    t: Timestamp,
    tuples: &[(Interval, A::Input)],
) -> A::Output {
    let mut state = agg.empty_state();
    for (iv, value) in tuples {
        if iv.contains(t) {
            agg.insert(&mut state, value);
        }
    }
    agg.finish(&state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::Count;

    #[test]
    fn oracle_matches_table1() {
        let tuples = vec![
            (Interval::from_start(18), ()),
            (Interval::at(8, 20), ()),
            (Interval::at(7, 12), ()),
            (Interval::at(18, 21), ()),
        ];
        let s = oracle(&Count, Interval::TIMELINE, &tuples);
        let rows: Vec<(Interval, u64)> = s.iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 6), 0),
                (Interval::at(7, 7), 1),
                (Interval::at(8, 12), 2),
                (Interval::at(13, 17), 1),
                (Interval::at(18, 20), 3),
                (Interval::at(21, 21), 2),
                (Interval::from_start(22), 1),
            ]
        );
    }

    #[test]
    fn oracle_on_empty_input() {
        let s = oracle(&Count, Interval::at(0, 9), &[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.entries()[0].interval, Interval::at(0, 9));
        assert_eq!(s.entries()[0].value, 0);
    }

    #[test]
    fn series_values_agree_with_instant_scan() {
        let tuples = vec![
            (Interval::at(0, 5), ()),
            (Interval::at(3, 9), ()),
            (Interval::at(9, 9), ()),
        ];
        let s = oracle(&Count, Interval::at(0, 12), &tuples);
        for e in &s {
            for t in [e.interval.start(), e.interval.end()] {
                assert_eq!(e.value, value_at_instant(&Count, t, &tuples));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn oracle_rejects_out_of_domain() {
        oracle(&Count, Interval::at(0, 5), &[(Interval::at(3, 9), ())]);
    }
}
