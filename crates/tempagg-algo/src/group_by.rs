//! Value grouping composed with temporal grouping.
//!
//! `SELECT Dept, AVG(Salary) … GROUP BY Dept` over a temporal relation
//! returns a *time-varying* average per department (Section 2). This
//! adapter partitions tuples by a grouping key and runs one inner temporal
//! aggregator per partition — the temporal analogue of Epstein's
//! temporary-relation technique for GROUP BY (Section 3), which Section 4.2
//! extends with interval values.

use crate::memory::MemoryStats;
use crate::traits::TemporalAggregator;
use std::collections::BTreeMap;
use tempagg_agg::Aggregate;
use tempagg_core::{Interval, Result, Series};

/// Temporal aggregation partitioned by a grouping key.
///
/// Generic over the inner algorithm: any [`TemporalAggregator`] works, so a
/// grouped query can still choose between the linked list, the aggregation
/// tree, and the k-ordered tree per the optimizer rules.
pub struct GroupedAggregate<K, A, G, F>
where
    K: Ord,
    A: Aggregate,
    G: TemporalAggregator<A>,
    F: FnMut() -> G,
{
    factory: F,
    groups: BTreeMap<K, G>,
    _marker: std::marker::PhantomData<A>,
}

impl<K, A, G, F> std::fmt::Debug for GroupedAggregate<K, A, G, F>
where
    K: Ord + std::fmt::Debug,
    A: Aggregate,
    G: TemporalAggregator<A>,
    F: FnMut() -> G,
{
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupedAggregate")
            .field("groups", &self.groups.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl<K, A, G, F> GroupedAggregate<K, A, G, F>
where
    K: Ord,
    A: Aggregate,
    G: TemporalAggregator<A>,
    F: FnMut() -> G,
{
    /// `factory` builds the inner aggregator for each new group
    /// (the paper's "aggregation set").
    pub fn new(factory: F) -> Self {
        GroupedAggregate {
            factory,
            groups: BTreeMap::new(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Route one tuple to its group.
    pub fn push(&mut self, key: K, interval: Interval, value: A::Input) -> Result<()> {
        self.groups
            .entry(key)
            .or_insert_with(&mut self.factory)
            .push(interval, value)
    }

    /// Number of distinct groups seen.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Finish every group, yielding `(key, series)` in key order.
    pub fn finish(self) -> Vec<(K, Series<A::Output>)> {
        self.groups
            .into_iter()
            .map(|(k, g)| (k, g.finish()))
            .collect()
    }

    /// Finish groups on up to `threads` OS threads (groups are
    /// independent, so the final depth-first searches parallelise
    /// trivially). Output order and contents equal [`Self::finish`].
    pub fn finish_parallel(self, threads: usize) -> Vec<(K, Series<A::Output>)>
    where
        K: Send,
        G: Send,
        A::Output: Send,
    {
        let groups: Vec<(K, G)> = self.groups.into_iter().collect();
        crate::parallel::scoped_map(groups, threads, |(k, g)| (k, g.finish()))
    }

    /// Combined memory across groups.
    pub fn memory(&self) -> MemoryStats {
        self.groups
            .values()
            .map(super::traits::TemporalAggregator::memory)
            .fold(MemoryStats::default(), |acc, m| acc.combine(&m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg_tree::AggregationTree;
    use crate::linked_list::LinkedListAggregate;
    use tempagg_agg::{Avg, Count};

    #[test]
    fn per_department_counts() {
        let mut g = GroupedAggregate::new(|| AggregationTree::new(Count));
        g.push("Sales", Interval::at(0, 10), ()).unwrap();
        g.push("Sales", Interval::at(5, 20), ()).unwrap();
        g.push("Eng", Interval::at(8, 12), ()).unwrap();
        assert_eq!(g.group_count(), 2);

        let result = g.finish();
        assert_eq!(result.len(), 2);
        // BTreeMap: "Eng" first.
        let (dept, series) = &result[0];
        assert_eq!(*dept, "Eng");
        assert_eq!(series.entries()[1].interval, Interval::at(8, 12));
        assert_eq!(series.entries()[1].value, 1);

        let (dept, series) = &result[1];
        assert_eq!(*dept, "Sales");
        let at = |t: i64| *series.value_at(tempagg_core::Timestamp(t)).unwrap();
        assert_eq!(at(3), 1);
        assert_eq!(at(7), 2);
        assert_eq!(at(15), 1);
        assert_eq!(at(25), 0);
    }

    #[test]
    fn groups_are_independent_time_lines() {
        let mut g = GroupedAggregate::new(|| AggregationTree::new(Count));
        g.push(1, Interval::at(0, 4), ()).unwrap();
        g.push(2, Interval::at(100, 104), ()).unwrap();
        let result = g.finish();
        // Group 1 knows nothing about group 2's boundaries.
        assert_eq!(result[0].1.len(), 2);
        assert_eq!(result[1].1.len(), 3);
    }

    #[test]
    fn works_with_any_inner_algorithm() {
        let mut g = GroupedAggregate::new(|| LinkedListAggregate::new(Avg::<i64>::new()));
        g.push("a", Interval::at(0, 9), 10).unwrap();
        g.push("a", Interval::at(5, 14), 20).unwrap();
        let result = g.finish();
        let series = &result[0].1;
        assert_eq!(
            series.value_at(tempagg_core::Timestamp(7)).unwrap(),
            &Some(15.0)
        );
    }

    #[test]
    fn memory_combines_groups() {
        let mut g = GroupedAggregate::new(|| AggregationTree::new(Count));
        g.push("a", Interval::at(0, 10), ()).unwrap();
        g.push("b", Interval::at(0, 10), ()).unwrap();
        let m = g.memory();
        // Each group: [0, 10] only splits the time-line at 11 → 3 nodes.
        assert_eq!(m.peak_nodes, 2 * 3);
        assert_eq!(m.node_model_bytes, 16);
    }

    #[test]
    fn parallel_finish_equals_sequential() {
        let build = || {
            let mut g = GroupedAggregate::new(|| AggregationTree::new(Count));
            for i in 0..500i64 {
                let key = i % 13;
                let start = (i * 37) % 3_000;
                g.push(key, Interval::at(start, start + 50), ()).unwrap();
            }
            g
        };
        let sequential = build().finish();
        for threads in [1usize, 2, 4, 32] {
            let parallel = build().finish_parallel(threads);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_finish_handles_tiny_inputs() {
        let g: GroupedAggregate<i64, Count, _, _> =
            GroupedAggregate::new(|| AggregationTree::new(Count));
        assert!(g.finish_parallel(8).is_empty());
        let mut g = GroupedAggregate::new(|| AggregationTree::new(Count));
        g.push(1, Interval::at(0, 5), ()).unwrap();
        assert_eq!(g.finish_parallel(8).len(), 1);
    }

    #[test]
    fn empty_grouping() {
        let g: GroupedAggregate<&str, Count, _, _> =
            GroupedAggregate::new(|| AggregationTree::new(Count));
        assert_eq!(g.group_count(), 0);
        assert!(g.finish().is_empty());
    }
}
