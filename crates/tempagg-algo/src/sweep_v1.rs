//! The original (v1) columnar endpoint sweep, kept as a reference kernel.
//!
//! [`SweepAggregatorV1`] is the PR-3 implementation verbatim: two
//! indirect permutation sorts (`by_start`, `by_end`) over the columnar
//! runs plus an explicit sorted-and-deduplicated boundary vector, with a
//! per-boundary admit/retract scan. The production
//! [`SweepAggregator`](crate::sweep::SweepAggregator) (v2) replaces the
//! three sorts with one direct sort of 16-byte
//! [`EndpointEvent`](tempagg_core::EndpointEvent)s — radix-scattered into
//! cache-sized runs and sorted per bucket — and the double-indirect scan
//! with a single forward event replay over dense slot handles. v1 stays
//! in the tree as the agreement oracle: the sweep-v2 test matrix and the
//! `harness sweep` benchmark both assert byte-identical output against
//! it, and its simpler structure is the specification of what the sweep
//! must emit (one entry per boundary segment, never value-coalesced).

use crate::memory::{MemoryStats, MODEL_POINTER_BYTES};
use crate::traits::TemporalAggregator;
use tempagg_agg::SweepAggregate;
#[cfg(feature = "validate")]
use tempagg_core::SeriesEntry;
use tempagg_core::{Chunk, Interval, Result, SeriesSink, TempAggError, Timestamp};

/// The v1 endpoint sweep: monolithic sorts, boundary vector, multiset
/// active states. Reference kernel — prefer
/// [`SweepAggregator`](crate::sweep::SweepAggregator).
#[derive(Clone, Debug)]
pub struct SweepAggregatorV1<A: SweepAggregate> {
    agg: A,
    domain: Interval,
    starts: Vec<Timestamp>,
    ends: Vec<Timestamp>,
    values: Vec<A::Input>,
}

impl<A: SweepAggregate> SweepAggregatorV1<A> {
    /// A sweep over the paper's time-line `[0, ∞]`.
    pub fn new(agg: A) -> Self {
        Self::with_domain(agg, Interval::TIMELINE)
    }

    /// A sweep over an explicit domain.
    pub fn with_domain(agg: A, domain: Interval) -> Self {
        SweepAggregatorV1 {
            agg,
            domain,
            starts: Vec::new(),
            ends: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Tuples buffered so far.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// `true` before the first insertion.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// The constant-interval boundaries induced by the buffered runs: the
    /// domain start, every tuple start, and the instant after every tuple
    /// end — sorted and deduplicated.
    fn boundaries(&self) -> Vec<Timestamp> {
        let mut boundaries = Vec::with_capacity(2 * self.starts.len() + 1);
        boundaries.push(self.domain.start());
        for &s in &self.starts {
            if s > self.domain.start() {
                boundaries.push(s);
            }
        }
        for &e in &self.ends {
            if e < self.domain.end() {
                boundaries.push(e.next());
            }
        }
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries
    }
}

impl<A: SweepAggregate> TemporalAggregator<A> for SweepAggregatorV1<A> {
    fn algorithm(&self) -> &'static str {
        "endpoint-sweep-v1"
    }

    fn domain(&self) -> Interval {
        self.domain
    }

    fn push(&mut self, interval: Interval, value: A::Input) -> Result<()> {
        if !self.domain.covers(&interval) {
            return Err(TempAggError::OutOfDomain {
                tuple: (interval.start(), interval.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        self.starts.push(interval.start());
        self.ends.push(interval.end());
        self.values.push(value);
        Ok(())
    }

    /// Batched insert: a straight column append, domain-checked as a
    /// whole batch before any column is touched.
    fn push_batch(&mut self, chunk: &Chunk<A::Input>) -> Result<()>
    where
        A::Input: Clone,
    {
        if let Some(outside) = chunk.first_outside(self.domain) {
            return Err(TempAggError::OutOfDomain {
                tuple: (outside.start(), outside.end()),
                domain: (self.domain.start(), self.domain.end()),
            });
        }
        chunk.append_columns_to(&mut self.starts, &mut self.ends, &mut self.values);
        Ok(())
    }

    fn finish_into(self, sink: &mut impl SeriesSink<A::Output>) {
        let n = self.starts.len();
        let boundaries = self.boundaries();

        // Two endpoint orders over the same runs, sorted once. Indirect
        // sort keeps the value column untouched — only flat index arrays
        // and `i64` keys move.
        let mut by_start: Vec<usize> = (0..n).collect();
        by_start.sort_unstable_by_key(|&i| self.starts[i]);
        let mut by_end: Vec<usize> = (0..n).collect();
        by_end.sort_unstable_by_key(|&i| self.ends[i]);

        // Under `validate` the scan is materialized first so the tiling
        // check can inspect it; otherwise every segment streams straight
        // out of the endpoint scan.
        #[cfg(feature = "validate")]
        let mut entries: Vec<SeriesEntry<A::Output>> = Vec::with_capacity(boundaries.len());
        let mut active = self.agg.active_empty();
        let (mut si, mut ei) = (0usize, 0usize);
        // lint: hot-loop(endpoint-scan-v1) — the per-boundary admit/retract scan must stay allocation-free
        for (i, &start) in boundaries.iter().enumerate() {
            // A constant interval starting at `start` covers exactly the
            // tuples with tuple.start <= start <= tuple.end: admit newly
            // started runs, retract runs that ended before `start`.
            // lint: allow(indexing): by_start is a permutation of 0..n and si < n is the loop guard
            while si < n && self.starts[by_start[si]] <= start {
                self.agg
                    // lint: allow(indexing): same permutation bound as the loop guard above
                    .active_insert(&mut active, &self.values[by_start[si]]);
                si += 1;
            }
            // lint: allow(indexing): by_end is a permutation of 0..n and ei < n is the loop guard
            while ei < n && self.ends[by_end[ei]] < start {
                self.agg
                    // lint: allow(indexing): same permutation bound as the loop guard above
                    .active_remove(&mut active, &self.values[by_end[ei]]);
                ei += 1;
            }
            let end = boundaries
                .get(i + 1)
                .map_or(self.domain.end(), |next| next.prev());
            // lint: allow(no-unwrap): boundaries are sorted and deduplicated, so start <= end by construction
            let segment = Interval::new(start, end).expect("boundaries are increasing");
            let value = self.agg.active_output(&active);
            #[cfg(feature = "validate")]
            entries.push(SeriesEntry::new(segment, value));
            #[cfg(not(feature = "validate"))]
            sink.accept(segment, value);
        }
        #[cfg(feature = "validate")]
        {
            crate::validate::assert_series_tiles(&entries, self.domain, "endpoint-sweep-v1");
            for e in entries {
                sink.accept(e.interval, e.value);
            }
        }
    }

    fn memory(&self) -> MemoryStats {
        MemoryStats {
            live_nodes: self.starts.len(),
            peak_nodes: self.starts.len(),
            // One buffered run: two timestamps plus the aggregate value
            // under the paper's 4-byte-word model. No pointers — that is
            // the point of the columnar layout.
            node_model_bytes: MODEL_POINTER_BYTES + self.agg.state_model_bytes(),
            node_actual_bytes: 2 * std::mem::size_of::<Timestamp>()
                + std::mem::size_of::<A::Input>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_agg::{Count, Min};

    #[test]
    fn v1_reproduces_table1() {
        let mut s = SweepAggregatorV1::new(Count);
        s.push(Interval::from_start(18), ()).unwrap();
        s.push(Interval::at(8, 20), ()).unwrap();
        s.push(Interval::at(7, 12), ()).unwrap();
        s.push(Interval::at(18, 21), ()).unwrap();
        assert_eq!(s.algorithm(), "endpoint-sweep-v1");
        let rows: Vec<(Interval, u64)> = s.finish().iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 6), 0),
                (Interval::at(7, 7), 1),
                (Interval::at(8, 12), 2),
                (Interval::at(13, 17), 1),
                (Interval::at(18, 20), 3),
                (Interval::at(21, 21), 2),
                (Interval::from_start(22), 1),
            ]
        );
    }

    #[test]
    fn v1_min_multiset_survives_duplicates() {
        let mut s = SweepAggregatorV1::with_domain(Min::<i64>::new(), Interval::at(0, 30));
        s.push(Interval::at(0, 10), 5).unwrap();
        s.push(Interval::at(0, 20), 5).unwrap();
        s.push(Interval::at(0, 30), 9).unwrap();
        let rows: Vec<(Interval, Option<i64>)> =
            s.finish().iter().map(|e| (e.interval, e.value)).collect();
        assert_eq!(
            rows,
            vec![
                (Interval::at(0, 10), Some(5)),
                (Interval::at(11, 20), Some(5)),
                (Interval::at(21, 30), Some(9)),
            ]
        );
    }
}
