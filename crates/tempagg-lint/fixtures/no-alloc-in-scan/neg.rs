//@ crate: fixture
//! Negative fixture for `no-alloc-in-scan`: hoisted buffers, unmarked
//! loops, and justified allows all stay clean.

pub fn scan_hoisted(boundaries: &[i64], scratch: &mut Vec<i64>) -> i64 {
    let mut acc = 0;
    scratch.clear();
    // lint: hot-loop(fixture-scan) — the scratch buffer is hoisted above
    for b in boundaries {
        acc += *b;
        scratch.push(*b);
    }
    acc
}

pub fn unmarked_loop_may_allocate(items: &[i64]) -> Vec<Vec<i64>> {
    let mut rows = Vec::new();
    for i in items {
        rows.push(vec![*i]);
    }
    rows
}

pub fn justified_error_path(boundaries: &[i64]) -> Result<i64, String> {
    let mut acc = 0;
    // lint: hot-loop(fixture-scan) — error formatting below fires at most once
    for b in boundaries {
        if *b < 0 {
            // lint: allow(no-alloc-in-scan): error path only — the scan aborts after formatting once
            return Err(format!("negative boundary {b}"));
        }
        acc += *b;
    }
    Ok(acc)
}
