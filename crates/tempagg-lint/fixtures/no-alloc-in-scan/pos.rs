//@ crate: fixture
//! Positive fixture for `no-alloc-in-scan`: allocation inside a
//! `lint: hot-loop` region.

pub fn scan(boundaries: &[i64]) -> Vec<Vec<i64>> {
    let mut out = Vec::new();
    // lint: hot-loop(fixture-scan) — per-boundary work must stay allocation-free
    for b in boundaries {
        let scratch = Vec::new();
        let row = vec![*b];
        out.push(row.clone());
        drop(scratch);
    }
    out
}
