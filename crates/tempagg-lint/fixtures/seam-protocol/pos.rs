//@ crate: fixture
//! Positive fixture for `seam-protocol`: seam marking outside the audited
//! stitch paths (this fixture is NOT a seam hub).

pub struct Edges {
    pub seam_real: Vec<bool>,
}

pub fn stitch_here(sink: &mut StitchSink) {
    sink.seam(true);
}

pub fn remark(parts: &mut Parts) {
    mark_seams(parts);
}
