//@ crate: tempagg-algo
//@ seam-hub
//! Negative fixture for `seam-protocol`: inside a seam hub (parallel.rs /
//! executor.rs) seam marking is the audited stitch logic and stays clean.

pub fn stitch(sink: &mut StitchSink, seam_real: &[bool]) {
    for real in seam_real {
        sink.seam(!real);
    }
}

pub fn remark(parts: &mut Parts) {
    mark_seams(parts);
}
