//@ crate: tempagg-sql
//! Negative fixture for `store-mutation`: writes routed through the
//! store, justified scratch relations, and plain idents all stay clean.

pub fn ingest_through_store(store: &mut TemporalStore, tuple: Tuple) -> Result<(), String> {
    store.insert_tuple(tuple).map_err(|e| e.to_string())
}

pub fn delete_through_store(store: &mut TemporalStore) -> Result<usize, String> {
    store
        .delete_where(|t| t.valid().start() > cutoff())
        .map_err(|e| e.to_string())
}

pub fn scratch_relation(schema: SchemaHandle, tuple: Tuple) -> Result<(), String> {
    let mut scratch = TemporalRelation::new(schema);
    // lint: allow(store-mutation): scratch per-query relation, not a cataloged store
    scratch.push_tuple(tuple).map_err(|e| e.to_string())
}

pub fn idents_are_not_calls() {
    let push_tuple = 1;
    let sort_by_time = 2;
    consume(push_tuple, sort_by_time);
}
