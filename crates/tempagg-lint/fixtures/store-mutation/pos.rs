//@ crate: tempagg-sql
//! Positive fixture for `store-mutation`: direct `TemporalRelation`
//! mutation in the SQL layer, bypassing the store's incremental cache
//! maintenance and write epoch.

pub fn ingest_behind_the_stores_back(
    relation: &mut TemporalRelation,
    tuple: Tuple,
    perm: &[usize],
) -> Result<(), String> {
    relation.push_tuple(tuple).map_err(|e| e.to_string())?;
    relation.sort_by_time();
    relation.permute(perm);
    Ok(())
}
