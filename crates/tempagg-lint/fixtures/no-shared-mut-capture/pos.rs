//@ crate: tempagg-algo
//@ thread-hub
//! Positive fixture for `no-shared-mut-capture`: a non-`move` closure
//! handed to `spawn` takes `&mut` of state it does not bind.

pub fn fan_out(chunks: &[Vec<u64>]) -> u64 {
    let mut acc = 0u64;
    std::thread::scope(|s| {
        for chunk in chunks {
            s.spawn(|| merge_into(&mut acc, chunk));
        }
    });
    acc
}
