//@ crate: tempagg-algo
//@ thread-hub
//! Negative fixture for `no-shared-mut-capture`: workers that `move` over
//! their own slot, or only mutate closure-local state, stay clean.

pub fn fan_out_slots(chunks: &[Vec<u64>], slots: &mut [u64]) {
    std::thread::scope(|s| {
        for (chunk, slot) in chunks.iter().zip(slots.iter_mut()) {
            s.spawn(move || {
                accumulate(&mut slot, chunk);
            });
        }
    });
}

pub fn fan_out_locals(chunks: &[Vec<u64>]) {
    std::thread::scope(|s| {
        for chunk in chunks {
            s.spawn(|| {
                let mut local = 0u64;
                accumulate(&mut local, chunk);
            });
        }
    });
}

pub fn plain_closure_is_fine(totals: &mut Vec<u64>) {
    let mut bump = |v: u64| totals.push(v);
    bump(1);
}
