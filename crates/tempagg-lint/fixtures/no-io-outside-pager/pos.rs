//@ crate: tempagg-store
// A cache flush that writes bytes straight to disk, bypassing the pager's
// checksummed page format and atomic temp-file + rename discipline.

fn flush_cache(path: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    std::fs::write(path, bytes)
}
