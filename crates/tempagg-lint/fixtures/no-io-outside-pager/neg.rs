//@ crate: tempagg-store
// The sanctioned idioms: disk access routed through the pager's helpers, a
// justified direct probe, and test-only temp-file cleanup.

fn persist(relation: &TemporalRelation, path: &Path) -> Result<()> {
    pager::write_relation(relation, path, &PagedWriteOptions::default())
}

fn track(path: &Path, doc: &str) -> Result<()> {
    pager::write_atomic(path, doc.as_bytes())
}

fn spill_budget(path: &Path) -> u64 {
    // lint: allow(no-io-outside-pager): size probe for the spill budget, no bytes decoded
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
    }
}
