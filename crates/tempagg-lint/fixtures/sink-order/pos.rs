//@ crate: fixture
//! Positive fixture for `sink-order`: pushes on a sink inside loops whose
//! induction is not provably the time cursor.

pub fn emit_fixed<S: SeriesSink>(sink: &mut S, vals: &[i64]) {
    let fixed = Interval::at(0, 1);
    for _ in 0..vals.len() {
        sink.accept(fixed, 7);
    }
}

pub fn drain_fixed<S: SeriesSink>(sink: &mut S, n: usize) {
    let span = Interval::at(10, 20);
    let mut i = 0;
    while i < n {
        sink.push(span, 1);
        i += 1;
    }
}

pub fn let_bound_sink(parts: &[i64]) {
    let out: VecSink = VecSink::new();
    let whole = Interval::at(0, 100);
    for _p in parts {
        out.accept(whole, 0);
    }
}
