//@ crate: fixture
//! Negative fixture for `sink-order`: cursor-derived emission, justified
//! allows, and non-sink receivers all stay clean.

pub fn emit_segments<S: SeriesSink>(sink: &mut S, boundaries: &[i64]) {
    for (i, b) in boundaries.iter().enumerate() {
        let segment = Interval::at(*b, *b);
        sink.accept(segment, i);
    }
}

pub fn emit_direct<S: SeriesSink>(sink: &mut S, spans: &[Interval]) {
    for span in spans {
        sink.accept(span, 1);
    }
}

pub fn flush_tail<S: SeriesSink>(sink: &mut S, vals: &[i64]) {
    let tail = Interval::at(90, 99);
    for _v in vals {
        // lint: allow(sink-order): the tail segment is re-emitted once per value by design of this fixture
        sink.accept(tail, 1);
    }
}

pub fn not_a_sink(buf: &mut Vec<i64>, vals: &[i64]) {
    for v in vals {
        buf.push(*v);
    }
}

pub fn outside_a_loop<S: SeriesSink>(sink: &mut S) {
    let whole = Interval::at(0, 100);
    sink.accept(whole, 0);
}
