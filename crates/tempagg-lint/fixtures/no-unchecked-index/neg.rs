//@ crate: tempagg-algo
//! Negative fixture for `no-unchecked-index`: iterator rewrites, justified
//! allows (the `indexing` alias), indexing outside loops, and non-hot-path
//! crates all stay clean.

pub fn sum_pairs(xs: &[i64], ys: &[i64]) -> i64 {
    xs.iter().zip(ys).map(|(x, y)| x + y).sum()
}

pub fn justified(perm: &[usize], out: &mut [usize]) {
    for (i, &p) in perm.iter().enumerate() {
        // lint: allow(indexing): perm is a permutation of 0..len, so p < out.len()
        out[p] = i;
    }
}

pub fn outside_a_loop(xs: &[i64]) -> i64 {
    xs[0]
}
