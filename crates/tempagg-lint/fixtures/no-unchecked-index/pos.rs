//@ crate: tempagg-algo
//! Positive fixture for `no-unchecked-index`: bracket indexing inside a
//! loop in a hot-path crate (tempagg-algo / tempagg-core).

pub fn sum_pairs(xs: &[i64], ys: &[i64]) -> i64 {
    let mut total = 0;
    for i in 0..xs.len() {
        total += xs[i];
        total += ys[i];
    }
    total
}

pub fn last_while(cells: &[u64]) -> u64 {
    let mut i = 0;
    let mut seen = 0;
    while i < cells.len() {
        seen = cells[i];
        i += 1;
    }
    seen
}
