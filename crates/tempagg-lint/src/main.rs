//! `tempagg-lint` — the workspace's own static-analysis pass.
//!
//! Run as `cargo run -p tempagg-lint` from anywhere in the workspace (or
//! pass an explicit root: `cargo run -p tempagg-lint -- path/to/tree`).
//! Walks every crate's `src/` tree plus the root crate's `src/`, lexes each
//! file with a hand-rolled lexer, and enforces the rules in [`rules`]:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect()` / `panic!` family in
//!   non-test library code
//! * `no-raw-i64-arith` — raw timestamp arithmetic only inside
//!   `tempagg-core`
//! * `no-as-cast` — no `as` casts in `tempagg-algo` / `tempagg-agg`
//! * `no-raw-thread` — `std::thread` spawning only in
//!   `tempagg-algo/src/parallel.rs`
//! * `no-materialize-in-exec` — no argument-less `.finish()` in the
//!   execution layers; results stream through `SeriesSink`
//! * `forbid-unsafe` — `#![forbid(unsafe_code)]` in every crate root
//!
//! Exit codes: 0 clean, 1 violations found, 2 I/O failure. Diagnostics are
//! `path:line: rule: message`, one per line, sorted by path.

#![forbid(unsafe_code)]

mod lexer;
mod rules;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match workspace_root() {
        Ok(root) => root,
        Err(e) => {
            eprintln!("tempagg-lint: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };

    // `src/` directly under the workspace root is the facade package; when
    // the argument is a single crate subtree instead, its basename is the
    // crate whose rules apply (so e.g. tempagg-core keeps its arithmetic
    // privileges when linted alone).
    let root_pkg = if root.join("crates").is_dir() {
        "temporal-aggregates".to_string()
    } else {
        root.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("temporal-aggregates")
            .to_string()
    };

    let mut files = Vec::new();
    if let Err(e) = collect_lintable_files(&root, &mut files) {
        eprintln!("tempagg-lint: {e}");
        return ExitCode::from(2);
    }
    files.sort();

    let mut violations = 0usize;
    let mut scanned = 0usize;
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("tempagg-lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        let crate_name = crate_of(&root, &root_pkg, file);
        let ctx = rules::FileContext {
            crate_name,
            is_crate_root: is_crate_root(file),
            is_thread_hub: crate_name == "tempagg-algo"
                && file.ends_with(Path::new("src").join("parallel.rs")),
            is_exec_path: (crate_name == "tempagg-plan"
                && file.ends_with(Path::new("src").join("executor.rs")))
                || (crate_name == "tempagg-sql"
                    && file.ends_with(Path::new("src").join("exec.rs"))),
        };
        let tokens = lexer::lex(&src);
        for v in rules::check_file(ctx, &tokens) {
            let rel = file.strip_prefix(&root).unwrap_or(file);
            println!("{}:{}: {}: {}", rel.display(), v.line, v.rule, v.message);
            violations += 1;
        }
    }

    if violations > 0 {
        eprintln!(
            "tempagg-lint: {violations} violation(s) in {scanned} file(s) — \
             fix, or justify with `// lint: allow(<rule>): <why>`"
        );
        ExitCode::from(1)
    } else {
        eprintln!("tempagg-lint: clean ({scanned} files)");
        ExitCode::SUCCESS
    }
}

/// The workspace root: an explicit CLI argument, else two levels above this
/// crate's manifest (`crates/tempagg-lint` → repo root).
fn workspace_root() -> Result<PathBuf, String> {
    if let Some(arg) = std::env::args().nth(1) {
        let p = PathBuf::from(arg);
        if !p.is_dir() {
            return Err(format!("{} is not a directory", p.display()));
        }
        return Ok(p);
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR unset and no root argument given".to_string())?;
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .ok_or_else(|| format!("{manifest} has no grandparent"))
}

/// Every `.rs` file under a `src/` tree of the root package or a member
/// crate. `tests/`, `benches/`, and `examples/` trees are exempt by
/// design: the rules target *library* code. A root without a `crates/`
/// directory is fine — that is how a single crate subtree is linted.
fn collect_lintable_files(root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    walk_src(&root.join("src"), out)?;
    let crates = root.join("crates");
    if !crates.is_dir() {
        if out.is_empty() {
            return Err(format!("no src/ or crates/ under {}", root.display()));
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            walk_src(&entry.path().join("src"), out)?;
        }
    }
    Ok(())
}

fn walk_src(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        if path.is_dir() {
            walk_src(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate name from the path: `crates/<name>/src/...` → `<name>`; anything
/// else (the root package's `src/`, or a single-crate root) belongs to
/// `root_pkg`.
fn crate_of<'a>(root: &Path, root_pkg: &'a str, file: &'a Path) -> &'a str {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut parts = rel.components();
    match parts.next().and_then(|c| c.as_os_str().to_str()) {
        Some("crates") => parts
            .next()
            .and_then(|c| c.as_os_str().to_str())
            .unwrap_or("unknown"),
        _ => root_pkg,
    }
}

fn is_crate_root(file: &Path) -> bool {
    let name = file.file_name().and_then(|n| n.to_str());
    let parent_is_src = file
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        == Some("src");
    parent_is_src && matches!(name, Some("lib.rs" | "main.rs"))
}
