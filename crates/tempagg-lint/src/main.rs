//! `tempagg-lint` CLI — a thin driver over the [`tempagg_lint`] library.
//!
//! Run as `cargo run -p tempagg-lint` from anywhere in the workspace (or
//! pass an explicit root: `cargo run -p tempagg-lint -- path/to/tree`).
//! Walks every crate's `src/` tree plus the root crate's `src/`, lexes
//! each file once, and runs both rule generations (token rules and the
//! syntax-aware tree rules) — see the library docs for the rule list.
//!
//! ## Stable interface (consumed by CI and pre-commit hooks)
//!
//! Flags:
//!
//! * `--json` — machine-readable output: a JSON array of
//!   `{"file", "line", "rule", "message"}` objects on stdout, one object
//!   per line (diff-friendly). The human summary still goes to stderr.
//! * `--github` — GitHub Actions annotations
//!   (`::error file=…,line=…,title=tempagg-lint(rule)::message`).
//! * `--help` — usage.
//!
//! Exit codes (stable):
//!
//! * `0` — clean, no violations
//! * `1` — one or more violations found
//! * `2` — usage or I/O error (bad flag, unreadable file, no workspace)
//!
//! Diagnostics in the default text mode are `path:line: rule: message`,
//! one per line, sorted by path.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tempagg_lint::{check_source, FileContext};

const USAGE: &str = "usage: tempagg-lint [--json | --github] [ROOT]\n\
                     \n\
                     exit codes: 0 clean, 1 violations found, 2 usage/IO error";

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root_arg: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--github" => format = Format::Github,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("tempagg-lint: unknown flag `{flag}`\n{USAGE}");
                return ExitCode::from(2);
            }
            path => {
                if root_arg.is_some() {
                    eprintln!("tempagg-lint: more than one ROOT argument\n{USAGE}");
                    return ExitCode::from(2);
                }
                root_arg = Some(PathBuf::from(path));
            }
        }
    }

    let root = match workspace_root(root_arg) {
        Ok(root) => root,
        Err(e) => {
            eprintln!("tempagg-lint: cannot locate workspace root: {e}");
            return ExitCode::from(2);
        }
    };

    // `src/` directly under the workspace root is the facade package; when
    // the argument is a single crate subtree instead, its basename is the
    // crate whose rules apply (so e.g. tempagg-core keeps its arithmetic
    // privileges when linted alone).
    let root_pkg = if root.join("crates").is_dir() {
        "temporal-aggregates".to_string()
    } else {
        root.file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("temporal-aggregates")
            .to_string()
    };

    let mut files = Vec::new();
    if let Err(e) = collect_lintable_files(&root, &mut files) {
        eprintln!("tempagg-lint: {e}");
        return ExitCode::from(2);
    }
    files.sort();

    let mut violations = 0usize;
    let mut scanned = 0usize;
    let mut json_rows = Vec::new();
    for file in &files {
        let src = match std::fs::read_to_string(file) {
            Ok(src) => src,
            Err(e) => {
                eprintln!("tempagg-lint: {}: {e}", file.display());
                return ExitCode::from(2);
            }
        };
        scanned += 1;
        let ctx = file_context(&root, &root_pkg, file);
        let rel = file.strip_prefix(&root).unwrap_or(file);
        for v in check_source(&ctx, &src) {
            match format {
                Format::Text => {
                    println!("{}:{}: {}: {}", rel.display(), v.line, v.rule, v.message);
                }
                Format::Json => json_rows.push(format!(
                    "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                    json_string(&rel.display().to_string()),
                    v.line,
                    json_string(v.rule),
                    json_string(&v.message)
                )),
                Format::Github => {
                    // Annotation text must be single-line.
                    let msg = v.message.replace('\n', " ");
                    println!(
                        "::error file={},line={},title=tempagg-lint({})::{}",
                        rel.display(),
                        v.line,
                        v.rule,
                        msg
                    );
                }
            }
            violations += 1;
        }
    }

    if format == Format::Json {
        println!("[");
        for (i, row) in json_rows.iter().enumerate() {
            let comma = if i + 1 < json_rows.len() { "," } else { "" };
            println!("  {row}{comma}");
        }
        println!("]");
    }

    if violations > 0 {
        eprintln!(
            "tempagg-lint: {violations} violation(s) in {scanned} file(s) — \
             fix, or justify with `// lint: allow(<rule>): <why>`"
        );
        ExitCode::from(1)
    } else {
        eprintln!("tempagg-lint: clean ({scanned} files)");
        ExitCode::SUCCESS
    }
}

/// The per-file rule context: crate name plus the special-path flags
/// (thread hub, exec paths, seam/stitch hubs).
fn file_context<'a>(root: &Path, root_pkg: &'a str, file: &'a Path) -> FileContext<'a> {
    let crate_name = crate_of(root, root_pkg, file);
    let is_thread_hub =
        crate_name == "tempagg-algo" && file.ends_with(Path::new("src").join("parallel.rs"));
    let is_executor =
        crate_name == "tempagg-plan" && file.ends_with(Path::new("src").join("executor.rs"));
    let is_pager = crate_name == "tempagg-core"
        && file
            .ancestors()
            .any(|p| p.ends_with(Path::new("src").join("pager")));
    FileContext {
        crate_name,
        is_crate_root: is_crate_root(file),
        is_thread_hub,
        is_exec_path: is_executor
            || (crate_name == "tempagg-sql" && file.ends_with(Path::new("src").join("exec.rs"))),
        is_seam_hub: is_thread_hub || is_executor,
        is_pager,
    }
}

/// Minimal JSON string escaping (control chars, quotes, backslashes) — the
/// lint stays dependency-free by policy.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The workspace root: an explicit CLI argument, else two levels above this
/// crate's manifest (`crates/tempagg-lint` → repo root).
fn workspace_root(arg: Option<PathBuf>) -> Result<PathBuf, String> {
    if let Some(p) = arg {
        if !p.is_dir() {
            return Err(format!("{} is not a directory", p.display()));
        }
        return Ok(p);
    }
    let manifest = std::env::var("CARGO_MANIFEST_DIR")
        .map_err(|_| "CARGO_MANIFEST_DIR unset and no root argument given".to_string())?;
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .ok_or_else(|| format!("{manifest} has no grandparent"))
}

/// Every `.rs` file under a `src/` tree of the root package or a member
/// crate. `tests/`, `benches/`, and `examples/` trees are exempt by
/// design: the rules target *library* code. A root without a `crates/`
/// directory is fine — that is how a single crate subtree is linted.
fn collect_lintable_files(root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    walk_src(&root.join("src"), out)?;
    let crates = root.join("crates");
    if !crates.is_dir() {
        if out.is_empty() {
            return Err(format!("no src/ or crates/ under {}", root.display()));
        }
        return Ok(());
    }
    let entries = std::fs::read_dir(&crates).map_err(|e| format!("{}: {e}", crates.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", crates.display()))?;
        if entry.path().is_dir() {
            walk_src(&entry.path().join("src"), out)?;
        }
    }
    Ok(())
}

fn walk_src(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("{}: {e}", dir.display()))?.path();
        if path.is_dir() {
            walk_src(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Crate name from the path: `crates/<name>/src/...` → `<name>`; anything
/// else (the root package's `src/`, or a single-crate root) belongs to
/// `root_pkg`.
fn crate_of<'a>(root: &Path, root_pkg: &'a str, file: &'a Path) -> &'a str {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let mut parts = rel.components();
    match parts.next().and_then(|c| c.as_os_str().to_str()) {
        Some("crates") => parts
            .next()
            .and_then(|c| c.as_os_str().to_str())
            .unwrap_or("unknown"),
        _ => root_pkg,
    }
}

fn is_crate_root(file: &Path) -> bool {
    let name = file.file_name().and_then(|n| n.to_str());
    let parent_is_src = file
        .parent()
        .and_then(|p| p.file_name())
        .and_then(|n| n.to_str())
        == Some("src");
    parent_is_src && matches!(name, Some("lib.rs" | "main.rs"))
}
