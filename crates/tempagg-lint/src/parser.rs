//! A dependency-free recursive-descent parser layered on the shared lexer
//! ([`crate::lexer`]) — just enough tree structure for scope-aware lint
//! rules.
//!
//! The parser produces a lightweight item/block/expression tree per file:
//! items (functions, impls, modules) with their signatures, and inside
//! function bodies a nested expression tree recording exactly the shapes
//! the rules reason about — loops with their induction patterns, closures
//! with their parameters, `let` bindings with the identifiers feeding
//! them, method/path calls with their argument identifiers, bracket
//! indexing, and `&mut` borrows. Everything else (arithmetic, literals,
//! types) is consumed without a node.
//!
//! Design constraints, in order:
//!
//! 1. **Never panic, never loop forever.** Every scan is bounded by the
//!    token count and tolerates unterminated constructs; malformed input
//!    degrades to `Other` items or missing nodes, not failures. The
//!    `parse_workspace` integration test feeds every `.rs` file in the
//!    repo through here to hold this line.
//! 2. **Be faithful on the shapes the rules use.** Loop patterns,
//!    closure parameters, call receivers, and argument identifier sets
//!    must be right, because the dataflow rules build symbol tables from
//!    them.
//! 3. **Stay lightweight everywhere else.** `match` arms, struct
//!    literals, and types may parse as generic blocks/token runs; the
//!    rules never look at them.

use crate::lexer::{Token, TokenKind};

/// A parsed file: its top-level items.
#[derive(Debug, Default)]
pub struct Ast {
    pub items: Vec<Item>,
}

/// One item (function, impl, module, or anything else).
#[derive(Debug)]
pub struct Item {
    pub kind: ItemKind,
    pub line: u32,
    /// The item carried a `#[cfg(test)]` attribute.
    pub cfg_test: bool,
}

#[derive(Debug)]
pub enum ItemKind {
    Fn(Func),
    Impl {
        /// `Some("SeriesSink<T>")` for `impl SeriesSink<T> for Foo`.
        trait_path: Option<String>,
        self_ty: String,
        items: Vec<Item>,
    },
    Mod {
        name: String,
        items: Vec<Item>,
    },
    /// struct / enum / use / const / … — consumed without structure.
    Other {
        keyword: String,
    },
}

/// A function item: signature facts plus the expression tree of its body.
#[derive(Debug)]
pub struct Func {
    pub name: String,
    /// Flattened generic-parameter and where-clause text, used to resolve
    /// trait bounds like `S: SeriesSink<T>` on a parameter's type.
    pub generics: String,
    pub params: Vec<Param>,
    /// `None` for body-less trait-method signatures.
    pub body: Option<Vec<Expr>>,
    pub line: u32,
}

/// One parameter: the names it binds and its type text.
#[derive(Debug)]
pub struct Param {
    pub names: Vec<String>,
    pub ty: String,
}

/// One node of the expression tree.
#[derive(Debug)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: u32,
    pub children: Vec<Expr>,
}

#[derive(Debug)]
pub enum ExprKind {
    /// `{ … }`, `if`/`match`/`unsafe` bodies, match arms, struct literals.
    Block,
    /// `for PATS in ITER { … }`; children are the body (the iterator
    /// expression's nodes precede the loop as siblings — it is evaluated
    /// once, outside the loop frame).
    ForLoop {
        pats: Vec<String>,
        iter_idents: Vec<String>,
    },
    /// `while COND { … }` / `while let PATS = EXPR { … }`; the condition's
    /// nodes are children (it re-evaluates per iteration).
    WhileLoop { pats: Vec<String> },
    /// `loop { … }`.
    LoopLoop,
    /// `|params| …` / `move |params| …`; children are the body.
    Closure { params: Vec<String>, is_move: bool },
    /// `let NAMES = INIT…;` — `init_idents` are the identifiers appearing
    /// in the initializer (the initializer's calls still become sibling
    /// nodes after this one).
    Let {
        names: Vec<String>,
        init_idents: Vec<String>,
    },
    /// `recv.method(args)`; `recv` is the dotted receiver chain when it is
    /// a simple identifier chain (`"sink"`, `"self.ready"`), else `""`.
    MethodCall {
        recv: String,
        method: String,
        arg_idents: Vec<String>,
    },
    /// `path::to::fn(args)` (turbofish elided from `path`).
    PathCall {
        path: String,
        arg_idents: Vec<String>,
    },
    /// `name!(…)` / `name![…]` / `name!{…}`; children are the contents.
    MacroCall { name: String },
    /// `recv[…]` postfix indexing (never attributes or array literals).
    Index { recv: String },
    /// `&mut NAME` (chain text, e.g. `"slot"` or `"self.buf"`).
    MutBorrow { name: String },
}

/// Parse a token stream (comments are skipped internally).
pub fn parse(tokens: &[Token<'_>]) -> Ast {
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut p = Parser { t: &code, i: 0 };
    Ast {
        items: p.items(true),
    }
}

/// Rust keywords that can never be user identifiers in the positions the
/// parser collects names from.
const PATTERN_NOISE: &[&str] = &["mut", "ref", "box", "_"];

fn is_binding_ident(text: &str) -> bool {
    if PATTERN_NOISE.contains(&text) {
        return false;
    }
    // Uppercase-initial identifiers are type/variant names by repo
    // convention (`Some`, `StitchSink`), not bindings.
    text.chars().next().is_some_and(char::is_lowercase) || text.starts_with('_')
}

struct Parser<'a, 'b> {
    t: &'a [&'a Token<'b>],
    i: usize,
}

#[derive(Clone, Copy, PartialEq)]
enum Stop {
    /// Until the matching `}` (which is consumed).
    Brace,
    /// Until the matching `)` (which is consumed).
    Paren,
    /// Until the matching `]` (which is consumed).
    Bracket,
    /// Closure-body style: until `,` `;` `)` `]` `}` at depth 0 (not
    /// consumed).
    ExprEnd,
    /// Until the tokens run out.
    End,
}

impl<'a, 'b> Parser<'a, 'b> {
    fn peek(&self, ahead: usize) -> Option<&'a Token<'b>> {
        self.t.get(self.i + ahead).copied()
    }

    fn at_punct(&self, c: char) -> bool {
        self.peek(0).is_some_and(|t| t.is_punct(c))
    }

    fn at_ident(&self, s: &str) -> bool {
        self.peek(0).is_some_and(|t| t.is_ident(s))
    }

    fn at_any_ident(&self) -> bool {
        self.peek(0).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn line(&self) -> u32 {
        self.peek(0).map_or(0, |t| t.line)
    }

    fn bump(&mut self) {
        self.i += 1;
    }

    fn text(&self) -> &'b str {
        self.peek(0).map_or("", |t| t.text)
    }

    /// Skip a balanced `<…>` run starting at the current `<`. `>` tokens
    /// that belong to `->` arrows do not close a level.
    fn skip_angles(&mut self) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                let arrow = self.i > 0 && self.t[self.i - 1].is_punct('-');
                if !arrow {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        out.push_str(t.text);
                        self.bump();
                        break;
                    }
                }
            }
            push_text(&mut out, t.text);
            self.bump();
        }
        out
    }

    /// Skip one balanced delimiter run starting at the current open
    /// delimiter; returns the skipped token range `(start, end)`.
    fn skip_balanced(&mut self, open: char, close: char) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct(open) {
                depth += 1;
            } else if t.is_punct(close) {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.bump();
                    break;
                }
            }
            self.bump();
        }
        (start, self.i)
    }

    /// Consume attributes at the current position; `true` if any carried
    /// `cfg(test)`.
    fn skip_attrs(&mut self) -> bool {
        let mut cfg_test = false;
        loop {
            let hash = self.at_punct('#');
            let open = if self.peek(1).is_some_and(|t| t.is_punct('[')) {
                1
            } else if self.peek(1).is_some_and(|t| t.is_punct('!'))
                && self.peek(2).is_some_and(|t| t.is_punct('['))
            {
                2
            } else {
                0
            };
            if !hash || open == 0 {
                return cfg_test;
            }
            for _ in 0..open {
                self.bump();
            }
            let (start, end) = self.skip_balanced('[', ']');
            let body: Vec<&str> = self.t[start..end].iter().map(|t| t.text).collect();
            if body
                .windows(4)
                .any(|w| w[0] == "cfg" && w[1] == "(" && w[2] == "test" && w[3] == ")")
            {
                cfg_test = true;
            }
        }
    }

    /// Parse items until end of input (`top == true`) or a closing `}`.
    fn items(&mut self, top: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while self.peek(0).is_some() {
            if !top && self.at_punct('}') {
                self.bump();
                break;
            }
            let cfg_test = self.skip_attrs();
            let line = self.line();
            // Visibility.
            if self.at_ident("pub") {
                self.bump();
                if self.at_punct('(') {
                    self.skip_balanced('(', ')');
                }
            }
            // Modifier keywords before `fn` (const fn, unsafe fn, …).
            while self.at_ident("default")
                || self.at_ident("async")
                || (self.at_ident("unsafe") && self.peek(1).is_some_and(|t| t.is_ident("fn")))
                || (self.at_ident("const")
                    && self
                        .peek(1)
                        .is_some_and(|t| t.is_ident("fn") || t.is_ident("unsafe")))
                || (self.at_ident("extern")
                    && self.peek(1).is_some_and(|t| t.kind == TokenKind::Literal)
                    && self.peek(2).is_some_and(|t| t.is_ident("fn")))
            {
                self.bump();
                if self.i > 0 && self.t[self.i - 1].is_ident("extern") {
                    self.bump(); // the ABI string literal
                }
            }
            if self.at_ident("fn") {
                out.push(Item {
                    kind: ItemKind::Fn(self.parse_fn()),
                    line,
                    cfg_test,
                });
            } else if self.at_ident("impl") {
                out.push(Item {
                    kind: self.parse_impl(),
                    line,
                    cfg_test,
                });
            } else if self.at_ident("mod") {
                self.bump();
                let name = if self.at_any_ident() {
                    let n = self.text().to_string();
                    self.bump();
                    n
                } else {
                    String::new()
                };
                if self.at_punct('{') {
                    self.bump();
                    let items = self.items(false);
                    out.push(Item {
                        kind: ItemKind::Mod { name, items },
                        line,
                        cfg_test,
                    });
                } else {
                    self.skip_to_semi();
                    out.push(Item {
                        kind: ItemKind::Other {
                            keyword: "mod".to_string(),
                        },
                        line,
                        cfg_test,
                    });
                }
            } else if self.at_ident("trait") {
                // Parse the contained method signatures/defaults as items.
                self.bump();
                self.skip_until_brace_or_semi();
                if self.at_punct('{') {
                    self.bump();
                    let items = self.items(false);
                    out.push(Item {
                        kind: ItemKind::Mod {
                            name: "trait".to_string(),
                            items,
                        },
                        line,
                        cfg_test,
                    });
                } else {
                    if self.at_punct(';') {
                        self.bump();
                    }
                    out.push(Item {
                        kind: ItemKind::Other {
                            keyword: "trait".to_string(),
                        },
                        line,
                        cfg_test,
                    });
                }
            } else if self.at_any_ident() || self.at_punct('#') {
                // struct / enum / use / const / static / type / macro_rules
                // / extern blocks — consume blindly to the item's end.
                let keyword = self.text().to_string();
                self.bump();
                self.skip_item_rest();
                out.push(Item {
                    kind: ItemKind::Other { keyword },
                    line,
                    cfg_test,
                });
            } else {
                // Stray punctuation at item level — never stall.
                self.bump();
            }
        }
        out
    }

    /// After an unknown item keyword: consume to the first top-level `;`,
    /// or through the first top-level `{…}` run.
    fn skip_item_rest(&mut self) {
        self.skip_until_brace_or_semi();
        if self.at_punct('{') {
            self.skip_balanced('{', '}');
        } else if self.at_punct(';') {
            self.bump();
        }
    }

    fn skip_to_semi(&mut self) {
        let mut brace = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace = brace.saturating_sub(1);
            } else if t.is_punct(';') && brace == 0 {
                self.bump();
                return;
            }
            self.bump();
        }
    }

    /// Advance to (not past) the next `{` or `;` at top level, skipping
    /// generic runs so `Vec<{integer}>`-style noise cannot confuse it.
    fn skip_until_brace_or_semi(&mut self) {
        let mut paren = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') && paren == 0 {
                self.skip_angles();
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren = paren.saturating_sub(1);
            } else if (t.is_punct('{') || t.is_punct(';')) && paren == 0 {
                return;
            }
            self.bump();
        }
    }

    fn parse_impl(&mut self) -> ItemKind {
        self.bump(); // `impl`
        let mut generics = String::new();
        if self.at_punct('<') {
            generics = self.skip_angles();
        }
        let _ = generics;
        // Collect type tokens until `for`, `where`, or `{` at top level.
        let mut head = String::new();
        let mut trait_path: Option<String> = None;
        loop {
            if self.peek(0).is_none() || self.at_punct('{') {
                break;
            }
            if self.at_ident("where") {
                // Skip the where clause up to the body.
                while self.peek(0).is_some() && !self.at_punct('{') {
                    if self.at_punct('<') {
                        self.skip_angles();
                    } else {
                        self.bump();
                    }
                }
                break;
            }
            if self.at_ident("for") {
                trait_path = Some(std::mem::take(&mut head));
                self.bump();
                continue;
            }
            if self.at_punct('<') {
                let run = self.skip_angles();
                push_text(&mut head, &run);
                continue;
            }
            push_text(&mut head, self.text());
            self.bump();
        }
        let items = if self.at_punct('{') {
            self.bump();
            self.items(false)
        } else {
            Vec::new()
        };
        ItemKind::Impl {
            trait_path,
            self_ty: head,
            items,
        }
    }

    fn parse_fn(&mut self) -> Func {
        let line = self.line();
        self.bump(); // `fn`
        let name = if self.at_any_ident() {
            let n = self.text().to_string();
            self.bump();
            n
        } else {
            String::new()
        };
        let mut generics = String::new();
        if self.at_punct('<') {
            generics = self.skip_angles();
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            self.bump();
            params = self.parse_params();
        }
        // Return type + where clause up to `{` or `;`.
        let mut saw_where = false;
        loop {
            if self.peek(0).is_none() || self.at_punct('{') || self.at_punct(';') {
                break;
            }
            if self.at_ident("where") {
                saw_where = true;
            }
            if self.at_punct('<') {
                let run = self.skip_angles();
                if saw_where {
                    push_text(&mut generics, &run);
                }
                continue;
            }
            if saw_where {
                push_text(&mut generics, self.text());
            }
            self.bump();
        }
        let body = if self.at_punct('{') {
            self.bump();
            Some(self.scan(Stop::Brace))
        } else {
            if self.at_punct(';') {
                self.bump();
            }
            None
        };
        Func {
            name,
            generics,
            params,
            body,
            line,
        }
    }

    /// Parse a parameter list; the opening `(` is already consumed.
    fn parse_params(&mut self) -> Vec<Param> {
        let mut params = Vec::new();
        let mut names: Vec<String> = Vec::new();
        let mut ty = String::new();
        let mut in_ty = false;
        let mut depth = 0usize;
        while let Some(t) = self.peek(0) {
            if t.is_punct('<') && depth == 0 {
                let run = self.skip_angles();
                if in_ty {
                    push_text(&mut ty, &run);
                }
                continue;
            }
            if t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(')') {
                if depth == 0 {
                    self.bump();
                    break;
                }
                depth = depth.saturating_sub(1);
            }
            if depth == 0 && t.is_punct(',') {
                if !names.is_empty() || !ty.is_empty() {
                    params.push(Param {
                        names: std::mem::take(&mut names),
                        ty: std::mem::take(&mut ty),
                    });
                }
                in_ty = false;
                self.bump();
                continue;
            }
            if depth == 0 && t.is_punct(':') && !in_ty {
                in_ty = true;
                self.bump();
                continue;
            }
            if in_ty {
                push_text(&mut ty, t.text);
            } else if t.kind == TokenKind::Ident {
                if t.text == "self" {
                    names.push("self".to_string());
                    push_text(&mut ty, "self");
                } else if is_binding_ident(t.text) {
                    names.push(t.text.to_string());
                }
            }
            self.bump();
        }
        if !names.is_empty() || !ty.is_empty() {
            params.push(Param { names, ty });
        }
        params
    }

    /// Collect binding identifiers from the tokens of a pattern range.
    fn pattern_idents(range: &[&Token<'_>]) -> Vec<String> {
        range
            .iter()
            .filter(|t| t.kind == TokenKind::Ident && is_binding_ident(t.text))
            .map(|t| t.text.to_string())
            .collect()
    }

    fn idents_in(range: &[&Token<'_>]) -> Vec<String> {
        range
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.to_string())
            .collect()
    }

    /// Advance to the next token matching `pred` at delimiter depth 0;
    /// returns the scanned range.
    fn range_until(&mut self, pred: impl Fn(&Token<'_>) -> bool) -> (usize, usize) {
        let start = self.i;
        let (mut paren, mut bracket, mut brace) = (0usize, 0usize, 0usize);
        while let Some(t) = self.peek(0) {
            if paren == 0 && bracket == 0 && brace == 0 && pred(t) {
                break;
            }
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren = paren.saturating_sub(1);
            } else if t.is_punct('[') {
                bracket += 1;
            } else if t.is_punct(']') {
                bracket = bracket.saturating_sub(1);
            } else if t.is_punct('{') {
                brace += 1;
            } else if t.is_punct('}') {
                brace = brace.saturating_sub(1);
            }
            self.bump();
        }
        (start, self.i)
    }

    /// Parse a detached token range into expression nodes.
    fn scan_range(&self, start: usize, end: usize) -> Vec<Expr> {
        let mut sub = Parser {
            t: &self.t[start..end],
            i: 0,
        };
        sub.scan(Stop::End)
    }

    /// The universal expression scanner: walks tokens until `stop`,
    /// emitting nodes for the shapes the rules care about.
    #[allow(clippy::too_many_lines)]
    fn scan(&mut self, stop: Stop) -> Vec<Expr> {
        let mut out = Vec::new();
        // `[`…`]` runs are always consumed whole by the index/array
        // dispatch below, so no bracket counter is needed here.
        let (mut paren, bracket, mut brace) = (0usize, 0usize, 0usize);
        let mut pending_move = false;
        while let Some(t) = self.peek(0) {
            // Stop conditions at local depth 0.
            let at_depth0 = paren == 0 && bracket == 0 && brace == 0;
            match stop {
                Stop::Brace if at_depth0 && t.is_punct('}') => {
                    self.bump();
                    return out;
                }
                Stop::Paren if at_depth0 && t.is_punct(')') => {
                    self.bump();
                    return out;
                }
                Stop::Bracket if at_depth0 && t.is_punct(']') => {
                    self.bump();
                    return out;
                }
                Stop::ExprEnd
                    if at_depth0
                        && (t.is_punct(',')
                            || t.is_punct(';')
                            || t.is_punct(')')
                            || t.is_punct(']')
                            || t.is_punct('}')) =>
                {
                    return out;
                }
                _ => {}
            }
            let line = t.line;
            // Attributes inside blocks (e.g. on nested items/statements).
            if t.is_punct('#')
                && (self.peek(1).is_some_and(|n| n.is_punct('['))
                    || (self.peek(1).is_some_and(|n| n.is_punct('!'))
                        && self.peek(2).is_some_and(|n| n.is_punct('['))))
            {
                self.skip_attrs();
                continue;
            }
            if t.is_punct('{') {
                self.bump();
                let children = self.scan(Stop::Brace);
                out.push(Expr {
                    kind: ExprKind::Block,
                    line,
                    children,
                });
                continue;
            }
            if t.is_punct('}') {
                // Unbalanced close under Stop::End/ExprEnd bookkeeping.
                brace = brace.saturating_sub(1);
                self.bump();
                continue;
            }
            if t.kind == TokenKind::Ident {
                match t.text {
                    "for" if !self.peek(1).is_some_and(|n| n.is_punct('<')) => {
                        self.bump();
                        let (ps, pe) = self.range_until(|t| t.is_ident("in"));
                        let pats = Self::pattern_idents(&self.t[ps..pe]);
                        if self.at_ident("in") {
                            self.bump();
                        }
                        let (is, ie) = self.range_until(|t| t.is_punct('{'));
                        let iter_idents = Self::idents_in(&self.t[is..ie]);
                        // Iterator nodes precede the loop (evaluated once).
                        out.extend(self.scan_range(is, ie));
                        let children = if self.at_punct('{') {
                            self.bump();
                            self.scan(Stop::Brace)
                        } else {
                            Vec::new()
                        };
                        out.push(Expr {
                            kind: ExprKind::ForLoop { pats, iter_idents },
                            line,
                            children,
                        });
                        continue;
                    }
                    "while" => {
                        self.bump();
                        let mut pats = Vec::new();
                        let mut children = Vec::new();
                        if self.at_ident("let") {
                            self.bump();
                            let (ps, pe) = self.range_until(|t| t.is_punct('='));
                            pats = Self::pattern_idents(&self.t[ps..pe]);
                            if self.at_punct('=') {
                                self.bump();
                            }
                        }
                        let (cs, ce) = self.range_until(|t| t.is_punct('{'));
                        // Condition nodes are inside the loop frame: they
                        // re-evaluate per iteration.
                        children.extend(self.scan_range(cs, ce));
                        if self.at_punct('{') {
                            self.bump();
                            children.extend(self.scan(Stop::Brace));
                        }
                        out.push(Expr {
                            kind: ExprKind::WhileLoop { pats },
                            line,
                            children,
                        });
                        continue;
                    }
                    "loop" if self.peek(1).is_some_and(|n| n.is_punct('{')) => {
                        self.bump();
                        self.bump();
                        let children = self.scan(Stop::Brace);
                        out.push(Expr {
                            kind: ExprKind::LoopLoop,
                            line,
                            children,
                        });
                        continue;
                    }
                    "if" | "match" => {
                        // Emit the scrutinee/condition nodes inline, then
                        // let the `{` dispatch build the body block.
                        self.bump();
                        if self.at_ident("let") {
                            self.bump();
                            let (_, _) = self.range_until(|t| t.is_punct('='));
                            if self.at_punct('=') {
                                self.bump();
                            }
                        }
                        let (cs, ce) = self.range_until(|t| t.is_punct('{'));
                        out.extend(self.scan_range(cs, ce));
                        continue;
                    }
                    "let" => {
                        self.bump();
                        let (ps, pe) = self
                            .range_until(|t| t.is_punct('=') || t.is_punct(';') || t.is_punct(':'));
                        let names = Self::pattern_idents(&self.t[ps..pe]);
                        if self.at_punct(':') {
                            // Skip the type annotation to `=` or `;`.
                            self.bump();
                            loop {
                                if self.peek(0).is_none()
                                    || self.at_punct('=')
                                    || self.at_punct(';')
                                {
                                    break;
                                }
                                if self.at_punct('<') {
                                    self.skip_angles();
                                } else {
                                    self.bump();
                                }
                            }
                        }
                        let mut init_idents = Vec::new();
                        if self.at_punct('=') {
                            // Look ahead (without consuming) to the `;` at
                            // depth 0 for the initializer's identifiers;
                            // its calls still get scanned as siblings.
                            let from = self.i + 1;
                            let mut j = from;
                            let (mut p, mut bk, mut bc) = (0usize, 0usize, 0usize);
                            while let Some(tt) = self.t.get(j) {
                                if tt.is_punct(';') && p == 0 && bk == 0 && bc == 0 {
                                    break;
                                }
                                if tt.is_punct('(') {
                                    p += 1;
                                } else if tt.is_punct(')') {
                                    p = p.saturating_sub(1);
                                } else if tt.is_punct('[') {
                                    bk += 1;
                                } else if tt.is_punct(']') {
                                    bk = bk.saturating_sub(1);
                                } else if tt.is_punct('{') {
                                    bc += 1;
                                } else if tt.is_punct('}') {
                                    bc = bc.saturating_sub(1);
                                }
                                j += 1;
                            }
                            init_idents = Self::idents_in(&self.t[from..j]);
                        }
                        out.push(Expr {
                            kind: ExprKind::Let { names, init_idents },
                            line,
                            children: Vec::new(),
                        });
                        if self.at_punct('=') {
                            self.bump();
                        }
                        continue;
                    }
                    "move" if self.peek(1).is_some_and(|n| n.is_punct('|')) => {
                        pending_move = true;
                        self.bump();
                        continue;
                    }
                    _ => {}
                }
                // Macro call: IDENT ! ( / [ / {
                if self.peek(1).is_some_and(|n| n.is_punct('!'))
                    && self
                        .peek(2)
                        .is_some_and(|n| n.is_punct('(') || n.is_punct('[') || n.is_punct('{'))
                {
                    let name = t.text.to_string();
                    self.bump();
                    self.bump();
                    let close = match self.text() {
                        "(" => Stop::Paren,
                        "[" => Stop::Bracket,
                        _ => Stop::Brace,
                    };
                    self.bump();
                    let children = self.scan(close);
                    out.push(Expr {
                        kind: ExprKind::MacroCall { name },
                        line,
                        children,
                    });
                    continue;
                }
                // Method call: `.` IDENT [turbofish] `(`
                let prev_dot = self.i > 0 && self.t[self.i - 1].is_punct('.');
                if prev_dot {
                    // Optional turbofish between name and `(`.
                    let mut k = self.i + 1;
                    if self.t.get(k).is_some_and(|n| n.is_punct(':'))
                        && self.t.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        && self.t.get(k + 2).is_some_and(|n| n.is_punct('<'))
                    {
                        k = skip_angles_from(self.t, k + 2);
                    }
                    if self.t.get(k).is_some_and(|n| n.is_punct('(')) {
                        let method = t.text.to_string();
                        let recv = receiver_chain(self.t, self.i - 1);
                        self.i = k + 1; // past `(`
                        let args_start = self.i;
                        let children = self.scan(Stop::Paren);
                        let arg_idents =
                            Self::idents_in(&self.t[args_start..self.i.saturating_sub(1)]);
                        out.push(Expr {
                            kind: ExprKind::MethodCall {
                                recv,
                                method,
                                arg_idents,
                            },
                            line,
                            children,
                        });
                        continue;
                    }
                    self.bump();
                    continue;
                }
                // Path call: IDENT (:: IDENT | ::<…>)* `(`
                if !KEYWORDS.contains(&t.text) {
                    let mut segs = vec![t.text.to_string()];
                    let mut k = self.i + 1;
                    loop {
                        if self.t.get(k).is_some_and(|n| n.is_punct(':'))
                            && self.t.get(k + 1).is_some_and(|n| n.is_punct(':'))
                        {
                            if self.t.get(k + 2).is_some_and(|n| n.is_punct('<')) {
                                k = skip_angles_from(self.t, k + 2);
                                continue;
                            }
                            if self
                                .t
                                .get(k + 2)
                                .is_some_and(|n| n.kind == TokenKind::Ident)
                            {
                                segs.push(self.t[k + 2].text.to_string());
                                k += 3;
                                continue;
                            }
                        }
                        break;
                    }
                    if self.t.get(k).is_some_and(|n| n.is_punct('(')) {
                        self.i = k + 1;
                        let args_start = self.i;
                        let children = self.scan(Stop::Paren);
                        let arg_idents =
                            Self::idents_in(&self.t[args_start..self.i.saturating_sub(1)]);
                        out.push(Expr {
                            kind: ExprKind::PathCall {
                                path: segs.join("::"),
                                arg_idents,
                            },
                            line,
                            children,
                        });
                        continue;
                    }
                }
                self.bump();
                continue;
            }
            // Closure: `|` in prefix position.
            if t.is_punct('|') && (pending_move || closure_position(self.t, self.i)) {
                let is_move = pending_move;
                pending_move = false;
                self.bump();
                let (ps, pe) = self.range_until(|t| t.is_punct('|'));
                let params = Self::pattern_idents(&self.t[ps..pe]);
                if self.at_punct('|') {
                    self.bump();
                }
                let children = if self.at_punct('{') {
                    self.bump();
                    self.scan(Stop::Brace)
                } else {
                    self.scan(Stop::ExprEnd)
                };
                out.push(Expr {
                    kind: ExprKind::Closure { params, is_move },
                    line,
                    children,
                });
                continue;
            }
            // Postfix index: IDENT/`)`/`]` followed by `[`.
            if t.is_punct('[') {
                let bracket_at = self.i;
                let postfix = bracket_at > 0
                    && (self.t[bracket_at - 1].kind == TokenKind::Ident
                        && !KEYWORDS.contains(&self.t[bracket_at - 1].text)
                        || self.t[bracket_at - 1].is_punct(')')
                        || self.t[bracket_at - 1].is_punct(']'));
                let recv = if postfix && self.t[bracket_at - 1].kind == TokenKind::Ident {
                    index_receiver(self.t, bracket_at - 1)
                } else {
                    String::new()
                };
                self.bump();
                let children = self.scan(Stop::Bracket);
                out.push(Expr {
                    kind: if postfix {
                        ExprKind::Index { recv }
                    } else {
                        // Array literal / type position — plain grouping.
                        ExprKind::Block
                    },
                    line,
                    children,
                });
                continue;
            }
            // `&mut NAME` borrow.
            if t.is_punct('&')
                && self.peek(1).is_some_and(|n| n.is_ident("mut"))
                && self
                    .peek(2)
                    .is_some_and(|n| n.kind == TokenKind::Ident || n.is_punct('*'))
            {
                self.bump();
                self.bump();
                let mut name = String::new();
                while self.at_punct('*') {
                    self.bump();
                }
                while let Some(n) = self.peek(0) {
                    if n.kind == TokenKind::Ident {
                        if !name.is_empty() {
                            name.push('.');
                        }
                        name.push_str(n.text);
                        self.bump();
                        if self.at_punct('.')
                            && self.peek(1).is_some_and(|m| m.kind == TokenKind::Ident)
                        {
                            self.bump();
                            continue;
                        }
                    }
                    break;
                }
                if !name.is_empty() {
                    out.push(Expr {
                        kind: ExprKind::MutBorrow { name },
                        line,
                        children: Vec::new(),
                    });
                }
                continue;
            }
            // Depth bookkeeping for the stop conditions.
            if t.is_punct('(') {
                paren += 1;
            } else if t.is_punct(')') {
                paren = paren.saturating_sub(1);
            }
            self.bump();
        }
        out
    }
}

/// Keywords that never start a path call.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while", "async", "await", "yield",
];

fn push_text(out: &mut String, text: &str) {
    if !out.is_empty() {
        out.push(' ');
    }
    out.push_str(text);
}

/// From the index of a `<` token, return the index just past its matching
/// `>` (arrow `->` closers excluded).
fn skip_angles_from(t: &[&Token<'_>], mut i: usize) -> usize {
    let mut depth = 0usize;
    while let Some(tok) = t.get(i) {
        if tok.is_punct('<') {
            depth += 1;
        } else if tok.is_punct('>') {
            let arrow = i > 0 && t[i - 1].is_punct('-');
            if !arrow {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    i
}

/// Walk a dotted identifier chain leftwards from `end` (exclusive), e.g.
/// for the `.` before a method name. Returns `""` when the receiver is not
/// a simple chain (calls, indexing, parenthesized expressions).
fn receiver_chain(t: &[&Token<'_>], dot_index: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut i = dot_index; // points at the `.`
    loop {
        if i == 0 {
            break;
        }
        let prev = t[i - 1];
        if prev.kind == TokenKind::Ident
            || (prev.kind == TokenKind::Number && !prev.text.contains('.'))
        {
            parts.push(prev.text);
            if i >= 2 && t[i - 2].is_punct('.') {
                i -= 2;
                continue;
            }
            // Chain root must not itself be postfix (e.g. `f(x).y`).
            if i >= 2 && (t[i - 2].is_punct(')') || t[i - 2].is_punct(']')) {
                return String::new();
            }
            break;
        }
        return String::new();
    }
    parts.reverse();
    parts.join(".")
}

/// The receiver chain of an index expression: walk the dotted identifier
/// chain leftwards from `ident_at` (the identifier just before the `[`).
fn index_receiver(t: &[&Token<'_>], ident_at: usize) -> String {
    if !matches!(t.get(ident_at), Some(tok) if tok.kind == TokenKind::Ident) {
        return String::new();
    }
    let mut parts = vec![t[ident_at].text];
    let mut i = ident_at;
    while i >= 2 && t[i - 1].is_punct('.') && t[i - 2].kind == TokenKind::Ident {
        parts.push(t[i - 2].text);
        i -= 2;
    }
    parts.reverse();
    parts.join(".")
}

fn closure_position(t: &[&Token<'_>], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = t[i - 1];
    prev.is_punct('(')
        || prev.is_punct(',')
        || prev.is_punct('=')
        || prev.is_punct('{')
        || prev.is_punct(';')
        || prev.is_punct('>') && i >= 2 && t[i - 2].is_punct('=') // `=>`
        || prev.is_ident("return")
        || prev.is_ident("move")
        || prev.is_ident("else")
}
