//! `tempagg-lint` — the workspace's own syntax-aware static analyzer.
//!
//! Layered in three passes that share **one** tokenizer run per file:
//!
//! 1. [`lexer`] — a hand-rolled lexer producing identifiers, punctuation,
//!    literals, lifetimes, and comments with line numbers.
//! 2. [`rules`] — the v1 *token* rules (`no-unwrap`, `no-raw-i64-arith`,
//!    `no-as-cast`, `no-stable-sort`, `no-raw-thread`,
//!    `no-materialize-in-exec`, `store-mutation`, `no-io-outside-pager`,
//!    `forbid-unsafe`) evaluated directly over the token stream.
//! 3. [`parser`] + [`analysis`] — the v2 *tree* rules: a dependency-free
//!    recursive-descent parser builds a lightweight item/block/expression
//!    tree, and a scope-aware walker with a symbol table runs the
//!    dataflow rules (`sink-order`, `seam-protocol`,
//!    `no-shared-mut-capture`, `no-alloc-in-scan`,
//!    `no-unchecked-index`).
//!
//! Every rule honors the `// lint: allow(<rule>): <why>` escape hatch on
//! the violating line or the line above; an allow *without* a
//! justification is itself a violation. `no-unchecked-index` also accepts
//! the shorthand `allow(indexing)`.
//!
//! [`check_source`] is the whole pipeline for one file; the `tempagg-lint`
//! binary (see `main.rs`) is a thin driver that walks the workspace and
//! formats the results (text, `--json`, or `--github`).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use rules::{FileContext, Violation};

/// Lex `src` once and run both rule generations over it; violations come
/// back sorted by line.
pub fn check_source(ctx: &FileContext<'_>, src: &str) -> Vec<Violation> {
    let tokens = lexer::lex(src);
    let mut out = rules::check_file(*ctx, &tokens);
    out.extend(analysis::check_ast(ctx, &tokens));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}
