//! The scope-aware analysis framework: walks the expression tree from
//! [`crate::parser`] with a symbol table and runs pluggable dataflow
//! rules.
//!
//! The walker maintains, per function:
//!
//! * a **loop-frame stack** — every `for`/`while`/`loop` pushes a frame
//!   holding its *cursor set*: the induction pattern's bindings plus
//!   every later `let` whose initializer mentions a cursor variable
//!   (cursor-derivation dataflow). Frames also carry a *hot* flag set by
//!   a `// lint: hot-loop(<name>)` marker comment on the line above the
//!   loop (nested loops inherit it).
//! * a **closure-frame stack** — each closure records its parameter and
//!   local bindings and whether it was written `move`; a closure that is
//!   an argument of a `spawn(...)` call is marked as a spawn closure.
//! * a **sink symbol table** — parameters whose type mentions `Sink`
//!   (directly or through a generic bound in the signature) and locals
//!   initialized from a `*Sink*` expression.
//!
//! Rules implement [`AstRule`] and are called on every expression node
//! with the current [`WalkState`]; they never mutate state, which keeps
//! them composable. Violations go through the same
//! `// lint: allow(<rule>): <why>` escape hatch as the token rules
//! (see [`crate::rules::AllowComments`]); `no-unchecked-index` also
//! accepts the shorthand `allow(indexing)`.
//!
//! The rules:
//!
//! * `sink-order` — a direct `.push(...)`/`.accept(...)` on a
//!   sink-typed binding inside a loop must mention a cursor-derived
//!   variable in its arguments; otherwise nothing ties the emission
//!   order to the time cursor and the `SeriesSink` in-order contract is
//!   at the mercy of the loop body.
//! * `seam-protocol` — `StitchSink::seam(...)` and seam-real marking
//!   (`mark_seams`, the `seam_real` table) only in the stitch paths
//!   (`parallel.rs`, `executor.rs`); anywhere else, seam decisions
//!   bypass the audited partition-boundary logic.
//! * `no-shared-mut-capture` — a non-`move` closure handed to
//!   `spawn(...)` must not take `&mut` of anything it does not bind
//!   itself; scoped workers may only mutate their own partition slot.
//! * `no-alloc-in-scan` — no allocation (`clone`, `to_vec`, `collect`,
//!   `Vec::new`, `vec![]`, `format!`, ...) inside a loop marked
//!   `// lint: hot-loop(<name>)` — the sweep scan and k-tree GC must
//!   stay allocation-free per element.
//! * `no-unchecked-index` — bracket indexing inside a loop in
//!   `tempagg-algo`/`tempagg-core` needs an iterator rewrite or a
//!   `// lint: allow(indexing): <why>` justification.

use std::collections::HashSet;

use crate::lexer::{Token, TokenKind};
use crate::parser::{self, Expr, ExprKind, Func, Item, ItemKind, Param};
use crate::rules::{AllowComments, FileContext, Violation};

/// One loop on the walk stack.
struct LoopFrame {
    /// Bindings provably derived from the loop's induction pattern.
    cursor: HashSet<String>,
    /// Inside a `// lint: hot-loop` region (inherited by nested loops).
    hot: bool,
}

/// One closure on the walk stack.
struct ClosureFrame {
    /// Names the closure binds itself (params, its own `let`s and loop
    /// patterns) — mutating these is always fine.
    bound: HashSet<String>,
    is_move: bool,
    /// The closure is an argument of a `spawn(...)` call.
    is_spawn_arg: bool,
}

/// The walker's scope state, visible to rules at every node.
pub struct WalkState<'c> {
    pub ctx: &'c FileContext<'c>,
    loops: Vec<LoopFrame>,
    closures: Vec<ClosureFrame>,
    /// Names of the enclosing calls (innermost last): `spawn` while
    /// walking `scope.spawn(...)`'s arguments.
    calls: Vec<String>,
    /// Bindings with a `SeriesSink`-ish type in the current function.
    sinks: HashSet<String>,
}

impl WalkState<'_> {
    /// Is any enclosing loop inside a `hot-loop` region?
    fn in_hot_loop(&self) -> bool {
        self.loops.iter().any(|f| f.hot)
    }

    /// Does any enclosing loop frame consider `name` cursor-derived?
    fn is_cursor(&self, name: &str) -> bool {
        self.loops.iter().any(|f| f.cursor.contains(name))
    }
}

/// A syntax-aware rule, called once per expression node.
pub trait AstRule {
    fn name(&self) -> &'static str;
    /// Alternate names accepted in `// lint: allow(<name>)` comments.
    fn allow_aliases(&self) -> &'static [&'static str] {
        &[]
    }
    /// Whether the rule runs at all for this file.
    fn enabled(&self, ctx: &FileContext<'_>) -> bool;
    /// Inspect one node; report via `emit(line, message)`.
    fn on_expr(&self, e: &Expr, st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String));
    /// Optional raw-token pass (for facts the tree does not carry).
    fn on_tokens(&self, code: &[&Token<'_>], emit: &mut dyn FnMut(u32, String)) {
        let _ = (code, emit);
    }
}

/// The shipped rule set.
pub fn default_rules() -> Vec<Box<dyn AstRule>> {
    vec![
        Box::new(SinkOrder),
        Box::new(SeamProtocol),
        Box::new(NoSharedMutCapture),
        Box::new(NoAllocInScan),
        Box::new(NoUncheckedIndex),
    ]
}

/// Parse one file's tokens and run every enabled tree rule over it.
/// `#[cfg(test)]` items are exempt, matching the token rules.
pub fn check_ast(ctx: &FileContext<'_>, tokens: &[Token<'_>]) -> Vec<Violation> {
    let ast = parser::parse(tokens);
    let allows = AllowComments::collect(tokens);
    let hot_lines = hot_loop_lines(tokens);
    let rules = default_rules();
    let enabled: Vec<&dyn AstRule> = rules
        .iter()
        .map(AsRef::as_ref)
        .filter(|r| r.enabled(ctx))
        .collect();
    let mut out = Vec::new();
    walk_items(&ast.items, ctx, &enabled, &allows, &hot_lines, &mut out);

    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let in_test = crate::rules::test_spans(&code);
    let masked: Vec<&Token<'_>> = code
        .iter()
        .zip(&in_test)
        .filter(|(_, t)| !**t)
        .map(|(t, _)| *t)
        .collect();
    for rule in &enabled {
        let name = rule.name();
        let aliases = rule.allow_aliases();
        let mut emit = |line: u32, message: String| {
            report_aliased(&allows, &mut out, name, aliases, line, message);
        };
        rule.on_tokens(&masked, &mut emit);
    }

    out.sort_by_key(|v| v.line);
    out
}

/// Lines whose comment carries a `lint: hot-loop` marker; a loop headed on
/// the marker's line or the line below is a hot region.
fn hot_loop_lines(tokens: &[Token<'_>]) -> HashSet<u32> {
    tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Comment && t.text.contains("lint: hot-loop"))
        .map(|t| t.line + t.text.matches('\n').count() as u32)
        .collect()
}

/// [`crate::rules::report`] with alias support: an allow comment naming the
/// rule *or* any alias suppresses (and an unjustified one is flagged).
fn report_aliased(
    allows: &AllowComments,
    out: &mut Vec<Violation>,
    rule: &'static str,
    aliases: &[&str],
    line: u32,
    message: String,
) {
    let verdicts = std::iter::once(rule)
        .chain(aliases.iter().copied())
        .filter_map(|name| allows.applies(name, line));
    match verdicts.max() {
        Some(true) => {}
        Some(false) => out.push(Violation {
            rule,
            line,
            message: format!(
                "`lint: allow` without a justification — write `// lint: allow({rule}): <why>`"
            ),
        }),
        None => out.push(Violation {
            rule,
            line,
            message,
        }),
    }
}

fn walk_items(
    items: &[Item],
    ctx: &FileContext<'_>,
    rules: &[&dyn AstRule],
    allows: &AllowComments,
    hot_lines: &HashSet<u32>,
    out: &mut Vec<Violation>,
) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match &item.kind {
            ItemKind::Fn(f) => walk_fn(f, ctx, rules, allows, hot_lines, out),
            ItemKind::Impl { items, .. } | ItemKind::Mod { items, .. } => {
                walk_items(items, ctx, rules, allows, hot_lines, out);
            }
            ItemKind::Other { .. } => {}
        }
    }
}

/// Does the signature give this parameter a sink-ish type? Either the type
/// text mentions `Sink` directly (`&mut impl SeriesSink<T>`), or it is a
/// generic parameter whose bound in `generics` mentions `Sink`
/// (`fn f<S: SeriesSink<T>>(out: &mut S)`).
fn is_sink_param(p: &Param, generics: &str) -> bool {
    if p.ty.contains("Sink") {
        return true;
    }
    p.ty.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|s| !s.is_empty())
        .any(|ty_ident| generic_bound_mentions_sink(generics, ty_ident))
}

fn generic_bound_mentions_sink(generics: &str, ty_ident: &str) -> bool {
    // `generics` is space-joined token text: `< S : SeriesSink < T > , …`
    // or `where S : SeriesSink < T >`. Crude but effective: find the
    // `IDENT :` introducer and look for `Sink` before the next top-level
    // comma.
    let needle = format!("{ty_ident} :");
    let mut rest = generics;
    while let Some(pos) = rest.find(&needle) {
        let bounded = (pos == 0 || !rest.as_bytes()[pos - 1].is_ascii_alphanumeric())
            && &rest[pos..pos + ty_ident.len()] == ty_ident;
        let after = &rest[pos + needle.len()..];
        if bounded {
            let mut depth = 0i32;
            let mut seg_end = after.len();
            for (i, c) in after.char_indices() {
                match c {
                    '<' | '(' => depth += 1,
                    '>' | ')' => depth -= 1,
                    ',' if depth <= 0 => {
                        seg_end = i;
                        break;
                    }
                    _ => {}
                }
            }
            if after[..seg_end].contains("Sink") {
                return true;
            }
        }
        rest = after;
    }
    false
}

fn walk_fn(
    f: &Func,
    ctx: &FileContext<'_>,
    rules: &[&dyn AstRule],
    allows: &AllowComments,
    hot_lines: &HashSet<u32>,
    out: &mut Vec<Violation>,
) {
    let Some(body) = &f.body else { return };
    let mut sinks = HashSet::new();
    for p in &f.params {
        if is_sink_param(p, &f.generics) {
            sinks.extend(p.names.iter().cloned());
        }
    }
    let mut st = WalkState {
        ctx,
        loops: Vec::new(),
        closures: Vec::new(),
        calls: Vec::new(),
        sinks,
    };
    for e in body {
        walk_expr(e, &mut st, rules, allows, hot_lines, out);
    }
}

fn fire_rules(
    e: &Expr,
    st: &WalkState<'_>,
    rules: &[&dyn AstRule],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for rule in rules {
        let name = rule.name();
        let aliases = rule.allow_aliases();
        let mut emit = |line: u32, message: String| {
            report_aliased(allows, out, name, aliases, line, message);
        };
        rule.on_expr(e, st, &mut emit);
    }
}

#[allow(clippy::too_many_lines)]
fn walk_expr(
    e: &Expr,
    st: &mut WalkState<'_>,
    rules: &[&dyn AstRule],
    allows: &AllowComments,
    hot_lines: &HashSet<u32>,
    out: &mut Vec<Violation>,
) {
    // Scope/symbol updates first, so rules firing on this very node see a
    // consistent state (e.g. a `let sink = ChunkedSink::new(…)` makes
    // `sink` sink-typed from this statement on).
    if let ExprKind::Let { names, init_idents } = &e.kind {
        // Cursor-derivation dataflow: a binding fed by a cursor variable
        // is itself a cursor variable for that loop.
        for frame in &mut st.loops {
            if init_idents.iter().any(|id| frame.cursor.contains(id)) {
                frame.cursor.extend(names.iter().cloned());
            }
        }
        // Locals belong to the innermost closure.
        if let Some(cl) = st.closures.last_mut() {
            cl.bound.extend(names.iter().cloned());
        }
        // Sink symbol table: `let mut sink = ChunkedSink::new(…)`.
        if init_idents.iter().any(|id| id.contains("Sink")) {
            st.sinks.extend(names.iter().cloned());
        }
    }

    fire_rules(e, st, rules, allows, out);

    match &e.kind {
        ExprKind::ForLoop { pats, .. } => {
            let hot = st.in_hot_loop()
                || hot_lines.contains(&e.line)
                || hot_lines.contains(&e.line.saturating_sub(1));
            if let Some(cl) = st.closures.last_mut() {
                cl.bound.extend(pats.iter().cloned());
            }
            st.loops.push(LoopFrame {
                cursor: pats.iter().cloned().collect(),
                hot,
            });
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.loops.pop();
        }
        ExprKind::WhileLoop { pats } => {
            let hot = st.in_hot_loop()
                || hot_lines.contains(&e.line)
                || hot_lines.contains(&e.line.saturating_sub(1));
            if let Some(cl) = st.closures.last_mut() {
                cl.bound.extend(pats.iter().cloned());
            }
            st.loops.push(LoopFrame {
                cursor: pats.iter().cloned().collect(),
                hot,
            });
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.loops.pop();
        }
        ExprKind::LoopLoop => {
            let hot = st.in_hot_loop()
                || hot_lines.contains(&e.line)
                || hot_lines.contains(&e.line.saturating_sub(1));
            st.loops.push(LoopFrame {
                cursor: HashSet::new(),
                hot,
            });
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.loops.pop();
        }
        ExprKind::Closure { params, is_move } => {
            let is_spawn_arg = st.calls.last().is_some_and(|c| c == "spawn");
            st.closures.push(ClosureFrame {
                bound: params.iter().cloned().collect(),
                is_move: *is_move,
                is_spawn_arg,
            });
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.closures.pop();
        }
        ExprKind::MethodCall { method, .. } => {
            st.calls.push(method.clone());
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.calls.pop();
        }
        ExprKind::PathCall { path, .. } => {
            let last = path.rsplit("::").next().unwrap_or(path).to_string();
            st.calls.push(last);
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
            st.calls.pop();
        }
        _ => {
            for c in &e.children {
                walk_expr(c, st, rules, allows, hot_lines, out);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The five shipped rules.
// ---------------------------------------------------------------------------

/// `sink-order`: direct pushes on a sink inside a loop must be tied to the
/// time cursor.
pub struct SinkOrder;

impl AstRule for SinkOrder {
    fn name(&self) -> &'static str {
        "sink-order"
    }

    fn enabled(&self, _ctx: &FileContext<'_>) -> bool {
        true
    }

    fn on_expr(&self, e: &Expr, st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String)) {
        let ExprKind::MethodCall {
            recv,
            method,
            arg_idents,
        } = &e.kind
        else {
            return;
        };
        if method != "accept" && method != "push" {
            return;
        }
        // Only simple local bindings known to be sinks; field chains like
        // `self.buf.push(…)` are a sink's own internals.
        if recv.is_empty() || recv.contains('.') || !st.sinks.contains(recv.as_str()) {
            return;
        }
        if st.loops.is_empty() {
            return;
        }
        if arg_idents.iter().any(|a| st.is_cursor(a)) {
            return;
        }
        emit(
            e.line,
            format!(
                "`.{method}(…)` on sink `{recv}` inside a loop whose induction is not \
                 provably the time cursor — emit a cursor-derived interval, route \
                 through a checked adapter (`StitchSink`/`ChunkedSink`), or justify \
                 with `// lint: allow(sink-order): <why>`"
            ),
        );
    }
}

/// `seam-protocol`: seam marking only in the stitch paths.
pub struct SeamProtocol;

impl AstRule for SeamProtocol {
    fn name(&self) -> &'static str {
        "seam-protocol"
    }

    fn enabled(&self, ctx: &FileContext<'_>) -> bool {
        !ctx.is_seam_hub
    }

    fn on_expr(&self, e: &Expr, _st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String)) {
        let called = match &e.kind {
            ExprKind::MethodCall { method, .. } => method.as_str(),
            ExprKind::PathCall { path, .. } => path.rsplit("::").next().unwrap_or(path),
            _ => return,
        };
        if called == "seam" || called == "mark_seams" {
            emit(
                e.line,
                format!(
                    "`{called}(…)` outside the stitch paths (parallel.rs / executor.rs) \
                     — seam decisions must stay in the audited partition-boundary \
                     logic, or justify with `// lint: allow(seam-protocol): <why>`"
                ),
            );
        }
    }

    fn on_tokens(&self, code: &[&Token<'_>], emit: &mut dyn FnMut(u32, String)) {
        for t in code {
            if t.is_ident("seam_real") {
                emit(
                    t.line,
                    "seam-real marking outside the stitch paths (parallel.rs / \
                     executor.rs) — byte-identical stitching is only audited there, \
                     or justify with `// lint: allow(seam-protocol): <why>`"
                        .to_string(),
                );
            }
        }
    }
}

/// `no-shared-mut-capture`: spawn closures may only mutate what they bind.
pub struct NoSharedMutCapture;

impl AstRule for NoSharedMutCapture {
    fn name(&self) -> &'static str {
        "no-shared-mut-capture"
    }

    fn enabled(&self, _ctx: &FileContext<'_>) -> bool {
        true
    }

    fn on_expr(&self, e: &Expr, st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String)) {
        let ExprKind::MutBorrow { name } = &e.kind else {
            return;
        };
        let Some(cl) = st.closures.last() else {
            return;
        };
        if !cl.is_spawn_arg || cl.is_move {
            return;
        }
        let root = name.split('.').next().unwrap_or(name);
        if cl.bound.contains(root) {
            return;
        }
        emit(
            e.line,
            format!(
                "closure handed to `spawn` captures `&mut {name}` from the enclosing \
                 scope — a scoped worker may only mutate its own partition slot; make \
                 the closure `move` over its slot or pass the slot as a parameter, or \
                 justify with `// lint: allow(no-shared-mut-capture): <why>`"
            ),
        );
    }
}

/// Allocating constructor paths covered by `no-alloc-in-scan` (matched on
/// the last two path segments).
const ALLOC_PATHS: &[&str] = &[
    "Vec::new",
    "Vec::with_capacity",
    "VecDeque::new",
    "BinaryHeap::new",
    "HashMap::new",
    "BTreeMap::new",
    "HashSet::new",
    "BTreeSet::new",
    "Box::new",
    "String::new",
    "String::with_capacity",
    "String::from",
];

/// Allocating methods covered by `no-alloc-in-scan`.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "collect", "to_owned", "to_string"];

/// Allocating macros covered by `no-alloc-in-scan`.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// `no-alloc-in-scan`: no allocation inside `// lint: hot-loop` regions.
pub struct NoAllocInScan;

impl AstRule for NoAllocInScan {
    fn name(&self) -> &'static str {
        "no-alloc-in-scan"
    }

    fn enabled(&self, _ctx: &FileContext<'_>) -> bool {
        true
    }

    fn on_expr(&self, e: &Expr, st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String)) {
        if !st.in_hot_loop() {
            return;
        }
        let what = match &e.kind {
            ExprKind::MethodCall { method, .. } if ALLOC_METHODS.contains(&method.as_str()) => {
                format!(".{method}()")
            }
            ExprKind::PathCall { path, .. } => {
                let tail2 = last_two_segments(path);
                if ALLOC_PATHS.contains(&tail2.as_str()) {
                    tail2
                } else {
                    return;
                }
            }
            ExprKind::MacroCall { name } if ALLOC_MACROS.contains(&name.as_str()) => {
                format!("{name}!")
            }
            _ => return,
        };
        emit(
            e.line,
            format!(
                "allocation `{what}` inside a `lint: hot-loop` region — the scan must \
                 stay allocation-free per element; hoist the buffer out of the loop, \
                 or justify with `// lint: allow(no-alloc-in-scan): <why>`"
            ),
        );
    }
}

fn last_two_segments(path: &str) -> String {
    let mut segs: Vec<&str> = path.rsplit("::").take(2).collect();
    segs.reverse();
    segs.join("::")
}

/// Crates whose loops must not use unchecked bracket indexing.
const NO_INDEX_CRATES: &[&str] = &["tempagg-algo", "tempagg-core"];

/// `no-unchecked-index`: bracket indexing in algo/core loops needs a
/// justification (`allow(indexing)` accepted as shorthand) or an iterator
/// rewrite.
pub struct NoUncheckedIndex;

impl AstRule for NoUncheckedIndex {
    fn name(&self) -> &'static str {
        "no-unchecked-index"
    }

    fn allow_aliases(&self) -> &'static [&'static str] {
        &["indexing"]
    }

    fn enabled(&self, ctx: &FileContext<'_>) -> bool {
        NO_INDEX_CRATES.contains(&ctx.crate_name)
    }

    fn on_expr(&self, e: &Expr, st: &WalkState<'_>, emit: &mut dyn FnMut(u32, String)) {
        let ExprKind::Index { recv } = &e.kind else {
            return;
        };
        if st.loops.is_empty() {
            return;
        }
        let shown = if recv.is_empty() {
            "…"
        } else {
            recv.as_str()
        };
        emit(
            e.line,
            format!(
                "bracket indexing `{shown}[…]` in a hot-path loop can panic on a bad \
                 bound — rewrite with iterators/`get`, or justify with \
                 `// lint: allow(indexing): <why>`"
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx(crate_name: &str) -> FileContext<'_> {
        FileContext {
            crate_name,
            is_crate_root: false,
            is_thread_hub: false,
            is_exec_path: false,
            is_seam_hub: false,
            is_pager: false,
        }
    }

    fn check(crate_name: &str, src: &str) -> Vec<Violation> {
        let tokens = lex(src);
        check_ast(&ctx(crate_name), &tokens)
    }

    fn rule_names(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    // ---- sink-order ----

    #[test]
    fn sink_push_with_foreign_value_in_loop_is_flagged() {
        let src = "fn f(sink: &mut impl SeriesSink<u64>) {\n\
                   \x20   for x in 0..k {\n\
                   \x20       sink.accept(stale, x);\n\
                   \x20   }\n}";
        // `stale` is not derived from the loop cursor `x`… but `x` is in
        // the args, so this passes; use a truly foreign emission:
        let vs = check("tempagg-plan", src);
        assert!(vs.is_empty(), "{vs:?}");
        let src = "fn f(sink: &mut impl SeriesSink<u64>) {\n\
                   \x20   for _x in 0..k {\n\
                   \x20       sink.accept(stale, older);\n\
                   \x20   }\n}";
        let vs = check("tempagg-plan", src);
        assert_eq!(rule_names(&vs), vec!["sink-order"]);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn sink_push_with_cursor_derived_value_is_clean() {
        // `segment` is derived from the cursor `start` through a `let`.
        let src = "fn f(sink: &mut impl SeriesSink<u64>) {\n\
                   \x20   for (i, start) in bounds.iter().enumerate() {\n\
                   \x20       let segment = Interval::new(start, end);\n\
                   \x20       sink.accept(segment, v);\n\
                   \x20   }\n}";
        assert!(check("tempagg-plan", src).is_empty());
    }

    #[test]
    fn sink_from_generic_bound_and_let_init_are_tracked() {
        // Generic bound: `S: SeriesSink<T>`.
        let src = "fn f<S: SeriesSink<u64>>(out: &mut S) {\n\
                   \x20   while go() {\n\
                   \x20       out.push(thing);\n\
                   \x20   }\n}";
        assert_eq!(rule_names(&check("tempagg-plan", src)), vec!["sink-order"]);
        // Local initialized from a sink constructor.
        let src = "fn f() {\n\
                   \x20   let mut s = ChunkedSink::new(16, h);\n\
                   \x20   loop {\n\
                   \x20       s.accept(iv, v);\n\
                   \x20   }\n}";
        assert_eq!(rule_names(&check("tempagg-plan", src)), vec!["sink-order"]);
    }

    #[test]
    fn while_let_pattern_counts_as_cursor() {
        let src = "fn f(out: &mut impl SeriesSink<u64>) {\n\
                   \x20   while let Some((range, acc)) = stack.pop() {\n\
                   \x20       out.accept(range, agg.finish(acc));\n\
                   \x20   }\n}";
        assert!(check("tempagg-plan", src).is_empty());
    }

    #[test]
    fn sink_push_outside_loops_and_non_sinks_are_clean() {
        let src = "fn f(sink: &mut impl SeriesSink<u64>) { sink.accept(iv, v); }";
        assert!(check("tempagg-plan", src).is_empty());
        // `v` is not sink-typed: plain Vec pushes in loops stay legal.
        let src = "fn f(v: &mut Vec<u64>) { for x in 0..3 { v.push(y); } }";
        assert!(check("tempagg-plan", src).is_empty());
    }

    #[test]
    fn sink_order_allow_comment_suppresses() {
        let src = "fn f(sink: &mut impl SeriesSink<u64>) {\n\
                   \x20   for _x in it {\n\
                   \x20       // lint: allow(sink-order): replay of a pre-sorted buffer\n\
                   \x20       sink.accept(stale, older);\n\
                   \x20   }\n}";
        assert!(check("tempagg-plan", src).is_empty());
    }

    // ---- seam-protocol ----

    #[test]
    fn seam_call_outside_hub_is_flagged() {
        let src = "fn f() { stitch.seam(true); }";
        assert_eq!(
            rule_names(&check("tempagg-algo", src)),
            vec!["seam-protocol"]
        );
        let src = "fn f() { agg.mark_seams(reals); }";
        assert_eq!(
            rule_names(&check("tempagg-algo", src)),
            vec!["seam-protocol"]
        );
    }

    #[test]
    fn seam_call_in_hub_is_clean() {
        let tokens = lex("fn f() { stitch.seam(true); self.seam_real[i] = true; }");
        let mut c = ctx("tempagg-algo");
        c.is_seam_hub = true;
        let vs = check_ast(&c, &tokens);
        assert!(rule_names(&vs).iter().all(|r| *r != "seam-protocol"));
    }

    #[test]
    fn seam_real_ident_outside_hub_is_flagged() {
        let src = "fn f() { let x = other.seam_real; }";
        assert_eq!(
            rule_names(&check("tempagg-plan", src)),
            vec!["seam-protocol"]
        );
    }

    // ---- no-shared-mut-capture ----

    #[test]
    fn spawn_closure_capturing_foreign_mut_is_flagged() {
        let src = "fn f(s: &S) { s.spawn(|| work(&mut shared)); }";
        let vs = check("tempagg-plan", src);
        assert_eq!(rule_names(&vs), vec!["no-shared-mut-capture"]);
    }

    #[test]
    fn move_spawn_closure_and_own_bindings_are_clean() {
        let src = "fn f(s: &S) { s.spawn(move || work(&mut slot)); }";
        assert!(check("tempagg-plan", src).is_empty());
        let src = "fn f(s: &S) { s.spawn(|slot| work(&mut slot)); }";
        assert!(check("tempagg-plan", src).is_empty());
        let src = "fn f(s: &S) { s.spawn(|| { let mut local = acc(); work(&mut local) }); }";
        assert!(check("tempagg-plan", src).is_empty());
    }

    #[test]
    fn mut_borrow_outside_spawn_is_clean() {
        let src = "fn f() { helper(|| work(&mut shared)); g(&mut shared); }";
        assert!(check("tempagg-plan", src).is_empty());
    }

    // ---- no-alloc-in-scan ----

    #[test]
    fn alloc_in_hot_loop_is_flagged() {
        let src = "fn f() {\n\
                   \x20   // lint: hot-loop(scan)\n\
                   \x20   for x in it {\n\
                   \x20       let v = Vec::new();\n\
                   \x20       let c = state.clone();\n\
                   \x20       let s = format!(\"x={x}\");\n\
                   \x20   }\n}";
        let vs = check("tempagg-plan", src);
        assert_eq!(rule_names(&vs), vec!["no-alloc-in-scan"; 3]);
    }

    #[test]
    fn alloc_in_unmarked_loop_or_outside_is_clean() {
        let src = "fn f() { for x in it { let v = Vec::new(); } let c = s.clone(); }";
        assert!(check("tempagg-plan", src).is_empty());
    }

    #[test]
    fn nested_loop_inherits_hot_and_allow_suppresses() {
        let src = "fn f() {\n\
                   \x20   // lint: hot-loop(gc)\n\
                   \x20   loop {\n\
                   \x20       while go() {\n\
                   \x20           // lint: allow(no-alloc-in-scan): path-sum states must be cloned\n\
                   \x20           let c = acc.clone();\n\
                   \x20           let d = acc.to_vec();\n\
                   \x20       }\n\
                   \x20   }\n}";
        let vs = check("tempagg-plan", src);
        assert_eq!(rule_names(&vs), vec!["no-alloc-in-scan"]);
        assert_eq!(vs[0].line, 7);
    }

    // ---- no-unchecked-index ----

    #[test]
    fn indexing_in_algo_loop_is_flagged() {
        let src = "fn f() { for i in 0..n { let x = xs[i]; } }";
        let vs = check("tempagg-algo", src);
        assert_eq!(rule_names(&vs), vec!["no-unchecked-index"]);
        // …but not outside the gated crates:
        assert!(check("tempagg-sql", src).is_empty());
    }

    #[test]
    fn indexing_outside_loops_or_with_alias_allow_is_clean() {
        let src = "fn f() { let x = xs[0]; }";
        assert!(check("tempagg-core", src).is_empty());
        let src = "fn f() {\n\
                   \x20   for i in 0..n {\n\
                   \x20       // lint: allow(indexing): i < n by construction of the permutation\n\
                   \x20       let x = xs[i];\n\
                   \x20   }\n}";
        assert!(check("tempagg-core", src).is_empty());
    }

    #[test]
    fn array_literal_is_not_indexing() {
        let src = "fn f() { for i in 0..n { let x = [1, 2, 3]; } }";
        assert!(check("tempagg-core", src).is_empty());
    }
}
