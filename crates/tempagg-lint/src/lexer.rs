//! A small hand-rolled Rust lexer — just enough token structure for the
//! repo-specific lint rules.
//!
//! It distinguishes identifiers, punctuation, literals (string, raw string,
//! byte string, char, number), lifetimes, and comments, and records the line
//! number of every token. It deliberately does *not* parse: the rules work
//! on the token stream plus light structural cues (brace depth, attribute
//! spans) which the lexer exposes.

/// What kind of token was lexed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `fn`, `as`, ...).
    Ident,
    /// Any single punctuation character (`.`, `(`, `{`, `!`, ...).
    Punct,
    /// String, raw-string, byte-string, or char literal.
    Literal,
    /// Numeric literal (`42`, `0x1F`, `1.5e3`, `2u64`).
    Number,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// `// ...` line comment or `/* ... */` block comment (nesting handled).
    Comment,
}

/// One lexed token. `text` borrows from the source.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokenKind,
    pub text: &'a str,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl<'a> Token<'a> {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.starts_with(c)
    }
}

/// Lex `src` into tokens, keeping comments (rules use them for
/// `lint: allow` suppressions). Unterminated constructs are tolerated —
/// the lexer always terminates and simply ends the token at end-of-file.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        tokens: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    tokens: Vec<Token<'a>>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token<'a>> {
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.bytes[self.pos];
            match b {
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'\n' => {
                    self.pos += 1;
                    self.line += 1;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.take_line_comment(start, line);
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.take_block_comment(start, line);
                }
                b'"' => self.take_string(start, line),
                b'r' | b'b' if self.starts_raw_or_byte_literal() => {
                    self.take_prefixed_literal(start, line);
                }
                b'\'' => self.take_char_or_lifetime(start, line),
                b'0'..=b'9' => self.take_number(start, line),
                _ if is_ident_start(b) => self.take_ident(start, line),
                _ => {
                    self.pos += 1;
                    self.push(TokenKind::Punct, start, line);
                }
            }
        }
        self.tokens
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32) {
        self.tokens.push(Token {
            kind,
            text: &self.src[start..self.pos],
            line,
        });
    }

    fn bump_counting_newlines(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn take_line_comment(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
            self.pos += 1;
        }
        self.push(TokenKind::Comment, start, line);
    }

    fn take_block_comment(&mut self, start: usize, line: u32) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            if self.bytes[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.bytes[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_newlines();
            }
        }
        self.push(TokenKind::Comment, start, line);
    }

    fn take_string(&mut self, start: usize, line: u32) {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.bump_counting_newlines();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump_counting_newlines(),
            }
        }
        self.push(TokenKind::Literal, start, line);
    }

    /// `r"..."`, `r#"..."#`, `b"..."`, `br##"..."##`, or plain identifiers
    /// starting with `r`/`b` — this predicate decides which.
    fn starts_raw_or_byte_literal(&self) -> bool {
        let mut i = 1;
        if self.bytes[self.pos] == b'b' && self.peek(i) == Some(b'r') {
            i += 1;
        }
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        matches!(self.peek(i), Some(b'"')) || (i == 1 && self.peek(1) == Some(b'\''))
    }

    fn take_prefixed_literal(&mut self, start: usize, line: u32) {
        if self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'\'') {
            // Byte char literal b'x'.
            self.pos += 1;
            self.take_char_body();
            self.push(TokenKind::Literal, start, line);
            return;
        }
        if self.bytes[self.pos] == b'b' && self.peek(1) == Some(b'"') {
            // Byte string b"..." — escape-aware, unlike raw strings.
            self.pos += 1;
            self.take_string(start, line);
            return;
        }
        // Skip the r/b/br prefix.
        self.pos += 1;
        if self.pos < self.bytes.len() && self.bytes[self.pos] == b'r' {
            self.pos += 1;
        }
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // Not actually a literal (e.g. `r#macro` raw identifier); treat
            // the prefix as an identifier and continue from here.
            self.take_ident(start, line);
            return;
        }
        self.pos += 1; // opening quote
        'scan: while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                // A close requires `"` followed by exactly `hashes` hashes.
                let mut ok = true;
                for h in 0..hashes {
                    if self.peek(1 + h) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.pos += 1 + hashes;
                    break 'scan;
                }
            }
            self.bump_counting_newlines();
        }
        self.push(TokenKind::Literal, start, line);
    }

    fn take_char_body(&mut self) {
        // self.pos is at the opening quote.
        self.pos += 1;
        if self.peek(0) == Some(b'\\') {
            self.pos += 2;
        } else if self.pos < self.bytes.len() {
            self.bump_counting_newlines();
        }
        // Multi-byte chars: scan to the closing quote (bounded).
        let mut guard = 0;
        while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' && guard < 8 {
            self.pos += 1;
            guard += 1;
        }
        if self.peek(0) == Some(b'\'') {
            self.pos += 1;
        }
    }

    fn take_char_or_lifetime(&mut self, start: usize, line: u32) {
        // `'a` / `'static` (lifetime) vs `'x'` (char literal): a lifetime is
        // a quote, an ident, and *no* closing quote.
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match (next, after) {
            (Some(n), Some(a)) => is_ident_start(n) && a != b'\'',
            (Some(n), None) => is_ident_start(n),
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
                self.pos += 1;
            }
            self.push(TokenKind::Lifetime, start, line);
        } else {
            self.take_char_body();
            self.push(TokenKind::Literal, start, line);
        }
    }

    fn take_number(&mut self, start: usize, line: u32) {
        // Numbers including type suffixes, underscores, hex/oct/bin, floats
        // and exponents. `1.method()` must not swallow the dot: only treat
        // `.` as part of the number when followed by a digit.
        self.pos += 1;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric()
                || b == b'_'
                || (b == b'.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()))
            {
                self.pos += 1;
            } else if (b == b'+' || b == b'-')
                && matches!(self.bytes[self.pos - 1], b'e' | b'E')
                && !self.src[start..self.pos].starts_with("0x")
                && !self.src[start..self.pos].starts_with("0X")
            {
                // Exponent sign (1e-3). Hex literals (0xE-1) stay split.
                self.pos += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, line);
    }

    fn take_ident(&mut self, start: usize, line: u32) {
        while self.pos < self.bytes.len() && is_ident_continue(self.bytes[self.pos]) {
            self.pos += 1;
        }
        self.push(TokenKind::Ident, start, line);
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = kinds("fn main() { x.unwrap(); }");
        assert!(toks.contains(&(TokenKind::Ident, "unwrap")));
        assert!(toks.contains(&(TokenKind::Punct, "(")));
    }

    #[test]
    fn strings_are_opaque() {
        let toks = kinds(r#"let s = "calls unwrap() inside";"#);
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Literal));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"quote " inside"#; x.unwrap()"###);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "unwrap"));
        let lit = toks.iter().find(|(k, _)| *k == TokenKind::Literal).unwrap();
        assert!(lit.1.contains("quote"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Literal)
                .count(),
            2
        );
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* a /* nested */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert_eq!(toks[1], (TokenKind::Ident, "ident"));
    }

    #[test]
    fn line_numbers() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn numbers_do_not_eat_method_calls() {
        let toks = kinds("1.max(2); 1.5e-3; 0xFF_u64");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "max"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "1.5e-3"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Number && *t == "0xFF_u64"));
    }

    #[test]
    fn comments_survive_with_text() {
        let toks = lex("x(); // lint: allow justified\ny();");
        let c = toks.iter().find(|t| t.kind == TokenKind::Comment).unwrap();
        assert!(c.text.contains("lint: allow"));
        assert_eq!(c.line, 1);
    }
}
