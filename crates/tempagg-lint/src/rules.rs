//! The repo-specific lint rules, evaluated over the token stream of one
//! source file.
//!
//! Rules:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(...)` / `panic!` family in
//!   non-test library code. Suppress a deliberate site with a
//!   `// lint: allow(no-unwrap): <justification>` comment on the same or
//!   the preceding line; the justification must be non-empty.
//! * `no-raw-i64-arith` — outside `tempagg-core`, the raw `i64` inside a
//!   `Timestamp` (read via `.get()`) must not take part in arithmetic;
//!   use the `Timestamp` / `Interval` methods so the closed-interval,
//!   saturating discipline stays in one crate.
//! * `no-as-cast` — no `as` casts in `tempagg-algo` / `tempagg-agg`
//!   (silent truncation/sign-loss corrupts aggregates); use `From` /
//!   `try_from`, or justify with an allow comment.
//! * `no-raw-thread` — `thread::spawn` / `thread::scope` /
//!   `thread::Builder` only inside `tempagg-algo/src/parallel.rs`, the
//!   workspace's one parallel primitive; everything else goes through
//!   `scoped_map` / `PartitionedAggregator` so worker panics, ordering,
//!   and thread caps are handled in a single audited place.
//! * `no-stable-sort` — no `.sort()` / `.sort_by(` / `.sort_by_key(` in
//!   `tempagg-algo` / `tempagg-core` hot paths: a stable sort allocates a
//!   merge buffer of half the slice; use `sort_unstable*` unless tie
//!   order is semantic, and then justify with an allow comment.
//! * `no-materialize-in-exec` — no argument-less `.finish()` calls in the
//!   execution layers (`tempagg-plan/src/executor.rs`,
//!   `tempagg-sql/src/exec.rs`): results must leave through the
//!   `SeriesSink` streaming path (`finish_into` / `emit_ready`) so the
//!   executor never holds a second materialized copy of the result.
//!   Justify a deliberate exception with an allow comment.
//! * `store-mutation` — in `tempagg-sql`, no direct `TemporalRelation`
//!   mutation (`.push_tuple(` / `.sort_by_time(` / `.permute(`): writes
//!   must flow through `TemporalStore` (`insert` / `delete_where` /
//!   `update_where`) so cached aggregate series and the write epoch stay
//!   consistent. Scratch relations that never enter the catalog justify
//!   with an allow comment.
//! * `no-io-outside-pager` — `std::fs` / `std::io` only inside
//!   `tempagg-core/src/pager/`: every byte that reaches disk must go
//!   through the pager's checksummed page format and atomic temp-file +
//!   rename writer, so corruption surfaces as `TempAggError::Storage` in
//!   exactly one audited place. The workload/bench/lint harness crates
//!   and the root facade are exempt — they are drivers, not the library.
//! * `forbid-unsafe` — every crate root must carry
//!   `#![forbid(unsafe_code)]`.

use crate::lexer::{Token, TokenKind};

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// Per-file facts the rules need beyond the tokens.
#[derive(Clone, Copy, Debug)]
pub struct FileContext<'a> {
    /// Crate the file belongs to (e.g. `tempagg-algo`).
    pub crate_name: &'a str,
    /// `true` for `src/lib.rs` / `src/main.rs` (drives `forbid-unsafe`).
    pub is_crate_root: bool,
    /// `true` only for `tempagg-algo/src/parallel.rs`, the one file
    /// allowed to touch `std::thread` directly (drives `no-raw-thread`).
    pub is_thread_hub: bool,
    /// `true` for the execution layers (`tempagg-plan/src/executor.rs`,
    /// `tempagg-sql/src/exec.rs`), where results must stream through a
    /// `SeriesSink` (drives `no-materialize-in-exec`).
    pub is_exec_path: bool,
    /// `true` for the partition-stitching paths
    /// (`tempagg-algo/src/parallel.rs`, `tempagg-plan/src/executor.rs`) —
    /// the only files allowed to drive `StitchSink::seam` / seam-real
    /// marking (drives `seam-protocol`).
    pub is_seam_hub: bool,
    /// `true` for files under `tempagg-core/src/pager/`, the one module
    /// allowed to touch `std::fs` / `std::io` directly (drives
    /// `no-io-outside-pager`).
    pub is_pager: bool,
}

/// Crates whose algorithms must not use `as` casts.
const NO_CAST_CRATES: &[&str] = &["tempagg-algo", "tempagg-agg"];

/// Crates whose hot paths must sort with `sort_unstable*`.
const NO_STABLE_SORT_CRATES: &[&str] = &["tempagg-algo", "tempagg-core"];

/// The allocating stable-sort methods covered by `no-stable-sort`.
const STABLE_SORTS: &[&str] = &["sort", "sort_by", "sort_by_key"];

/// The only crate allowed to do raw arithmetic on timestamp `i64`s.
const TIME_ARITH_CRATE: &str = "tempagg-core";

/// Panicking macros covered by `no-unwrap`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The crate whose relation writes must flow through `TemporalStore`.
const STORE_CRATE: &str = "tempagg-sql";

/// Mutating `TemporalRelation` methods that bypass the store's incremental
/// cache maintenance (covered by `store-mutation`). `push` / `retain` /
/// `replace` are deliberately absent — those names collide with `Vec` and
/// `str` methods all over the crate.
const STORE_BYPASS_MUTATORS: &[&str] = &["push_tuple", "sort_by_time", "permute"];

/// Crates whose disk access must flow through the pager (covered by
/// `no-io-outside-pager`). The workload/bench/lint harness crates and the
/// root facade stay free to do their own file plumbing — they drive the
/// library rather than implement it.
const NO_IO_CRATES: &[&str] = &[
    "tempagg-core",
    "tempagg-agg",
    "tempagg-algo",
    "tempagg-plan",
    "tempagg-sql",
    "tempagg-store",
];

/// Run every applicable rule over one file's tokens.
pub fn check_file(ctx: FileContext<'_>, tokens: &[Token<'_>]) -> Vec<Violation> {
    let mut out = Vec::new();
    let code: Vec<&Token<'_>> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let in_test = test_spans(&code);
    let allows = AllowComments::collect(tokens);

    no_unwrap(&code, &in_test, &allows, &mut out);
    if ctx.crate_name != TIME_ARITH_CRATE {
        no_raw_i64_arith(&code, &in_test, &allows, &mut out);
    }
    if NO_CAST_CRATES.contains(&ctx.crate_name) {
        no_as_cast(&code, &in_test, &allows, &mut out);
    }
    if NO_STABLE_SORT_CRATES.contains(&ctx.crate_name) {
        no_stable_sort(&code, &in_test, &allows, &mut out);
    }
    if !ctx.is_thread_hub {
        no_raw_thread(&code, &in_test, &allows, &mut out);
    }
    if ctx.is_exec_path {
        no_materialize_in_exec(&code, &in_test, &allows, &mut out);
    }
    if ctx.crate_name == STORE_CRATE {
        store_mutation(&code, &in_test, &allows, &mut out);
    }
    if NO_IO_CRATES.contains(&ctx.crate_name) && !ctx.is_pager {
        no_io_outside_pager(&code, &in_test, &allows, &mut out);
    }
    if ctx.is_crate_root {
        forbid_unsafe(&code, &mut out);
    }
    out.sort_by_key(|v| v.line);
    out
}

/// `lint: allow` suppression comments, indexed by the lines they cover.
/// Shared between the v1 token rules here and the v2 tree rules in
/// [`crate::analysis`].
pub(crate) struct AllowComments {
    /// (line, optional rule name, has-justification).
    entries: Vec<(u32, Option<String>, bool)>,
}

impl AllowComments {
    pub(crate) fn collect(tokens: &[Token<'_>]) -> AllowComments {
        let mut entries = Vec::new();
        for t in tokens {
            if t.kind != TokenKind::Comment {
                continue;
            }
            let Some(idx) = t.text.find("lint: allow") else {
                continue;
            };
            let rest = &t.text[idx + "lint: allow".len()..];
            let (rule, after) = if let Some(stripped) = rest.strip_prefix('(') {
                match stripped.split_once(')') {
                    Some((name, tail)) => (Some(name.trim().to_string()), tail),
                    None => (None, rest),
                }
            } else {
                (None, rest)
            };
            let justification = after
                .trim_start()
                .strip_prefix(':')
                .map(str::trim)
                .is_some_and(|j| !j.is_empty());
            // A multi-line block comment covers its last line too.
            let end_line = t.line + t.text.matches('\n').count() as u32;
            entries.push((end_line, rule, justification));
        }
        AllowComments { entries }
    }

    /// Is `line` suppressed for `rule` (same line or the line above)?
    /// Returns `Some(justified)` when an allow comment applies.
    pub(crate) fn applies(&self, rule: &str, line: u32) -> Option<bool> {
        self.entries
            .iter()
            .filter(|(l, r, _)| {
                (*l == line || l + 1 == line) && r.as_deref().map_or(true, |r| r == rule)
            })
            .map(|(_, _, justified)| *justified)
            .max()
    }
}

/// Push `violation` unless an allow comment suppresses it; an allow comment
/// *without* a justification is itself reported.
pub(crate) fn report(
    allows: &AllowComments,
    out: &mut Vec<Violation>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    match allows.applies(rule, line) {
        Some(true) => {}
        Some(false) => out.push(Violation {
            rule,
            line,
            message: format!(
                "`lint: allow` without a justification — write `// lint: allow({rule}): <why>`"
            ),
        }),
        None => out.push(Violation {
            rule,
            line,
            message,
        }),
    }
}

/// Mark the token spans inside `#[cfg(test)]`-gated items. Returns one flag
/// per code token.
pub(crate) fn test_spans(code: &[&Token<'_>]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if is_cfg_test_attr(code, i) {
            // Skip past the attribute, then mark until the end of the item:
            // either a `;` before any `{`, or the matching `}` of the first
            // `{` opened.
            let mut j = i + 7; // length of `# [ cfg ( test ) ]`
            let mut depth = 0usize;
            let mut opened = false;
            while j < code.len() {
                mask[j] = true;
                if code[j].is_punct('{') {
                    depth += 1;
                    opened = true;
                } else if code[j].is_punct('}') {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        break;
                    }
                } else if code[j].is_punct(';') && !opened {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn is_cfg_test_attr(code: &[&Token<'_>], i: usize) -> bool {
    code.len() >= i + 7
        && code[i].is_punct('#')
        && code[i + 1].is_punct('[')
        && code[i + 2].is_ident("cfg")
        && code[i + 3].is_punct('(')
        && code[i + 4].is_ident("test")
        && code[i + 5].is_punct(')')
        && code[i + 6].is_punct(']')
}

fn no_unwrap(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        // `.unwrap()` / `.expect(` method calls.
        if (t.text == "unwrap" || t.text == "expect")
            && i > 0
            && code[i - 1].is_punct('.')
            && matches!(code.get(i + 1), Some(n) if n.is_punct('('))
        {
            report(
                allows,
                out,
                "no-unwrap",
                t.line,
                format!(
                    "`.{}()` in library code — return a `Result` instead",
                    t.text
                ),
            );
        }
        // `panic!` family macros.
        if PANIC_MACROS.contains(&t.text) && matches!(code.get(i + 1), Some(n) if n.is_punct('!')) {
            report(
                allows,
                out,
                "no-unwrap",
                t.line,
                format!("`{}!` in library code — return a `Result` instead", t.text),
            );
        }
    }
}

/// Arithmetic operator characters that turn a raw `.get()` read into raw
/// timestamp arithmetic.
fn is_arith(t: &Token<'_>) -> bool {
    t.kind == TokenKind::Punct && matches!(t.text.chars().next(), Some('+' | '-' | '*' | '/' | '%'))
}

fn no_raw_i64_arith(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        // Match `. get ( )`, or the `pub` field read `. 0` (a lone `0`
        // after a dot is tuple-field access — float literals like `1.0`
        // lex as a single Number token and never hit this).
        let is_get_call = code[i].is_ident("get")
            && i > 0
            && code[i - 1].is_punct('.')
            && matches!(code.get(i + 1), Some(t) if t.is_punct('('))
            && matches!(code.get(i + 2), Some(t) if t.is_punct(')'));
        let is_field_read = code[i].kind == TokenKind::Number
            && code[i].text == "0"
            && i > 0
            && code[i - 1].is_punct('.');
        if !is_get_call && !is_field_read {
            continue;
        }
        // Index just past the whole read expression (`x.get()` or `x.0`).
        let end = if is_get_call { i + 3 } else { i + 1 };
        // `x.get() + ...` / `x.0 + ...` — operator immediately after.
        let after = code.get(end).copied().filter(|t| is_arith(t));
        // `... + x.get()` / `... + x.0` — operator immediately before a
        // simple receiver.
        let before = (i >= 3)
            .then(|| {
                let recv = code[i - 2];
                let op = code[i - 3];
                (recv.kind == TokenKind::Ident && is_arith(op)).then_some(op)
            })
            .flatten();
        if after.is_some() || before.is_some() {
            report(
                allows,
                out,
                "no-raw-i64-arith",
                code[i].line,
                "raw i64 arithmetic on a timestamp — use Timestamp/Interval methods \
                 so closed-interval discipline stays in tempagg-core"
                    .to_string(),
            );
        }
    }
}

fn no_as_cast(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    let mut in_use = false;
    for i in 0..code.len() {
        let t = code[i];
        if t.is_ident("use") || t.is_ident("extern") {
            in_use = true;
        }
        if in_use {
            if t.is_punct(';') {
                in_use = false;
            }
            continue;
        }
        if in_test[i] {
            continue;
        }
        if t.is_ident("as") {
            report(
                allows,
                out,
                "no-as-cast",
                t.line,
                "`as` cast in an algorithm crate — use From/try_from, or justify \
                 with `// lint: allow(no-as-cast): <why>`"
                    .to_string(),
            );
        }
    }
}

fn no_stable_sort(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident || !STABLE_SORTS.contains(&t.text) {
            continue;
        }
        // `.sort(` / `.sort_by(` / `.sort_by_key(` method calls only;
        // idents named `sort` (locals, paths) stay legal.
        if i > 0
            && code[i - 1].is_punct('.')
            && matches!(code.get(i + 1), Some(n) if n.is_punct('('))
        {
            let unstable = format!("sort_unstable{}", &t.text["sort".len()..]);
            report(
                allows,
                out,
                "no-stable-sort",
                t.line,
                format!(
                    "`.{}(` on a hot path allocates a stable-sort merge buffer — use \
                     `.{unstable}(`, or justify tie-order stability with \
                     `// lint: allow(no-stable-sort): <why>`",
                    t.text
                ),
            );
        }
    }
}

fn no_materialize_in_exec(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident || t.text != "finish" {
            continue;
        }
        // Only argument-less `.finish()` method calls materialize a whole
        // series; `agg.finish(&state)` folds one state and stays legal,
        // as do idents named `finish` in paths or definitions.
        if i > 0
            && code[i - 1].is_punct('.')
            && matches!(code.get(i + 1), Some(n) if n.is_punct('('))
            && matches!(code.get(i + 2), Some(n) if n.is_punct(')'))
        {
            report(
                allows,
                out,
                "no-materialize-in-exec",
                t.line,
                "`.finish()` in an execution layer materializes the whole result \
                 series — stream through `finish_into` / `emit_ready` with a \
                 `SeriesSink`, or justify with \
                 `// lint: allow(no-materialize-in-exec): <why>`"
                    .to_string(),
            );
        }
    }
}

fn store_mutation(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        let t = code[i];
        if t.kind != TokenKind::Ident || !STORE_BYPASS_MUTATORS.contains(&t.text) {
            continue;
        }
        // `.push_tuple(` / `.sort_by_time(` / `.permute(` method calls
        // only; idents with those names in paths or definitions stay
        // legal.
        if i > 0
            && code[i - 1].is_punct('.')
            && matches!(code.get(i + 1), Some(n) if n.is_punct('('))
        {
            report(
                allows,
                out,
                "store-mutation",
                t.line,
                format!(
                    "`.{}(` mutates a relation behind the store's back — route SQL-layer \
                     writes through TemporalStore (insert/delete_where/update_where) so \
                     cached series and the write epoch stay consistent, or justify a \
                     scratch relation with `// lint: allow(store-mutation): <why>`",
                    t.text
                ),
            );
        }
    }
}

/// `thread::` members that create OS threads.
const THREAD_SPAWNERS: &[&str] = &["spawn", "scope", "Builder"];

fn no_raw_thread(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        // `thread :: spawn` / `thread :: scope` / `thread :: Builder`
        // (`::` lexes as two `:` puncts). Reads like
        // `thread::available_parallelism` stay legal everywhere.
        let is_spawn_path = code[i].is_ident("thread")
            && matches!(code.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(code.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(code.get(i + 3), Some(t) if t.kind == TokenKind::Ident
                && THREAD_SPAWNERS.contains(&t.text));
        if is_spawn_path {
            report(
                allows,
                out,
                "no-raw-thread",
                code[i].line,
                "raw std::thread use outside tempagg-algo/src/parallel.rs — \
                 go through scoped_map / PartitionedAggregator instead"
                    .to_string(),
            );
        }
    }
}

/// `std` modules that reach the filesystem / raw byte streams.
const IO_MODULES: &[&str] = &["fs", "io"];

fn no_io_outside_pager(
    code: &[&Token<'_>],
    in_test: &[bool],
    allows: &AllowComments,
    out: &mut Vec<Violation>,
) {
    for i in 0..code.len() {
        if in_test[i] {
            continue;
        }
        // `std :: fs` / `std :: io` path reads (`::` lexes as two `:`
        // puncts) — covers both `use std::fs;` imports and inline paths
        // like `std::fs::write(...)` or `std::io::Result` in signatures.
        let is_io_path = code[i].is_ident("std")
            && matches!(code.get(i + 1), Some(t) if t.is_punct(':'))
            && matches!(code.get(i + 2), Some(t) if t.is_punct(':'))
            && matches!(code.get(i + 3), Some(t) if t.kind == TokenKind::Ident
                && IO_MODULES.contains(&t.text));
        if is_io_path {
            report(
                allows,
                out,
                "no-io-outside-pager",
                code[i].line,
                "raw std::fs/std::io outside tempagg-core/src/pager — route disk \
                 access through the pager (write_atomic / write_relation / \
                 PagedReader) so every byte crosses the checksummed format in one \
                 audited place, or justify with \
                 `// lint: allow(no-io-outside-pager): <why>`"
                    .to_string(),
            );
        }
    }
}

fn forbid_unsafe(code: &[&Token<'_>], out: &mut Vec<Violation>) {
    let found = code.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    });
    if !found {
        out.push(Violation {
            rule: "forbid-unsafe",
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn check(crate_name: &str, is_root: bool, src: &str) -> Vec<Violation> {
        let tokens = lex(src);
        check_file(
            FileContext {
                crate_name,
                is_crate_root: is_root,
                is_thread_hub: false,
                is_exec_path: false,
                is_seam_hub: false,
                is_pager: false,
            },
            &tokens,
        )
    }

    fn rules(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_unwrap_and_expect_and_panic() {
        let vs = check(
            "tempagg-plan",
            false,
            "fn f() { x.unwrap(); y.expect(\"msg\"); panic!(\"boom\"); unreachable!() }",
        );
        assert_eq!(rules(&vs), vec!["no-unwrap"; 4]);
    }

    #[test]
    fn allow_comment_with_justification_suppresses() {
        let src = "fn f() {\n    // lint: allow(no-unwrap): constructor documents the panic\n    x.unwrap();\n}";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn allow_comment_same_line_suppresses() {
        let src = "fn f() { x.unwrap() } // lint: allow(no-unwrap): bootstrap only";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a_violation() {
        let src = "fn f() { x.unwrap() } // lint: allow(no-unwrap)";
        let vs = check("tempagg-plan", false, src);
        assert_eq!(vs.len(), 1);
        assert!(vs[0].message.contains("justification"));
    }

    #[test]
    fn allow_for_wrong_rule_does_not_suppress() {
        let src = "fn f() { x.unwrap() } // lint: allow(no-as-cast): misdirected";
        let vs = check("tempagg-plan", false, src);
        assert_eq!(rules(&vs), vec!["no-unwrap"]);
    }

    #[test]
    fn cfg_test_mod_is_exempt() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); y.expect(\"e\"); }\n}";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn code_after_cfg_test_mod_is_linted_again() {
        let src = "#[cfg(test)]\nmod tests { fn t() { a.unwrap(); } }\nfn lib() { b.unwrap(); }";
        let vs = check("tempagg-plan", false, src);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn unwrap_in_string_or_comment_is_ignored() {
        let src = "fn f() { let s = \"x.unwrap()\"; } // mentions .unwrap() freely";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn non_call_unwrap_ident_is_ignored() {
        // A field or path named `unwrap` without a call is not a violation.
        let src = "fn f() { let unwrap = 3; let _ = unwrap; }";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn raw_i64_arith_flagged_outside_core() {
        let vs = check("tempagg-workload", false, "fn f() { let x = t.get() + 1; }");
        assert_eq!(rules(&vs), vec!["no-raw-i64-arith"]);
        let vs = check("tempagg-workload", false, "fn f() { let x = 1 + t.get(); }");
        assert_eq!(rules(&vs), vec!["no-raw-i64-arith"]);
    }

    #[test]
    fn raw_i64_field_access_arith_flagged_outside_core() {
        // `Timestamp.0` is `pub`, so the field read is as much a bypass as
        // `.get()` and gets the same treatment.
        let vs = check("tempagg-algo", false, "fn f() { let x = t.0 + 1; }");
        assert_eq!(rules(&vs), vec!["no-raw-i64-arith"]);
        let vs = check("tempagg-algo", false, "fn f() { let x = 1 + t.0; }");
        assert_eq!(rules(&vs), vec!["no-raw-i64-arith"]);
        // Float literals are one token; a bare `.0` read without
        // arithmetic is also fine.
        assert!(check("tempagg-algo", false, "fn f() { let x = 2.0 + y; }").is_empty());
        assert!(check("tempagg-algo", false, "fn f() { let x = t.0; }").is_empty());
    }

    #[test]
    fn raw_i64_arith_allowed_in_core_and_comparisons_everywhere() {
        assert!(check("tempagg-core", false, "fn f() { let x = t.get() + 1; }").is_empty());
        assert!(check("tempagg-plan", false, "fn f() { if a.get() < b.get() {} }").is_empty());
        // `get` with arguments (slice/map lookup) is not a timestamp read.
        assert!(check("tempagg-plan", false, "fn f() { v.get(i + 1); }").is_empty());
    }

    #[test]
    fn as_cast_flagged_only_in_algo_and_agg() {
        let vs = check("tempagg-algo", false, "fn f() { let x = n as u64; }");
        assert_eq!(rules(&vs), vec!["no-as-cast"]);
        assert!(check("tempagg-sql", false, "fn f() { let x = n as u64; }").is_empty());
    }

    #[test]
    fn use_as_rename_is_not_a_cast() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let m: Map<u8, u8>; }";
        assert!(check("tempagg-algo", false, src).is_empty());
    }

    #[test]
    fn raw_thread_spawn_flagged_outside_the_hub() {
        for call in [
            "std::thread::spawn(f)",
            "thread::scope(|s| {})",
            "thread::Builder::new()",
        ] {
            let vs = check("tempagg-algo", false, &format!("fn f() {{ {call}; }}"));
            assert_eq!(rules(&vs), vec!["no-raw-thread"], "for `{call}`");
        }
    }

    #[test]
    fn thread_hub_file_may_spawn() {
        let tokens = lex("fn f() { std::thread::scope(|s| {}); }");
        let vs = check_file(
            FileContext {
                crate_name: "tempagg-algo",
                is_crate_root: false,
                is_thread_hub: true,
                is_exec_path: false,
                is_seam_hub: false,
                is_pager: false,
            },
            &tokens,
        );
        assert!(vs.is_empty());
    }

    #[test]
    fn non_spawning_thread_reads_are_legal() {
        let src = "fn f() { let n = std::thread::available_parallelism(); }";
        assert!(check("tempagg-plan", false, src).is_empty());
        // Tests may spawn freely.
        let src = "#[cfg(test)]\nmod tests { fn t() { std::thread::spawn(f); } }";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn raw_thread_allow_comment_suppresses() {
        let src = "fn f() {\n    // lint: allow(no-raw-thread): one-shot timer, no result plumbing needed\n    std::thread::spawn(f);\n}";
        assert!(check("tempagg-sql", false, src).is_empty());
    }

    #[test]
    fn stable_sort_flagged_in_algo_and_core() {
        for call in ["v.sort()", "v.sort_by(cmp)", "v.sort_by_key(key)"] {
            for krate in ["tempagg-algo", "tempagg-core"] {
                let vs = check(krate, false, &format!("fn f() {{ {call}; }}"));
                assert_eq!(
                    rules(&vs),
                    vec!["no-stable-sort"],
                    "for `{call}` in {krate}"
                );
                assert!(vs[0].message.contains("sort_unstable"), "for `{call}`");
            }
        }
    }

    #[test]
    fn unstable_sort_and_other_crates_are_legal() {
        assert!(check("tempagg-algo", false, "fn f() { v.sort_unstable(); }").is_empty());
        assert!(check(
            "tempagg-algo",
            false,
            "fn f() { v.sort_unstable_by_key(k); }"
        )
        .is_empty());
        // The rule only gates the hot-path crates.
        assert!(check("tempagg-bench", false, "fn f() { v.sort(); }").is_empty());
        // An ident named `sort` without a method call is not a violation.
        assert!(check("tempagg-core", false, "fn f() { let sort = 1; g(sort); }").is_empty());
    }

    #[test]
    fn stable_sort_allow_comment_and_tests_are_exempt() {
        let src = "fn f() {\n    // lint: allow(no-stable-sort): ties must keep storage order\n    v.sort_by_key(k);\n}";
        assert!(check("tempagg-core", false, src).is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { v.sort(); } }";
        assert!(check("tempagg-algo", false, src).is_empty());
    }

    #[test]
    fn forbid_unsafe_required_in_crate_roots() {
        let vs = check("tempagg-core", true, "pub mod x;");
        assert_eq!(rules(&vs), vec!["forbid-unsafe"]);
        assert!(check("tempagg-core", true, "#![forbid(unsafe_code)]\npub mod x;").is_empty());
        // Non-root files do not need the attribute.
        assert!(check("tempagg-core", false, "pub fn f() {}").is_empty());
    }

    #[test]
    fn store_mutation_flagged_in_sql_crate() {
        for call in [
            "relation.push_tuple(t)",
            "relation.sort_by_time()",
            "relation.permute(&perm)",
        ] {
            let vs = check("tempagg-sql", false, &format!("fn f() {{ {call}; }}"));
            assert_eq!(rules(&vs), vec!["store-mutation"], "for `{call}`");
            assert!(vs[0].message.contains("TemporalStore"), "for `{call}`");
        }
    }

    #[test]
    fn store_mutation_other_crates_and_non_calls_are_legal() {
        // The rule only gates the SQL layer; everyone else owns their
        // relations outright.
        assert!(check("tempagg-plan", false, "fn f() { r.push_tuple(t); }").is_empty());
        // Idents without a method call are not violations.
        assert!(check(
            "tempagg-sql",
            false,
            "fn f() { let push_tuple = 1; g(push_tuple); }"
        )
        .is_empty());
        // Store-routed writes are the sanctioned path.
        assert!(check("tempagg-sql", false, "fn f() { store.insert(v, iv); }").is_empty());
    }

    #[test]
    fn store_mutation_allow_comment_and_tests_are_exempt() {
        let src = "fn f() {\n    // lint: allow(store-mutation): scratch per-query relation, not a cataloged store\n    r.push_tuple(t);\n}";
        assert!(check("tempagg-sql", false, src).is_empty());
        let src = "#[cfg(test)]\nmod tests { fn t() { r.push_tuple(t); } }";
        assert!(check("tempagg-sql", false, src).is_empty());
    }

    #[test]
    fn io_outside_pager_is_flagged_in_library_crates() {
        for src in [
            "use std::fs;",
            "fn f() { std::fs::write(p, b); }",
            "fn f() -> std::io::Result<()> { g() }",
        ] {
            for krate in ["tempagg-core", "tempagg-store", "tempagg-sql"] {
                let vs = check(krate, false, src);
                assert_eq!(
                    rules(&vs),
                    vec!["no-io-outside-pager"],
                    "for `{src}` in {krate}"
                );
            }
        }
    }

    #[test]
    fn pager_files_and_harness_crates_may_do_io() {
        // The pager module itself is the sanctioned home of raw I/O.
        let tokens = lex("use std::fs;\nfn f() { std::fs::rename(a, b); }");
        let vs = check_file(
            FileContext {
                crate_name: "tempagg-core",
                is_crate_root: false,
                is_thread_hub: false,
                is_exec_path: false,
                is_seam_hub: false,
                is_pager: true,
            },
            &tokens,
        );
        assert!(vs.is_empty());
        // Harness crates and the root facade drive the library and keep
        // their own file plumbing.
        for krate in ["tempagg-workload", "tempagg-bench", "temporal-aggregates"] {
            let vs = check(krate, false, "fn f() { std::fs::read(p); }");
            assert!(vs.is_empty(), "{krate}: {vs:?}");
        }
    }

    #[test]
    fn io_in_tests_and_justified_allows_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let _ = std::fs::remove_file(p); } }";
        assert!(check("tempagg-store", false, src).is_empty());
        let src = "fn f() {\n    // lint: allow(no-io-outside-pager): size probe only, no bytes decoded\n    let m = std::fs::metadata(p);\n}";
        assert!(check("tempagg-store", false, src).is_empty());
        // Pager re-exports are the sanctioned path and carry no std:: prefix.
        let src = "fn f() { pager::write_atomic(path, bytes) }";
        assert!(check("tempagg-store", false, src).is_empty());
    }

    fn check_exec(src: &str) -> Vec<Violation> {
        let tokens = lex(src);
        check_file(
            FileContext {
                crate_name: "tempagg-plan",
                is_crate_root: false,
                is_thread_hub: false,
                is_exec_path: true,
                is_seam_hub: false,
                is_pager: false,
            },
            &tokens,
        )
    }

    #[test]
    fn materialize_in_exec_is_flagged() {
        let vs = check_exec("fn f() { let s = aggregator.finish(); }");
        assert_eq!(rules(&vs), vec!["no-materialize-in-exec"]);
    }

    #[test]
    fn finish_with_arguments_is_legal_in_exec() {
        // Folding one aggregate state is not a series materialization.
        assert!(check_exec("fn f() { let v = agg.finish(&state); }").is_empty());
        // And so are `finish_into`, path idents, and definitions.
        assert!(check_exec("fn f(s: &mut S) { aggregator.finish_into(s); }").is_empty());
        assert!(check_exec("fn finish() {}").is_empty());
    }

    #[test]
    fn materialize_outside_exec_paths_is_legal() {
        let src = "fn f() { let s = aggregator.finish(); }";
        assert!(check("tempagg-plan", false, src).is_empty());
    }

    #[test]
    fn materialize_in_exec_tests_and_allows_are_legal() {
        let src = "#[cfg(test)]\nmod tests { fn t() { let s = a.finish(); } }";
        assert!(check_exec(src).is_empty());
        let src = "fn f() {\n    // lint: allow(no-materialize-in-exec): oracle comparison needs the whole series\n    let s = a.finish();\n}";
        assert!(check_exec(src).is_empty());
    }
}
