//! The analyzer must never panic (or stall) on real input: lex, parse, and
//! fully analyze every `.rs` file in the workspace — sources, tests,
//! benches, and the fixture corpus alike.

use std::fs;
use std::path::{Path, PathBuf};
use tempagg_lint::{check_source, FileContext};

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = fs::read_dir(dir).unwrap_or_else(|e| panic!("read_dir {}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        let name = path
            .file_name()
            .unwrap_or_default()
            .to_string_lossy()
            .into_owned();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
}

#[test]
fn analyzer_survives_every_workspace_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect(&root, &mut files);
    assert!(
        files.len() >= 80,
        "expected the full workspace, found only {} .rs files",
        files.len()
    );
    // Worst-case context: enable every context-gated rule at once.
    let ctx = FileContext {
        crate_name: "tempagg-algo",
        is_crate_root: true,
        is_thread_hub: false,
        is_exec_path: true,
        is_seam_hub: false,
        is_pager: false,
    };
    for f in &files {
        let src = fs::read_to_string(f).unwrap_or_else(|e| panic!("read {}: {e}", f.display()));
        // Findings are irrelevant here; completing without panicking is the test.
        let _ = check_source(&ctx, &src);
    }
}
