//! Golden-file tests for the analyzer fixture corpus.
//!
//! Each rule directory under `fixtures/` holds a `pos.rs` (must trigger the
//! rule), a `neg.rs` (must stay clean), and an `expected.txt` asserting the
//! exact `(file, line, rule)` findings for the pair. Fixtures declare their
//! [`FileContext`] with leading `//@` directives:
//!
//! ```text
//! //@ crate: tempagg-algo     (default: "fixture")
//! //@ crate-root
//! //@ thread-hub
//! //@ exec-path
//! //@ seam-hub
//! //@ pager
//! ```

use std::fs;
use std::path::{Path, PathBuf};
use tempagg_lint::{check_source, FileContext};

/// The fixture dirs: the five tree rules shipped by `analysis.rs` plus
/// the crate-gated token rules `store-mutation` and `no-io-outside-pager`
/// from `rules.rs`.
const RULES: &[&str] = &[
    "sink-order",
    "seam-protocol",
    "no-shared-mut-capture",
    "no-alloc-in-scan",
    "no-unchecked-index",
    "store-mutation",
    "no-io-outside-pager",
];

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

struct Directives {
    crate_name: String,
    is_crate_root: bool,
    is_thread_hub: bool,
    is_exec_path: bool,
    is_seam_hub: bool,
    is_pager: bool,
}

fn parse_directives(src: &str) -> Directives {
    let mut d = Directives {
        crate_name: "fixture".to_string(),
        is_crate_root: false,
        is_thread_hub: false,
        is_exec_path: false,
        is_seam_hub: false,
        is_pager: false,
    };
    for line in src.lines() {
        let Some(rest) = line.strip_prefix("//@") else {
            break; // directives must lead the file
        };
        match rest.trim() {
            "crate-root" => d.is_crate_root = true,
            "thread-hub" => d.is_thread_hub = true,
            "exec-path" => d.is_exec_path = true,
            "seam-hub" => d.is_seam_hub = true,
            "pager" => d.is_pager = true,
            other => {
                if let Some(name) = other.strip_prefix("crate:") {
                    d.crate_name = name.trim().to_string();
                } else {
                    panic!("unknown fixture directive: {line}");
                }
            }
        }
    }
    d
}

/// Run the full analyzer (v1 token rules + v2 tree rules) over one fixture,
/// returning `file:line rule` strings.
fn findings(path: &Path) -> Vec<String> {
    let src = fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let d = parse_directives(&src);
    let ctx = FileContext {
        crate_name: &d.crate_name,
        is_crate_root: d.is_crate_root,
        is_thread_hub: d.is_thread_hub,
        is_exec_path: d.is_exec_path,
        is_seam_hub: d.is_seam_hub,
        is_pager: d.is_pager,
    };
    let file = path.file_name().unwrap().to_string_lossy().into_owned();
    check_source(&ctx, &src)
        .iter()
        .map(|v| format!("{file}:{} {}", v.line, v.rule))
        .collect()
}

#[test]
fn fixtures_match_expected_findings() {
    for rule in RULES {
        let dir = fixture_root().join(rule);
        let mut actual = findings(&dir.join("pos.rs"));
        actual.extend(findings(&dir.join("neg.rs")));
        let expected_path = dir.join("expected.txt");
        let expected_text = fs::read_to_string(&expected_path)
            .unwrap_or_else(|e| panic!("read {}: {e}", expected_path.display()));
        let expected: Vec<&str> = expected_text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        assert_eq!(
            actual,
            expected,
            "findings for fixture `{rule}` diverge from expected.txt\n\
             actual:\n  {}\nexpected:\n  {}",
            actual.join("\n  "),
            expected.join("\n  "),
        );
    }
}

#[test]
fn every_rule_has_positive_and_negative_coverage() {
    for rule in RULES {
        let dir = fixture_root().join(rule);
        let pos = findings(&dir.join("pos.rs"));
        assert!(
            pos.iter().any(|f| f.ends_with(rule)),
            "fixture `{rule}/pos.rs` triggers no `{rule}` finding: {pos:?}"
        );
        let neg = findings(&dir.join("neg.rs"));
        assert!(
            neg.is_empty(),
            "fixture `{rule}/neg.rs` must be clean, found: {neg:?}"
        );
    }
}

#[test]
fn positive_fixtures_trigger_only_their_own_rule() {
    for rule in RULES {
        let pos = findings(&fixture_root().join(rule).join("pos.rs"));
        for f in &pos {
            assert!(
                f.ends_with(rule),
                "fixture `{rule}/pos.rs` leaks a foreign finding: {f}"
            );
        }
    }
}
