//! # tempagg-agg
//!
//! Aggregate functions for temporal aggregation, expressed as commutative
//! monoids over partial states so they can live at the internal nodes of an
//! aggregation tree (Kline & Snodgrass, ICDE 1995, Section 5.1).
//!
//! The paper's five aggregates — [`Count`], [`Sum`], [`Min`], [`Max`],
//! [`Avg`] — are provided, plus [`Variance`]/[`StdDev`] as extensions, and
//! a [`DynAggregate`] layer for queries configured at runtime (the SQL
//! front end).

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod active;
mod aggregate;
mod avg;
mod count;
mod distinct;
mod dynamic;
mod logic;
mod min_max;
mod multi;
mod slot_extremes;
mod sum;
mod variance;

pub use active::{BoolCounts, DynActive, SweepAggregate, SweepClass};
pub use aggregate::{Aggregate, Numeric};
pub use avg::{Avg, AvgState};
pub use count::Count;
pub use distinct::CountDistinct;
pub use dynamic::{AggKind, DynAggregate, DynState};
pub use logic::{BoolAnd, BoolOr};
pub use min_max::{Max, Min};
pub use multi::MultiDyn;
pub use slot_extremes::SlotExtremes;
pub use sum::Sum;
pub use variance::{StdDev, Variance, VarianceKind, VarianceState};
