//! `AVG` over a numeric attribute.

use crate::aggregate::{Aggregate, Numeric};
use std::marker::PhantomData;

/// Partial state of an average: running sum and tuple count
/// ("Average uses 8 bytes, 4 for the sum and 4 for the count", Section 6).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AvgState {
    pub sum: f64,
    pub count: u64,
}

/// Averages a numeric attribute over the tuples overlapping each constant
/// interval; `None` where no tuple overlaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Avg<T>(PhantomData<T>);

impl<T> Avg<T> {
    pub const fn new() -> Self {
        Avg(PhantomData)
    }
}

impl<T: Numeric> Aggregate for Avg<T> {
    type Input = T;
    type State = AvgState;
    type Output = Option<f64>;

    fn name(&self) -> &'static str {
        "AVG"
    }

    fn empty_state(&self) -> AvgState {
        AvgState { sum: 0.0, count: 0 }
    }

    #[inline]
    fn insert(&self, state: &mut AvgState, value: &T) {
        state.sum += value.to_f64();
        state.count += 1;
    }

    #[inline]
    fn merge(&self, into: &mut AvgState, from: &AvgState) {
        into.sum += from.sum;
        into.count += from.count;
    }

    fn finish(&self, state: &AvgState) -> Option<f64> {
        if state.count == 0 {
            None
        } else {
            // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
            Some(state.sum / state.count as f64)
        }
    }

    fn is_empty_state(&self, state: &AvgState) -> bool {
        state.count == 0
    }

    fn state_model_bytes(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_values() {
        let agg: Avg<i64> = Avg::new();
        let mut s = agg.empty_state();
        agg.insert(&mut s, &40_000);
        agg.insert(&mut s, &45_000);
        agg.insert(&mut s, &35_000);
        assert_eq!(agg.finish(&s), Some(40_000.0));
    }

    #[test]
    fn empty_average_is_none() {
        let agg: Avg<i64> = Avg::new();
        assert_eq!(agg.finish(&agg.empty_state()), None);
        assert!(agg.is_empty_state(&agg.empty_state()));
    }

    #[test]
    fn merge_combines_sums_and_counts() {
        let agg: Avg<f64> = Avg::new();
        let mut a = AvgState {
            sum: 10.0,
            count: 2,
        };
        let b = AvgState { sum: 5.0, count: 1 };
        agg.merge(&mut a, &b);
        assert_eq!(
            a,
            AvgState {
                sum: 15.0,
                count: 3
            }
        );
        assert_eq!(agg.finish(&a), Some(5.0));
    }

    #[test]
    fn merge_identity() {
        let agg: Avg<i64> = Avg::new();
        let mut a = AvgState { sum: 9.0, count: 3 };
        agg.merge(&mut a, &agg.empty_state());
        assert_eq!(a, AvgState { sum: 9.0, count: 3 });
    }

    #[test]
    fn paper_memory_model() {
        let agg: Avg<i64> = Avg::new();
        assert_eq!(agg.state_model_bytes(), 8);
    }
}
