//! `COUNT` — the aggregate the paper uses throughout its evaluation
//! ("we found that the choice of aggregate did not materially alter the
//! results", Section 6).

use crate::aggregate::Aggregate;

/// Counts the tuples overlapping each constant interval.
///
/// Input is `()` — qualification (e.g. `COUNT(col)` skipping NULLs) happens
/// before the algorithm sees the tuple.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Count;

impl Aggregate for Count {
    type Input = ();
    type State = u64;
    type Output = u64;

    fn name(&self) -> &'static str {
        "COUNT"
    }

    #[inline]
    fn empty_state(&self) -> u64 {
        0
    }

    #[inline]
    fn insert(&self, state: &mut u64, _value: &()) {
        *state += 1;
    }

    #[inline]
    fn merge(&self, into: &mut u64, from: &u64) {
        *into += *from;
    }

    #[inline]
    fn finish(&self, state: &u64) -> u64 {
        *state
    }

    #[inline]
    fn is_empty_state(&self, state: &u64) -> bool {
        *state == 0
    }

    fn state_model_bytes(&self) -> usize {
        // "Count uses only 4 bytes per each aggregate-value stored."
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_insertions() {
        let agg = Count;
        let mut s = agg.empty_state();
        assert!(agg.is_empty_state(&s));
        agg.insert(&mut s, &());
        agg.insert(&mut s, &());
        assert_eq!(agg.finish(&s), 2);
        assert!(!agg.is_empty_state(&s));
    }

    #[test]
    fn merge_is_addition() {
        let agg = Count;
        let mut a = 3u64;
        agg.merge(&mut a, &4);
        assert_eq!(a, 7);
        // identity
        let mut b = 5u64;
        agg.merge(&mut b, &agg.empty_state());
        assert_eq!(b, 5);
    }

    #[test]
    fn paper_memory_model() {
        assert_eq!(Count.state_model_bytes(), 4);
        assert_eq!(Count.name(), "COUNT");
    }
}
