//! `MIN` and `MAX` over an ordered attribute.
//!
//! These *select* their value rather than computing one (Section 2), and
//! only need insertion — the temporal algorithms never delete from a state —
//! so a plain `Option<T>` extremum suffices.

use crate::aggregate::Aggregate;
use std::marker::PhantomData;

/// The minimum attribute value among tuples overlapping each constant
/// interval; `None` where no tuple overlaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Min<T>(PhantomData<T>);

/// The maximum attribute value among tuples overlapping each constant
/// interval; `None` where no tuple overlaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Max<T>(PhantomData<T>);

impl<T> Min<T> {
    pub const fn new() -> Self {
        Min(PhantomData)
    }
}

impl<T> Max<T> {
    pub const fn new() -> Self {
        Max(PhantomData)
    }
}

impl<T> Aggregate for Min<T>
where
    T: Ord + Clone + std::fmt::Debug + PartialEq + 'static,
{
    type Input = T;
    type State = Option<T>;
    type Output = Option<T>;

    fn name(&self) -> &'static str {
        "MIN"
    }

    fn empty_state(&self) -> Option<T> {
        None
    }

    #[inline]
    fn insert(&self, state: &mut Option<T>, value: &T) {
        match state {
            Some(cur) if *cur <= *value => {}
            _ => *state = Some(value.clone()),
        }
    }

    #[inline]
    fn merge(&self, into: &mut Option<T>, from: &Option<T>) {
        if let Some(v) = from {
            self.insert(into, v);
        }
    }

    fn finish(&self, state: &Option<T>) -> Option<T> {
        state.clone()
    }

    fn is_empty_state(&self, state: &Option<T>) -> bool {
        state.is_none()
    }

    fn state_model_bytes(&self) -> usize {
        4
    }
}

impl<T> Aggregate for Max<T>
where
    T: Ord + Clone + std::fmt::Debug + PartialEq + 'static,
{
    type Input = T;
    type State = Option<T>;
    type Output = Option<T>;

    fn name(&self) -> &'static str {
        "MAX"
    }

    fn empty_state(&self) -> Option<T> {
        None
    }

    #[inline]
    fn insert(&self, state: &mut Option<T>, value: &T) {
        match state {
            Some(cur) if *cur >= *value => {}
            _ => *state = Some(value.clone()),
        }
    }

    #[inline]
    fn merge(&self, into: &mut Option<T>, from: &Option<T>) {
        if let Some(v) = from {
            self.insert(into, v);
        }
    }

    fn finish(&self, state: &Option<T>) -> Option<T> {
        state.clone()
    }

    fn is_empty_state(&self, state: &Option<T>) -> bool {
        state.is_none()
    }

    fn state_model_bytes(&self) -> usize {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_selects_smallest() {
        let agg: Min<i64> = Min::new();
        let mut s = agg.empty_state();
        agg.insert(&mut s, &45_000);
        agg.insert(&mut s, &35_000);
        agg.insert(&mut s, &40_000);
        assert_eq!(agg.finish(&s), Some(35_000));
    }

    #[test]
    fn max_selects_largest() {
        let agg: Max<i64> = Max::new();
        let mut s = agg.empty_state();
        agg.insert(&mut s, &45_000);
        agg.insert(&mut s, &35_000);
        assert_eq!(agg.finish(&s), Some(45_000));
    }

    #[test]
    fn empty_extremum_is_none() {
        let min: Min<i64> = Min::new();
        assert_eq!(min.finish(&min.empty_state()), None);
        assert!(min.is_empty_state(&None));
    }

    #[test]
    fn merge_is_extremum_of_states() {
        let agg: Min<i64> = Min::new();
        let mut a = Some(5);
        agg.merge(&mut a, &Some(3));
        assert_eq!(a, Some(3));
        agg.merge(&mut a, &Some(9));
        assert_eq!(a, Some(3));
        agg.merge(&mut a, &None);
        assert_eq!(a, Some(3));
    }

    #[test]
    fn merge_commutes() {
        let agg: Max<i64> = Max::new();
        for (x, y) in [(Some(1), Some(2)), (None, Some(7)), (Some(3), None)] {
            let mut a = x;
            agg.merge(&mut a, &y);
            let mut b = y;
            agg.merge(&mut b, &x);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn works_on_strings() {
        let agg: Min<String> = Min::new();
        let mut s = agg.empty_state();
        agg.insert(&mut s, &"Richard".to_owned());
        agg.insert(&mut s, &"Karen".to_owned());
        assert_eq!(agg.finish(&s).as_deref(), Some("Karen"));
    }
}
