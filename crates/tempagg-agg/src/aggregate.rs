//! The aggregate abstraction shared by every algorithm in this workspace.
//!
//! The aggregation tree stores a *partial* aggregate state at internal nodes
//! (for tuples whose interval completely covers the node) and combines the
//! states along each root→leaf path during the final depth-first search
//! (Section 5.1). That works exactly when the aggregate's `merge` is
//! commutative and associative with `empty_state` as identity — i.e. the
//! states form a commutative monoid. `COUNT`/`SUM`/`AVG` are additive;
//! `MIN`/`MAX` merge by comparison. None of the paper's algorithms ever
//! needs to *remove* a tuple, so inverse operations are not required.

/// An aggregate function, expressed as a commutative monoid over partial
/// states.
///
/// Implementations carry no per-tuple data themselves; an instance is a
/// *descriptor* (e.g. "SUM over this column"), and the algorithms thread the
/// descriptor through so dynamically-configured aggregates (the SQL layer)
/// and zero-sized static aggregates use the same code path.
pub trait Aggregate {
    /// Per-tuple input consumed by [`Aggregate::insert`].
    type Input;
    /// Partial aggregate state stored at tree nodes / list cells.
    type State: Clone + std::fmt::Debug;
    /// Final value reported per constant interval.
    type Output: Clone + PartialEq + std::fmt::Debug;

    /// Display name (`"COUNT"`, `"SUM"`, …).
    fn name(&self) -> &'static str;

    /// The monoid identity: the state of a constant interval overlapped by
    /// no tuples.
    fn empty_state(&self) -> Self::State;

    /// Fold one tuple's value into a state.
    fn insert(&self, state: &mut Self::State, value: &Self::Input);

    /// Combine two partial states. Must be commutative and associative,
    /// with [`Aggregate::empty_state`] as identity.
    fn merge(&self, into: &mut Self::State, from: &Self::State);

    /// Produce the reported value for a constant interval.
    fn finish(&self, state: &Self::State) -> Self::Output;

    /// `true` iff the state has absorbed no tuples. Used to filter empty
    /// groups from results when callers ask for it.
    fn is_empty_state(&self, state: &Self::State) -> bool;

    /// Bytes of aggregate state per node under the paper's Section 6
    /// accounting (`COUNT` 4 B; `SUM`/`MIN`/`MAX` 4 B plus an empty bit;
    /// `AVG` 8 B). Used for the Figure 9 memory model.
    fn state_model_bytes(&self) -> usize;
}

/// Numeric inputs accepted by `SUM`/`AVG`/`VARIANCE`.
///
/// A tiny closed abstraction: the paper's aggregates operate on salaries
/// (integers) and we additionally support floats. Saturating addition
/// mirrors the fixed-width accumulators of the original implementation
/// without risking wrap-around UB in long-running scans.
pub trait Numeric: Copy + std::fmt::Debug + PartialEq + 'static {
    const ZERO: Self;
    /// Whether `saturating_sub` exactly inverts `saturating_add` away from
    /// the saturation rails — true for integers, false for floats, where
    /// rounding makes retraction approximate. Drives sweep-class selection.
    const EXACT_RETRACT: bool;
    fn saturating_add(self, other: Self) -> Self;
    fn saturating_sub(self, other: Self) -> Self;
    fn to_f64(self) -> f64;
}

impl Numeric for i64 {
    const ZERO: Self = 0;
    const EXACT_RETRACT: bool = true;
    #[inline]
    fn saturating_add(self, other: Self) -> Self {
        i64::saturating_add(self, other)
    }
    #[inline]
    fn saturating_sub(self, other: Self) -> Self {
        i64::saturating_sub(self, other)
    }
    #[inline]
    fn to_f64(self) -> f64 {
        // lint: allow(no-as-cast): widening for AVG statistics; precision loss above 2^53 is inherent to averaging i64
        self as f64
    }
}

impl Numeric for f64 {
    const ZERO: Self = 0.0;
    const EXACT_RETRACT: bool = false;
    #[inline]
    fn saturating_add(self, other: Self) -> Self {
        self + other
    }
    #[inline]
    fn saturating_sub(self, other: Self) -> Self {
        self - other
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_i64_saturates() {
        assert_eq!(Numeric::saturating_add(i64::MAX, 1), i64::MAX);
        assert_eq!(Numeric::saturating_add(2i64, 3), 5);
        assert_eq!(Numeric::saturating_sub(i64::MIN, 1), i64::MIN);
        assert_eq!(Numeric::saturating_sub(5i64, 3), 2);
        assert_eq!(5i64.to_f64(), 5.0);
        assert_eq!(i64::ZERO, 0);
        const _: () = assert!(<i64 as Numeric>::EXACT_RETRACT);
    }

    #[test]
    fn numeric_f64() {
        assert_eq!(Numeric::saturating_add(1.5f64, 2.0), 3.5);
        assert_eq!(Numeric::saturating_sub(3.5f64, 2.0), 1.5);
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(2.5f64.to_f64(), 2.5);
        const _: () = assert!(!<f64 as Numeric>::EXACT_RETRACT);
    }
}
