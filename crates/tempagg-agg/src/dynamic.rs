//! Runtime-configured aggregates over [`Value`]s, used by the SQL front end
//! and the planner, where the aggregate and its column are chosen at query
//! time.
//!
//! SQL NULL semantics: every kind except `CountStar` skips `NULL` inputs;
//! `CountStar` counts every qualifying tuple.

use crate::aggregate::Aggregate;
use crate::avg::AvgState;
use crate::variance::{Variance, VarianceState};
use tempagg_core::{Result, TempAggError, Value, ValueType};

/// The aggregate functions expressible in the SQL layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggKind {
    /// `COUNT(*)` — counts tuples, including NULL attribute values.
    CountStar,
    /// `COUNT(col)` — counts non-NULL values.
    Count,
    /// `COUNT(DISTINCT col)` — counts distinct non-NULL values.
    CountDistinct,
    Sum,
    Min,
    Max,
    Avg,
    Variance,
    StdDev,
}

impl AggKind {
    pub fn name(self) -> &'static str {
        match self {
            AggKind::CountStar => "COUNT(*)",
            AggKind::Count => "COUNT",
            AggKind::CountDistinct => "COUNT DISTINCT",
            AggKind::Sum => "SUM",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
            AggKind::Avg => "AVG",
            AggKind::Variance => "VARIANCE",
            AggKind::StdDev => "STDDEV",
        }
    }

    /// Parse a function name as written in SQL (case-insensitive).
    pub fn parse(name: &str) -> Option<AggKind> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggKind::Count),
            "SUM" => Some(AggKind::Sum),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            "AVG" => Some(AggKind::Avg),
            "VARIANCE" | "VAR" | "VAR_SAMP" => Some(AggKind::Variance),
            "STDDEV" | "STDDEV_SAMP" => Some(AggKind::StdDev),
            _ => None,
        }
    }

    /// Whether this aggregate accepts a column of the given type.
    pub fn accepts(self, ty: ValueType) -> bool {
        match self {
            AggKind::CountStar | AggKind::Count | AggKind::CountDistinct => true,
            AggKind::Min | AggKind::Max => true,
            AggKind::Sum | AggKind::Avg | AggKind::Variance | AggKind::StdDev => {
                matches!(ty, ValueType::Int | ValueType::Float)
            }
        }
    }
}

/// Partial state of a [`DynAggregate`].
#[derive(Clone, Debug, PartialEq)]
pub enum DynState {
    Count(u64),
    Distinct(std::collections::BTreeSet<Value>),
    SumInt(Option<i64>),
    SumFloat(Option<f64>),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg(AvgState),
    Var(VarianceState),
}

/// A dynamically-configured aggregate over [`Value`] inputs.
///
/// Construct with [`DynAggregate::new`], providing the column type so `SUM`
/// can keep integer sums exact.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DynAggregate {
    kind: AggKind,
    input: ValueType,
}

impl DynAggregate {
    /// Build a dynamic aggregate, verifying the column type is acceptable.
    pub fn new(kind: AggKind, input: ValueType) -> Result<DynAggregate> {
        if kind.accepts(input) {
            Ok(DynAggregate { kind, input })
        } else {
            Err(TempAggError::TypeError {
                detail: format!("{} cannot aggregate a {} column", kind.name(), input),
            })
        }
    }

    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// The column type this aggregate was configured for.
    pub fn input_type(&self) -> ValueType {
        self.input
    }

    fn numeric(value: &Value) -> Option<f64> {
        value.as_f64()
    }
}

impl Aggregate for DynAggregate {
    type Input = Value;
    type State = DynState;
    type Output = Value;

    fn name(&self) -> &'static str {
        self.kind.name()
    }

    fn empty_state(&self) -> DynState {
        match self.kind {
            AggKind::CountStar | AggKind::Count => DynState::Count(0),
            AggKind::CountDistinct => DynState::Distinct(std::collections::BTreeSet::new()),
            AggKind::Sum => match self.input {
                ValueType::Int => DynState::SumInt(None),
                _ => DynState::SumFloat(None),
            },
            AggKind::Min => DynState::Min(None),
            AggKind::Max => DynState::Max(None),
            AggKind::Avg => DynState::Avg(AvgState { sum: 0.0, count: 0 }),
            AggKind::Variance | AggKind::StdDev => DynState::Var(VarianceState {
                count: 0,
                mean: 0.0,
                m2: 0.0,
            }),
        }
    }

    fn insert(&self, state: &mut DynState, value: &Value) {
        if value.is_null() && self.kind != AggKind::CountStar {
            return;
        }
        match state {
            DynState::Count(c) => *c += 1,
            DynState::Distinct(set) => {
                set.insert(value.clone());
            }
            DynState::SumInt(s) => {
                if let Some(v) = value.as_i64() {
                    *s = Some(s.unwrap_or(0).saturating_add(v));
                }
            }
            DynState::SumFloat(s) => {
                if let Some(v) = Self::numeric(value) {
                    *s = Some(s.unwrap_or(0.0) + v);
                }
            }
            DynState::Min(m) => match m {
                Some(cur) if *cur <= *value => {}
                _ => *m = Some(value.clone()),
            },
            DynState::Max(m) => match m {
                Some(cur) if *cur >= *value => {}
                _ => *m = Some(value.clone()),
            },
            DynState::Avg(a) => {
                if let Some(v) = Self::numeric(value) {
                    a.sum += v;
                    a.count += 1;
                }
            }
            DynState::Var(v) => {
                if let Some(x) = Self::numeric(value) {
                    let var: Variance<f64> = Variance::sample();
                    var.insert(v, &x);
                }
            }
        }
    }

    fn merge(&self, into: &mut DynState, from: &DynState) {
        match (into, from) {
            (DynState::Count(a), DynState::Count(b)) => *a += *b,
            (DynState::Distinct(a), DynState::Distinct(b)) => {
                a.extend(b.iter().cloned());
            }
            (DynState::SumInt(a), DynState::SumInt(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.unwrap_or(0).saturating_add(*bv));
                }
            }
            (DynState::SumFloat(a), DynState::SumFloat(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.unwrap_or(0.0) + bv);
                }
            }
            (DynState::Min(a), DynState::Min(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(cur) if *cur <= *bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (DynState::Max(a), DynState::Max(b)) => {
                if let Some(bv) = b {
                    match a {
                        Some(cur) if *cur >= *bv => {}
                        _ => *a = Some(bv.clone()),
                    }
                }
            }
            (DynState::Avg(a), DynState::Avg(b)) => {
                a.sum += b.sum;
                a.count += b.count;
            }
            (DynState::Var(a), DynState::Var(b)) => {
                let var: Variance<f64> = Variance::sample();
                var.merge(a, b);
            }
            // lint: allow(no-unwrap): every state of one DynAggregate is built by that aggregate, so the kinds always match
            (into, from) => unreachable!(
                "mismatched dynamic aggregate states: {into:?} vs {from:?} \
                 (states must come from the same DynAggregate)"
            ),
        }
    }

    fn finish(&self, state: &DynState) -> Value {
        match state {
            // lint: allow(no-as-cast): a count of tuples never approaches i64::MAX
            DynState::Count(c) => Value::Int(*c as i64),
            // lint: allow(no-as-cast): a distinct-set size never approaches i64::MAX
            DynState::Distinct(set) => Value::Int(set.len() as i64),
            DynState::SumInt(s) => s.map_or(Value::Null, Value::Int),
            DynState::SumFloat(s) => s.map_or(Value::Null, Value::Float),
            DynState::Min(m) | DynState::Max(m) => m.clone().unwrap_or(Value::Null),
            DynState::Avg(a) => {
                if a.count == 0 {
                    Value::Null
                } else {
                    // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
                    Value::Float(a.sum / a.count as f64)
                }
            }
            DynState::Var(v) => {
                let var: Variance<f64> = Variance::sample();
                match var.finish(v) {
                    Some(x) if self.kind == AggKind::StdDev => Value::Float(x.sqrt()),
                    Some(x) => Value::Float(x),
                    None => Value::Null,
                }
            }
        }
    }

    fn is_empty_state(&self, state: &DynState) -> bool {
        match state {
            DynState::Count(c) => *c == 0,
            DynState::Distinct(set) => set.is_empty(),
            DynState::SumInt(s) => s.is_none(),
            DynState::SumFloat(s) => s.is_none(),
            DynState::Min(m) | DynState::Max(m) => m.is_none(),
            DynState::Avg(a) => a.count == 0,
            DynState::Var(v) => v.count == 0,
        }
    }

    fn state_model_bytes(&self) -> usize {
        match self.kind {
            AggKind::CountStar | AggKind::Count | AggKind::CountDistinct => 4,
            AggKind::Sum | AggKind::Min | AggKind::Max => 4,
            AggKind::Avg => 8,
            AggKind::Variance | AggKind::StdDev => 12,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: AggKind, ty: ValueType, values: &[Value]) -> Value {
        let agg = DynAggregate::new(kind, ty).unwrap();
        let mut s = agg.empty_state();
        for v in values {
            agg.insert(&mut s, v);
        }
        agg.finish(&s)
    }

    #[test]
    fn count_skips_nulls_count_star_does_not() {
        let vals = [Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggKind::Count, ValueType::Int, &vals), Value::Int(2));
        assert_eq!(
            run(AggKind::CountStar, ValueType::Int, &vals),
            Value::Int(3)
        );
    }

    #[test]
    fn sum_int_stays_exact() {
        let vals = [Value::Int(40_000), Value::Int(45_000)];
        assert_eq!(run(AggKind::Sum, ValueType::Int, &vals), Value::Int(85_000));
    }

    #[test]
    fn sum_float() {
        let vals = [Value::Float(1.5), Value::Float(2.5)];
        assert_eq!(
            run(AggKind::Sum, ValueType::Float, &vals),
            Value::Float(4.0)
        );
    }

    #[test]
    fn min_max_on_strings() {
        let vals = [
            Value::from("Richard"),
            Value::from("Karen"),
            Value::from("Nathan"),
        ];
        assert_eq!(
            run(AggKind::Min, ValueType::Str, &vals),
            Value::from("Karen")
        );
        assert_eq!(
            run(AggKind::Max, ValueType::Str, &vals),
            Value::from("Richard")
        );
    }

    #[test]
    fn avg_and_empty_results_are_null() {
        let vals = [Value::Int(2), Value::Int(4)];
        assert_eq!(run(AggKind::Avg, ValueType::Int, &vals), Value::Float(3.0));
        assert_eq!(run(AggKind::Avg, ValueType::Int, &[]), Value::Null);
        assert_eq!(run(AggKind::Sum, ValueType::Int, &[]), Value::Null);
        assert_eq!(run(AggKind::Min, ValueType::Int, &[]), Value::Null);
        assert_eq!(run(AggKind::Count, ValueType::Int, &[]), Value::Int(0));
    }

    #[test]
    fn variance_and_stddev() {
        let vals: Vec<Value> = [3.0, 5.0].iter().map(|&x| Value::Float(x)).collect();
        assert_eq!(
            run(AggKind::Variance, ValueType::Float, &vals),
            Value::Float(2.0)
        );
        let sd = run(AggKind::StdDev, ValueType::Float, &vals);
        match sd {
            Value::Float(x) => assert!((x - 2.0f64.sqrt()).abs() < 1e-12),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn merge_matches_sequential() {
        let agg = DynAggregate::new(AggKind::Avg, ValueType::Int).unwrap();
        let vals: Vec<Value> = (1..=10).map(Value::Int).collect();
        let mut whole = agg.empty_state();
        for v in &vals {
            agg.insert(&mut whole, v);
        }
        let mut left = agg.empty_state();
        let mut right = agg.empty_state();
        for v in &vals[..4] {
            agg.insert(&mut left, v);
        }
        for v in &vals[4..] {
            agg.insert(&mut right, v);
        }
        agg.merge(&mut left, &right);
        assert_eq!(agg.finish(&left), agg.finish(&whole));
    }

    #[test]
    fn type_checking_at_construction() {
        assert!(DynAggregate::new(AggKind::Sum, ValueType::Str).is_err());
        assert!(DynAggregate::new(AggKind::Min, ValueType::Str).is_ok());
        assert!(DynAggregate::new(AggKind::Avg, ValueType::Bool).is_err());
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggKind::parse("count"), Some(AggKind::Count));
        assert_eq!(AggKind::parse("AVG"), Some(AggKind::Avg));
        assert_eq!(AggKind::parse("var_samp"), Some(AggKind::Variance));
        assert_eq!(AggKind::parse("median"), None);
    }
}
