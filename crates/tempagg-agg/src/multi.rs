//! Computing several aggregates in one pass.
//!
//! Section 3 computes each scalar aggregate separately ("compute each of
//! them separately and store each result in a singleton relation"); since
//! aggregates over the same tuples induce the same constant intervals, a
//! *product* aggregate computes them all in a single tree construction —
//! the product of monoids is a monoid. Static products are the tuple
//! implementations below; [`MultiDyn`] is the runtime-width variant the
//! SQL layer uses.

use crate::aggregate::Aggregate;
use crate::dynamic::{DynAggregate, DynState};
use tempagg_core::Value;

impl<A: Aggregate, B: Aggregate> Aggregate for (A, B) {
    type Input = (A::Input, B::Input);
    type State = (A::State, B::State);
    type Output = (A::Output, B::Output);

    fn name(&self) -> &'static str {
        "PRODUCT"
    }

    fn empty_state(&self) -> Self::State {
        (self.0.empty_state(), self.1.empty_state())
    }

    #[inline]
    fn insert(&self, state: &mut Self::State, value: &Self::Input) {
        self.0.insert(&mut state.0, &value.0);
        self.1.insert(&mut state.1, &value.1);
    }

    #[inline]
    fn merge(&self, into: &mut Self::State, from: &Self::State) {
        self.0.merge(&mut into.0, &from.0);
        self.1.merge(&mut into.1, &from.1);
    }

    fn finish(&self, state: &Self::State) -> Self::Output {
        (self.0.finish(&state.0), self.1.finish(&state.1))
    }

    fn is_empty_state(&self, state: &Self::State) -> bool {
        self.0.is_empty_state(&state.0) && self.1.is_empty_state(&state.1)
    }

    fn state_model_bytes(&self) -> usize {
        self.0.state_model_bytes() + self.1.state_model_bytes()
    }
}

impl<A: Aggregate, B: Aggregate, C: Aggregate> Aggregate for (A, B, C) {
    type Input = (A::Input, B::Input, C::Input);
    type State = (A::State, B::State, C::State);
    type Output = (A::Output, B::Output, C::Output);

    fn name(&self) -> &'static str {
        "PRODUCT"
    }

    fn empty_state(&self) -> Self::State {
        (
            self.0.empty_state(),
            self.1.empty_state(),
            self.2.empty_state(),
        )
    }

    #[inline]
    fn insert(&self, state: &mut Self::State, value: &Self::Input) {
        self.0.insert(&mut state.0, &value.0);
        self.1.insert(&mut state.1, &value.1);
        self.2.insert(&mut state.2, &value.2);
    }

    #[inline]
    fn merge(&self, into: &mut Self::State, from: &Self::State) {
        self.0.merge(&mut into.0, &from.0);
        self.1.merge(&mut into.1, &from.1);
        self.2.merge(&mut into.2, &from.2);
    }

    fn finish(&self, state: &Self::State) -> Self::Output {
        (
            self.0.finish(&state.0),
            self.1.finish(&state.1),
            self.2.finish(&state.2),
        )
    }

    fn is_empty_state(&self, state: &Self::State) -> bool {
        self.0.is_empty_state(&state.0)
            && self.1.is_empty_state(&state.1)
            && self.2.is_empty_state(&state.2)
    }

    fn state_model_bytes(&self) -> usize {
        self.0.state_model_bytes() + self.1.state_model_bytes() + self.2.state_model_bytes()
    }
}

/// A runtime-width product of [`DynAggregate`]s: all of a query's
/// aggregates evaluated in one pass over one tree. Input is one
/// pre-extracted [`Value`] per member aggregate.
#[derive(Clone, Debug, PartialEq)]
pub struct MultiDyn {
    members: Vec<DynAggregate>,
}

impl MultiDyn {
    pub fn new(members: Vec<DynAggregate>) -> MultiDyn {
        MultiDyn { members }
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// The member aggregates, in declaration order.
    pub fn members(&self) -> &[DynAggregate] {
        &self.members
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

impl Aggregate for MultiDyn {
    type Input = Vec<Value>;
    type State = Vec<DynState>;
    type Output = Vec<Value>;

    fn name(&self) -> &'static str {
        "MULTI"
    }

    fn empty_state(&self) -> Vec<DynState> {
        self.members
            .iter()
            .map(super::aggregate::Aggregate::empty_state)
            .collect()
    }

    #[inline]
    fn insert(&self, state: &mut Vec<DynState>, value: &Vec<Value>) {
        debug_assert_eq!(state.len(), value.len());
        for ((member, s), v) in self.members.iter().zip(state).zip(value) {
            member.insert(s, v);
        }
    }

    #[inline]
    fn merge(&self, into: &mut Vec<DynState>, from: &Vec<DynState>) {
        for ((member, a), b) in self.members.iter().zip(into).zip(from) {
            member.merge(a, b);
        }
    }

    fn finish(&self, state: &Vec<DynState>) -> Vec<Value> {
        self.members
            .iter()
            .zip(state)
            .map(|(m, s)| m.finish(s))
            .collect()
    }

    fn is_empty_state(&self, state: &Vec<DynState>) -> bool {
        self.members
            .iter()
            .zip(state)
            .all(|(m, s)| m.is_empty_state(s))
    }

    fn state_model_bytes(&self) -> usize {
        self.members
            .iter()
            .map(super::aggregate::Aggregate::state_model_bytes)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AggKind, Avg, Count, Sum};
    use tempagg_core::ValueType;

    #[test]
    fn pair_aggregates_in_lockstep() {
        let agg = (Count, Sum::<i64>::new());
        let mut s = agg.empty_state();
        agg.insert(&mut s, &((), 40_000));
        agg.insert(&mut s, &((), 45_000));
        assert_eq!(agg.finish(&s), (2, Some(85_000)));
        assert_eq!(agg.state_model_bytes(), 4 + 4);
        assert!(!agg.is_empty_state(&s));
        assert!(agg.is_empty_state(&agg.empty_state()));
    }

    #[test]
    fn triple_merge_matches_members() {
        let agg = (Count, Sum::<i64>::new(), Avg::<i64>::new());
        let mut a = agg.empty_state();
        agg.insert(&mut a, &((), 10, 10));
        let mut b = agg.empty_state();
        agg.insert(&mut b, &((), 20, 20));
        agg.merge(&mut a, &b);
        let (count, sum, avg) = agg.finish(&a);
        assert_eq!(count, 2);
        assert_eq!(sum, Some(30));
        assert_eq!(avg, Some(15.0));
    }

    #[test]
    fn multidyn_matches_separate_runs() {
        let members = vec![
            DynAggregate::new(AggKind::Count, ValueType::Int).unwrap(),
            DynAggregate::new(AggKind::Sum, ValueType::Int).unwrap(),
            DynAggregate::new(AggKind::Max, ValueType::Int).unwrap(),
        ];
        let multi = MultiDyn::new(members.clone());
        assert_eq!(multi.len(), 3);
        let inputs: Vec<Vec<Value>> = (1..=5)
            .map(|v| vec![Value::Int(v), Value::Int(v), Value::Int(v)])
            .collect();

        let mut state = multi.empty_state();
        for input in &inputs {
            multi.insert(&mut state, input);
        }
        let combined = multi.finish(&state);

        for (i, member) in members.iter().enumerate() {
            let mut s = member.empty_state();
            for input in &inputs {
                member.insert(&mut s, &input[i]);
            }
            assert_eq!(member.finish(&s), combined[i], "member {i}");
        }
    }

    #[test]
    fn multidyn_merge_is_member_wise() {
        let multi = MultiDyn::new(vec![
            DynAggregate::new(AggKind::Count, ValueType::Int).unwrap(),
            DynAggregate::new(AggKind::Min, ValueType::Int).unwrap(),
        ]);
        let mut a = multi.empty_state();
        multi.insert(&mut a, &vec![Value::Int(1), Value::Int(5)]);
        let mut b = multi.empty_state();
        multi.insert(&mut b, &vec![Value::Int(1), Value::Int(3)]);
        multi.merge(&mut a, &b);
        assert_eq!(multi.finish(&a), vec![Value::Int(2), Value::Int(3)]);
    }
}
