//! `VARIANCE` and `STDDEV` — extension aggregates beyond the paper's five.
//!
//! Included to demonstrate that any commutative-monoid aggregate slots into
//! the paper's algorithms unchanged. The state is the classic mergeable
//! `(count, mean, M2)` triple (Chan/Golub/LeVeque parallel variance), whose
//! `merge` is exactly what internal tree nodes need.

use crate::aggregate::{Aggregate, Numeric};
use std::marker::PhantomData;

/// Mergeable variance state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct VarianceState {
    pub count: u64,
    pub mean: f64,
    /// Sum of squared deviations from the mean.
    pub m2: f64,
}

/// Which variance estimator to report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VarianceKind {
    /// Divide by `n − 1` (SQL `VAR_SAMP`); `None` unless `n ≥ 2`.
    #[default]
    Sample,
    /// Divide by `n` (SQL `VAR_POP`); `None` unless `n ≥ 1`.
    Population,
}

/// Variance of a numeric attribute per constant interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Variance<T> {
    kind: VarianceKind,
    _marker: PhantomData<T>,
}

/// Standard deviation of a numeric attribute per constant interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StdDev<T> {
    inner: Variance<T>,
}

impl<T> Variance<T> {
    pub const fn new(kind: VarianceKind) -> Self {
        Variance {
            kind,
            _marker: PhantomData,
        }
    }

    pub const fn sample() -> Self {
        Self::new(VarianceKind::Sample)
    }

    pub const fn population() -> Self {
        Self::new(VarianceKind::Population)
    }
}

impl<T> StdDev<T> {
    pub const fn new(kind: VarianceKind) -> Self {
        StdDev {
            inner: Variance::new(kind),
        }
    }

    pub const fn sample() -> Self {
        Self::new(VarianceKind::Sample)
    }

    pub const fn population() -> Self {
        Self::new(VarianceKind::Population)
    }
}

fn variance_of(state: &VarianceState, kind: VarianceKind) -> Option<f64> {
    match kind {
        // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
        VarianceKind::Sample if state.count >= 2 => Some(state.m2 / (state.count - 1) as f64),
        // lint: allow(no-as-cast): same exact-divisor argument as the sample case
        VarianceKind::Population if state.count >= 1 => Some(state.m2 / state.count as f64),
        _ => None,
    }
}

impl<T: Numeric> Aggregate for Variance<T> {
    type Input = T;
    type State = VarianceState;
    type Output = Option<f64>;

    fn name(&self) -> &'static str {
        "VARIANCE"
    }

    fn empty_state(&self) -> VarianceState {
        VarianceState {
            count: 0,
            mean: 0.0,
            m2: 0.0,
        }
    }

    #[inline]
    fn insert(&self, state: &mut VarianceState, value: &T) {
        // Welford's online update.
        let x = value.to_f64();
        state.count += 1;
        let delta = x - state.mean;
        // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
        state.mean += delta / state.count as f64;
        state.m2 += delta * (x - state.mean);
    }

    #[inline]
    fn merge(&self, into: &mut VarianceState, from: &VarianceState) {
        if from.count == 0 {
            return;
        }
        if into.count == 0 {
            *into = *from;
            return;
        }
        // lint: allow(no-as-cast): Chan's parallel-merge formula runs on exact f64 images of small counts
        let n = (into.count + from.count) as f64;
        let delta = from.mean - into.mean;
        let m2 = into.m2
            + from.m2
            // lint: allow(no-as-cast): same exact-image argument as `n`
            + delta * delta * (into.count as f64 * from.count as f64) / n;
        // lint: allow(no-as-cast): same exact-image argument as `n`
        into.mean = (into.mean * into.count as f64 + from.mean * from.count as f64) / n;
        into.m2 = m2;
        into.count += from.count;
    }

    fn finish(&self, state: &VarianceState) -> Option<f64> {
        variance_of(state, self.kind)
    }

    fn is_empty_state(&self, state: &VarianceState) -> bool {
        state.count == 0
    }

    fn state_model_bytes(&self) -> usize {
        // Not in the paper; count + mean + M2 at the paper's 4-byte word
        // size.
        12
    }
}

impl<T: Numeric> Aggregate for StdDev<T> {
    type Input = T;
    type State = VarianceState;
    type Output = Option<f64>;

    fn name(&self) -> &'static str {
        "STDDEV"
    }

    fn empty_state(&self) -> VarianceState {
        self.inner.empty_state()
    }

    #[inline]
    fn insert(&self, state: &mut VarianceState, value: &T) {
        self.inner.insert(state, value);
    }

    #[inline]
    fn merge(&self, into: &mut VarianceState, from: &VarianceState) {
        self.inner.merge(into, from);
    }

    fn finish(&self, state: &VarianceState) -> Option<f64> {
        self.inner.finish(state).map(f64::sqrt)
    }

    fn is_empty_state(&self, state: &VarianceState) -> bool {
        state.count == 0
    }

    fn state_model_bytes(&self) -> usize {
        self.inner.state_model_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold(agg: &Variance<f64>, xs: &[f64]) -> VarianceState {
        let mut s = agg.empty_state();
        for x in xs {
            agg.insert(&mut s, x);
        }
        s
    }

    #[test]
    fn population_variance_matches_definition() {
        let agg: Variance<f64> = Variance::population();
        let s = fold(&agg, &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        let v = agg.finish(&s).unwrap();
        assert!((v - 4.0).abs() < 1e-12, "v = {v}");
    }

    #[test]
    fn sample_variance_needs_two_points() {
        let agg: Variance<f64> = Variance::sample();
        let one = fold(&agg, &[3.0]);
        assert_eq!(agg.finish(&one), None);
        let two = fold(&agg, &[3.0, 5.0]);
        assert!((agg.finish(&two).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential_insert() {
        let agg: Variance<f64> = Variance::population();
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let whole = fold(&agg, &xs);
        for split in 0..=xs.len() {
            let mut left = fold(&agg, &xs[..split]);
            let right = fold(&agg, &xs[split..]);
            agg.merge(&mut left, &right);
            assert_eq!(left.count, whole.count);
            assert!((left.mean - whole.mean).abs() < 1e-9);
            assert!((left.m2 - whole.m2).abs() < 1e-9);
        }
    }

    #[test]
    fn stddev_is_sqrt_of_variance() {
        let agg: StdDev<f64> = StdDev::population();
        let var: Variance<f64> = Variance::population();
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = agg.empty_state();
        for x in &xs {
            agg.insert(&mut s, x);
        }
        let sd = agg.finish(&s).unwrap();
        let v = var.finish(&s).unwrap();
        assert!((sd - v.sqrt()).abs() < 1e-12);
        assert_eq!(agg.name(), "STDDEV");
    }

    #[test]
    fn empty_state_behaviour() {
        let agg: Variance<i64> = Variance::sample();
        let e = agg.empty_state();
        assert!(agg.is_empty_state(&e));
        assert_eq!(agg.finish(&e), None);
        let mut a = e;
        agg.merge(&mut a, &e);
        assert!(agg.is_empty_state(&a));
    }
}
