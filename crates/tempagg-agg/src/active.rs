//! Retractable "active set" states for endpoint-sweep aggregation.
//!
//! The [`Aggregate`](crate::Aggregate) monoid deliberately has no inverse —
//! none of the paper's algorithms ever removes a tuple from a state. The
//! columnar endpoint sweep (Piatov et al., arXiv:2008.12665; Colley et al.,
//! arXiv:2211.05896) does: as the sweep line crosses a tuple's end, the
//! tuple must leave the running state. [`SweepAggregate`] is the capability
//! subtrait expressing that: a second state representation
//! ([`SweepAggregate::Active`]) that supports *removal*, maintained as a
//! running summary of the tuples currently overlapping the sweep line.
//!
//! Three cost/exactness classes arise ([`SweepClass`]):
//!
//! * **Delta** — invertible group aggregates (`COUNT`, integer `SUM`/`AVG`,
//!   booleans): O(1) per event, retraction reproduces insert-only results
//!   exactly.
//! * **Ordered** — selection aggregates (`MIN`/`MAX`) and `DISTINCT`: an
//!   ordered multiset, O(log a) per event for `a` concurrently-live tuples.
//! * **Approximate** — floating-point retraction (`f64` sums, `VARIANCE`
//!   via reverse-Welford) drifts; the planner keeps these off the sweep.

use crate::aggregate::{Aggregate, Numeric};
use crate::avg::{Avg, AvgState};
use crate::count::Count;
use crate::distinct::CountDistinct;
use crate::dynamic::{AggKind, DynAggregate};
use crate::logic::{BoolAnd, BoolOr};
use crate::min_max::{Max, Min};
use crate::multi::MultiDyn;
use crate::slot_extremes::SlotExtremes;
use crate::sum::Sum;
use crate::variance::{StdDev, Variance, VarianceState};
use std::collections::BTreeMap;
use tempagg_core::Value;

/// Cost/exactness class of an aggregate's sweep support, used by the
/// planner's cost model. Ordered so `max` picks the weakest member of a
/// product aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SweepClass {
    /// O(1) retraction, bit-exact against insert-only evaluation.
    Delta,
    /// O(log a) retraction through an ordered multiset; still exact.
    Ordered,
    /// Floating-point retraction; results can drift in the last ulps, so
    /// cost-based selection avoids the sweep for these.
    Approximate,
}

impl SweepClass {
    /// Whether an incremental cache may maintain this class by *patching*
    /// per-run active states through [`SweepAggregate::active_insert`] /
    /// [`SweepAggregate::active_remove`]: exact for [`Delta`] (O(1)
    /// deltas) and [`Ordered`] (ordered-multiset membership), but not for
    /// [`Approximate`], whose float retraction drifts — those caches must
    /// recompute the dirty window from the base tuples instead.
    ///
    /// [`Delta`]: SweepClass::Delta
    /// [`Ordered`]: SweepClass::Ordered
    /// [`Approximate`]: SweepClass::Approximate
    pub fn retractable(self) -> bool {
        !matches!(self, SweepClass::Approximate)
    }
}

/// An [`Aggregate`] that additionally supports a *retractable* running
/// state, enabling O(n log n) endpoint-sweep evaluation.
///
/// Laws (for any sequence of inserts/removes where every remove has a
/// matching earlier insert of the same value):
///
/// * `active_output(active_empty())` equals `finish(empty_state())`;
/// * after inserting exactly the multiset `M`, `active_output` equals
///   `finish` of a state built by inserting `M` — exactly for
///   [`SweepClass::Delta`]/[`SweepClass::Ordered`], up to float rounding
///   for [`SweepClass::Approximate`].
pub trait SweepAggregate: Aggregate {
    /// Running summary of the tuples overlapping the sweep line.
    type Active: Clone + std::fmt::Debug;

    /// The active state with no live tuples.
    fn active_empty(&self) -> Self::Active;

    /// A tuple's interval begins: fold its value in.
    fn active_insert(&self, active: &mut Self::Active, value: &Self::Input);

    /// A tuple's interval has ended: retract its value.
    fn active_remove(&self, active: &mut Self::Active, value: &Self::Input);

    /// The reported value for a constant interval under the sweep line.
    fn active_output(&self, active: &Self::Active) -> Self::Output;

    /// Cost/exactness class for planner selection.
    fn sweep_class(&self) -> SweepClass;

    /// Pre-size the active state for tuple slots `0..slots`, so the scan
    /// loop that follows never allocates. Default: no-op (the delta
    /// states are fixed-size scalars).
    fn active_reserve(&self, _active: &mut Self::Active, _slots: usize) {}

    /// [`active_insert`](Self::active_insert) with a stable *slot handle*
    /// (the sweep's tuple index, baked into its sorted event records).
    /// States that key their live set by slot — the gapless
    /// [`SlotExtremes`](crate::SlotExtremes) of `MIN`/`MAX` — override
    /// this for O(1) dense-array admits; everything else ignores the
    /// handle and folds the value.
    #[inline]
    fn active_insert_slot(&self, active: &mut Self::Active, _slot: usize, value: &Self::Input) {
        self.active_insert(active, value);
    }

    /// [`active_remove`](Self::active_remove) with the same slot handle
    /// the value was admitted under.
    #[inline]
    fn active_remove_slot(&self, active: &mut Self::Active, _slot: usize, value: &Self::Input) {
        self.active_remove(active, value);
    }
}

impl SweepAggregate for Count {
    type Active = u64;

    fn active_empty(&self) -> u64 {
        0
    }

    #[inline]
    fn active_insert(&self, active: &mut u64, _value: &()) {
        *active += 1;
    }

    #[inline]
    fn active_remove(&self, active: &mut u64, _value: &()) {
        *active = active.saturating_sub(1);
    }

    #[inline]
    fn active_output(&self, active: &u64) -> u64 {
        *active
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Delta
    }
}

impl<T: Numeric> SweepAggregate for Sum<T> {
    /// Running sum plus a live-tuple count so the state returns to the
    /// monoid identity (`None`) when the last tuple retracts.
    type Active = (T, u64);

    fn active_empty(&self) -> (T, u64) {
        (T::ZERO, 0)
    }

    #[inline]
    fn active_insert(&self, active: &mut (T, u64), value: &T) {
        active.0 = active.0.saturating_add(*value);
        active.1 += 1;
    }

    #[inline]
    fn active_remove(&self, active: &mut (T, u64), value: &T) {
        active.0 = active.0.saturating_sub(*value);
        active.1 = active.1.saturating_sub(1);
        if active.1 == 0 {
            active.0 = T::ZERO;
        }
    }

    #[inline]
    fn active_output(&self, active: &(T, u64)) -> Option<T> {
        (active.1 > 0).then_some(active.0)
    }

    fn sweep_class(&self) -> SweepClass {
        if T::EXACT_RETRACT {
            SweepClass::Delta
        } else {
            SweepClass::Approximate
        }
    }
}

impl<T: Numeric> SweepAggregate for Avg<T> {
    type Active = AvgState;

    fn active_empty(&self) -> AvgState {
        AvgState { sum: 0.0, count: 0 }
    }

    #[inline]
    fn active_insert(&self, active: &mut AvgState, value: &T) {
        active.sum += value.to_f64();
        active.count += 1;
    }

    #[inline]
    fn active_remove(&self, active: &mut AvgState, value: &T) {
        active.sum -= value.to_f64();
        active.count = active.count.saturating_sub(1);
        if active.count == 0 {
            active.sum = 0.0;
        }
    }

    #[inline]
    fn active_output(&self, active: &AvgState) -> Option<f64> {
        // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
        (active.count > 0).then(|| active.sum / active.count as f64)
    }

    fn sweep_class(&self) -> SweepClass {
        if T::EXACT_RETRACT {
            SweepClass::Delta
        } else {
            SweepClass::Approximate
        }
    }
}

/// Shared ordered-multiset plumbing for `MIN`/`MAX`/`DISTINCT` actives.
#[inline]
fn multiset_insert<T: Ord + Clone>(set: &mut BTreeMap<T, u64>, value: &T) {
    *set.entry(value.clone()).or_insert(0) += 1;
}

#[inline]
fn multiset_remove<T: Ord>(set: &mut BTreeMap<T, u64>, value: &T) {
    if let Some(mult) = set.get_mut(value) {
        *mult = mult.saturating_sub(1);
        if *mult == 0 {
            set.remove(value);
        }
    }
}

impl<T> SweepAggregate for Min<T>
where
    T: Ord + Clone + std::fmt::Debug + PartialEq + 'static,
{
    /// Gapless slot map with a cached minimum — O(1) admits/retracts by
    /// tuple slot, allocation-free after `active_reserve` (see
    /// [`SlotExtremes`]).
    type Active = SlotExtremes<T>;

    fn active_empty(&self) -> SlotExtremes<T> {
        SlotExtremes::new(false)
    }

    #[inline]
    fn active_insert(&self, active: &mut SlotExtremes<T>, value: &T) {
        active.insert_value(value);
    }

    #[inline]
    fn active_remove(&self, active: &mut SlotExtremes<T>, value: &T) {
        active.remove_value(value);
    }

    #[inline]
    fn active_output(&self, active: &SlotExtremes<T>) -> Option<T> {
        active.best().cloned()
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Ordered
    }

    fn active_reserve(&self, active: &mut SlotExtremes<T>, slots: usize) {
        active.reserve(slots);
    }

    #[inline]
    fn active_insert_slot(&self, active: &mut SlotExtremes<T>, slot: usize, value: &T) {
        active.insert_slot(slot, value);
    }

    #[inline]
    fn active_remove_slot(&self, active: &mut SlotExtremes<T>, slot: usize, _value: &T) {
        active.remove_slot(slot);
    }
}

impl<T> SweepAggregate for Max<T>
where
    T: Ord + Clone + std::fmt::Debug + PartialEq + 'static,
{
    /// Gapless slot map with a cached maximum (see [`SlotExtremes`]).
    type Active = SlotExtremes<T>;

    fn active_empty(&self) -> SlotExtremes<T> {
        SlotExtremes::new(true)
    }

    #[inline]
    fn active_insert(&self, active: &mut SlotExtremes<T>, value: &T) {
        active.insert_value(value);
    }

    #[inline]
    fn active_remove(&self, active: &mut SlotExtremes<T>, value: &T) {
        active.remove_value(value);
    }

    #[inline]
    fn active_output(&self, active: &SlotExtremes<T>) -> Option<T> {
        active.best().cloned()
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Ordered
    }

    fn active_reserve(&self, active: &mut SlotExtremes<T>, slots: usize) {
        active.reserve(slots);
    }

    #[inline]
    fn active_insert_slot(&self, active: &mut SlotExtremes<T>, slot: usize, value: &T) {
        active.insert_slot(slot, value);
    }

    #[inline]
    fn active_remove_slot(&self, active: &mut SlotExtremes<T>, slot: usize, _value: &T) {
        active.remove_slot(slot);
    }
}

impl<T> SweepAggregate for CountDistinct<T>
where
    T: Ord + Clone + std::fmt::Debug + 'static,
{
    type Active = BTreeMap<T, u64>;

    fn active_empty(&self) -> BTreeMap<T, u64> {
        BTreeMap::new()
    }

    #[inline]
    fn active_insert(&self, active: &mut BTreeMap<T, u64>, value: &T) {
        multiset_insert(active, value);
    }

    #[inline]
    fn active_remove(&self, active: &mut BTreeMap<T, u64>, value: &T) {
        multiset_remove(active, value);
    }

    #[inline]
    fn active_output(&self, active: &BTreeMap<T, u64>) -> u64 {
        u64::try_from(active.len()).unwrap_or(u64::MAX)
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Ordered
    }
}

/// Counters of live `true`/`false` tuples — the retractable form of the
/// boolean aggregates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolCounts {
    pub trues: u64,
    pub falses: u64,
}

impl BoolCounts {
    #[inline]
    fn insert(&mut self, value: bool) {
        if value {
            self.trues += 1;
        } else {
            self.falses += 1;
        }
    }

    #[inline]
    fn remove(&mut self, value: bool) {
        if value {
            self.trues = self.trues.saturating_sub(1);
        } else {
            self.falses = self.falses.saturating_sub(1);
        }
    }

    #[inline]
    fn is_empty(&self) -> bool {
        self.trues == 0 && self.falses == 0
    }
}

impl SweepAggregate for BoolAnd {
    type Active = BoolCounts;

    fn active_empty(&self) -> BoolCounts {
        BoolCounts::default()
    }

    #[inline]
    fn active_insert(&self, active: &mut BoolCounts, value: &bool) {
        active.insert(*value);
    }

    #[inline]
    fn active_remove(&self, active: &mut BoolCounts, value: &bool) {
        active.remove(*value);
    }

    #[inline]
    fn active_output(&self, active: &BoolCounts) -> Option<bool> {
        (!active.is_empty()).then_some(active.falses == 0)
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Delta
    }
}

impl SweepAggregate for BoolOr {
    type Active = BoolCounts;

    fn active_empty(&self) -> BoolCounts {
        BoolCounts::default()
    }

    #[inline]
    fn active_insert(&self, active: &mut BoolCounts, value: &bool) {
        active.insert(*value);
    }

    #[inline]
    fn active_remove(&self, active: &mut BoolCounts, value: &bool) {
        active.remove(*value);
    }

    #[inline]
    fn active_output(&self, active: &BoolCounts) -> Option<bool> {
        (!active.is_empty()).then_some(active.trues > 0)
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Delta
    }
}

/// Reverse-Welford retraction: undo one `insert` of `x`. Approximate —
/// floating-point residue accumulates, which is why `VARIANCE`/`STDDEV`
/// report [`SweepClass::Approximate`].
fn variance_remove(state: &mut VarianceState, x: f64) {
    if state.count <= 1 {
        *state = VarianceState {
            count: 0,
            mean: 0.0,
            m2: 0.0,
        };
        return;
    }
    let n = state.count;
    // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 images are exact
    let (nf, n1f) = (n as f64, (n - 1) as f64);
    let mean_prev = (state.mean * nf - x) / n1f;
    state.m2 -= (x - mean_prev) * (x - state.mean);
    if state.m2 < 0.0 {
        state.m2 = 0.0;
    }
    state.mean = mean_prev;
    state.count = n - 1;
}

impl<T: Numeric> SweepAggregate for Variance<T> {
    type Active = VarianceState;

    fn active_empty(&self) -> VarianceState {
        self.empty_state()
    }

    #[inline]
    fn active_insert(&self, active: &mut VarianceState, value: &T) {
        self.insert(active, value);
    }

    #[inline]
    fn active_remove(&self, active: &mut VarianceState, value: &T) {
        variance_remove(active, value.to_f64());
    }

    #[inline]
    fn active_output(&self, active: &VarianceState) -> Option<f64> {
        self.finish(active)
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Approximate
    }
}

impl<T: Numeric> SweepAggregate for StdDev<T> {
    type Active = VarianceState;

    fn active_empty(&self) -> VarianceState {
        self.empty_state()
    }

    #[inline]
    fn active_insert(&self, active: &mut VarianceState, value: &T) {
        Variance::<T>::sample().insert(active, value);
    }

    #[inline]
    fn active_remove(&self, active: &mut VarianceState, value: &T) {
        variance_remove(active, value.to_f64());
    }

    #[inline]
    fn active_output(&self, active: &VarianceState) -> Option<f64> {
        self.finish(active)
    }

    fn sweep_class(&self) -> SweepClass {
        SweepClass::Approximate
    }
}

impl<A: SweepAggregate, B: SweepAggregate> SweepAggregate for (A, B) {
    type Active = (A::Active, B::Active);

    fn active_empty(&self) -> Self::Active {
        (self.0.active_empty(), self.1.active_empty())
    }

    #[inline]
    fn active_insert(&self, active: &mut Self::Active, value: &Self::Input) {
        self.0.active_insert(&mut active.0, &value.0);
        self.1.active_insert(&mut active.1, &value.1);
    }

    #[inline]
    fn active_remove(&self, active: &mut Self::Active, value: &Self::Input) {
        self.0.active_remove(&mut active.0, &value.0);
        self.1.active_remove(&mut active.1, &value.1);
    }

    fn active_output(&self, active: &Self::Active) -> Self::Output {
        (
            self.0.active_output(&active.0),
            self.1.active_output(&active.1),
        )
    }

    fn sweep_class(&self) -> SweepClass {
        self.0.sweep_class().max(self.1.sweep_class())
    }
}

impl<A: SweepAggregate, B: SweepAggregate, C: SweepAggregate> SweepAggregate for (A, B, C) {
    type Active = (A::Active, B::Active, C::Active);

    fn active_empty(&self) -> Self::Active {
        (
            self.0.active_empty(),
            self.1.active_empty(),
            self.2.active_empty(),
        )
    }

    #[inline]
    fn active_insert(&self, active: &mut Self::Active, value: &Self::Input) {
        self.0.active_insert(&mut active.0, &value.0);
        self.1.active_insert(&mut active.1, &value.1);
        self.2.active_insert(&mut active.2, &value.2);
    }

    #[inline]
    fn active_remove(&self, active: &mut Self::Active, value: &Self::Input) {
        self.0.active_remove(&mut active.0, &value.0);
        self.1.active_remove(&mut active.1, &value.1);
        self.2.active_remove(&mut active.2, &value.2);
    }

    fn active_output(&self, active: &Self::Active) -> Self::Output {
        (
            self.0.active_output(&active.0),
            self.1.active_output(&active.1),
            self.2.active_output(&active.2),
        )
    }

    fn sweep_class(&self) -> SweepClass {
        self.0
            .sweep_class()
            .max(self.1.sweep_class())
            .max(self.2.sweep_class())
    }
}

/// Retractable running state of one [`DynAggregate`].
#[derive(Clone, Debug, PartialEq)]
pub enum DynActive {
    Count(u64),
    Distinct(BTreeMap<Value, u64>),
    SumInt { sum: i64, count: u64 },
    SumFloat { sum: f64, count: u64 },
    Min(BTreeMap<Value, u64>),
    Max(BTreeMap<Value, u64>),
    Avg(AvgState),
    Var(VarianceState),
}

impl DynAggregate {
    /// The sweep class of this aggregate given its kind and column type.
    pub fn sweep_class_of(&self) -> SweepClass {
        match self.kind() {
            AggKind::CountStar | AggKind::Count => SweepClass::Delta,
            AggKind::CountDistinct | AggKind::Min | AggKind::Max => SweepClass::Ordered,
            AggKind::Sum | AggKind::Avg => {
                if self.input_type() == tempagg_core::ValueType::Int {
                    SweepClass::Delta
                } else {
                    SweepClass::Approximate
                }
            }
            AggKind::Variance | AggKind::StdDev => SweepClass::Approximate,
        }
    }
}

impl SweepAggregate for DynAggregate {
    type Active = DynActive;

    fn active_empty(&self) -> DynActive {
        match self.kind() {
            AggKind::CountStar | AggKind::Count => DynActive::Count(0),
            AggKind::CountDistinct => DynActive::Distinct(BTreeMap::new()),
            AggKind::Sum => match self.input_type() {
                tempagg_core::ValueType::Int => DynActive::SumInt { sum: 0, count: 0 },
                _ => DynActive::SumFloat { sum: 0.0, count: 0 },
            },
            AggKind::Min => DynActive::Min(BTreeMap::new()),
            AggKind::Max => DynActive::Max(BTreeMap::new()),
            AggKind::Avg => DynActive::Avg(AvgState { sum: 0.0, count: 0 }),
            AggKind::Variance | AggKind::StdDev => DynActive::Var(VarianceState {
                count: 0,
                mean: 0.0,
                m2: 0.0,
            }),
        }
    }

    fn active_insert(&self, active: &mut DynActive, value: &Value) {
        if value.is_null() && self.kind() != AggKind::CountStar {
            return;
        }
        match active {
            DynActive::Count(c) => *c += 1,
            DynActive::Distinct(set) | DynActive::Min(set) | DynActive::Max(set) => {
                multiset_insert(set, value);
            }
            DynActive::SumInt { sum, count } => {
                if let Some(v) = value.as_i64() {
                    *sum = sum.saturating_add(v);
                    *count += 1;
                }
            }
            DynActive::SumFloat { sum, count } => {
                if let Some(v) = value.as_f64() {
                    *sum += v;
                    *count += 1;
                }
            }
            DynActive::Avg(a) => {
                if let Some(v) = value.as_f64() {
                    a.sum += v;
                    a.count += 1;
                }
            }
            DynActive::Var(s) => {
                if let Some(v) = value.as_f64() {
                    let var: Variance<f64> = Variance::sample();
                    var.insert(s, &v);
                }
            }
        }
    }

    fn active_remove(&self, active: &mut DynActive, value: &Value) {
        if value.is_null() && self.kind() != AggKind::CountStar {
            return;
        }
        match active {
            DynActive::Count(c) => *c = c.saturating_sub(1),
            DynActive::Distinct(set) | DynActive::Min(set) | DynActive::Max(set) => {
                multiset_remove(set, value);
            }
            DynActive::SumInt { sum, count } => {
                if let Some(v) = value.as_i64() {
                    *sum = sum.saturating_sub(v);
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        *sum = 0;
                    }
                }
            }
            DynActive::SumFloat { sum, count } => {
                if let Some(v) = value.as_f64() {
                    *sum -= v;
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        *sum = 0.0;
                    }
                }
            }
            DynActive::Avg(a) => {
                if let Some(v) = value.as_f64() {
                    a.sum -= v;
                    a.count = a.count.saturating_sub(1);
                    if a.count == 0 {
                        a.sum = 0.0;
                    }
                }
            }
            DynActive::Var(s) => {
                if let Some(v) = value.as_f64() {
                    variance_remove(s, v);
                }
            }
        }
    }

    fn active_output(&self, active: &DynActive) -> Value {
        match active {
            DynActive::Count(c) => Value::Int(i64::try_from(*c).unwrap_or(i64::MAX)),
            DynActive::Distinct(set) => Value::Int(i64::try_from(set.len()).unwrap_or(i64::MAX)),
            DynActive::SumInt { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Int(*sum)
                }
            }
            DynActive::SumFloat { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Float(*sum)
                }
            }
            DynActive::Min(set) => set.keys().next().cloned().unwrap_or(Value::Null),
            DynActive::Max(set) => set.keys().next_back().cloned().unwrap_or(Value::Null),
            DynActive::Avg(a) => {
                if a.count == 0 {
                    Value::Null
                } else {
                    // lint: allow(no-as-cast): tuple counts are far below 2^53, so the u64 → f64 divisor is exact
                    Value::Float(a.sum / a.count as f64)
                }
            }
            DynActive::Var(s) => {
                let var: Variance<f64> = Variance::sample();
                match var.finish(s) {
                    Some(x) if self.kind() == AggKind::StdDev => Value::Float(x.sqrt()),
                    Some(x) => Value::Float(x),
                    None => Value::Null,
                }
            }
        }
    }

    fn sweep_class(&self) -> SweepClass {
        self.sweep_class_of()
    }
}

impl SweepAggregate for MultiDyn {
    type Active = Vec<DynActive>;

    fn active_empty(&self) -> Vec<DynActive> {
        self.members()
            .iter()
            .map(DynAggregate::active_empty)
            .collect()
    }

    #[inline]
    fn active_insert(&self, active: &mut Vec<DynActive>, value: &Vec<Value>) {
        debug_assert_eq!(active.len(), value.len());
        for ((member, a), v) in self.members().iter().zip(active).zip(value) {
            member.active_insert(a, v);
        }
    }

    #[inline]
    fn active_remove(&self, active: &mut Vec<DynActive>, value: &Vec<Value>) {
        debug_assert_eq!(active.len(), value.len());
        for ((member, a), v) in self.members().iter().zip(active).zip(value) {
            member.active_remove(a, v);
        }
    }

    fn active_output(&self, active: &Vec<DynActive>) -> Vec<Value> {
        self.members()
            .iter()
            .zip(active)
            .map(|(m, a)| m.active_output(a))
            .collect()
    }

    /// The weakest class among members: one approximate member keeps the
    /// whole product off the sweep.
    fn sweep_class(&self) -> SweepClass {
        self.members()
            .iter()
            .map(DynAggregate::sweep_class_of)
            .max()
            .unwrap_or(SweepClass::Delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tempagg_core::ValueType;

    /// Replay `ops` (insert = true) against both the active state and a
    /// from-scratch recomputation of the live multiset; outputs must agree.
    fn check_against_recompute<A>(agg: &A, values: &[A::Input], removals: &[usize])
    where
        A: SweepAggregate,
        A::Input: Clone,
        A::Output: PartialEq + std::fmt::Debug,
    {
        let mut active = agg.active_empty();
        for v in values {
            agg.active_insert(&mut active, v);
        }
        let mut live: Vec<A::Input> = values.to_vec();
        let mut removed: Vec<usize> = removals.to_vec();
        removed.sort_unstable();
        for &i in removed.iter().rev() {
            agg.active_remove(&mut active, &live[i]);
            live.remove(i);
        }
        let mut state = agg.empty_state();
        for v in &live {
            agg.insert(&mut state, v);
        }
        assert_eq!(agg.active_output(&active), agg.finish(&state));
    }

    #[test]
    fn count_retracts_exactly() {
        check_against_recompute(&Count, &[(), (), (), ()], &[0, 2]);
        check_against_recompute(&Count, &[], &[]);
        assert_eq!(Count.sweep_class(), SweepClass::Delta);
    }

    #[test]
    fn sum_retracts_to_null_when_empty() {
        let agg: Sum<i64> = Sum::new();
        check_against_recompute(&agg, &[5, -3, 10], &[1]);
        check_against_recompute(&agg, &[5, -3], &[0, 1]);
        assert_eq!(agg.sweep_class(), SweepClass::Delta);
        let fagg: Sum<f64> = Sum::new();
        assert_eq!(fagg.sweep_class(), SweepClass::Approximate);
    }

    #[test]
    fn min_max_multiset_handles_duplicates() {
        let min: Min<i64> = Min::new();
        // Two copies of the minimum: removing one must keep it.
        check_against_recompute(&min, &[2, 2, 7], &[0]);
        check_against_recompute(&min, &[2, 2, 7], &[0, 1]);
        let max: Max<i64> = Max::new();
        check_against_recompute(&max, &[9, 9, 1], &[0]);
        assert_eq!(min.sweep_class(), SweepClass::Ordered);
    }

    #[test]
    fn avg_retracts_exactly_on_integers() {
        let agg: Avg<i64> = Avg::new();
        check_against_recompute(&agg, &[10, 20, 30], &[2]);
        check_against_recompute(&agg, &[10, 20], &[0, 1]);
        assert_eq!(agg.sweep_class(), SweepClass::Delta);
    }

    #[test]
    fn distinct_counts_live_values() {
        let agg: CountDistinct<i64> = CountDistinct::new();
        check_against_recompute(&agg, &[1, 1, 2, 3], &[0]);
        check_against_recompute(&agg, &[1, 1, 2, 3], &[0, 1]);
    }

    #[test]
    fn bools_track_counters() {
        check_against_recompute(&BoolAnd, &[true, false, true], &[1]);
        check_against_recompute(&BoolOr, &[false, true], &[1]);
        check_against_recompute(&BoolAnd, &[true], &[0]);
    }

    #[test]
    fn variance_retraction_is_close() {
        let agg: Variance<f64> = Variance::sample();
        let mut active = agg.active_empty();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            agg.active_insert(&mut active, &x);
        }
        agg.active_remove(&mut active, &9.0);
        agg.active_remove(&mut active, &2.0);
        let mut state = agg.empty_state();
        for x in [4.0, 4.0, 4.0, 5.0, 5.0, 7.0] {
            agg.insert(&mut state, &x);
        }
        let (got, want) = (
            agg.active_output(&active).unwrap(),
            agg.finish(&state).unwrap(),
        );
        assert!((got - want).abs() < 1e-9, "got {got}, want {want}");
        assert_eq!(agg.sweep_class(), SweepClass::Approximate);
    }

    #[test]
    fn tuple_products_sweep_member_wise() {
        let agg = (Count, Sum::<i64>::new());
        check_against_recompute(&agg, &[((), 4), ((), 6)], &[0]);
        assert_eq!(agg.sweep_class(), SweepClass::Delta);
        let trio = (Count, Min::<i64>::new(), Avg::<f64>::new());
        assert_eq!(trio.sweep_class(), SweepClass::Approximate);
    }

    #[test]
    fn dyn_aggregate_skips_nulls_symmetrically() {
        let agg = DynAggregate::new(AggKind::Sum, ValueType::Int).unwrap();
        let mut active = agg.active_empty();
        agg.active_insert(&mut active, &Value::Int(5));
        agg.active_insert(&mut active, &Value::Null);
        agg.active_remove(&mut active, &Value::Null);
        assert_eq!(agg.active_output(&active), Value::Int(5));
        agg.active_remove(&mut active, &Value::Int(5));
        assert_eq!(agg.active_output(&active), Value::Null);
    }

    #[test]
    fn dyn_classes() {
        let class = |kind, ty| DynAggregate::new(kind, ty).unwrap().sweep_class_of();
        assert_eq!(class(AggKind::Count, ValueType::Int), SweepClass::Delta);
        assert_eq!(class(AggKind::Sum, ValueType::Int), SweepClass::Delta);
        assert_eq!(
            class(AggKind::Sum, ValueType::Float),
            SweepClass::Approximate
        );
        assert_eq!(class(AggKind::Min, ValueType::Str), SweepClass::Ordered);
        assert_eq!(
            class(AggKind::StdDev, ValueType::Float),
            SweepClass::Approximate
        );
    }

    #[test]
    fn multidyn_sweeps_all_members() {
        let multi = MultiDyn::new(vec![
            DynAggregate::new(AggKind::Count, ValueType::Int).unwrap(),
            DynAggregate::new(AggKind::Max, ValueType::Int).unwrap(),
        ]);
        let mut active = multi.active_empty();
        multi.active_insert(&mut active, &vec![Value::Int(1), Value::Int(5)]);
        multi.active_insert(&mut active, &vec![Value::Int(1), Value::Int(9)]);
        multi.active_remove(&mut active, &vec![Value::Int(1), Value::Int(9)]);
        assert_eq!(
            multi.active_output(&active),
            vec![Value::Int(1), Value::Int(5)]
        );
        assert_eq!(multi.sweep_class(), SweepClass::Ordered);
    }
}
