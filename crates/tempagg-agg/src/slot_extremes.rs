//! A gapless-slot active state for the `Ordered`-class extremum
//! aggregates (`MIN`/`MAX`).
//!
//! The original sweep kept a `BTreeMap<T, u64>` multiset: every admit and
//! retract pays a pointer-chasing tree descent, and the scan's memory
//! traffic is dominated by cold node lines. [`SlotExtremes`] follows
//! Piatov et al. (arXiv:2008.12665) instead: the live values sit in a
//! dense [`GaplessSlots`] array addressed by the tuple index the sweep
//! bakes into its event records, so admits and retracts are O(1) array
//! writes with **no allocation** after
//! [`SweepAggregate::active_reserve`](crate::SweepAggregate::active_reserve).
//! The current extremum is cached as `(value, live copies)`; only when
//! the *last* live copy of the extremum retracts does a flat rescan of
//! the dense array run — a sequential sweep the prefetcher hides, though
//! an adversarial strictly-monotone teardown costs O(a) per retract
//! (worst case O(n·a) overall, vs. the multiset's uniform O(log a); on
//! real workloads the rescans are rare and cheap).
//!
//! The value-based [`insert_value`](SlotExtremes::insert_value) /
//! [`remove_value`](SlotExtremes::remove_value) pair serves callers that
//! have no stable tuple index (the incremental store cache patches by
//! value); a value removal linearly scans the dense array for one
//! matching copy. Do not mix anonymous value inserts with caller-chosen
//! slots in one state — anonymous inserts claim fresh slots above
//! everything reserved so far.

use std::fmt;
use tempagg_core::GaplessSlots;

/// Dense slot-map active state with a cached extremum.
#[derive(Clone)]
pub struct SlotExtremes<T> {
    slots: GaplessSlots<T>,
    /// `true` tracks the maximum, `false` the minimum.
    max: bool,
    /// The current extremum and how many live copies of it exist; `None`
    /// when no tuple is live.
    best: Option<(T, u64)>,
}

impl<T: Ord + Clone> SlotExtremes<T> {
    /// An empty state tracking the minimum (`max = false`) or maximum.
    pub fn new(max: bool) -> Self {
        SlotExtremes {
            slots: GaplessSlots::new(),
            max,
            best: None,
        }
    }

    /// Pre-size for slots `0..slots` so the scan never allocates.
    pub fn reserve(&mut self, slots: usize) {
        self.slots.reserve_slots(slots);
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no value is live.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The current extremum, if any value is live.
    pub fn best(&self) -> Option<&T> {
        self.best.as_ref().map(|(v, _)| v)
    }

    /// Is `candidate` at least as extreme as `incumbent`?
    #[inline]
    fn no_worse(&self, candidate: &T, incumbent: &T) -> bool {
        if self.max {
            candidate >= incumbent
        } else {
            candidate <= incumbent
        }
    }

    #[inline]
    fn note_inserted(&mut self, value: &T) {
        match &mut self.best {
            Some((incumbent, copies)) => {
                if value == incumbent {
                    *copies += 1;
                } else if self.max && value > incumbent || !self.max && value < incumbent {
                    self.best = Some((value.clone(), 1));
                }
            }
            None => self.best = Some((value.clone(), 1)),
        }
    }

    /// Rescan the dense array for the new extremum — only runs when the
    /// last live copy of the old extremum retracted.
    fn rescan(&mut self) {
        let mut best: Option<(T, u64)> = None;
        for v in self.slots.values() {
            match &mut best {
                Some((incumbent, copies)) => {
                    if v == incumbent {
                        *copies += 1;
                    } else if self.no_worse(v, incumbent) {
                        best = Some((v.clone(), 1));
                    }
                }
                None => best = Some((v.clone(), 1)),
            }
        }
        self.best = best;
    }

    #[inline]
    fn note_removed(&mut self, value: &T) {
        if let Some((incumbent, copies)) = &mut self.best {
            if value == incumbent {
                *copies -= 1;
                if *copies == 0 {
                    self.rescan();
                }
            }
        }
    }

    /// Make `slot` live with `value` (the sweep's admit path).
    pub fn insert_slot(&mut self, slot: usize, value: &T) {
        self.slots.insert(slot, value.clone());
        self.note_inserted(value);
    }

    /// Retract `slot`'s value (the sweep's retract path). Unknown slots
    /// are ignored.
    pub fn remove_slot(&mut self, slot: usize) {
        if let Some(gone) = self.slots.remove(slot) {
            self.note_removed(&gone);
        }
    }

    /// Insert a copy of `value` without a caller-chosen slot: a fresh
    /// slot above everything live or reserved is claimed for it.
    pub fn insert_value(&mut self, value: &T) {
        let slot = self.slots.slot_capacity();
        self.insert_slot(slot, value);
    }

    /// Remove one live copy of `value`, if any exists (multiset
    /// semantics: absent values are a no-op). Linear in the live count.
    pub fn remove_value(&mut self, value: &T) {
        let found = self.slots.iter().find(|(_, v)| *v == value).map(|(s, _)| s);
        if let Some(slot) = found {
            self.remove_slot(slot);
        }
    }
}

impl<T: Ord + Clone + fmt::Debug> fmt::Debug for SlotExtremes<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SlotExtremes")
            .field("max", &self.max)
            .field("live", &self.slots)
            .field("best", &self.best)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_minimum_through_slot_churn() {
        let mut s: SlotExtremes<i64> = SlotExtremes::new(false);
        s.reserve(4);
        s.insert_slot(0, &5);
        s.insert_slot(1, &3);
        s.insert_slot(2, &9);
        assert_eq!(s.best(), Some(&3));
        s.remove_slot(1);
        assert_eq!(s.best(), Some(&5));
        s.remove_slot(0);
        assert_eq!(s.best(), Some(&9));
        s.remove_slot(2);
        assert_eq!(s.best(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn duplicate_extrema_survive_single_removal() {
        let mut s: SlotExtremes<i64> = SlotExtremes::new(true);
        s.insert_slot(0, &7);
        s.insert_slot(1, &7);
        s.insert_slot(2, &2);
        s.remove_slot(0);
        assert_eq!(s.best(), Some(&7), "second copy of the max is still live");
        s.remove_slot(1);
        assert_eq!(s.best(), Some(&2));
    }

    #[test]
    fn value_api_behaves_like_a_multiset() {
        let mut s: SlotExtremes<i64> = SlotExtremes::new(false);
        s.insert_value(&4);
        s.insert_value(&4);
        s.insert_value(&8);
        s.remove_value(&4);
        assert_eq!(s.best(), Some(&4));
        s.remove_value(&4);
        assert_eq!(s.best(), Some(&8));
        // Removing an absent value is a no-op.
        s.remove_value(&100);
        assert_eq!(s.best(), Some(&8));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unknown_slot_removal_is_ignored() {
        let mut s: SlotExtremes<i64> = SlotExtremes::new(true);
        s.insert_slot(3, &1);
        s.remove_slot(99);
        s.remove_slot(3);
        s.remove_slot(3);
        assert_eq!(s.best(), None);
    }
}
