//! `SUM` over a numeric attribute.

use crate::aggregate::{Aggregate, Numeric};
use std::marker::PhantomData;

/// Sums a numeric attribute over the tuples overlapping each constant
/// interval. An empty interval reports `None` (SQL `NULL`), matching the
/// paper's "4 bytes, plus an additional bit to mark an empty value".
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sum<T>(PhantomData<T>);

impl<T> Sum<T> {
    pub const fn new() -> Self {
        Sum(PhantomData)
    }
}

impl<T: Numeric> Aggregate for Sum<T> {
    type Input = T;
    type State = Option<T>;
    type Output = Option<T>;

    fn name(&self) -> &'static str {
        "SUM"
    }

    #[inline]
    fn empty_state(&self) -> Option<T> {
        None
    }

    #[inline]
    fn insert(&self, state: &mut Option<T>, value: &T) {
        *state = Some(state.unwrap_or(T::ZERO).saturating_add(*value));
    }

    #[inline]
    fn merge(&self, into: &mut Option<T>, from: &Option<T>) {
        if let Some(f) = from {
            *into = Some(into.unwrap_or(T::ZERO).saturating_add(*f));
        }
    }

    #[inline]
    fn finish(&self, state: &Option<T>) -> Option<T> {
        *state
    }

    #[inline]
    fn is_empty_state(&self, state: &Option<T>) -> bool {
        state.is_none()
    }

    fn state_model_bytes(&self) -> usize {
        // "Sum, maximum, and minimum all use 4 bytes, plus an additional
        // bit to mark an empty value." We model the bit as part of the word.
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_values() {
        let agg: Sum<i64> = Sum::new();
        let mut s = agg.empty_state();
        assert!(agg.is_empty_state(&s));
        agg.insert(&mut s, &40_000);
        agg.insert(&mut s, &45_000);
        assert_eq!(agg.finish(&s), Some(85_000));
    }

    #[test]
    fn empty_sum_is_null() {
        let agg: Sum<i64> = Sum::new();
        assert_eq!(agg.finish(&agg.empty_state()), None);
    }

    #[test]
    fn merge_handles_empty_sides() {
        let agg: Sum<i64> = Sum::new();
        let mut a = Some(10);
        agg.merge(&mut a, &None);
        assert_eq!(a, Some(10));
        let mut b: Option<i64> = None;
        agg.merge(&mut b, &Some(7));
        assert_eq!(b, Some(7));
        let mut c = Some(1);
        agg.merge(&mut c, &Some(2));
        assert_eq!(c, Some(3));
    }

    #[test]
    fn float_sums() {
        let agg: Sum<f64> = Sum::new();
        let mut s = agg.empty_state();
        agg.insert(&mut s, &1.5);
        agg.insert(&mut s, &2.25);
        assert_eq!(agg.finish(&s), Some(3.75));
    }

    #[test]
    fn saturation_instead_of_overflow() {
        let agg: Sum<i64> = Sum::new();
        let mut s = Some(i64::MAX);
        agg.insert(&mut s, &1);
        assert_eq!(s, Some(i64::MAX));
    }
}
