//! `COUNT(DISTINCT …)` as a mergeable aggregate.
//!
//! The paper defers duplicate handling ("We did not consider duplicate
//! elimination … Our choices depend on the number of tuples in each
//! interval", Section 7). A set-valued partial state makes the aggregate
//! itself duplicate-aware: `merge` is set union, so the tree algorithms
//! work unchanged. The trade-off the paper anticipates is explicit here —
//! state size grows with the number of distinct values per node, unlike
//! the 4-byte states of the basic aggregates — and
//! [`Aggregate::state_model_bytes`] reports a per-element estimate.

use crate::aggregate::Aggregate;
use std::collections::BTreeSet;
use std::marker::PhantomData;

/// Counts distinct values among the tuples overlapping each constant
/// interval.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountDistinct<T>(PhantomData<T>);

impl<T> CountDistinct<T> {
    pub const fn new() -> Self {
        CountDistinct(PhantomData)
    }
}

impl<T> Aggregate for CountDistinct<T>
where
    T: Ord + Clone + std::fmt::Debug + 'static,
{
    type Input = T;
    type State = BTreeSet<T>;
    type Output = u64;

    fn name(&self) -> &'static str {
        "COUNT DISTINCT"
    }

    fn empty_state(&self) -> BTreeSet<T> {
        BTreeSet::new()
    }

    #[inline]
    fn insert(&self, state: &mut BTreeSet<T>, value: &T) {
        state.insert(value.clone());
    }

    fn merge(&self, into: &mut BTreeSet<T>, from: &BTreeSet<T>) {
        into.extend(from.iter().cloned());
    }

    fn finish(&self, state: &BTreeSet<T>) -> u64 {
        // lint: allow(no-as-cast): usize → u64 is lossless on every supported target
        state.len() as u64
    }

    fn is_empty_state(&self, state: &BTreeSet<T>) -> bool {
        state.is_empty()
    }

    fn state_model_bytes(&self) -> usize {
        // Unlike the constant-size states, distinct-counting state grows
        // per element; charge one word per expected element as a planning
        // estimate.
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_distinct_values() {
        let agg: CountDistinct<i64> = CountDistinct::new();
        let mut s = agg.empty_state();
        for v in [1, 2, 2, 3, 1] {
            agg.insert(&mut s, &v);
        }
        assert_eq!(agg.finish(&s), 3);
        assert!(!agg.is_empty_state(&s));
    }

    #[test]
    fn merge_is_set_union() {
        let agg: CountDistinct<&str> = CountDistinct::new();
        let mut a = agg.empty_state();
        agg.insert(&mut a, &"x");
        agg.insert(&mut a, &"y");
        let mut b = agg.empty_state();
        agg.insert(&mut b, &"y");
        agg.insert(&mut b, &"z");
        agg.merge(&mut a, &b);
        assert_eq!(agg.finish(&a), 3);
    }

    #[test]
    fn merge_is_idempotent() {
        // Union-based merge tolerates the same value arriving via several
        // paths — the property that makes DISTINCT safe in the tree.
        let agg: CountDistinct<i64> = CountDistinct::new();
        let mut a = agg.empty_state();
        agg.insert(&mut a, &7);
        let b = a.clone();
        agg.merge(&mut a, &b);
        assert_eq!(agg.finish(&a), 1);
    }

    #[test]
    fn empty_state() {
        let agg: CountDistinct<i64> = CountDistinct::new();
        assert_eq!(agg.finish(&agg.empty_state()), 0);
        assert!(agg.is_empty_state(&agg.empty_state()));
    }
}
