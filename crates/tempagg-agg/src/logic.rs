//! Boolean aggregates: `BOOL_AND` (every) and `BOOL_OR` (any).
//!
//! Useful temporal questions — "was every sensor healthy at each moment?",
//! "was *any* alarm active?" — and trivially monoidal, so they slot into
//! all the paper's algorithms.

use crate::aggregate::Aggregate;

/// `true` over a constant interval iff **every** overlapping tuple's value
/// is true; `None` where no tuple overlaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolAnd;

/// `true` over a constant interval iff **any** overlapping tuple's value
/// is true; `None` where no tuple overlaps.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoolOr;

impl Aggregate for BoolAnd {
    type Input = bool;
    type State = Option<bool>;
    type Output = Option<bool>;

    fn name(&self) -> &'static str {
        "BOOL_AND"
    }

    fn empty_state(&self) -> Option<bool> {
        None
    }

    #[inline]
    fn insert(&self, state: &mut Option<bool>, value: &bool) {
        *state = Some(state.unwrap_or(true) && *value);
    }

    #[inline]
    fn merge(&self, into: &mut Option<bool>, from: &Option<bool>) {
        if let Some(v) = from {
            self.insert(into, v);
        }
    }

    fn finish(&self, state: &Option<bool>) -> Option<bool> {
        *state
    }

    fn is_empty_state(&self, state: &Option<bool>) -> bool {
        state.is_none()
    }

    fn state_model_bytes(&self) -> usize {
        1
    }
}

impl Aggregate for BoolOr {
    type Input = bool;
    type State = Option<bool>;
    type Output = Option<bool>;

    fn name(&self) -> &'static str {
        "BOOL_OR"
    }

    fn empty_state(&self) -> Option<bool> {
        None
    }

    #[inline]
    fn insert(&self, state: &mut Option<bool>, value: &bool) {
        *state = Some(state.unwrap_or(false) || *value);
    }

    #[inline]
    fn merge(&self, into: &mut Option<bool>, from: &Option<bool>) {
        if let Some(v) = from {
            self.insert(into, v);
        }
    }

    fn finish(&self, state: &Option<bool>) -> Option<bool> {
        *state
    }

    fn is_empty_state(&self, state: &Option<bool>) -> bool {
        state.is_none()
    }

    fn state_model_bytes(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<A: Aggregate<Input = bool>>(agg: &A, values: &[bool]) -> A::Output {
        let mut s = agg.empty_state();
        for v in values {
            agg.insert(&mut s, v);
        }
        agg.finish(&s)
    }

    #[test]
    fn and_semantics() {
        assert_eq!(fold(&BoolAnd, &[true, true]), Some(true));
        assert_eq!(fold(&BoolAnd, &[true, false, true]), Some(false));
        assert_eq!(fold(&BoolAnd, &[]), None);
    }

    #[test]
    fn or_semantics() {
        assert_eq!(fold(&BoolOr, &[false, false]), Some(false));
        assert_eq!(fold(&BoolOr, &[false, true]), Some(true));
        assert_eq!(fold(&BoolOr, &[]), None);
    }

    #[test]
    fn merge_commutes_and_has_identity() {
        for agg in [true, false] {
            // Test both aggregates via a closure over their shared shape.
            let check = |merge: &dyn Fn(&mut Option<bool>, &Option<bool>)| {
                for (x, y) in [
                    (None, Some(true)),
                    (Some(false), Some(true)),
                    (Some(true), None),
                    (None, None),
                ] {
                    let mut a = x;
                    merge(&mut a, &y);
                    let mut b = y;
                    merge(&mut b, &x);
                    assert_eq!(a, b);
                }
                let mut s = Some(true);
                merge(&mut s, &None);
                assert_eq!(s, Some(true));
            };
            if agg {
                check(&|a, b| BoolAnd.merge(a, b));
            } else {
                check(&|a, b| BoolOr.merge(a, b));
            }
        }
    }
}
