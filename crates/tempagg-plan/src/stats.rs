//! Relation statistics the optimizer consumes (Section 6.3: "The optimizer
//! can exploit information on the sortedness of the underlying relation").

use tempagg_core::{sortedness, TemporalRelation};

/// What the optimizer knows about a relation's storage order.
///
/// In a real system this comes from catalog metadata (a clustering index,
/// or the DBA declaring the relation retroactively bounded); here it can
/// also be *measured* from an in-memory relation via
/// [`RelationStats::analyze`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderingKnowledge {
    /// Totally ordered by time.
    Sorted,
    /// Every tuple at most `k` positions from its sorted position.
    KOrdered { k: usize },
    /// Declared retroactively bounded by the DBA: updates lag validity by a
    /// bounded number of *positions* (`equivalent_k`). "If the relation is
    /// declared … retroactively bounded, then the k-ordered aggregation
    /// tree would be the algorithm of choice, as no sorting is required."
    RetroactivelyBounded { equivalent_k: usize },
    /// Known to be in no useful order.
    Unordered,
    /// Nothing known.
    Unknown,
}

/// What the planner knows about a store-maintained aggregate cache for
/// the queried aggregate: when present, the query can be answered from an
/// MVCC snapshot of the cached constant-interval series without scanning
/// the relation at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CachedSeriesInfo {
    /// Constant-interval runs in the cached series (the cost of serving
    /// is one pass over them).
    pub runs: usize,
    /// The store's write epoch the cache is current at.
    pub epoch: u64,
}

/// Statistics describing one relation for planning purposes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RelationStats {
    /// Number of tuples.
    pub tuple_count: usize,
    /// Ordering knowledge.
    pub ordering: OrderingKnowledge,
    /// Fraction of tuples with long lifespans (0.0–1.0); drives the
    /// k-tree's memory estimate (Section 6.2: long-lived tuples keep
    /// end-time nodes alive longer).
    pub long_lived_fraction: f64,
    /// Estimated distinct timestamps; `None` defaults to `2 n` (all
    /// unique). Coarse granularities shrink this ("a student-records
    /// database with grades all written on the last day of the semester").
    pub unique_timestamps: Option<usize>,
    /// Expected constant intervals in the *result*, when the query
    /// restricts it (e.g. results wanted for a single year at day
    /// granularity). Small values favour the linked list (Section 6.3).
    pub expected_result_intervals: Option<usize>,
    /// A store-maintained cache of this exact aggregate, when one exists.
    /// [`choose_algorithm`](crate::choose_algorithm) then adds
    /// [`AlgorithmChoice::CachedSeries`](crate::AlgorithmChoice) — serving
    /// an MVCC snapshot for the cost of one pass over its runs — as a
    /// candidate.
    pub cached_series: Option<CachedSeriesInfo>,
    /// Total pages in the relation's paged backing file, when the
    /// relation lives out of core. Switches I/O costing from per-tuple to
    /// per-page ([`Calibration::page_read_ns`](crate::Calibration)).
    pub pages: Option<usize>,
    /// Pages whose fences overlap the query window — what a fence-pruned
    /// scan actually reads. `None` means no pruning knowledge (cost the
    /// full page count).
    pub pages_in_window: Option<usize>,
}

impl RelationStats {
    /// Minimal stats: `n` tuples, nothing else known.
    pub fn unknown(tuple_count: usize) -> RelationStats {
        RelationStats {
            tuple_count,
            ordering: OrderingKnowledge::Unknown,
            long_lived_fraction: 0.0,
            unique_timestamps: None,
            expected_result_intervals: None,
            cached_series: None,
            pages: None,
            pages_in_window: None,
        }
    }

    /// Measure stats from an in-memory relation: sortedness via the
    /// Section 5.2 metrics, long-lived fraction relative to the relation's
    /// lifespan, and exact distinct-timestamp counts.
    pub fn analyze(relation: &TemporalRelation) -> RelationStats {
        let intervals: Vec<_> = relation.intervals().collect();
        let n = intervals.len();
        let report = sortedness::analyze(&intervals);
        let ordering = if n <= 1 || report.k_order == 0 {
            OrderingKnowledge::Sorted
        } else if report.k_order <= n / 8 {
            OrderingKnowledge::KOrdered { k: report.k_order }
        } else {
            OrderingKnowledge::Unordered
        };

        let lifespan = relation.lifespan().map_or(0, |iv| iv.duration());
        let long_lived = if lifespan > 0 {
            intervals
                .iter()
                .filter(|iv| iv.duration() as f64 >= 0.2 * lifespan as f64)
                .count() as f64
                / n.max(1) as f64
        } else {
            0.0
        };

        let mut ts: Vec<i64> = Vec::with_capacity(2 * n);
        for iv in &intervals {
            ts.push(iv.start().get());
            ts.push(iv.end().get());
        }
        ts.sort_unstable();
        ts.dedup();

        RelationStats {
            tuple_count: n,
            ordering,
            long_lived_fraction: long_lived,
            unique_timestamps: Some(ts.len()),
            expected_result_intervals: None,
            cached_series: None,
            pages: None,
            pages_in_window: None,
        }
    }

    /// Distinct timestamps, defaulting to the all-unique worst case.
    pub fn unique_timestamps_or_default(&self) -> usize {
        self.unique_timestamps.unwrap_or(2 * self.tuple_count)
    }

    /// Builder-style setter for the expected result size.
    pub fn with_expected_result_intervals(mut self, n: usize) -> RelationStats {
        self.expected_result_intervals = Some(n);
        self
    }

    /// Builder-style setter for ordering knowledge.
    pub fn with_ordering(mut self, ordering: OrderingKnowledge) -> RelationStats {
        self.ordering = ordering;
        self
    }

    /// Builder-style setter for an available aggregate cache.
    pub fn with_cached_series(mut self, info: CachedSeriesInfo) -> RelationStats {
        self.cached_series = Some(info);
        self
    }

    /// Builder-style setter for paged-storage knowledge: the file's total
    /// page count and, when a fence-pruned scan has been planned, how many
    /// of those pages the query window actually touches.
    pub fn with_pages(mut self, pages: usize, pages_in_window: Option<usize>) -> RelationStats {
        self.pages = Some(pages);
        self.pages_in_window = pages_in_window.map(|p| p.min(pages));
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempagg_core::{Interval, Schema, Value, ValueType};

    fn relation(intervals: &[(i64, i64)]) -> TemporalRelation {
        let schema: Arc<Schema> = Schema::of(&[("x", ValueType::Int)]);
        let mut r = TemporalRelation::new(schema);
        for &(s, e) in intervals {
            r.push(vec![Value::Int(0)], Interval::at(s, e)).unwrap();
        }
        r
    }

    #[test]
    fn analyze_detects_sorted() {
        let r = relation(&[(0, 5), (10, 15), (20, 25)]);
        let s = RelationStats::analyze(&r);
        assert_eq!(s.ordering, OrderingKnowledge::Sorted);
        assert_eq!(s.tuple_count, 3);
        assert_eq!(s.unique_timestamps, Some(6));
    }

    #[test]
    fn analyze_detects_k_ordered() {
        // One adjacent swap: k_order = 1 on 16 tuples → k ≤ n/8.
        let mut ivs: Vec<(i64, i64)> = (0..16).map(|i| (i * 10, i * 10 + 5)).collect();
        ivs.swap(4, 5);
        let s = RelationStats::analyze(&relation(&ivs));
        assert_eq!(s.ordering, OrderingKnowledge::KOrdered { k: 1 });
    }

    #[test]
    fn analyze_detects_unordered() {
        let ivs: Vec<(i64, i64)> = (0..16).rev().map(|i| (i * 10, i * 10 + 5)).collect();
        let s = RelationStats::analyze(&relation(&ivs));
        assert_eq!(s.ordering, OrderingKnowledge::Unordered);
    }

    #[test]
    fn analyze_long_lived_fraction() {
        // Lifespan [0, 99]; one tuple spans 60% of it.
        let r = relation(&[(0, 59), (10, 12), (95, 99)]);
        let s = RelationStats::analyze(&r);
        assert!((s.long_lived_fraction - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn defaults_and_builders() {
        let s = RelationStats::unknown(100)
            .with_expected_result_intervals(10)
            .with_ordering(OrderingKnowledge::RetroactivelyBounded { equivalent_k: 3 });
        assert_eq!(s.unique_timestamps_or_default(), 200);
        assert_eq!(s.expected_result_intervals, Some(10));
        assert!(matches!(
            s.ordering,
            OrderingKnowledge::RetroactivelyBounded { equivalent_k: 3 }
        ));
    }

    #[test]
    fn empty_relation() {
        let r = relation(&[]);
        let s = RelationStats::analyze(&r);
        assert_eq!(s.tuple_count, 0);
        assert_eq!(s.ordering, OrderingKnowledge::Sorted);
    }
}
