//! Plan execution: drive the chosen algorithm over a relation.
//!
//! Tuples are fed in [`Chunk`]s of [`DEFAULT_CHUNK_CAPACITY`] through
//! [`TemporalAggregator::push_batch`], so every algorithm gets its batch
//! fast path (the linked list's binary-search insert, the tree's arena
//! reservation). When the plan prescribes `parallelism > 1`, the domain is
//! cut at seams drawn from the hull of the relation's tuple *start* times
//! (finite even when the domain or tuple ends are unbounded) and each
//! sub-domain runs its own inner aggregator on a scoped worker via
//! [`PartitionedAggregator`]; the stitched result is byte-identical to the
//! serial run.

use crate::planner::{plan, AlgorithmChoice, Plan, PlannerConfig};
use crate::stats::RelationStats;
use std::time::{Duration, Instant};
use tempagg_agg::{Aggregate, SweepAggregate};
use tempagg_algo::{
    AggregationTree, KOrderedAggregationTree, LinkedListAggregate, MemoryStats, PartitionReport,
    PartitionedAggregator, SweepAggregator, TemporalAggregator,
};
use tempagg_core::{
    Chunk, ChunkedSink, Interval, Result, Series, SeriesEntry, TempAggError, TemporalRelation,
    Timestamp, Tuple, DEFAULT_CHUNK_CAPACITY,
};

/// The error every executor entry point returns for a
/// [`AlgorithmChoice::CachedSeries`] plan: the executor scans relations,
/// it does not hold store snapshots.
fn cached_series_is_not_executable() -> TempAggError {
    TempAggError::internal(
        "cached-series plans are served from a store snapshot, not executed over the relation",
    )
}

/// The error for a [`AlgorithmChoice::SweepJoin`] plan reaching the
/// single-relation executor: joins take two relations and run through
/// [`tempagg_algo::SweepJoinOperator`] in the SQL layer.
fn sweep_join_is_not_executable() -> TempAggError {
    TempAggError::internal(
        "sweep-join plans take two relations and run through the join operator, not the \
         single-relation executor",
    )
}

/// The error for a [`AlgorithmChoice::IndexProbe`] plan reaching the
/// executor: window probes run against the store's segment-tree index,
/// not over the relation.
fn index_probe_is_not_executable() -> TempAggError {
    TempAggError::internal(
        "index-probe plans are answered by the store's window index, not executed over the \
         relation",
    )
}

/// How the store's aggregate caches participated in answering a query.
/// All zeros/false when the query ran an algorithm over the relation
/// without store involvement.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheReport {
    /// The result was served from an MVCC snapshot of a cached series —
    /// no relation scan ran at all.
    pub served_from_cache: bool,
    /// Constant-interval runs patched in place by incremental maintenance
    /// since the store last reported.
    pub patched_runs: u64,
    /// Dirty-window sweep recomputes (the Approximate-class fallback).
    pub recomputed_windows: u64,
    /// Cached series discarded wholesale (schema changes, explicit
    /// invalidation) rather than patched.
    pub invalidations: u64,
    /// Window probes answered by an already-warm segment-tree index.
    pub index_hits: u64,
    /// Window queries that had to build (or rebuild) an index first.
    pub index_misses: u64,
    /// Individual `O(log n)` index probes performed (a top-k query issues
    /// one per unpruned group; pruned groups never probe).
    pub index_probes: u64,
}

/// What happened during execution, for reporting and regression checks.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// The concrete algorithm that ran.
    pub algorithm: &'static str,
    /// Input tuples consumed.
    pub tuples: usize,
    /// Constant intervals produced.
    pub result_rows: usize,
    /// Wall-clock time of the scan + finish (excludes planning).
    pub elapsed: Duration,
    /// Peak state memory (summed across partitions when parallel).
    pub memory: MemoryStats,
    /// Whether the plan sorted the input first.
    pub presorted: bool,
    /// Domain partitions that actually ran (1 = serial; the plan's ask is
    /// capped by how many seams the data supports).
    pub parallelism: usize,
    /// Per-partition routing counts, worker busy time, and memory.
    /// Empty for a serial run.
    pub partitions: Vec<PartitionReport>,
    /// Most result entries resident in executor-owned memory at once. A
    /// materialized run holds the whole series, so this equals
    /// `result_rows`; a streaming run holds at most one result chunk.
    pub peak_resident_result_entries: usize,
    /// Result chunks handed to the streaming consumer (0 when
    /// materialized).
    pub emitted_chunks: usize,
    /// Store cache participation (all-default when no store was involved;
    /// the store's query layer fills this in when it serves or maintains
    /// caches around an execution).
    pub cache: CacheReport,
}

/// Feed the whole relation through `push_batch` in bounded chunks.
fn feed<A, G, F>(aggregator: &mut G, relation: &TemporalRelation, extract: &F) -> Result<()>
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
    F: Fn(&Tuple) -> A::Input,
{
    let mut chunk: Chunk<A::Input> = Chunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    for tuple in relation {
        if chunk.is_full() {
            aggregator.push_batch(&chunk)?;
            chunk.clear();
        }
        chunk.push(tuple.valid(), extract(tuple))?;
    }
    if !chunk.is_empty() {
        aggregator.push_batch(&chunk)?;
    }
    Ok(())
}

fn drive<A, G, F>(
    mut aggregator: G,
    relation: &TemporalRelation,
    extract: &F,
) -> Result<(Series<A::Output>, MemoryStats, &'static str)>
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
    F: Fn(&Tuple) -> A::Input,
{
    feed(&mut aggregator, relation, extract)?;
    let memory = aggregator.memory();
    let name = aggregator.algorithm();
    let mut series = Series::new();
    aggregator.finish_into(&mut series);
    Ok((series, memory, name))
}

fn drive_partitioned<A, G, F>(
    mut aggregator: PartitionedAggregator<A, G>,
    relation: &TemporalRelation,
    extract: &F,
) -> Result<(Series<A::Output>, MemoryStats, Vec<PartitionReport>)>
where
    A: Aggregate,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + Send,
    G: TemporalAggregator<A> + Send,
    F: Fn(&Tuple) -> A::Input,
{
    feed(&mut aggregator, relation, extract)?;
    let memory = aggregator.memory();
    let partitions = aggregator.partition_reports();
    // The parallel `finish` joins the workers; collecting it through the
    // sink keeps this file on the single emission path the
    // `no-materialize-in-exec` lint enforces.
    let mut series = Series::new();
    aggregator.finish_into(&mut series);
    Ok((series, memory, partitions))
}

fn partitioned_name(choice: AlgorithmChoice) -> &'static str {
    match choice {
        AlgorithmChoice::LinkedList => "partitioned linked-list",
        AlgorithmChoice::AggregationTree => "partitioned aggregation-tree",
        AlgorithmChoice::Sweep => "partitioned endpoint-sweep",
        AlgorithmChoice::CachedSeries => "cached-series",
        AlgorithmChoice::SweepJoin => "sweep-join",
        AlgorithmChoice::IndexProbe => "index-probe",
        AlgorithmChoice::KOrderedTree { presort: true, .. } => "partitioned sort + k-ordered-tree",
        AlgorithmChoice::KOrderedTree { presort: false, .. } => "partitioned k-ordered-tree",
    }
}

/// Seams cutting `domain` into up to `parallelism` pieces, drawn from the
/// even split of the hull of tuple *start* times — always finite, so an
/// unbounded domain (the usual `[0, ∞]` time-line) still partitions as
/// long as the data itself is bounded. Returns no seams (serial) when the
/// relation is empty, all starts coincide, or `parallelism ≤ 1`.
fn data_seams(relation: &TemporalRelation, domain: Interval, parallelism: usize) -> Vec<Timestamp> {
    if parallelism <= 1 {
        return Vec::new();
    }
    let mut starts = relation.intervals().map(|iv| iv.start());
    let Some(first) = starts.next() else {
        return Vec::new();
    };
    let (lo, hi) = starts.fold((first, first), |(lo, hi), s| (lo.min(s), hi.max(s)));
    // Clamp into the domain so every seam is interior to it.
    let lo = lo.max(domain.start());
    let hi = hi.min(domain.end());
    match Interval::new(lo, hi) {
        Ok(hull) => hull.even_seams(parallelism),
        Err(_) => Vec::new(),
    }
}

/// Execute a plan over `relation`, computing `agg` of `extract(tuple)` per
/// constant interval of `domain`.
///
/// `the_plan.parallelism > 1` routes through the domain-partitioned
/// pipeline; its output is byte-identical to the serial run of the same
/// algorithm (seam-aware stitching, see [`PartitionedAggregator`]).
pub fn execute<A, F>(
    the_plan: &Plan,
    agg: A,
    relation: &TemporalRelation,
    extract: F,
    domain: Interval,
) -> Result<(Series<A::Output>, ExecutionReport)>
where
    A: SweepAggregate + Clone + Send,
    A::State: Send,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + Send,
    F: Fn(&Tuple) -> A::Input,
{
    let started = Instant::now();
    let mut presorted = false;
    let seams = data_seams(relation, domain, the_plan.parallelism);
    let parallelism = seams.len() + 1;

    let (series, memory, algorithm, partitions) = if parallelism > 1 {
        let (series, memory, partitions) = match the_plan.choice {
            AlgorithmChoice::LinkedList => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    LinkedListAggregate::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned(par, relation, &extract)?
            }
            AlgorithmChoice::AggregationTree => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    AggregationTree::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned(par, relation, &extract)?
            }
            AlgorithmChoice::Sweep => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    SweepAggregator::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned(par, relation, &extract)?
            }
            AlgorithmChoice::CachedSeries => return Err(cached_series_is_not_executable()),
            AlgorithmChoice::SweepJoin => return Err(sweep_join_is_not_executable()),
            AlgorithmChoice::IndexProbe => return Err(index_probe_is_not_executable()),
            AlgorithmChoice::KOrderedTree { k, presort } => {
                // Probe once so an invalid k errors before partitions build.
                KOrderedAggregationTree::with_domain(agg.clone(), k, domain)?;
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    KOrderedAggregationTree::with_domain(agg.clone(), k, sub)
                        // lint: allow(no-unwrap): k was validated by the probe construction just above
                        .expect("k validated above")
                })?;
                if presort {
                    presorted = true;
                    let sorted = relation.sorted_by_time();
                    drive_partitioned(par, &sorted, &extract)?
                } else {
                    drive_partitioned(par, relation, &extract)?
                }
            }
        };
        (
            series,
            memory,
            partitioned_name(the_plan.choice),
            partitions,
        )
    } else {
        let (series, memory, name) = match the_plan.choice {
            AlgorithmChoice::LinkedList => drive(
                LinkedListAggregate::with_domain(agg, domain),
                relation,
                &extract,
            )?,
            AlgorithmChoice::AggregationTree => drive(
                AggregationTree::with_domain(agg, domain),
                relation,
                &extract,
            )?,
            AlgorithmChoice::Sweep => drive(
                SweepAggregator::with_domain(agg, domain),
                relation,
                &extract,
            )?,
            AlgorithmChoice::CachedSeries => return Err(cached_series_is_not_executable()),
            AlgorithmChoice::SweepJoin => return Err(sweep_join_is_not_executable()),
            AlgorithmChoice::IndexProbe => return Err(index_probe_is_not_executable()),
            AlgorithmChoice::KOrderedTree { k, presort } => {
                let aggregator = KOrderedAggregationTree::with_domain(agg, k, domain)?;
                if presort {
                    presorted = true;
                    let sorted = relation.sorted_by_time();
                    drive(aggregator, &sorted, &extract)?
                } else {
                    drive(aggregator, relation, &extract)?
                }
            }
        };
        (series, memory, name, Vec::new())
    };
    let report = ExecutionReport {
        algorithm,
        tuples: relation.len(),
        result_rows: series.len(),
        elapsed: started.elapsed(),
        memory,
        presorted,
        parallelism,
        partitions,
        // Materialized execution holds the full series before returning.
        peak_resident_result_entries: series.len(),
        emitted_chunks: 0,
        cache: CacheReport::default(),
    };
    Ok((series, report))
}

/// Counters a streaming drive reads back off its [`ChunkedSink`].
struct StreamStats {
    accepted: usize,
    peak_resident: usize,
    chunks_emitted: usize,
}

fn drive_streaming<A, G, F, C>(
    mut aggregator: G,
    relation: &TemporalRelation,
    extract: &F,
    chunk_capacity: usize,
    consumer: C,
) -> Result<(StreamStats, MemoryStats, &'static str)>
where
    A: Aggregate,
    A::Input: Clone,
    G: TemporalAggregator<A>,
    F: Fn(&Tuple) -> A::Input,
    C: FnMut(&[SeriesEntry<A::Output>]),
{
    let mut sink = ChunkedSink::new(chunk_capacity, consumer);
    let mut chunk: Chunk<A::Input> = Chunk::with_capacity(DEFAULT_CHUNK_CAPACITY);
    for tuple in relation {
        if chunk.is_full() {
            aggregator.push_batch(&chunk)?;
            chunk.clear();
            // Drain whatever this input chunk settled (the k-ordered
            // tree's GC; a no-op for the buffering algorithms) so
            // results leave executor memory as soon as they are final.
            aggregator.emit_ready(&mut sink);
        }
        chunk.push(tuple.valid(), extract(tuple))?;
    }
    if !chunk.is_empty() {
        aggregator.push_batch(&chunk)?;
        aggregator.emit_ready(&mut sink);
    }
    let memory = aggregator.memory();
    let name = aggregator.algorithm();
    aggregator.finish_into(&mut sink);
    sink.flush();
    let stats = StreamStats {
        accepted: sink.accepted(),
        peak_resident: sink.peak_resident(),
        chunks_emitted: sink.chunks_emitted(),
    };
    Ok((stats, memory, name))
}

fn drive_partitioned_streaming<A, G, F, C>(
    mut aggregator: PartitionedAggregator<A, G>,
    relation: &TemporalRelation,
    extract: &F,
    chunk_capacity: usize,
    consumer: C,
) -> Result<(StreamStats, MemoryStats, Vec<PartitionReport>)>
where
    A: Aggregate,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + Send,
    G: TemporalAggregator<A> + Send,
    F: Fn(&Tuple) -> A::Input,
    C: FnMut(&[SeriesEntry<A::Output>]),
{
    let mut sink = ChunkedSink::new(chunk_capacity, consumer);
    feed(&mut aggregator, relation, extract)?;
    let memory = aggregator.memory();
    let partitions = aggregator.partition_reports();
    // Partitions drain through the sink in domain order with seam-aware
    // stitching done inline — no per-partition series is materialized.
    aggregator.finish_into(&mut sink);
    sink.flush();
    let stats = StreamStats {
        accepted: sink.accepted(),
        peak_resident: sink.peak_resident(),
        chunks_emitted: sink.chunks_emitted(),
    };
    Ok((stats, memory, partitions))
}

/// Execute a plan in streaming mode: result entries are pushed to
/// `consumer` in fixed-size chunks of at most `chunk_capacity` entries
/// instead of being collected into a [`Series`], so executor-resident
/// result memory is bounded by one chunk regardless of how many constant
/// intervals the query produces.
///
/// The entries streamed to `consumer`, concatenated, are byte-identical
/// to the series `execute` returns for the same plan. On k-ordered input
/// the k-ordered tree emits as it garbage-collects, so the whole run is
/// O(k + chunk) resident; the buffering algorithms still hold their
/// internal state but never a second materialized copy of the result.
pub fn execute_streaming<A, F, C>(
    the_plan: &Plan,
    agg: A,
    relation: &TemporalRelation,
    extract: F,
    domain: Interval,
    chunk_capacity: usize,
    consumer: C,
) -> Result<ExecutionReport>
where
    A: SweepAggregate + Clone + Send,
    A::State: Send,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + Send,
    F: Fn(&Tuple) -> A::Input,
    C: FnMut(&[SeriesEntry<A::Output>]),
{
    let started = Instant::now();
    let mut presorted = false;
    let seams = data_seams(relation, domain, the_plan.parallelism);
    let parallelism = seams.len() + 1;

    let (stats, memory, algorithm, partitions) = if parallelism > 1 {
        let (stats, memory, partitions) = match the_plan.choice {
            AlgorithmChoice::LinkedList => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    LinkedListAggregate::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned_streaming(par, relation, &extract, chunk_capacity, consumer)?
            }
            AlgorithmChoice::AggregationTree => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    AggregationTree::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned_streaming(par, relation, &extract, chunk_capacity, consumer)?
            }
            AlgorithmChoice::Sweep => {
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    SweepAggregator::with_domain(agg.clone(), sub)
                })?;
                drive_partitioned_streaming(par, relation, &extract, chunk_capacity, consumer)?
            }
            AlgorithmChoice::CachedSeries => return Err(cached_series_is_not_executable()),
            AlgorithmChoice::SweepJoin => return Err(sweep_join_is_not_executable()),
            AlgorithmChoice::IndexProbe => return Err(index_probe_is_not_executable()),
            AlgorithmChoice::KOrderedTree { k, presort } => {
                KOrderedAggregationTree::with_domain(agg.clone(), k, domain)?;
                let par = PartitionedAggregator::with_seams(domain, seams, |sub| {
                    KOrderedAggregationTree::with_domain(agg.clone(), k, sub)
                        // lint: allow(no-unwrap): k was validated by the probe construction just above
                        .expect("k validated above")
                })?;
                if presort {
                    presorted = true;
                    let sorted = relation.sorted_by_time();
                    drive_partitioned_streaming(par, &sorted, &extract, chunk_capacity, consumer)?
                } else {
                    drive_partitioned_streaming(par, relation, &extract, chunk_capacity, consumer)?
                }
            }
        };
        (stats, memory, partitioned_name(the_plan.choice), partitions)
    } else {
        let (stats, memory, name) = match the_plan.choice {
            AlgorithmChoice::LinkedList => drive_streaming(
                LinkedListAggregate::with_domain(agg, domain),
                relation,
                &extract,
                chunk_capacity,
                consumer,
            )?,
            AlgorithmChoice::AggregationTree => drive_streaming(
                AggregationTree::with_domain(agg, domain),
                relation,
                &extract,
                chunk_capacity,
                consumer,
            )?,
            AlgorithmChoice::Sweep => drive_streaming(
                SweepAggregator::with_domain(agg, domain),
                relation,
                &extract,
                chunk_capacity,
                consumer,
            )?,
            AlgorithmChoice::CachedSeries => return Err(cached_series_is_not_executable()),
            AlgorithmChoice::SweepJoin => return Err(sweep_join_is_not_executable()),
            AlgorithmChoice::IndexProbe => return Err(index_probe_is_not_executable()),
            AlgorithmChoice::KOrderedTree { k, presort } => {
                let aggregator = KOrderedAggregationTree::with_domain(agg, k, domain)?;
                if presort {
                    presorted = true;
                    let sorted = relation.sorted_by_time();
                    drive_streaming(aggregator, &sorted, &extract, chunk_capacity, consumer)?
                } else {
                    drive_streaming(aggregator, relation, &extract, chunk_capacity, consumer)?
                }
            }
        };
        (stats, memory, name, Vec::new())
    };
    Ok(ExecutionReport {
        algorithm,
        tuples: relation.len(),
        result_rows: stats.accepted,
        elapsed: started.elapsed(),
        memory,
        presorted,
        parallelism,
        partitions,
        peak_resident_result_entries: stats.peak_resident,
        emitted_chunks: stats.chunks_emitted,
        cache: CacheReport::default(),
    })
}

/// One-call evaluation: measure statistics, plan per Section 6.3, execute.
/// Returns the result plus the plan and the execution report.
pub fn evaluate_auto<A, F>(
    agg: A,
    relation: &TemporalRelation,
    extract: F,
    config: &PlannerConfig,
    domain: Interval,
) -> Result<(Series<A::Output>, Plan, ExecutionReport)>
where
    A: SweepAggregate + Clone + Send,
    A::State: Send,
    A::Input: Clone + Send + Sync,
    A::Output: PartialEq + Send,
    F: Fn(&Tuple) -> A::Input,
{
    let stats = RelationStats::analyze(relation);
    let the_plan = plan(&stats, config, agg.state_model_bytes());
    let (series, report) = execute(&the_plan, agg, relation, extract, domain)?;
    Ok((series, the_plan, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OrderingKnowledge;
    use tempagg_agg::{Count, Sum};
    use tempagg_algo::oracle::oracle;
    use tempagg_workload::employed::{employed_relation, table1_expected};
    use tempagg_workload::{generate, WorkloadConfig};

    fn serial_plan(choice: AlgorithmChoice) -> Plan {
        Plan {
            choice,
            parallelism: 1,
            estimated_state_bytes: 0,
            rationale: vec![],
        }
    }

    #[test]
    fn every_choice_computes_table1() {
        let relation = employed_relation();
        let choices = [
            AlgorithmChoice::LinkedList,
            AlgorithmChoice::AggregationTree,
            AlgorithmChoice::Sweep,
            AlgorithmChoice::KOrderedTree {
                k: 4,
                presort: false,
            },
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true,
            },
        ];
        for choice in choices {
            let p = serial_plan(choice);
            let (series, report) =
                execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
            let rows: Vec<(Interval, u64)> = series.iter().map(|e| (e.interval, e.value)).collect();
            assert_eq!(rows, table1_expected(), "choice {choice:?}");
            assert_eq!(report.tuples, 4);
            assert_eq!(report.result_rows, 7);
            assert_eq!(report.parallelism, 1);
            assert!(report.partitions.is_empty());
        }
    }

    #[test]
    fn parallel_execution_is_byte_identical_to_serial() {
        let relation = generate(&WorkloadConfig::random(2048));
        let choices = [
            AlgorithmChoice::LinkedList,
            AlgorithmChoice::AggregationTree,
            AlgorithmChoice::Sweep,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true,
            },
        ];
        for choice in choices {
            let serial = execute(
                &serial_plan(choice),
                Count,
                &relation,
                |_| (),
                Interval::TIMELINE,
            )
            .unwrap()
            .0;
            for parallelism in [2usize, 3, 8] {
                let p = Plan {
                    parallelism,
                    ..serial_plan(choice)
                };
                let (series, report) =
                    execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
                assert_eq!(series, serial, "choice {choice:?} × {parallelism}");
                assert_eq!(report.parallelism, parallelism);
                assert_eq!(report.partitions.len(), parallelism);
                assert!(report.algorithm.starts_with("partitioned"));
                let routed: usize = report.partitions.iter().map(|p| p.tuples).sum();
                assert!(routed >= relation.len(), "clipped copies ≥ tuples");
            }
        }
    }

    #[test]
    fn parallel_ask_is_capped_by_the_data() {
        // An empty relation has no start hull: the pipeline stays serial
        // however much parallelism the plan asks for.
        let relation = TemporalRelation::new(employed_relation().schema().clone());
        let p = Plan {
            parallelism: 8,
            ..serial_plan(AlgorithmChoice::AggregationTree)
        };
        let (series, report) = execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
        assert_eq!(report.parallelism, 1);
        assert!(report.partitions.is_empty());
        assert_eq!(series.len(), 1);
    }

    #[test]
    fn auto_with_forced_parallelism_matches_oracle() {
        let relation = generate(&WorkloadConfig::random(1024));
        let config = PlannerConfig {
            parallelism: Some(4),
            parallel_min_tuples: 0,
            ..Default::default()
        };
        let (series, the_plan, report) =
            evaluate_auto(Count, &relation, |_| (), &config, Interval::TIMELINE).unwrap();
        assert_eq!(the_plan.parallelism, 4);
        assert!(report.parallelism > 1);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn auto_on_random_relation_picks_tree_and_matches_oracle() {
        let relation = generate(&WorkloadConfig::random(512));
        let (series, plan, report) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        assert_eq!(plan.choice, AlgorithmChoice::AggregationTree);
        // 512 tuples sit under the parallel threshold: serial execution.
        assert_eq!(plan.parallelism, 1);
        assert_eq!(report.algorithm, "aggregation-tree");
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn auto_on_sorted_relation_picks_k1() {
        let relation = generate(&WorkloadConfig::sorted(512));
        let (series, plan, report) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        assert_eq!(
            plan.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false
            }
        );
        assert!(report.memory.peak_nodes < 64);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn auto_on_k_ordered_relation_uses_measured_k() {
        let relation = generate(&WorkloadConfig::k_ordered(2048, 16, 0.08));
        let (series, plan, _) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        match plan.choice {
            AlgorithmChoice::KOrderedTree { k, presort: false } => assert!(k <= 16),
            other => panic!("expected k-ordered tree, got {other:?}"),
        }
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn presort_handles_unordered_input_under_budget() {
        let relation = generate(&WorkloadConfig::random(512));
        let stats = RelationStats::analyze(&relation).with_ordering(OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            memory_budget_bytes: Some(1024),
            ..Default::default()
        };
        let p = plan(&stats, &config, 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
        let (series, report) = execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
        assert!(report.presorted);
        assert!(report.memory.peak_model_bytes() <= 1024);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn streaming_concatenation_equals_materialized_for_every_choice() {
        let relation = generate(&WorkloadConfig::random(1024));
        let choices = [
            AlgorithmChoice::LinkedList,
            AlgorithmChoice::AggregationTree,
            AlgorithmChoice::Sweep,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true,
            },
        ];
        for choice in choices {
            for parallelism in [1usize, 4] {
                let p = Plan {
                    parallelism,
                    ..serial_plan(choice)
                };
                let (series, materialized) =
                    execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
                let mut streamed = Vec::new();
                let report = execute_streaming(
                    &p,
                    Count,
                    &relation,
                    |_| (),
                    Interval::TIMELINE,
                    64,
                    |chunk| streamed.extend_from_slice(chunk),
                )
                .unwrap();
                assert_eq!(
                    streamed,
                    series.entries(),
                    "choice {choice:?} × {parallelism}"
                );
                assert_eq!(report.result_rows, materialized.result_rows);
                assert_eq!(report.algorithm, materialized.algorithm);
                assert!(report.peak_resident_result_entries <= 64);
                assert!(report.emitted_chunks >= series.len() / 64);
                // The materialized report holds the whole series.
                assert_eq!(
                    materialized.peak_resident_result_entries,
                    materialized.result_rows
                );
                assert_eq!(materialized.emitted_chunks, 0);
            }
        }
    }

    #[test]
    fn streaming_ktree_is_chunk_bounded_on_sorted_input() {
        let relation = generate(&WorkloadConfig::sorted(4096));
        let p = serial_plan(AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: false,
        });
        let mut rows = 0usize;
        let report = execute_streaming(
            &p,
            Count,
            &relation,
            |_| (),
            Interval::TIMELINE,
            256,
            |chunk| rows += chunk.len(),
        )
        .unwrap();
        assert_eq!(report.result_rows, rows);
        assert!(rows > 4_000);
        // Results drain per input chunk, so residency stays far below the
        // materialized result size.
        assert!(
            report.peak_resident_result_entries <= 256 + DEFAULT_CHUNK_CAPACITY,
            "peak {} should be chunk-bounded",
            report.peak_resident_result_entries
        );
    }

    #[test]
    fn cached_series_plans_are_not_executable() {
        let relation = employed_relation();
        for parallelism in [1usize, 4] {
            let p = Plan {
                parallelism,
                ..serial_plan(AlgorithmChoice::CachedSeries)
            };
            let err = execute(&p, Count, &relation, |_| (), Interval::TIMELINE);
            assert!(err.is_err(), "parallelism {parallelism}");
            let err =
                execute_streaming(&p, Count, &relation, |_| (), Interval::TIMELINE, 64, |_| {});
            assert!(err.is_err(), "streaming, parallelism {parallelism}");
        }
    }

    #[test]
    fn sweep_join_plans_are_not_executable() {
        let relation = employed_relation();
        for parallelism in [1usize, 4] {
            let p = Plan {
                parallelism,
                ..serial_plan(AlgorithmChoice::SweepJoin)
            };
            let err = execute(&p, Count, &relation, |_| (), Interval::TIMELINE);
            assert!(err.is_err(), "parallelism {parallelism}");
            let err =
                execute_streaming(&p, Count, &relation, |_| (), Interval::TIMELINE, 64, |_| {});
            assert!(err.is_err(), "streaming, parallelism {parallelism}");
        }
    }

    #[test]
    fn sum_through_the_executor() {
        let relation = employed_relation();
        let salary_idx = relation.schema().index_of("salary").unwrap();
        let p = serial_plan(AlgorithmChoice::AggregationTree);
        let (series, _) = execute(
            &p,
            Sum::<i64>::new(),
            &relation,
            |t| t.value(salary_idx).as_i64().unwrap(),
            Interval::TIMELINE,
        )
        .unwrap();
        // Over [18, 20]: 40K + 45K + 37K.
        assert_eq!(series.entries()[4].value, Some(122_000));
    }
}
