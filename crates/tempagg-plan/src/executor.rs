//! Plan execution: drive the chosen algorithm over a relation.

use crate::planner::{plan, AlgorithmChoice, Plan, PlannerConfig};
use crate::stats::RelationStats;
use std::time::{Duration, Instant};
use tempagg_agg::Aggregate;
use tempagg_algo::{
    AggregationTree, KOrderedAggregationTree, LinkedListAggregate, MemoryStats,
    TemporalAggregator,
};
use tempagg_core::{Interval, Result, Series, TemporalRelation, Tuple};

/// What happened during execution, for reporting and regression checks.
#[derive(Clone, Debug)]
pub struct ExecutionReport {
    /// The concrete algorithm that ran.
    pub algorithm: &'static str,
    /// Input tuples consumed.
    pub tuples: usize,
    /// Constant intervals produced.
    pub result_rows: usize,
    /// Wall-clock time of the scan + finish (excludes planning).
    pub elapsed: Duration,
    /// Peak state memory.
    pub memory: MemoryStats,
    /// Whether the plan sorted the input first.
    pub presorted: bool,
}

fn drive<A, G, F>(
    mut aggregator: G,
    relation: &TemporalRelation,
    extract: &F,
) -> Result<(Series<A::Output>, MemoryStats, &'static str)>
where
    A: Aggregate,
    G: TemporalAggregator<A>,
    F: Fn(&Tuple) -> A::Input,
{
    for tuple in relation {
        aggregator.push(tuple.valid(), extract(tuple))?;
    }
    let memory = aggregator.memory();
    let name = aggregator.algorithm();
    Ok((aggregator.finish(), memory, name))
}

/// Execute a plan over `relation`, computing `agg` of `extract(tuple)` per
/// constant interval of `domain`.
pub fn execute<A, F>(
    the_plan: &Plan,
    agg: A,
    relation: &TemporalRelation,
    extract: F,
    domain: Interval,
) -> Result<(Series<A::Output>, ExecutionReport)>
where
    A: Aggregate,
    F: Fn(&Tuple) -> A::Input,
{
    let started = Instant::now();
    let mut presorted = false;
    let (series, memory, algorithm) = match the_plan.choice {
        AlgorithmChoice::LinkedList => drive(
            LinkedListAggregate::with_domain(agg, domain),
            relation,
            &extract,
        )?,
        AlgorithmChoice::AggregationTree => drive(
            AggregationTree::with_domain(agg, domain),
            relation,
            &extract,
        )?,
        AlgorithmChoice::KOrderedTree { k, presort } => {
            let aggregator = KOrderedAggregationTree::with_domain(agg, k, domain)?;
            if presort {
                presorted = true;
                let sorted = relation.sorted_by_time();
                drive(aggregator, &sorted, &extract)?
            } else {
                drive(aggregator, relation, &extract)?
            }
        }
    };
    let report = ExecutionReport {
        algorithm,
        tuples: relation.len(),
        result_rows: series.len(),
        elapsed: started.elapsed(),
        memory,
        presorted,
    };
    Ok((series, report))
}

/// One-call evaluation: measure statistics, plan per Section 6.3, execute.
/// Returns the result plus the plan and the execution report.
pub fn evaluate_auto<A, F>(
    agg: A,
    relation: &TemporalRelation,
    extract: F,
    config: &PlannerConfig,
    domain: Interval,
) -> Result<(Series<A::Output>, Plan, ExecutionReport)>
where
    A: Aggregate,
    F: Fn(&Tuple) -> A::Input,
{
    let stats = RelationStats::analyze(relation);
    let the_plan = plan(&stats, config, agg.state_model_bytes());
    let (series, report) = execute(&the_plan, agg, relation, extract, domain)?;
    Ok((series, the_plan, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OrderingKnowledge;
    use tempagg_agg::{Count, Sum};
    use tempagg_algo::oracle::oracle;
    use tempagg_workload::employed::{employed_relation, table1_expected};
    use tempagg_workload::{generate, WorkloadConfig};

    #[test]
    fn every_choice_computes_table1() {
        let relation = employed_relation();
        let choices = [
            AlgorithmChoice::LinkedList,
            AlgorithmChoice::AggregationTree,
            AlgorithmChoice::KOrderedTree { k: 4, presort: false },
            AlgorithmChoice::KOrderedTree { k: 1, presort: true },
        ];
        for choice in choices {
            let p = Plan {
                choice,
                estimated_state_bytes: 0,
                rationale: vec![],
            };
            let (series, report) =
                execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
            let rows: Vec<(Interval, u64)> =
                series.iter().map(|e| (e.interval, e.value)).collect();
            assert_eq!(rows, table1_expected(), "choice {choice:?}");
            assert_eq!(report.tuples, 4);
            assert_eq!(report.result_rows, 7);
        }
    }

    #[test]
    fn auto_on_random_relation_picks_tree_and_matches_oracle() {
        let relation = generate(&WorkloadConfig::random(512));
        let (series, plan, report) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        assert_eq!(plan.choice, AlgorithmChoice::AggregationTree);
        assert_eq!(report.algorithm, "aggregation-tree");
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn auto_on_sorted_relation_picks_k1() {
        let relation = generate(&WorkloadConfig::sorted(512));
        let (series, plan, report) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        assert_eq!(plan.choice, AlgorithmChoice::KOrderedTree { k: 1, presort: false });
        assert!(report.memory.peak_nodes < 64);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn auto_on_k_ordered_relation_uses_measured_k() {
        let relation = generate(&WorkloadConfig::k_ordered(2048, 16, 0.08));
        let (series, plan, _) = evaluate_auto(
            Count,
            &relation,
            |_| (),
            &PlannerConfig::default(),
            Interval::TIMELINE,
        )
        .unwrap();
        match plan.choice {
            AlgorithmChoice::KOrderedTree { k, presort: false } => assert!(k <= 16),
            other => panic!("expected k-ordered tree, got {other:?}"),
        }
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn presort_handles_unordered_input_under_budget() {
        let relation = generate(&WorkloadConfig::random(512));
        let stats = RelationStats::analyze(&relation).with_ordering(OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            memory_budget_bytes: Some(1024),
            ..Default::default()
        };
        let p = plan(&stats, &config, 4);
        assert_eq!(p.choice, AlgorithmChoice::KOrderedTree { k: 1, presort: true });
        let (series, report) =
            execute(&p, Count, &relation, |_| (), Interval::TIMELINE).unwrap();
        assert!(report.presorted);
        assert!(report.memory.peak_model_bytes() <= 1024);
        let tuples: Vec<(Interval, ())> = relation.intervals().map(|iv| (iv, ())).collect();
        assert_eq!(series, oracle(&Count, Interval::TIMELINE, &tuples));
    }

    #[test]
    fn sum_through_the_executor() {
        let relation = employed_relation();
        let salary_idx = relation.schema().index_of("salary").unwrap();
        let p = Plan {
            choice: AlgorithmChoice::AggregationTree,
            estimated_state_bytes: 0,
            rationale: vec![],
        };
        let (series, _) = execute(
            &p,
            Sum::<i64>::new(),
            &relation,
            |t| t.value(salary_idx).as_i64().unwrap(),
            Interval::TIMELINE,
        )
        .unwrap();
        // Over [18, 20]: 40K + 45K + 37K.
        assert_eq!(series.entries()[4].value, Some(122_000));
    }
}
