//! # tempagg-plan
//!
//! Query planning for temporal aggregates, reproducing the optimizer
//! strategy of Section 6.3 of *Computing Temporal Aggregates* (Kline &
//! Snodgrass, ICDE 1995): choose between the linked list, the aggregation
//! tree, and the k-ordered aggregation tree from the relation's size,
//! sortedness (or a retroactively-bounded declaration), long-lived-tuple
//! fraction, expected result size, and the memory-vs-I/O trade-off — then
//! execute the chosen plan.
//!
//! Beyond the paper, [`choose_algorithm`] adds the columnar endpoint-sweep
//! kernel as a fourth candidate, selected by a [`CostModel`] whose
//! per-algorithm constants are *calibrated* from measured per-unit costs
//! (a [`Calibration`] profile produced by the bench harness' `calibrate`
//! command) and gated on the aggregate's retraction class
//! ([`SweepClass`]).

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cost;
mod executor;
mod planner;
mod stats;

pub use cost::{
    choose_algorithm, choose_window_algorithm, estimate, plan_by_cost, plan_join, Calibration,
    CostEstimate, CostModel,
};
pub use executor::{evaluate_auto, execute, execute_streaming, CacheReport, ExecutionReport};
pub use planner::{
    choose_parallelism, estimate_ktree_nodes, estimate_list_cells, estimate_tree_nodes, plan,
    AlgorithmChoice, Plan, PlannerConfig,
};
pub use stats::{CachedSeriesInfo, OrderingKnowledge, RelationStats};
pub use tempagg_agg::SweepClass;
pub use tempagg_algo::PartitionReport;
