//! The optimizer strategy of Section 6.3, as a rule-based planner with a
//! small cost model.
//!
//! The paper's conclusions, encoded here:
//!
//! * very few constant intervals expected in the result → **linked list**
//!   ("quite adequate performance" and minimal state);
//! * relation sorted → **k-ordered tree with k = 1** ("very efficient
//!   run-time performance … minimal memory usage");
//! * relation declared retroactively bounded → **k-ordered tree** with the
//!   equivalent k, *without* sorting;
//! * relation measured k-ordered for small k → **k-ordered tree**;
//! * otherwise (unordered): **aggregation tree** if its memory fits the
//!   budget and memory is cheaper than the I/O of sorting, else **sort +
//!   k-ordered tree with k = 1** (the paper's "simplest strategy").
//!
//! This rule set reproduces the paper's optimizer verbatim, so it never
//! prescribes the (post-paper) endpoint-sweep kernel; the calibrated
//! cost-based [`crate::choose_algorithm`] adds that fourth candidate.

use crate::stats::{OrderingKnowledge, RelationStats};
use std::fmt;
use tempagg_algo::memory::model_node_bytes;

/// The algorithm (and preprocessing) a plan prescribes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmChoice {
    LinkedList,
    AggregationTree,
    /// Columnar endpoint sweep: buffer the runs, sort the endpoint events
    /// once, emit in a single merge scan. Requires a retractable
    /// (`SweepAggregate`) aggregate; the rule-based Section 6.3 planner
    /// never picks it — [`crate::choose_algorithm`] does, by cost.
    Sweep,
    /// Serve an MVCC snapshot of a store-maintained aggregate cache: no
    /// relation scan at all, just one pass over the cached
    /// constant-interval runs. Only a candidate when
    /// [`RelationStats::cached_series`](crate::RelationStats) reports a
    /// cache for the queried aggregate; the executor never runs this
    /// choice itself — the store's query layer serves it.
    CachedSeries,
    /// Sweep-based interval join: co-sort both relations' endpoint events
    /// and enumerate the other side's live set at each admit (`JOIN ...
    /// ON OVERLAPS` and the Allen predicates). Only produced by
    /// [`crate::plan_join`] — joins have no competing operator yet — and
    /// executed by the SQL layer, never by the single-relation executor.
    SweepJoin,
    /// Probe the store's implicit segment-tree window index over the
    /// cached series: `O(log runs)` per windowed aggregate instead of a
    /// linear pass. Only a candidate for *window* queries
    /// ([`crate::choose_window_algorithm`]) when
    /// [`RelationStats::cached_series`](crate::RelationStats) reports a
    /// warm cache; the executor never runs this choice itself — the
    /// store's query layer serves it.
    IndexProbe,
    /// `presort`: sort the relation by time first (k is then 1).
    KOrderedTree {
        k: usize,
        presort: bool,
    },
}

impl AlgorithmChoice {
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmChoice::LinkedList => "linked-list",
            AlgorithmChoice::AggregationTree => "aggregation-tree",
            AlgorithmChoice::Sweep => "endpoint-sweep",
            AlgorithmChoice::CachedSeries => "cached-series",
            AlgorithmChoice::SweepJoin => "sweep-join",
            AlgorithmChoice::IndexProbe => "index-probe",
            AlgorithmChoice::KOrderedTree { presort: true, .. } => "sort + k-ordered-tree",
            AlgorithmChoice::KOrderedTree { presort: false, .. } => "k-ordered-tree",
        }
    }
}

/// Cost-model knobs (Section 6.3 phrases them as "the tradeoff between the
/// cost of increased memory requirements and the cost of disk access").
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerConfig {
    /// Hard cap on algorithm state; `None` = unconstrained.
    pub memory_budget_bytes: Option<usize>,
    /// `true` when memory is considered cheaper than the disk I/O a sort
    /// would cost ("If memory is cheaper than disk I/O, then the
    /// aggregation tree is the best approach").
    pub memory_cheaper_than_io: bool,
    /// Result sizes at or below this favour the linked list.
    pub small_result_threshold: usize,
    /// Measured k values above `tuple_count / this` are treated as
    /// effectively unordered (a huge window would buy nothing).
    pub k_usefulness_divisor: usize,
    /// Degree of parallelism for the partitioned pipeline: `None` asks the
    /// machine (`std::thread::available_parallelism`), `Some(1)` forces a
    /// serial plan, `Some(p)` forces up to `p` domain partitions.
    pub parallelism: Option<usize>,
    /// Relations smaller than this stay serial regardless of
    /// [`parallelism`](Self::parallelism) being available: partition setup
    /// and seam stitching cost more than they save on small inputs.
    pub parallel_min_tuples: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            memory_budget_bytes: None,
            memory_cheaper_than_io: true,
            small_result_threshold: 64,
            k_usefulness_divisor: 8,
            parallelism: None,
            parallel_min_tuples: 8192,
        }
    }
}

/// The degree of parallelism a plan should prescribe: the configured (or
/// machine-reported) worker count, except that small relations stay serial
/// (`1`). This is the rule-based counterpart of
/// [`CostModel::choose_parallelism`](crate::CostModel::choose_parallelism).
pub fn choose_parallelism(stats: &RelationStats, config: &PlannerConfig) -> usize {
    let available = config.parallelism.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    if available <= 1 || stats.tuple_count < config.parallel_min_tuples {
        1
    } else {
        available
    }
}

/// A chosen algorithm plus the estimates and reasoning behind it.
#[derive(Clone, Debug, PartialEq)]
pub struct Plan {
    pub choice: AlgorithmChoice,
    /// Domain partitions to run in parallel (1 = serial execution).
    pub parallelism: usize,
    /// Estimated peak state bytes under the paper's 16-byte-node model.
    pub estimated_state_bytes: usize,
    /// Human-readable EXPLAIN lines.
    pub rationale: Vec<String>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "algorithm: {}", self.choice.name())?;
        if let AlgorithmChoice::KOrderedTree { k, presort } = self.choice {
            writeln!(f, "  k = {k}, presort = {presort}")?;
        }
        if self.parallelism > 1 {
            writeln!(f, "  parallelism = {}", self.parallelism)?;
        }
        writeln!(f, "  estimated state: {} bytes", self.estimated_state_bytes)?;
        for line in &self.rationale {
            writeln!(f, "  - {line}")?;
        }
        Ok(())
    }
}

/// Estimated peak nodes for the aggregation tree: one initial node plus
/// two per unique timestamp (Section 5.1 / Figure 2's counting argument).
pub fn estimate_tree_nodes(stats: &RelationStats) -> usize {
    2 * stats.unique_timestamps_or_default() + 1
}

/// Estimated peak nodes for the k-ordered tree: the 2k+1-tuple window's
/// worth of splits, inflated by the long-lived fraction (whose end-time
/// nodes linger — Section 6.2).
pub fn estimate_ktree_nodes(stats: &RelationStats, k: usize) -> usize {
    let window_nodes = 4 * (2 * k + 1) + 1;
    let long_lived_extra = (stats.long_lived_fraction * stats.tuple_count as f64) as usize * 2;
    window_nodes + long_lived_extra
}

/// Estimated cells for the linked list: one per unique timestamp plus one.
pub fn estimate_list_cells(stats: &RelationStats) -> usize {
    stats.unique_timestamps_or_default() + 1
}

/// Choose an algorithm for computing one instant-grouped temporal
/// aggregate over a relation with the given statistics.
///
/// `state_model_bytes` is the aggregate's per-node state size
/// (`Aggregate::state_model_bytes`, 4 for `COUNT`).
///
/// ```
/// use tempagg_plan::{plan, AlgorithmChoice, OrderingKnowledge, PlannerConfig, RelationStats};
///
/// let stats = RelationStats::unknown(64_000).with_ordering(OrderingKnowledge::Sorted);
/// let chosen = plan(&stats, &PlannerConfig::default(), 4);
/// assert_eq!(chosen.choice, AlgorithmChoice::KOrderedTree { k: 1, presort: false });
/// ```
pub fn plan(stats: &RelationStats, config: &PlannerConfig, state_model_bytes: usize) -> Plan {
    let node_bytes = model_node_bytes(state_model_bytes);
    let mut rationale = Vec::new();
    let parallelism = choose_parallelism(stats, config);
    if parallelism > 1 {
        rationale.push(format!(
            "{} tuples ≥ the parallel threshold of {}: partition the domain \
             {parallelism} ways and stitch at the seams",
            stats.tuple_count, config.parallel_min_tuples
        ));
    }

    // Rule 1: tiny results → linked list.
    if let Some(result_n) = stats.expected_result_intervals {
        if result_n <= config.small_result_threshold {
            rationale.push(format!(
                "expected result has only {result_n} constant intervals (≤ {}): \
                 the linked list's head scan is cheap and its state minimal",
                config.small_result_threshold
            ));
            return Plan {
                parallelism,
                choice: AlgorithmChoice::LinkedList,
                estimated_state_bytes: (result_n + 1) * node_bytes,
                rationale,
            };
        }
    }

    // Rules 2–4: exploit ordering.
    match stats.ordering {
        OrderingKnowledge::Sorted => {
            rationale.push(
                "relation is sorted by time: k-ordered aggregation tree with k = 1 \
                 gives one-pass evaluation with a constant-size window"
                    .into(),
            );
            return Plan {
                parallelism,
                choice: AlgorithmChoice::KOrderedTree {
                    k: 1,
                    presort: false,
                },
                estimated_state_bytes: estimate_ktree_nodes(stats, 1) * node_bytes,
                rationale,
            };
        }
        OrderingKnowledge::RetroactivelyBounded { equivalent_k } => {
            rationale.push(format!(
                "relation is declared retroactively bounded (equivalent k = {equivalent_k}): \
                 k-ordered aggregation tree applies directly, no sorting required"
            ));
            return Plan {
                parallelism,
                choice: AlgorithmChoice::KOrderedTree {
                    k: equivalent_k.max(1),
                    presort: false,
                },
                estimated_state_bytes: estimate_ktree_nodes(stats, equivalent_k.max(1))
                    * node_bytes,
                rationale,
            };
        }
        OrderingKnowledge::KOrdered { k }
            if k <= stats.tuple_count / config.k_usefulness_divisor.max(1) =>
        {
            rationale.push(format!(
                "relation is k-ordered with k = {k}: k-ordered aggregation tree \
                 garbage-collects everything outside a 2k+1 window"
            ));
            return Plan {
                parallelism,
                choice: AlgorithmChoice::KOrderedTree {
                    k: k.max(1),
                    presort: false,
                },
                estimated_state_bytes: estimate_ktree_nodes(stats, k.max(1)) * node_bytes,
                rationale,
            };
        }
        OrderingKnowledge::KOrdered { k } => {
            rationale.push(format!(
                "measured k = {k} is too large a fraction of n = {} to help",
                stats.tuple_count
            ));
        }
        OrderingKnowledge::Unordered | OrderingKnowledge::Unknown => {}
    }

    // Rule 5: unordered. Aggregation tree if memory allows and is cheap;
    // otherwise sort first and stream with k = 1.
    let tree_bytes = estimate_tree_nodes(stats) * node_bytes;
    let fits = config
        .memory_budget_bytes
        .map_or(true, |budget| tree_bytes <= budget);
    if fits && config.memory_cheaper_than_io {
        rationale.push(format!(
            "relation is unordered and the aggregation tree's estimated {tree_bytes} bytes \
             fit the budget: random insertion order keeps the tree balanced"
        ));
        Plan {
            parallelism,
            choice: AlgorithmChoice::AggregationTree,
            estimated_state_bytes: tree_bytes,
            rationale,
        }
    } else {
        if !fits {
            rationale.push(format!(
                "aggregation tree needs ~{tree_bytes} bytes, over the budget of {} bytes",
                config.memory_budget_bytes.unwrap_or(0)
            ));
        }
        if !config.memory_cheaper_than_io {
            rationale.push("disk I/O for a sort is configured cheaper than memory".into());
        }
        rationale.push(
            "sort the relation, then k-ordered aggregation tree with k = 1 \
             (the paper's 'simplest strategy')"
                .into(),
        );
        Plan {
            parallelism,
            choice: AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true,
            },
            estimated_state_bytes: estimate_ktree_nodes(stats, 1) * node_bytes,
            rationale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{OrderingKnowledge, RelationStats};

    fn stats(n: usize, ordering: OrderingKnowledge) -> RelationStats {
        RelationStats::unknown(n).with_ordering(ordering)
    }

    #[test]
    fn sorted_relation_gets_k1_tree() {
        let p = plan(
            &stats(10_000, OrderingKnowledge::Sorted),
            &PlannerConfig::default(),
            4,
        );
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false
            }
        );
        assert!(p.estimated_state_bytes < 1024);
    }

    #[test]
    fn retro_bounded_avoids_sorting() {
        let p = plan(
            &stats(
                10_000,
                OrderingKnowledge::RetroactivelyBounded { equivalent_k: 16 },
            ),
            &PlannerConfig::default(),
            4,
        );
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 16,
                presort: false
            }
        );
        assert!(p.rationale[0].contains("no sorting required"));
    }

    #[test]
    fn small_k_ordered_uses_ktree() {
        let p = plan(
            &stats(10_000, OrderingKnowledge::KOrdered { k: 40 }),
            &PlannerConfig::default(),
            4,
        );
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 40,
                presort: false
            }
        );
    }

    #[test]
    fn huge_k_falls_back_to_unordered_handling() {
        let p = plan(
            &stats(1_000, OrderingKnowledge::KOrdered { k: 900 }),
            &PlannerConfig::default(),
            4,
        );
        assert_eq!(p.choice, AlgorithmChoice::AggregationTree);
    }

    #[test]
    fn unordered_with_memory_uses_tree() {
        let p = plan(
            &stats(10_000, OrderingKnowledge::Unordered),
            &PlannerConfig::default(),
            4,
        );
        assert_eq!(p.choice, AlgorithmChoice::AggregationTree);
        // 2·(2n)+1 nodes × 16 bytes.
        assert_eq!(p.estimated_state_bytes, (2 * 20_000 + 1) * 16);
    }

    #[test]
    fn unordered_with_tight_budget_sorts_first() {
        let config = PlannerConfig {
            memory_budget_bytes: Some(10_000),
            ..Default::default()
        };
        let p = plan(&stats(10_000, OrderingKnowledge::Unordered), &config, 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
        assert!(p.rationale.iter().any(|r| r.contains("over the budget")));
    }

    #[test]
    fn expensive_memory_sorts_first() {
        let config = PlannerConfig {
            memory_cheaper_than_io: false,
            ..Default::default()
        };
        let p = plan(&stats(10_000, OrderingKnowledge::Unknown), &config, 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
    }

    #[test]
    fn tiny_result_prefers_linked_list() {
        let s = stats(1_000_000, OrderingKnowledge::Unordered).with_expected_result_intervals(12);
        let p = plan(&s, &PlannerConfig::default(), 4);
        assert_eq!(p.choice, AlgorithmChoice::LinkedList);
    }

    #[test]
    fn tiny_result_beats_sortedness_rules() {
        let s = stats(1_000_000, OrderingKnowledge::Sorted).with_expected_result_intervals(12);
        let p = plan(&s, &PlannerConfig::default(), 4);
        assert_eq!(p.choice, AlgorithmChoice::LinkedList);
    }

    #[test]
    fn explain_output_is_readable() {
        let p = plan(
            &stats(10_000, OrderingKnowledge::Sorted),
            &PlannerConfig::default(),
            4,
        );
        let text = p.to_string();
        assert!(text.contains("algorithm: k-ordered-tree"));
        assert!(text.contains("k = 1"));
        assert!(text.contains("estimated state"));
    }

    #[test]
    fn estimators_scale_sensibly() {
        let small = stats(1_000, OrderingKnowledge::Unordered);
        let large = stats(64_000, OrderingKnowledge::Unordered);
        assert!(estimate_tree_nodes(&large) > estimate_tree_nodes(&small));
        assert!(estimate_list_cells(&large) > estimate_list_cells(&small));
        // k-tree estimate grows with k but not with n (short-lived case).
        assert_eq!(
            estimate_ktree_nodes(&small, 1),
            estimate_ktree_nodes(&large, 1)
        );
        assert!(estimate_ktree_nodes(&small, 100) > estimate_ktree_nodes(&small, 1));
        // Long-lived tuples inflate the k-tree estimate.
        let mut ll = small;
        ll.long_lived_fraction = 0.8;
        assert!(estimate_ktree_nodes(&ll, 1) > estimate_ktree_nodes(&small, 1));
    }
}
