//! An explicit cost model for the three algorithms, and a cost-*based*
//! planner that ranks candidates numerically.
//!
//! Section 6.3 phrases algorithm choice as trade-offs ("depending on the
//! tradeoff between the cost of increased memory requirements and the cost
//! of disk access"); the rule-based [`crate::plan`] encodes its
//! conclusions directly, while this module derives them from first
//! principles — per-tuple work counts calibrated to the asymptotics the
//! paper measures:
//!
//! * linked list: each tuple scans ~half the current cell list — `Θ(n·c)`;
//! * aggregation tree: `Θ(n log c)` node visits on random input, but
//!   `Θ(n²)` on sorted/near-sorted input (the linear-tree worst case);
//! * k-ordered tree: `Θ(n (log w + g))` for a window of `w` nodes;
//! * a pre-sort adds `Θ(n log n)` CPU plus one extra relation scan of I/O.
//!
//! The two planners agreeing across the paper's scenarios is itself a
//! reproduction check (`tests in this module`).

use crate::planner::{AlgorithmChoice, Plan, PlannerConfig};
use crate::stats::{OrderingKnowledge, RelationStats};
use tempagg_algo::memory::model_node_bytes;

/// Relative cost weights. The defaults make one in-memory node visit the
/// unit; I/O is charged per tuple per scan, heavily weighted as disk I/O
/// is ~10⁴ node visits.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of touching one tree node or list cell.
    pub node_visit: f64,
    /// Cost of reading one tuple from storage, per scan.
    pub io_per_tuple: f64,
    /// CPU cost multiplier for comparison-sorting one tuple (× log₂ n).
    pub sort_per_tuple: f64,
    /// Cost charged per byte of peak algorithm state (models memory
    /// pressure; 0 when memory is free).
    pub per_state_byte: f64,
    /// Fixed cost (in node-visit units) of each domain partition in the
    /// parallel pipeline: worker setup, tuple clipping, and seam
    /// stitching. Gates [`CostModel::choose_parallelism`].
    pub partition_overhead: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            node_visit: 1.0,
            io_per_tuple: 50.0,
            sort_per_tuple: 2.0,
            per_state_byte: 0.0,
            partition_overhead: 5_000.0,
        }
    }
}

impl CostModel {
    /// The degree of parallelism that minimises `serial_cpu / p +
    /// p · partition_overhead` over `1 ≤ p ≤ max_partitions` — i.e. an
    /// even domain split is only worth its per-partition overhead when the
    /// CPU saved exceeds it. Returns 1 when no split pays off.
    pub fn choose_parallelism(&self, serial_cpu: f64, max_partitions: usize) -> usize {
        let mut best = (1usize, serial_cpu);
        for p in 2..=max_partitions.max(1) {
            let cost = serial_cpu / p as f64 + p as f64 * self.partition_overhead;
            if cost < best.1 {
                best = (p, cost);
            }
        }
        best.0
    }
}

/// A scored candidate plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CostEstimate {
    pub choice: AlgorithmChoice,
    pub cpu: f64,
    pub io: f64,
    pub state_bytes: usize,
}

impl CostEstimate {
    /// Total weighted cost.
    pub fn total(&self, model: &CostModel) -> f64 {
        self.cpu + self.io + self.state_bytes as f64 * model.per_state_byte
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Is the relation's ordering effectively sorted for tree-degeneration
/// purposes?
fn near_sorted(stats: &RelationStats) -> bool {
    matches!(
        stats.ordering,
        OrderingKnowledge::Sorted
            | OrderingKnowledge::KOrdered { .. }
            | OrderingKnowledge::RetroactivelyBounded { .. }
    )
}

/// Estimate the cost of one candidate.
pub fn estimate(
    choice: AlgorithmChoice,
    stats: &RelationStats,
    model: &CostModel,
    state_model_bytes: usize,
) -> CostEstimate {
    let n = stats.tuple_count.max(1) as f64;
    let cells = stats.unique_timestamps_or_default().max(1) as f64;
    let node_bytes = model_node_bytes(state_model_bytes);
    let scan_io = n * model.io_per_tuple;

    let (cpu, io, state_nodes) = match choice {
        AlgorithmChoice::LinkedList => {
            // Result-size cap from the query, if declared.
            let effective_cells = stats
                .expected_result_intervals
                .map_or(cells, |r| r as f64)
                .max(1.0);
            (
                n * effective_cells / 2.0 * model.node_visit,
                scan_io,
                effective_cells as usize + 1,
            )
        }
        AlgorithmChoice::AggregationTree => {
            let nodes = 2.0 * cells + 1.0;
            let cpu = if near_sorted(stats) {
                // Linear tree: the i-th insert walks ~i nodes.
                n * n / 2.0 * model.node_visit
            } else {
                n * log2(nodes) * model.node_visit
            };
            (cpu, scan_io, nodes as usize)
        }
        AlgorithmChoice::KOrderedTree { k, presort } => {
            let window_nodes = (4 * (2 * k + 1) + 1) as f64 + stats.long_lived_fraction * n * 2.0;
            let mut cpu = n * (log2(window_nodes) + 2.0) * model.node_visit;
            let mut io = scan_io;
            if presort {
                cpu += n * log2(n) * model.sort_per_tuple;
                io += scan_io; // write + re-read of the sorted run
            }
            (cpu, io, window_nodes as usize)
        }
    };
    CostEstimate {
        choice,
        cpu,
        io,
        state_bytes: state_nodes * node_bytes,
    }
}

/// Enumerate the sensible candidates for a relation.
fn candidates(stats: &RelationStats) -> Vec<AlgorithmChoice> {
    let mut out = vec![
        AlgorithmChoice::LinkedList,
        AlgorithmChoice::AggregationTree,
        AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: true,
        },
    ];
    match stats.ordering {
        OrderingKnowledge::Sorted => out.push(AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: false,
        }),
        OrderingKnowledge::KOrdered { k }
        | OrderingKnowledge::RetroactivelyBounded { equivalent_k: k } => {
            out.push(AlgorithmChoice::KOrderedTree {
                k: k.max(1),
                presort: false,
            });
        }
        _ => {}
    }
    out
}

/// Pick the cheapest candidate under the cost model, honouring the memory
/// budget. Returns a [`Plan`] whose rationale records the scores.
pub fn plan_by_cost(
    stats: &RelationStats,
    config: &PlannerConfig,
    model: &CostModel,
    state_model_bytes: usize,
) -> Plan {
    let mut scored: Vec<CostEstimate> = candidates(stats)
        .into_iter()
        .map(|c| estimate(c, stats, model, state_model_bytes))
        .filter(|e| {
            config
                .memory_budget_bytes
                .map_or(true, |budget| e.state_bytes <= budget)
        })
        .collect();
    // The linked list always fits some budget; if everything got filtered,
    // fall back to the smallest-state candidate.
    if scored.is_empty() {
        scored = candidates(stats)
            .into_iter()
            .map(|c| estimate(c, stats, model, state_model_bytes))
            .collect();
        scored.sort_by_key(|e| e.state_bytes);
        scored.truncate(1);
    }
    scored.sort_by(|a, b| {
        a.total(model)
            .partial_cmp(&b.total(model))
            // lint: allow(no-unwrap): cost formulas are sums and products of finite non-negative terms, never NaN
            .expect("costs are finite")
    });
    let best = scored[0].clone();
    let mut rationale: Vec<String> = scored
        .iter()
        .map(|e| {
            format!(
                "{}: cpu {:.0}, io {:.0}, state {} B, total {:.0}",
                e.choice.name(),
                e.cpu,
                e.io,
                e.state_bytes,
                e.total(model)
            )
        })
        .collect();
    // Degree of parallelism: the configured (or machine) worker count is
    // an upper bound; the overhead model decides how much of it pays off.
    let max_p = crate::planner::choose_parallelism(stats, config);
    let parallelism = model.choose_parallelism(best.cpu, max_p);
    if parallelism > 1 {
        rationale.push(format!(
            "splitting the domain {parallelism} ways trades {:.0} cpu for {:.0} partition overhead",
            best.cpu - best.cpu / parallelism as f64,
            parallelism as f64 * model.partition_overhead
        ));
    }
    Plan {
        choice: best.choice,
        parallelism,
        estimated_state_bytes: best.state_bytes,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use crate::stats::RelationStats;

    fn stats(n: usize, ordering: OrderingKnowledge) -> RelationStats {
        RelationStats::unknown(n).with_ordering(ordering)
    }

    fn cost_choice(stats: &RelationStats) -> AlgorithmChoice {
        plan_by_cost(stats, &PlannerConfig::default(), &CostModel::default(), 4).choice
    }

    #[test]
    fn agrees_with_rules_on_random_input() {
        let s = stats(10_000, OrderingKnowledge::Unordered);
        assert_eq!(cost_choice(&s), AlgorithmChoice::AggregationTree);
        assert_eq!(
            plan(&s, &PlannerConfig::default(), 4).choice,
            cost_choice(&s)
        );
    }

    #[test]
    fn agrees_with_rules_on_sorted_input() {
        let s = stats(10_000, OrderingKnowledge::Sorted);
        assert_eq!(
            cost_choice(&s),
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false
            }
        );
        assert_eq!(
            plan(&s, &PlannerConfig::default(), 4).choice,
            cost_choice(&s)
        );
    }

    #[test]
    fn agrees_with_rules_on_k_ordered_input() {
        let s = stats(10_000, OrderingKnowledge::KOrdered { k: 40 });
        assert_eq!(
            cost_choice(&s),
            AlgorithmChoice::KOrderedTree {
                k: 40,
                presort: false
            }
        );
    }

    #[test]
    fn tiny_results_favour_the_linked_list() {
        let s = stats(100_000, OrderingKnowledge::Unordered).with_expected_result_intervals(12);
        assert_eq!(cost_choice(&s), AlgorithmChoice::LinkedList);
    }

    #[test]
    fn sorted_input_never_gets_the_plain_tree() {
        // The n² estimate must dominate every realistic alternative.
        for n in [1_000usize, 10_000, 100_000] {
            let s = stats(n, OrderingKnowledge::Sorted);
            assert_ne!(cost_choice(&s), AlgorithmChoice::AggregationTree, "n = {n}");
        }
    }

    #[test]
    fn memory_budget_excludes_the_tree() {
        let s = stats(10_000, OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            memory_budget_bytes: Some(10_000),
            ..Default::default()
        };
        let p = plan_by_cost(&s, &config, &CostModel::default(), 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
        assert!(p.estimated_state_bytes <= 10_000);
    }

    #[test]
    fn charging_for_memory_prefers_the_ktree() {
        // With memory expensive enough, sort + stream beats the tree even
        // on random input — Section 6.3's trade-off, numerically.
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let expensive = CostModel {
            per_state_byte: 10.0,
            ..Default::default()
        };
        let p = plan_by_cost(&s, &PlannerConfig::default(), &expensive, 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
    }

    #[test]
    fn long_lived_fraction_inflates_ktree_state() {
        let mut s = stats(10_000, OrderingKnowledge::Sorted);
        let lean = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &s,
            &CostModel::default(),
            4,
        );
        s.long_lived_fraction = 0.8;
        let heavy = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &s,
            &CostModel::default(),
            4,
        );
        assert!(heavy.state_bytes > 100 * lean.state_bytes);
    }

    #[test]
    fn parallelism_pays_only_on_big_inputs() {
        let model = CostModel::default();
        // 1 000 node visits: any split costs more in overhead than it saves.
        assert_eq!(model.choose_parallelism(1_000.0, 8), 1);
        // 10 M node visits: splitting is clearly worth it.
        assert!(model.choose_parallelism(10_000_000.0, 8) > 1);
        // Never exceeds the cap.
        assert!(model.choose_parallelism(10_000_000.0, 3) <= 3);
        assert_eq!(model.choose_parallelism(10_000_000.0, 1), 1);
    }

    #[test]
    fn plan_by_cost_prescribes_parallelism_when_forced() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            parallelism: Some(4),
            parallel_min_tuples: 0,
            ..Default::default()
        };
        let p = plan_by_cost(&s, &config, &CostModel::default(), 4);
        assert_eq!(p.parallelism, 4);
        assert!(p.rationale.iter().any(|r| r.contains("partition overhead")));
        // Forcing serial always wins.
        let serial = PlannerConfig {
            parallelism: Some(1),
            ..config
        };
        assert_eq!(
            plan_by_cost(&s, &serial, &CostModel::default(), 4).parallelism,
            1
        );
    }

    #[test]
    fn rationale_lists_all_scored_candidates() {
        let s = stats(10_000, OrderingKnowledge::Sorted);
        let p = plan_by_cost(&s, &PlannerConfig::default(), &CostModel::default(), 4);
        assert!(p.rationale.len() >= 3);
        assert!(p.rationale[0].contains("total"));
    }
}
