//! An explicit cost model for the algorithms, and cost-*based* planners
//! that rank candidates numerically.
//!
//! Section 6.3 phrases algorithm choice as trade-offs ("depending on the
//! tradeoff between the cost of increased memory requirements and the cost
//! of disk access"); the rule-based [`crate::plan`] encodes its
//! conclusions directly, while this module derives them from first
//! principles — per-unit work counts calibrated to the asymptotics the
//! paper measures:
//!
//! * linked list: each tuple scans ~half the current cell list — `Θ(n·c)`;
//! * aggregation tree: `Θ(n log c)` node visits on random input, but
//!   `Θ(n²)` on sorted/near-sorted input (the linear-tree worst case);
//! * k-ordered tree: `Θ(n (log w + g))` for a window of `w` nodes;
//! * endpoint sweep: one `Θ(e log e)` unstable sort of `e = 2n` events
//!   plus a branch-light linear merge scan;
//! * a pre-sort adds `Θ(n log n)` CPU plus one extra relation scan of I/O.
//!
//! The constant in front of each asymptotic term is *calibrated*: the
//! `tempagg-bench` harness' `calibrate` command measures per-unit
//! nanosecond costs on the host and emits a [`Calibration`] profile
//! (`calibration.json` at the repo root holds committed defaults);
//! [`CostModel::calibrated`] normalises those into tree-node-visit units.
//!
//! Two planner entry points share the ranking machinery:
//!
//! * [`plan_by_cost`] scores only the paper's three algorithms, so that
//!   its agreement with the rule-based [`crate::plan`] across the paper's
//!   scenarios remains a reproduction check;
//! * [`choose_algorithm`] adds the endpoint-sweep kernel as a fourth
//!   candidate, gated on the aggregate's [`SweepClass`] (floating-point
//!   retraction is inexact, so `Approximate` aggregates never sweep).

use crate::planner::{AlgorithmChoice, Plan, PlannerConfig};
use crate::stats::{OrderingKnowledge, RelationStats};
use tempagg_agg::SweepClass;
use tempagg_algo::memory::{model_node_bytes, MODEL_POINTER_BYTES};

/// Relative cost weights. One aggregation-tree node visit is the unit;
/// the per-algorithm constants are the calibrated ratios of each
/// algorithm's per-unit work to that unit (see [`CostModel::calibrated`]).
/// I/O is charged per tuple per scan, heavily weighted as disk I/O is
/// orders of magnitude above any in-memory unit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostModel {
    /// Cost of touching one linked-list cell (sequential scan: cheaper
    /// than a tree descent step).
    pub list_cell_visit: f64,
    /// Cost of touching one aggregation-tree node — the unit (1.0).
    pub tree_node_visit: f64,
    /// Cost of touching one k-ordered-tree node (the 2k+1 window stays
    /// cache-resident, so visits are cheaper than cold tree descents).
    pub ktree_node_visit: f64,
    /// Sort cost per endpoint event per `log₂ e` (the sweep's dominant
    /// term: one `sort_unstable` over `e = 2n` events).
    pub sweep_sort_per_event: f64,
    /// Sort cost per endpoint event per `log₂ e` when the sweep takes its
    /// cache-partitioned path (radix scatter into time-bucketed runs,
    /// per-run `sort_unstable` across workers). The whole term divides by
    /// the degree of parallelism; see [`Calibration::parallel_sort_ns`].
    pub parallel_sort_per_event: f64,
    /// Cost of applying one endpoint event in the sweep's merge scan
    /// (delta add/subtract for `SweepClass::Delta` aggregates).
    pub sweep_event_visit: f64,
    /// Multiplier on [`sweep_event_visit`](Self::sweep_event_visit) for
    /// `SweepClass::Ordered` aggregates, whose active set is a sorted
    /// multiset rather than a running delta.
    pub ordered_active_multiplier: f64,
    /// Cost of reading one tuple from storage, per scan (the legacy
    /// per-tuple I/O charge, used when nothing is known about the
    /// relation's page layout).
    pub io_per_tuple: f64,
    /// Cost of reading one page from a paged backing file. When
    /// [`RelationStats::pages`] is known, scans are charged per page
    /// actually read (fence pruning shrinks that count) instead of per
    /// tuple.
    pub page_read: f64,
    /// CPU cost multiplier for comparison-sorting one *tuple* in a
    /// presort (× log₂ n; tuples are wider than the sweep's bare events).
    pub sort_per_tuple: f64,
    /// Cost charged per byte of peak algorithm state (models memory
    /// pressure; 0 when memory is free).
    pub per_state_byte: f64,
    /// Fixed cost (in node-visit units) of each domain partition in the
    /// parallel pipeline: worker setup, tuple clipping, and seam
    /// stitching. Gates [`CostModel::choose_parallelism`].
    pub partition_overhead: f64,
    /// Cost of touching one window-index node during a probe's
    /// partial-overlap descent (a window probe folds ≤ `2 log₂ runs` of
    /// them). Calibrated from [`Calibration::index_probe_ns`].
    pub index_probe_visit: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated(&Calibration::default())
    }
}

/// Measured per-unit costs in nanoseconds, as produced by the harness'
/// `calibrate` command. The committed defaults (`calibration.json`, also
/// `Calibration::default()`) were measured on the development host; rerun
/// `harness calibrate` to adapt the planner to new hardware.
///
/// The profile is stored as flat JSON — one number per key — and parsed
/// without any external dependency:
///
/// ```text
/// {
///   "list_cell_ns": 10.0,
///   "tree_node_ns": 20.0,
///   "ktree_node_ns": 7.0,
///   "sweep_sort_ns": 4.0,
///   "sweep_event_ns": 2.0,
///   "parallel_sort_ns": 2.0
/// }
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// ns per linked-list cell visit.
    pub list_cell_ns: f64,
    /// ns per aggregation-tree node visit.
    pub tree_node_ns: f64,
    /// ns per k-ordered-tree node visit.
    pub ktree_node_ns: f64,
    /// ns per endpoint event per log₂ e, in the sweep's sort.
    pub sweep_sort_ns: f64,
    /// ns per endpoint event in the sweep's merge scan.
    pub sweep_event_ns: f64,
    /// ns per endpoint event per log₂ e on the sweep's cache-partitioned
    /// sort path (before dividing by the worker count).
    pub parallel_sort_ns: f64,
    /// ns to read and decode one page of a paged relation file
    /// (positioned read + checksum + columnar decode).
    pub page_read_ns: f64,
    /// ns per window-index node folded during a probe descent.
    pub index_probe_ns: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            list_cell_ns: 10.0,
            tree_node_ns: 20.0,
            ktree_node_ns: 7.0,
            sweep_sort_ns: 4.0,
            sweep_event_ns: 2.0,
            parallel_sort_ns: 2.0,
            page_read_ns: 4000.0,
            index_probe_ns: 25.0,
        }
    }
}

impl Calibration {
    /// Parse a flat-JSON calibration profile. Unknown keys are rejected
    /// (they signal a stale or foreign profile); missing keys keep their
    /// defaults so older profiles stay loadable.
    pub fn parse(text: &str) -> std::result::Result<Calibration, String> {
        let body = text
            .trim()
            .strip_prefix('{')
            .and_then(|t| t.trim_end().strip_suffix('}'))
            .ok_or_else(|| "calibration profile must be a JSON object".to_owned())?;
        let mut cal = Calibration::default();
        for entry in body.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once(':')
                .ok_or_else(|| format!("malformed calibration entry: {entry:?}"))?;
            let key = key.trim().trim_matches('"');
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("calibration value for {key:?} is not a number"))?;
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("calibration value for {key:?} must be positive"));
            }
            match key {
                "list_cell_ns" => cal.list_cell_ns = value,
                "tree_node_ns" => cal.tree_node_ns = value,
                "ktree_node_ns" => cal.ktree_node_ns = value,
                "sweep_sort_ns" => cal.sweep_sort_ns = value,
                "sweep_event_ns" => cal.sweep_event_ns = value,
                "parallel_sort_ns" => cal.parallel_sort_ns = value,
                "page_read_ns" => cal.page_read_ns = value,
                "index_probe_ns" => cal.index_probe_ns = value,
                other => return Err(format!("unknown calibration key {other:?}")),
            }
        }
        Ok(cal)
    }

    /// Serialise back to the flat-JSON profile format.
    pub fn emit(&self) -> String {
        format!(
            "{{\n  \"list_cell_ns\": {:.3},\n  \"tree_node_ns\": {:.3},\n  \
             \"ktree_node_ns\": {:.3},\n  \"sweep_sort_ns\": {:.3},\n  \
             \"sweep_event_ns\": {:.3},\n  \"parallel_sort_ns\": {:.3},\n  \
             \"page_read_ns\": {:.3},\n  \"index_probe_ns\": {:.3}\n}}\n",
            self.list_cell_ns,
            self.tree_node_ns,
            self.ktree_node_ns,
            self.sweep_sort_ns,
            self.sweep_event_ns,
            self.parallel_sort_ns,
            self.page_read_ns,
            self.index_probe_ns
        )
    }

    /// Load a profile from disk (e.g. the committed `calibration.json`).
    pub fn load(path: &std::path::Path) -> std::result::Result<Calibration, String> {
        let text = tempagg_core::pager::read_to_string(path).map_err(|e| e.to_string())?;
        Calibration::parse(&text)
    }
}

impl CostModel {
    /// Build a cost model from measured per-unit nanosecond costs: the
    /// aggregation-tree node visit becomes the unit (1.0) and every other
    /// constant the measured ratio to it. The I/O, presort, memory, and
    /// partition weights are policy rather than measurement and keep
    /// their defaults.
    pub fn calibrated(cal: &Calibration) -> CostModel {
        let unit = cal.tree_node_ns.max(f64::MIN_POSITIVE);
        CostModel {
            list_cell_visit: cal.list_cell_ns / unit,
            tree_node_visit: 1.0,
            ktree_node_visit: cal.ktree_node_ns / unit,
            sweep_sort_per_event: cal.sweep_sort_ns / unit,
            parallel_sort_per_event: cal.parallel_sort_ns / unit,
            sweep_event_visit: cal.sweep_event_ns / unit,
            ordered_active_multiplier: 8.0,
            io_per_tuple: 50.0,
            page_read: cal.page_read_ns / unit,
            sort_per_tuple: 2.0,
            per_state_byte: 0.0,
            partition_overhead: 5_000.0,
            index_probe_visit: cal.index_probe_ns / unit,
        }
    }

    /// The degree of parallelism that minimises `serial_cpu / p +
    /// p · partition_overhead` over `1 ≤ p ≤ max_partitions` — i.e. an
    /// even domain split is only worth its per-partition overhead when the
    /// CPU saved exceeds it. Returns 1 when no split pays off.
    pub fn choose_parallelism(&self, serial_cpu: f64, max_partitions: usize) -> usize {
        let mut best = (1usize, serial_cpu);
        for p in 2..=max_partitions.max(1) {
            let cost = serial_cpu / p as f64 + p as f64 * self.partition_overhead;
            if cost < best.1 {
                best = (p, cost);
            }
        }
        best.0
    }
}

/// A scored candidate plan.
#[derive(Clone, Debug, PartialEq)]
pub struct CostEstimate {
    pub choice: AlgorithmChoice,
    pub cpu: f64,
    pub io: f64,
    pub state_bytes: usize,
}

impl CostEstimate {
    /// Total weighted cost.
    pub fn total(&self, model: &CostModel) -> f64 {
        self.cpu + self.io + self.state_bytes as f64 * model.per_state_byte
    }
}

fn log2(x: f64) -> f64 {
    x.max(2.0).log2()
}

/// Is the relation's ordering effectively sorted for tree-degeneration
/// purposes?
fn near_sorted(stats: &RelationStats) -> bool {
    matches!(
        stats.ordering,
        OrderingKnowledge::Sorted
            | OrderingKnowledge::KOrdered { .. }
            | OrderingKnowledge::RetroactivelyBounded { .. }
    )
}

/// Estimate the cost of one candidate. `class` only affects the
/// [`AlgorithmChoice::Sweep`] arm: `Ordered` aggregates pay the sorted
/// multiset multiplier, and `Approximate` ones a prohibitive penalty
/// (selection gates them out of the candidate set anyway).
pub fn estimate(
    choice: AlgorithmChoice,
    stats: &RelationStats,
    model: &CostModel,
    state_model_bytes: usize,
    class: SweepClass,
) -> CostEstimate {
    let n = stats.tuple_count.max(1) as f64;
    let cells = stats.unique_timestamps_or_default().max(1) as f64;
    let node_bytes = model_node_bytes(state_model_bytes);
    // One relation scan: per page actually read when the page layout is
    // known (fence pruning shrinks that count), per tuple otherwise.
    let scan_io = match stats.pages {
        Some(pages) => {
            let read = stats.pages_in_window.unwrap_or(pages).min(pages);
            read.max(1) as f64 * model.page_read
        }
        None => n * model.io_per_tuple,
    };

    let (cpu, io, state_bytes) = match choice {
        AlgorithmChoice::LinkedList => {
            // Result-size cap from the query, if declared.
            let effective_cells = stats
                .expected_result_intervals
                .map_or(cells, |r| r as f64)
                .max(1.0);
            (
                n * effective_cells / 2.0 * model.list_cell_visit,
                scan_io,
                (effective_cells as usize + 1) * node_bytes,
            )
        }
        AlgorithmChoice::AggregationTree => {
            let nodes = 2.0 * cells + 1.0;
            let cpu = if near_sorted(stats) {
                // Linear tree: the i-th insert walks ~i nodes.
                n * n / 2.0 * model.tree_node_visit
            } else {
                n * log2(nodes) * model.tree_node_visit
            };
            (cpu, scan_io, nodes as usize * node_bytes)
        }
        AlgorithmChoice::Sweep => {
            let events = 2.0 * n;
            let event_visit = match class {
                SweepClass::Delta => model.sweep_event_visit,
                SweepClass::Ordered => model.sweep_event_visit * model.ordered_active_multiplier,
                // Never a real candidate (retraction would drift); keep the
                // estimate finite so direct calls still sort cleanly.
                SweepClass::Approximate => model.sweep_event_visit * 1e9,
            };
            let cpu = events * log2(events) * model.sweep_sort_per_event + events * event_visit;
            // State is the buffered columnar runs themselves: two
            // timestamps (one model pointer's worth) plus the value per
            // tuple — the sweep holds no per-cell nodes.
            let run_bytes = MODEL_POINTER_BYTES + state_model_bytes;
            (cpu, scan_io, stats.tuple_count.max(1) * run_bytes)
        }
        AlgorithmChoice::SweepJoin => {
            // Both relations' endpoints co-sorted into one event array
            // (`stats` carries the combined tuple count); each admit then
            // enumerates the other side's live set, which behaves like the
            // ordered-class active set rather than a delta update.
            let events = 2.0 * n;
            let cpu = events * log2(events) * model.sweep_sort_per_event
                + events * model.sweep_event_visit * model.ordered_active_multiplier;
            let run_bytes = MODEL_POINTER_BYTES + state_model_bytes;
            (cpu, scan_io, stats.tuple_count.max(1) * run_bytes)
        }
        AlgorithmChoice::KOrderedTree { k, presort } => {
            let window_nodes = (4 * (2 * k + 1) + 1) as f64 + stats.long_lived_fraction * n * 2.0;
            let mut cpu = n * (log2(window_nodes) + 2.0) * model.ktree_node_visit;
            let mut io = scan_io;
            if presort {
                cpu += n * log2(n) * model.sort_per_tuple;
                io += scan_io; // write + re-read of the sorted run
            }
            (cpu, io, window_nodes as usize * node_bytes)
        }
        AlgorithmChoice::CachedSeries => match stats.cached_series {
            // Serving reads the already-maintained runs: no relation scan,
            // no algorithm state — just one pass over the cached series.
            Some(info) => (info.runs.max(1) as f64 * model.sweep_event_visit, 0.0, 0),
            // No cache exists; keep the estimate finite but prohibitive so
            // direct calls still rank cleanly (selection never offers this
            // candidate without a cache).
            None => (n * model.tree_node_visit * 1e9, scan_io, 0),
        },
        AlgorithmChoice::IndexProbe => match stats.cached_series {
            // A window probe resolves two edge leaves and folds at most
            // 2 log₂ runs interior nodes of the cached series' index: no
            // relation scan, no per-query state (the index lives in the
            // store with the cache it shadows).
            Some(info) => {
                let descents = 2.0 * log2(info.runs.max(1) as f64);
                (descents * model.index_probe_visit, 0.0, 0)
            }
            // No cache means no index to probe; prohibitive, like
            // CachedSeries without a cache.
            None => (n * model.tree_node_visit * 1e9, scan_io, 0),
        },
    };
    CostEstimate {
        choice,
        cpu,
        io,
        state_bytes,
    }
}

/// Enumerate the paper's sensible candidates for a relation.
fn candidates(stats: &RelationStats) -> Vec<AlgorithmChoice> {
    let mut out = vec![
        AlgorithmChoice::LinkedList,
        AlgorithmChoice::AggregationTree,
        AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: true,
        },
    ];
    match stats.ordering {
        OrderingKnowledge::Sorted => out.push(AlgorithmChoice::KOrderedTree {
            k: 1,
            presort: false,
        }),
        OrderingKnowledge::KOrdered { k }
        | OrderingKnowledge::RetroactivelyBounded { equivalent_k: k } => {
            out.push(AlgorithmChoice::KOrderedTree {
                k: k.max(1),
                presort: false,
            });
        }
        _ => {}
    }
    out
}

/// Re-cost a serial estimate at the cheapest achievable degree of
/// parallelism `≤ max_p`, returning the adjusted estimate and the chosen
/// worker count. Non-sweep candidates parallelise through the partitioned
/// pipeline (`cpu/p + p·overhead`, [`CostModel::choose_parallelism`]). The
/// sweeps are special-cased: their dominant sort term runs partitioned
/// in-kernel (radix scatter + per-bucket `sort_unstable`, costed at
/// [`CostModel::parallel_sort_per_event`]) and divides by `p`, while the
/// merge scan stays serial. Serving a cached snapshot never partitions.
fn parallelise(
    est: CostEstimate,
    stats: &RelationStats,
    model: &CostModel,
    max_p: usize,
) -> (CostEstimate, usize) {
    if max_p <= 1 {
        return (est, 1);
    }
    match est.choice {
        AlgorithmChoice::CachedSeries | AlgorithmChoice::IndexProbe => (est, 1),
        AlgorithmChoice::Sweep | AlgorithmChoice::SweepJoin => {
            let n = stats.tuple_count.max(1) as f64;
            let events = 2.0 * n;
            let serial_sort = events * log2(events) * model.sweep_sort_per_event;
            let scan = est.cpu - serial_sort;
            let mut best = (est.cpu, 1usize);
            for p in 2..=max_p {
                let sort = events * log2(events) * model.parallel_sort_per_event / p as f64;
                let cost = scan + sort + p as f64 * model.partition_overhead;
                if cost < best.0 {
                    best = (cost, p);
                }
            }
            let (cpu, parallelism) = best;
            (CostEstimate { cpu, ..est }, parallelism)
        }
        _ => {
            let p = model.choose_parallelism(est.cpu, max_p);
            if p <= 1 {
                return (est, 1);
            }
            let cpu = est.cpu / p as f64 + p as f64 * model.partition_overhead;
            (CostEstimate { cpu, ..est }, p)
        }
    }
}

/// Rank `pool` under the cost model, honouring the memory budget, and
/// wrap the winner in a [`Plan`] whose rationale records every score.
/// Each candidate is costed at its own best achievable degree of
/// parallelism (the fix for the sweep being costed as serial: with
/// workers available, its sort term divides by `p` *before* ranking, so
/// a parallel sweep can beat a serially-cheaper tree).
fn rank(
    pool: Vec<AlgorithmChoice>,
    stats: &RelationStats,
    config: &PlannerConfig,
    model: &CostModel,
    state_model_bytes: usize,
    class: SweepClass,
) -> Plan {
    // The configured (or machine) worker count is an upper bound; the
    // overhead model decides, per candidate, how much of it pays off.
    let max_p = crate::planner::choose_parallelism(stats, config);
    let score = |choices: Vec<AlgorithmChoice>| -> Vec<(CostEstimate, usize)> {
        choices
            .into_iter()
            .map(|c| {
                let serial = estimate(c, stats, model, state_model_bytes, class);
                parallelise(serial, stats, model, max_p)
            })
            .collect()
    };
    let mut scored: Vec<(CostEstimate, usize)> = score(pool.clone())
        .into_iter()
        .filter(|(e, _)| {
            config
                .memory_budget_bytes
                .map_or(true, |budget| e.state_bytes <= budget)
        })
        .collect();
    // The linked list always fits some budget; if everything got filtered,
    // fall back to the smallest-state candidate.
    if scored.is_empty() {
        scored = score(pool);
        scored.sort_by_key(|(e, _)| e.state_bytes);
        scored.truncate(1);
    }
    scored.sort_by(|(a, _), (b, _)| {
        a.total(model)
            .partial_cmp(&b.total(model))
            // lint: allow(no-unwrap): cost formulas are sums and products of finite non-negative terms, never NaN
            .expect("costs are finite")
    });
    let (best, parallelism) = scored[0].clone();
    let mut rationale: Vec<String> = scored
        .iter()
        .map(|(e, p)| {
            format!(
                "{}: cpu {:.0}, io {:.0}, state {} B, total {:.0}{}",
                e.choice.name(),
                e.cpu,
                e.io,
                e.state_bytes,
                e.total(model),
                if *p > 1 {
                    format!(" (at p = {p})")
                } else {
                    String::new()
                }
            )
        })
        .collect();
    if parallelism > 1 {
        rationale.push(format!(
            "splitting the work {parallelism} ways pays its {:.0} partition overhead",
            parallelism as f64 * model.partition_overhead
        ));
    }
    if let Some(pages) = stats.pages {
        rationale.push(match stats.pages_in_window {
            Some(read) if read < pages => {
                format!("reads {read} of {pages} pages (fence-pruned)")
            }
            _ => format!("reads all {pages} pages (no fence pruning applies)"),
        });
    }
    Plan {
        choice: best.choice,
        parallelism,
        estimated_state_bytes: best.state_bytes,
        rationale,
    }
}

/// Pick the cheapest of the *paper's* candidates under the cost model,
/// honouring the memory budget. Returns a [`Plan`] whose rationale records
/// the scores. The two planners agreeing across the paper's scenarios is a
/// reproduction check; production selection (which also knows the
/// endpoint-sweep kernel) is [`choose_algorithm`].
pub fn plan_by_cost(
    stats: &RelationStats,
    config: &PlannerConfig,
    model: &CostModel,
    state_model_bytes: usize,
) -> Plan {
    rank(
        candidates(stats),
        stats,
        config,
        model,
        state_model_bytes,
        SweepClass::Delta,
    )
}

/// Full cost-based algorithm selection: the paper's three algorithms plus
/// the columnar endpoint-sweep kernel, chosen from the relation's size and
/// sortedness and the aggregate's [`SweepClass`] (its retraction
/// behaviour). `Approximate` aggregates — floating-point sums and
/// averages, variance — never sweep, because retracting their active state
/// drifts; everything else competes on calibrated cost. When
/// [`RelationStats::cached_series`] reports a store-maintained cache of
/// the queried aggregate, [`AlgorithmChoice::CachedSeries`] joins the
/// pool — serving an MVCC snapshot costs one pass over the cached runs
/// and zero I/O, so it wins whenever a cache exists.
///
/// ```
/// use tempagg_agg::SweepClass;
/// use tempagg_plan::{
///     choose_algorithm, AlgorithmChoice, CostModel, OrderingKnowledge, PlannerConfig,
///     RelationStats,
/// };
///
/// let stats = RelationStats::unknown(100_000).with_ordering(OrderingKnowledge::Unordered);
/// let plan = choose_algorithm(
///     &stats,
///     SweepClass::Delta,
///     &PlannerConfig::default(),
///     &CostModel::default(),
///     4,
/// );
/// assert_eq!(plan.choice, AlgorithmChoice::Sweep);
/// assert!(plan.to_string().starts_with("algorithm: endpoint-sweep"));
/// ```
pub fn choose_algorithm(
    stats: &RelationStats,
    class: SweepClass,
    config: &PlannerConfig,
    model: &CostModel,
    state_model_bytes: usize,
) -> Plan {
    let mut pool = candidates(stats);
    let sweep_eligible = class != SweepClass::Approximate;
    if sweep_eligible {
        pool.push(AlgorithmChoice::Sweep);
    }
    if stats.cached_series.is_some() {
        pool.push(AlgorithmChoice::CachedSeries);
    }
    let mut plan = rank(pool, stats, config, model, state_model_bytes, class);
    if let Some(info) = stats.cached_series {
        plan.rationale.push(format!(
            "store maintains this aggregate incrementally: {} cached runs at epoch {} can be \
             served as an MVCC snapshot without scanning",
            info.runs, info.epoch
        ));
    }
    plan.rationale.push(match class {
        SweepClass::Delta => "aggregate retracts exactly (delta class): sweep eligible".into(),
        SweepClass::Ordered => {
            "aggregate retracts via a sorted multiset (ordered class): sweep eligible at a \
             multiplier"
                .into()
        }
        SweepClass::Approximate => {
            "aggregate does not retract exactly (approximate class): endpoint sweep excluded".into()
        }
    });
    plan
}

/// Algorithm selection for *window* queries (`... OVER [t1, t2)`): when a
/// warm cache exists and the aggregate is indexable (exact integer
/// combine — the delta `COUNT`/`SUM` family and the ordered `MIN`/`MAX`;
/// `Approximate` aggregates are not, because tree-order float summation
/// would not be byte-identical to a scan), the store's segment-tree
/// window index competes with a linear pass over the cached series and
/// wins once the series has enough runs for `O(log n)` to beat `O(n)`.
/// Without a warm cache (or for unindexable aggregates) selection falls
/// back to [`choose_algorithm`] — fence-pruned paged scan, sweep, or a
/// tree — to compute the series that a linear window scan then reduces.
pub fn choose_window_algorithm(
    stats: &RelationStats,
    class: SweepClass,
    indexable: bool,
    config: &PlannerConfig,
    model: &CostModel,
    state_model_bytes: usize,
) -> Plan {
    if stats.cached_series.is_some() && indexable {
        let pool = vec![AlgorithmChoice::IndexProbe, AlgorithmChoice::CachedSeries];
        let mut plan = rank(pool, stats, config, model, state_model_bytes, class);
        if let Some(info) = stats.cached_series {
            plan.rationale.push(format!(
                "window query over a warm cache: the segment-tree index answers in \
                 ≤ 2·log₂({}) node folds instead of a {}-run linear scan",
                info.runs.max(1),
                info.runs
            ));
        }
        plan
    } else {
        let mut plan = choose_algorithm(stats, class, config, model, state_model_bytes);
        plan.rationale.push(if stats.cached_series.is_none() {
            "window query with no warm cache: compute the series first, then reduce the \
             window linearly"
                .into()
        } else {
            "window query on an unindexable aggregate (inexact float combine): linear window \
             reduction over the cached series"
                .into()
        });
        plan
    }
}

/// Price a sweep-based interval join of two relations. The sweep join is
/// currently the only join operator, so this prescribes rather than
/// chooses: it costs co-sorting `2·(nₗ + nᵣ)` endpoint events at the
/// achievable parallelism plus the serial live-set enumeration scan, and
/// its rationale feeds the SQL layer's `EXPLAIN`.
pub fn plan_join(
    left: &RelationStats,
    right: &RelationStats,
    config: &PlannerConfig,
    model: &CostModel,
) -> Plan {
    let combined = RelationStats::unknown(left.tuple_count + right.tuple_count);
    let max_p = crate::planner::choose_parallelism(&combined, config);
    let serial = estimate(
        AlgorithmChoice::SweepJoin,
        &combined,
        model,
        MODEL_POINTER_BYTES,
        SweepClass::Delta,
    );
    let (est, parallelism) = parallelise(serial, &combined, model, max_p);
    let mut rationale = vec![
        format!(
            "co-sorts {} endpoint events from both sides into one sweep",
            2 * combined.tuple_count
        ),
        format!(
            "{}: cpu {:.0}, io {:.0}, state {} B, total {:.0}",
            est.choice.name(),
            est.cpu,
            est.io,
            est.state_bytes,
            est.total(model)
        ),
    ];
    if parallelism > 1 {
        rationale.push(format!(
            "endpoint sort runs {parallelism}-way partitioned; the join scan stays serial"
        ));
    }
    Plan {
        choice: AlgorithmChoice::SweepJoin,
        parallelism,
        estimated_state_bytes: est.state_bytes,
        rationale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan;
    use crate::stats::RelationStats;

    fn stats(n: usize, ordering: OrderingKnowledge) -> RelationStats {
        RelationStats::unknown(n).with_ordering(ordering)
    }

    fn cost_choice(stats: &RelationStats) -> AlgorithmChoice {
        plan_by_cost(stats, &PlannerConfig::default(), &CostModel::default(), 4).choice
    }

    fn full_choice(stats: &RelationStats, class: SweepClass) -> AlgorithmChoice {
        choose_algorithm(
            stats,
            class,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        )
        .choice
    }

    #[test]
    fn agrees_with_rules_on_random_input() {
        let s = stats(10_000, OrderingKnowledge::Unordered);
        assert_eq!(cost_choice(&s), AlgorithmChoice::AggregationTree);
        assert_eq!(
            plan(&s, &PlannerConfig::default(), 4).choice,
            cost_choice(&s)
        );
    }

    #[test]
    fn agrees_with_rules_on_sorted_input() {
        let s = stats(10_000, OrderingKnowledge::Sorted);
        assert_eq!(
            cost_choice(&s),
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false
            }
        );
        assert_eq!(
            plan(&s, &PlannerConfig::default(), 4).choice,
            cost_choice(&s)
        );
    }

    #[test]
    fn agrees_with_rules_on_k_ordered_input() {
        let s = stats(10_000, OrderingKnowledge::KOrdered { k: 40 });
        assert_eq!(
            cost_choice(&s),
            AlgorithmChoice::KOrderedTree {
                k: 40,
                presort: false
            }
        );
    }

    #[test]
    fn tiny_results_favour_the_linked_list() {
        let s = stats(100_000, OrderingKnowledge::Unordered).with_expected_result_intervals(12);
        assert_eq!(cost_choice(&s), AlgorithmChoice::LinkedList);
    }

    #[test]
    fn sorted_input_never_gets_the_plain_tree() {
        // The n² estimate must dominate every realistic alternative.
        for n in [1_000usize, 10_000, 100_000] {
            let s = stats(n, OrderingKnowledge::Sorted);
            assert_ne!(cost_choice(&s), AlgorithmChoice::AggregationTree, "n = {n}");
        }
    }

    #[test]
    fn memory_budget_excludes_the_tree() {
        let s = stats(10_000, OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            memory_budget_bytes: Some(10_000),
            ..Default::default()
        };
        let p = plan_by_cost(&s, &config, &CostModel::default(), 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
        assert!(p.estimated_state_bytes <= 10_000);
    }

    #[test]
    fn charging_for_memory_prefers_the_ktree() {
        // With memory expensive enough, sort + stream beats the tree even
        // on random input — Section 6.3's trade-off, numerically.
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let expensive = CostModel {
            per_state_byte: 10.0,
            ..Default::default()
        };
        let p = plan_by_cost(&s, &PlannerConfig::default(), &expensive, 4);
        assert_eq!(
            p.choice,
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: true
            }
        );
    }

    #[test]
    fn long_lived_fraction_inflates_ktree_state() {
        let mut s = stats(10_000, OrderingKnowledge::Sorted);
        let lean = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &s,
            &CostModel::default(),
            4,
            SweepClass::Delta,
        );
        s.long_lived_fraction = 0.8;
        let heavy = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &s,
            &CostModel::default(),
            4,
            SweepClass::Delta,
        );
        assert!(heavy.state_bytes > 100 * lean.state_bytes);
    }

    #[test]
    fn parallelism_pays_only_on_big_inputs() {
        let model = CostModel::default();
        // 1 000 node visits: any split costs more in overhead than it saves.
        assert_eq!(model.choose_parallelism(1_000.0, 8), 1);
        // 10 M node visits: splitting is clearly worth it.
        assert!(model.choose_parallelism(10_000_000.0, 8) > 1);
        // Never exceeds the cap.
        assert!(model.choose_parallelism(10_000_000.0, 3) <= 3);
        assert_eq!(model.choose_parallelism(10_000_000.0, 1), 1);
    }

    #[test]
    fn plan_by_cost_prescribes_parallelism_when_forced() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let config = PlannerConfig {
            parallelism: Some(4),
            parallel_min_tuples: 0,
            ..Default::default()
        };
        let p = plan_by_cost(&s, &config, &CostModel::default(), 4);
        assert_eq!(p.parallelism, 4);
        assert!(p.rationale.iter().any(|r| r.contains("partition overhead")));
        // Forcing serial always wins.
        let serial = PlannerConfig {
            parallelism: Some(1),
            ..config
        };
        assert_eq!(
            plan_by_cost(&s, &serial, &CostModel::default(), 4).parallelism,
            1
        );
    }

    #[test]
    fn rationale_lists_all_scored_candidates() {
        let s = stats(10_000, OrderingKnowledge::Sorted);
        let p = plan_by_cost(&s, &PlannerConfig::default(), &CostModel::default(), 4);
        assert!(p.rationale.len() >= 3);
        assert!(p.rationale[0].contains("total"));
    }

    #[test]
    fn sweep_wins_large_unsorted_delta_aggregates() {
        // The acceptance scenario: COUNT/SUM over a large unordered
        // relation routes to the sweep under the calibrated defaults.
        for n in [10_000usize, 100_000, 1_000_000] {
            let s = stats(n, OrderingKnowledge::Unordered);
            assert_eq!(
                full_choice(&s, SweepClass::Delta),
                AlgorithmChoice::Sweep,
                "n = {n}"
            );
        }
    }

    #[test]
    fn ordered_class_still_sweeps_when_unordered() {
        // MIN/MAX pay the multiset multiplier but the tree's cold node
        // visits still lose on large random input.
        let s = stats(100_000, OrderingKnowledge::Unordered);
        assert_eq!(full_choice(&s, SweepClass::Ordered), AlgorithmChoice::Sweep);
    }

    #[test]
    fn k_ordered_streams_keep_the_ktree() {
        // The other acceptance scenario: a k-ordered stream keeps the
        // constant-window k-tree — no point buffering everything to sort
        // what is already nearly sorted.
        for n in [10_000usize, 100_000] {
            let s = stats(n, OrderingKnowledge::KOrdered { k: 16 });
            assert_eq!(
                full_choice(&s, SweepClass::Delta),
                AlgorithmChoice::KOrderedTree {
                    k: 16,
                    presort: false
                },
                "n = {n}"
            );
        }
        let sorted = stats(100_000, OrderingKnowledge::Sorted);
        assert_eq!(
            full_choice(&sorted, SweepClass::Delta),
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false
            }
        );
    }

    #[test]
    fn approximate_aggregates_never_sweep() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let p = choose_algorithm(
            &s,
            SweepClass::Approximate,
            &PlannerConfig::default(),
            &CostModel::default(),
            8,
        );
        assert_eq!(p.choice, AlgorithmChoice::AggregationTree);
        assert!(p
            .rationale
            .iter()
            .any(|r| r.contains("endpoint sweep excluded")));
    }

    #[test]
    fn tiny_results_beat_the_sweep() {
        let s = stats(100_000, OrderingKnowledge::Unordered).with_expected_result_intervals(12);
        assert_eq!(
            full_choice(&s, SweepClass::Delta),
            AlgorithmChoice::LinkedList
        );
    }

    #[test]
    fn chosen_plan_names_the_sweep() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let p = choose_algorithm(
            &s,
            SweepClass::Delta,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        let text = p.to_string();
        assert!(
            text.starts_with("algorithm: endpoint-sweep"),
            "plan was:\n{text}"
        );
        assert!(p.rationale.iter().any(|r| r.contains("endpoint-sweep:")));
        assert!(p.rationale.iter().any(|r| r.contains("delta class")));
    }

    #[test]
    fn cached_series_wins_whenever_a_cache_exists() {
        use crate::stats::CachedSeriesInfo;
        // A maintained cache beats every scanning algorithm: zero I/O and
        // one pass over the runs, against at least one full relation scan.
        for n in [100usize, 10_000, 1_000_000] {
            for ordering in [OrderingKnowledge::Unordered, OrderingKnowledge::Sorted] {
                let s = stats(n, ordering).with_cached_series(CachedSeriesInfo {
                    runs: 2 * n,
                    epoch: 7,
                });
                let p = choose_algorithm(
                    &s,
                    SweepClass::Delta,
                    &PlannerConfig::default(),
                    &CostModel::default(),
                    4,
                );
                assert_eq!(p.choice, AlgorithmChoice::CachedSeries, "n = {n}");
                assert_eq!(p.parallelism, 1, "serving a snapshot never partitions");
                assert!(p.rationale.iter().any(|r| r.contains("epoch 7")));
            }
        }
    }

    #[test]
    fn no_cache_means_no_cached_series_candidate() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let p = choose_algorithm(
            &s,
            SweepClass::Delta,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert_ne!(p.choice, AlgorithmChoice::CachedSeries);
        assert!(!p.rationale.iter().any(|r| r.contains("cached-series:")));
    }

    #[test]
    fn parallelism_rescues_the_sweep() {
        // The satellite fix: the sweep's sort term is costed at the
        // partitioned per-unit rate divided by the achievable parallelism
        // *before* ranking. A host whose monolithic sort is slow but whose
        // partitioned sort is fast keeps the tree serially and flips to
        // the sweep once workers are configured.
        let cal = Calibration {
            sweep_sort_ns: 2_000.0,
            parallel_sort_ns: 2.0,
            ..Default::default()
        };
        let model = CostModel::calibrated(&cal);
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let serial = PlannerConfig {
            parallelism: Some(1),
            ..Default::default()
        };
        assert_eq!(
            choose_algorithm(&s, SweepClass::Delta, &serial, &model, 4).choice,
            AlgorithmChoice::AggregationTree
        );
        let wide = PlannerConfig {
            parallelism: Some(8),
            parallel_min_tuples: 0,
            ..Default::default()
        };
        let p = choose_algorithm(&s, SweepClass::Delta, &wide, &model, 4);
        assert_eq!(p.choice, AlgorithmChoice::Sweep);
        assert!(p.parallelism > 1, "plan was:\n{p}");
    }

    #[test]
    fn sweep_join_is_estimable_and_named() {
        assert_eq!(AlgorithmChoice::SweepJoin.name(), "sweep-join");
        let s = stats(10_000, OrderingKnowledge::Unordered);
        let e = estimate(
            AlgorithmChoice::SweepJoin,
            &s,
            &CostModel::default(),
            4,
            SweepClass::Delta,
        );
        assert!(e.cpu.is_finite() && e.cpu > 0.0);
        // Live-set enumeration makes the join scan dearer than the
        // single-relation sweep's delta scan.
        let sweep = estimate(
            AlgorithmChoice::Sweep,
            &s,
            &CostModel::default(),
            4,
            SweepClass::Delta,
        );
        assert!(e.cpu > sweep.cpu);
    }

    #[test]
    fn plan_join_prescribes_the_sweep_join() {
        let left = RelationStats::unknown(60_000);
        let right = RelationStats::unknown(40_000);
        let p = plan_join(
            &left,
            &right,
            &PlannerConfig::default(),
            &CostModel::default(),
        );
        assert_eq!(p.choice, AlgorithmChoice::SweepJoin);
        assert!(p.to_string().starts_with("algorithm: sweep-join"));
        assert!(p.rationale.iter().any(|r| r.contains("200000")));
        // Forced-parallel plans say so; forced-serial ones stay quiet.
        let wide = PlannerConfig {
            parallelism: Some(8),
            parallel_min_tuples: 0,
            ..Default::default()
        };
        let pp = plan_join(&left, &right, &wide, &CostModel::default());
        assert!(pp.parallelism > 1);
        assert!(pp.rationale.iter().any(|r| r.contains("partitioned")));
    }

    #[test]
    fn calibration_roundtrips_through_json() {
        let cal = Calibration {
            list_cell_ns: 12.5,
            tree_node_ns: 21.0,
            ktree_node_ns: 6.25,
            sweep_sort_ns: 3.5,
            sweep_event_ns: 1.75,
            parallel_sort_ns: 1.5,
            page_read_ns: 3_200.0,
            index_probe_ns: 31.0,
        };
        assert_eq!(Calibration::parse(&cal.emit()), Ok(cal));
    }

    #[test]
    fn page_stats_switch_io_to_per_page() {
        let model = CostModel::default();
        let in_ram = stats(100_000, OrderingKnowledge::Unordered);
        let paged = in_ram.with_pages(256, None);
        let ram_est = estimate(
            AlgorithmChoice::Sweep,
            &in_ram,
            &model,
            4,
            SweepClass::Delta,
        );
        let paged_est = estimate(AlgorithmChoice::Sweep, &paged, &model, 4, SweepClass::Delta);
        assert_eq!(ram_est.io, 100_000.0 * model.io_per_tuple);
        assert_eq!(paged_est.io, 256.0 * model.page_read);
        // 256 page reads are far cheaper than 100k per-tuple charges.
        assert!(paged_est.io < ram_est.io);
    }

    #[test]
    fn fence_pruning_lowers_the_io_estimate() {
        let model = CostModel::default();
        let full = stats(100_000, OrderingKnowledge::Sorted).with_pages(256, None);
        let pruned = stats(100_000, OrderingKnowledge::Sorted).with_pages(256, Some(16));
        let full_est = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &full,
            &model,
            4,
            SweepClass::Delta,
        );
        let pruned_est = estimate(
            AlgorithmChoice::KOrderedTree {
                k: 1,
                presort: false,
            },
            &pruned,
            &model,
            4,
            SweepClass::Delta,
        );
        assert_eq!(pruned_est.io, 16.0 * model.page_read);
        assert_eq!(full_est.io, 256.0 * model.page_read);
        assert!(pruned_est.io < full_est.io);
        // with_pages clamps a nonsense in-window count to the page count.
        let clamped = stats(10, OrderingKnowledge::Sorted).with_pages(4, Some(99));
        assert_eq!(clamped.pages_in_window, Some(4));
    }

    #[test]
    fn explain_reports_fence_pruned_page_reads() {
        let s = stats(100_000, OrderingKnowledge::Unordered).with_pages(256, Some(16));
        let p = choose_algorithm(
            &s,
            SweepClass::Delta,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert!(
            p.rationale
                .iter()
                .any(|r| r.contains("reads 16 of 256 pages (fence-pruned)")),
            "plan was:\n{p}"
        );
        let unpruned = stats(100_000, OrderingKnowledge::Unordered).with_pages(256, None);
        let p = choose_algorithm(
            &unpruned,
            SweepClass::Delta,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert!(
            p.rationale
                .iter()
                .any(|r| r.contains("reads all 256 pages")),
            "plan was:\n{p}"
        );
    }

    #[test]
    fn calibration_parse_rejects_malformed_profiles() {
        assert!(Calibration::parse("not json").is_err());
        assert!(Calibration::parse("{\"tree_node_ns\": \"fast\"}").is_err());
        assert!(Calibration::parse("{\"tree_node_ns\": -3.0}").is_err());
        assert!(Calibration::parse("{\"warp_factor\": 9.0}").is_err());
        // Missing keys keep defaults.
        let partial = Calibration::parse("{\"tree_node_ns\": 40.0}").unwrap();
        assert_eq!(partial.tree_node_ns, 40.0);
        assert_eq!(partial.list_cell_ns, Calibration::default().list_cell_ns);
    }

    #[test]
    fn default_model_is_the_default_calibration() {
        assert_eq!(
            CostModel::default(),
            CostModel::calibrated(&Calibration::default())
        );
        assert_eq!(CostModel::default().tree_node_visit, 1.0);
    }

    #[test]
    fn window_queries_probe_the_index_over_a_warm_cache() {
        use crate::stats::CachedSeriesInfo;
        // Any realistically-sized cached series makes the O(log n) probe
        // beat the linear pass over its runs.
        for runs in [1_000usize, 100_000, 2_000_000] {
            let s = stats(runs, OrderingKnowledge::Unordered)
                .with_cached_series(CachedSeriesInfo { runs, epoch: 3 });
            let p = choose_window_algorithm(
                &s,
                SweepClass::Delta,
                true,
                &PlannerConfig::default(),
                &CostModel::default(),
                4,
            );
            assert_eq!(p.choice, AlgorithmChoice::IndexProbe, "runs = {runs}");
            assert_eq!(p.parallelism, 1, "probes never partition");
            assert!(
                p.rationale.iter().any(|r| r.contains("segment-tree index")),
                "plan was:\n{p}"
            );
        }
    }

    #[test]
    fn tiny_caches_window_scan_linearly() {
        use crate::stats::CachedSeriesInfo;
        // With a handful of runs the linear pass undercuts two descents.
        let s = stats(8, OrderingKnowledge::Unordered)
            .with_cached_series(CachedSeriesInfo { runs: 8, epoch: 1 });
        let p = choose_window_algorithm(
            &s,
            SweepClass::Delta,
            true,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert_eq!(p.choice, AlgorithmChoice::CachedSeries);
    }

    #[test]
    fn window_queries_without_a_cache_fall_back() {
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let p = choose_window_algorithm(
            &s,
            SweepClass::Delta,
            true,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert_ne!(p.choice, AlgorithmChoice::IndexProbe);
        assert!(
            p.rationale.iter().any(|r| r.contains("no warm cache")),
            "plan was:\n{p}"
        );
    }

    #[test]
    fn unindexable_aggregates_window_scan_the_cache() {
        use crate::stats::CachedSeriesInfo;
        // AVG/float-SUM/variance: the cache serves, but linearly.
        let s = stats(100_000, OrderingKnowledge::Unordered).with_cached_series(CachedSeriesInfo {
            runs: 100_000,
            epoch: 2,
        });
        let p = choose_window_algorithm(
            &s,
            SweepClass::Approximate,
            false,
            &PlannerConfig::default(),
            &CostModel::default(),
            4,
        );
        assert_eq!(p.choice, AlgorithmChoice::CachedSeries);
        assert!(
            p.rationale.iter().any(|r| r.contains("unindexable")),
            "plan was:\n{p}"
        );
    }

    #[test]
    fn index_probe_is_named_and_estimable() {
        use crate::stats::CachedSeriesInfo;
        assert_eq!(AlgorithmChoice::IndexProbe.name(), "index-probe");
        let s =
            stats(1_000_000, OrderingKnowledge::Unordered).with_cached_series(CachedSeriesInfo {
                runs: 1_000_000,
                epoch: 1,
            });
        let model = CostModel::default();
        let probe = estimate(
            AlgorithmChoice::IndexProbe,
            &s,
            &model,
            4,
            SweepClass::Delta,
        );
        let linear = estimate(
            AlgorithmChoice::CachedSeries,
            &s,
            &model,
            4,
            SweepClass::Delta,
        );
        assert!(probe.cpu.is_finite() && probe.cpu > 0.0);
        assert!(probe.cpu * 100.0 < linear.cpu, "log n must crush n");
        assert_eq!(probe.io, 0.0);
        // Without a cache the arm is prohibitive, like CachedSeries.
        let bare = stats(1_000_000, OrderingKnowledge::Unordered);
        let no_cache = estimate(
            AlgorithmChoice::IndexProbe,
            &bare,
            &model,
            4,
            SweepClass::Delta,
        );
        assert!(no_cache.cpu > 1e12);
    }

    #[test]
    fn calibration_shifts_selection() {
        // A host where sorting is pathologically slow stops choosing the
        // sweep — the whole point of calibrating.
        let slow_sort = Calibration {
            sweep_sort_ns: 2_000.0,
            sweep_event_ns: 500.0,
            parallel_sort_ns: 2_000.0,
            ..Default::default()
        };
        let model = CostModel::calibrated(&slow_sort);
        let s = stats(100_000, OrderingKnowledge::Unordered);
        let p = choose_algorithm(&s, SweepClass::Delta, &PlannerConfig::default(), &model, 4);
        assert_eq!(p.choice, AlgorithmChoice::AggregationTree);
    }
}
