//! The mutable temporal store: an updatable interval relation plus the
//! versioned aggregate caches maintained under every write.

use crate::cache::{extract, sweep_values, AggCache};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tempagg_agg::{AggKind, DynAggregate, SweepAggregate, SweepClass};
use tempagg_algo::{GroupProbe, IndexMode, IndexNode, RunSource, WindowAggregate, WindowIndex};
use tempagg_core::pager::{
    self, PagedReader, PagedWriteOptions, PagedWriteStats, PersistedSeries, DEFAULT_PAGE_BYTES,
};
use tempagg_core::{
    Epoch, Interval, Result, Schema, Series, SeriesEntry, TempAggError, TemporalRelation,
    Timestamp, Tuple, Value, ValueType,
};

/// Identifies one cached aggregate series: the aggregate kind plus the
/// input column index (`None` for `COUNT(*)`-style aggregates without an
/// input column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    pub kind: AggKind,
    pub column: Option<usize>,
}

/// Aggregated maintenance counters across a store's caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCacheStats {
    /// Number of cached aggregate series.
    pub caches: usize,
    /// Total constant-interval runs across all working series.
    pub runs: usize,
    /// Runs patched in place by incremental maintenance.
    pub patched_runs: u64,
    /// Dirty-window sweep recomputes (Approximate-class fallback).
    pub recomputed_windows: u64,
    /// Published snapshot versions currently retained.
    pub live_versions: usize,
    /// Retained versions still pinned by a reader.
    pub pinned_versions: usize,
}

/// Usage counters for the store's window indexes: how often window probes
/// found a warm index (`hits`) versus building one on demand (`misses`),
/// and the total logarithmic probes served. Cumulative over the store's
/// lifetime — per-query callers report the delta across their query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowIndexStats {
    /// Window probes served by an already-built index.
    pub hits: u64,
    /// Window probes that had to build (or restore-miss) the index first.
    pub misses: u64,
    /// Total index probes answered (including the per-group probes and
    /// bound evaluations of `TOP k` ranking queries).
    pub probes: u64,
}

/// The per-group window indexes behind one `TOP k BY agg(col) OVER w`
/// shape: for each distinct grouping value, the group's aggregate series
/// and the window index built over it. Ordered by grouping value.
#[derive(Clone, Debug)]
struct GroupedIndexes {
    groups: Vec<(Value, Arc<Series<Value>>, WindowIndex)>,
}

/// [`RunSource`] over a live cache's working series: the window index
/// probes and refreshes straight off the maintained runs, with no
/// snapshot materialisation on the hot path.
struct CacheRuns<'a>(&'a AggCache);

impl RunSource for CacheRuns<'_> {
    fn for_each_run_in(&self, window: Interval, f: &mut dyn FnMut(Interval, &Value)) {
        self.0.for_each_run_in(window, f);
    }
}

/// The index mode a cached aggregate supports, or `None` when it cannot
/// be indexed at all: float combines (`SUM`/`AVG` over floats, variance
/// family) are inexact under reassociation, and the tree folds values in
/// segment order rather than sweep order — indexing them would break the
/// byte-identity contract with a linear scan of the cached series.
pub fn index_mode_for(agg: &DynAggregate) -> Option<IndexMode> {
    match agg.kind() {
        AggKind::CountStar | AggKind::Count | AggKind::CountDistinct => Some(IndexMode::Integral),
        AggKind::Sum if agg.sweep_class() != SweepClass::Approximate => Some(IndexMode::Integral),
        AggKind::Min | AggKind::Max => Some(IndexMode::Extremes),
        _ => None,
    }
}

/// An updatable interval relation with incrementally maintained aggregate
/// caches and MVCC snapshot reads.
///
/// The store is the single writer of its relation: every mutation goes
/// through [`insert`](TemporalStore::insert) /
/// [`delete_where`](TemporalStore::delete_where) /
/// [`update_where`](TemporalStore::update_where), which patch each cached
/// series in the same commit and bump the write [`Epoch`]. Readers call
/// [`snapshot`](TemporalStore::snapshot) and receive an immutable
/// `Arc<Series<Value>>` pinned against concurrent writes — later writes
/// publish new versions but never touch a pinned one.
///
/// Caches are created on demand (interior mutability), so read paths can
/// warm the store through a shared reference.
#[derive(Clone, Debug)]
pub struct TemporalStore {
    relation: TemporalRelation,
    epoch: Epoch,
    caches: RefCell<BTreeMap<CacheKey, AggCache>>,
    /// Aggregate series restored from a paged file's footer, served
    /// read-only until the first mutation promotes them to live caches.
    restored: RefCell<BTreeMap<CacheKey, Arc<Series<Value>>>>,
    /// The paged file this store persists to, if any.
    backing: Option<PathBuf>,
    /// Page size used by [`flush`](TemporalStore::flush).
    page_size: u32,
    /// Cumulative tuple counts per page as of the last open/flush —
    /// the baseline for attributing mutations to pages.
    page_prefix: Vec<u64>,
    /// Pages touched since the last flush (best-effort attribution
    /// against the baseline; index `page_prefix.len()` is the virtual
    /// trailing page appended-to by inserts).
    dirty_pages: BTreeSet<usize>,
    /// Any mutation since the last open/flush.
    dirty: bool,
    /// Warm segment-tree window indexes, one per indexable cached
    /// aggregate: built lazily on the first window probe (or restored
    /// from the paged footer) and patched along root-to-leaf paths under
    /// every write.
    windex: RefCell<BTreeMap<CacheKey, WindowIndex>>,
    /// Per-group window indexes for `TOP k BY` ranking probes, keyed by
    /// the ranked aggregate plus the grouping column. Rebuilt lazily
    /// after any write (group membership can change arbitrarily).
    grouped: RefCell<BTreeMap<(CacheKey, usize), GroupedIndexes>>,
    /// Cumulative window-index usage counters.
    windex_stats: RefCell<WindowIndexStats>,
}

impl TemporalStore {
    /// Wrap an existing relation. The store becomes the relation's single
    /// writer; mutate only through the store from here on.
    pub fn new(relation: TemporalRelation) -> TemporalStore {
        TemporalStore {
            relation,
            epoch: Epoch::ZERO,
            caches: RefCell::new(BTreeMap::new()),
            restored: RefCell::new(BTreeMap::new()),
            backing: None,
            page_size: DEFAULT_PAGE_BYTES,
            page_prefix: Vec::new(),
            dirty_pages: BTreeSet::new(),
            dirty: true,
            windex: RefCell::new(BTreeMap::new()),
            grouped: RefCell::new(BTreeMap::new()),
            windex_stats: RefCell::new(WindowIndexStats::default()),
        }
    }

    /// An empty store over `schema`.
    pub fn with_schema(schema: Arc<Schema>) -> TemporalStore {
        TemporalStore::new(TemporalRelation::new(schema))
    }

    /// Open a store from a paged relation file written by
    /// [`flush`](TemporalStore::flush).
    ///
    /// The relation is materialised from the file's pages; aggregate
    /// series persisted in the footer are restored and served read-only
    /// from [`snapshot`](TemporalStore::snapshot) /
    /// [`snapshot_or_build`](TemporalStore::snapshot_or_build) — the first
    /// mutation promotes them to live, incrementally-maintained caches
    /// rebuilt over the relation.
    pub fn open(path: &Path) -> Result<TemporalStore> {
        let mut reader = PagedReader::open(path)?;
        let relation = reader.read_relation()?;
        let page_size = reader.page_size();
        let mut prefix = Vec::with_capacity(reader.page_count());
        let mut total = 0u64;
        for fence in reader.fences() {
            total += u64::from(fence.tuples);
            prefix.push(total);
        }
        let persisted = reader.take_caches();
        let schema = relation.schema().clone();
        let mut restored = BTreeMap::new();
        let mut windex_parts = Vec::new();
        for series in persisted {
            if series.label.starts_with(WINDEX_LABEL_PREFIX) {
                windex_parts.push(series);
                continue;
            }
            let key = key_for_persisted(&schema, &series)?;
            restored.insert(key, Arc::new(Series::from_entries(series.entries)));
        }
        let windex = assemble_windex(&schema, windex_parts, &restored);
        Ok(TemporalStore {
            relation,
            epoch: Epoch::ZERO,
            caches: RefCell::new(BTreeMap::new()),
            restored: RefCell::new(restored),
            backing: Some(path.to_path_buf()),
            page_size,
            page_prefix: prefix,
            dirty_pages: BTreeSet::new(),
            dirty: false,
            windex: RefCell::new(windex),
            grouped: RefCell::new(BTreeMap::new()),
            windex_stats: RefCell::new(WindowIndexStats::default()),
        })
    }

    /// The paged file this store persists to, if any.
    pub fn backing(&self) -> Option<&Path> {
        self.backing.as_deref()
    }

    /// Whether any mutation happened since the last open/flush.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Pages touched since the last flush, attributed against the
    /// baseline layout of the last open/flush (best-effort: index drift
    /// from earlier deletes may over-mark, never the reverse — the page
    /// index `page_prefix.len()` stands for the virtual trailing page
    /// inserts append to). Empty when clean.
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty_pages.iter().copied().collect()
    }

    /// Attach `path` as the backing file and flush immediately.
    pub fn persist_to(&mut self, path: impl Into<PathBuf>) -> Result<PagedWriteStats> {
        self.backing = Some(path.into());
        self.dirty = true;
        self.flush()
            // lint: allow(no-unwrap): dirty was just set, so flush always writes
            .map(|stats| stats.expect("forced flush writes"))
    }

    /// Write the relation and every cached aggregate series to the
    /// backing file (atomic temp-file + rename). A clean store is a no-op
    /// returning `Ok(None)`. Errors if no backing file is attached.
    ///
    /// The write is a full rewrite of the file — dirty-page tracking
    /// decides *whether* to write, not which bytes (honest trade-off: the
    /// format packs pages greedily, so one mid-file mutation can shift
    /// every later page anyway).
    pub fn flush(&mut self) -> Result<Option<PagedWriteStats>> {
        let Some(path) = self.backing.clone() else {
            return Err(TempAggError::storage(
                "store has no backing file; use persist_to or open",
            ));
        };
        if !self.dirty {
            return Ok(None);
        }
        let caches = self.collect_persisted();
        let stats = pager::write_relation(
            &self.relation,
            &path,
            &PagedWriteOptions {
                page_size: self.page_size,
                caches,
            },
        )?;
        let ranges = pager::format::plan_pages(
            self.relation.schema(),
            self.relation.tuples(),
            self.page_size,
        )?;
        let mut total = 0u64;
        self.page_prefix.clear();
        for range in &ranges {
            total += range.len() as u64;
            self.page_prefix.push(total);
        }
        self.dirty_pages.clear();
        self.dirty = false;
        Ok(Some(stats))
    }

    /// Snapshot every cache (live and restored) into the value-erased
    /// form the paged footer stores.
    fn collect_persisted(&mut self) -> Vec<PersistedSeries> {
        let epoch = self.epoch;
        let mut out: Vec<PersistedSeries> = Vec::new();
        let caches = self.caches.get_mut();
        for (key, cache) in caches.iter_mut() {
            let snap = cache.snapshot(epoch);
            out.push(PersistedSeries {
                label: key.kind.name().to_string(),
                column: key.column.and_then(|c| u32::try_from(c).ok()),
                entries: snap.entries().to_vec(),
            });
        }
        for (key, series) in self.restored.get_mut().iter() {
            if caches.contains_key(key) {
                continue;
            }
            out.push(PersistedSeries {
                label: key.kind.name().to_string(),
                column: key.column.and_then(|c| u32::try_from(c).ok()),
                entries: series.entries().to_vec(),
            });
        }
        for (key, index) in self.windex.get_mut().iter() {
            out.extend(persist_windex(*key, index));
        }
        out
    }

    /// Promote footer-restored series to live caches before a mutation:
    /// the live cache is rebuilt from the (pre-mutation) relation, so the
    /// mutation's patch applies to real, retractable state.
    fn promote_restored(&mut self) {
        let restored = std::mem::take(self.restored.get_mut());
        if restored.is_empty() {
            return;
        }
        let schema = self.relation.schema().clone();
        let caches = self.caches.get_mut();
        for key in restored.into_keys() {
            if caches.contains_key(&key) {
                continue;
            }
            let Ok(agg) = dyn_for(&schema, key) else {
                continue;
            };
            caches.insert(key, AggCache::build(agg, key.column, &self.relation));
        }
    }

    /// Baseline page containing tuple `index` (see
    /// [`dirty_pages`](TemporalStore::dirty_pages)).
    fn page_of(&self, index: usize) -> usize {
        self.page_prefix.partition_point(|c| *c <= index as u64)
    }

    fn mark_tuple_dirty(&mut self, index: usize) {
        let page = self.page_of(index);
        self.dirty_pages.insert(page);
        self.dirty = true;
    }

    /// Read access to the stored relation.
    pub fn relation(&self) -> &TemporalRelation {
        &self.relation
    }

    /// The stored relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.relation.schema()
    }

    /// The current write epoch (bumped once per committed mutation).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.relation.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Consume the store, returning the relation.
    pub fn into_relation(self) -> TemporalRelation {
        self.relation
    }

    /// Insert one tuple, patching every cache.
    pub fn insert(&mut self, values: Vec<Value>, valid: Interval) -> Result<()> {
        self.promote_restored();
        self.relation.push(values, valid)?;
        self.mark_tuple_dirty(self.relation.len().saturating_sub(1));
        let Some(tuple) = self.relation.tuples().last().cloned() else {
            return Ok(());
        };
        self.commit_insert(&tuple)
    }

    /// Insert an already-built tuple, patching every cache.
    pub fn insert_tuple(&mut self, tuple: Tuple) -> Result<()> {
        self.promote_restored();
        self.relation.push_tuple(tuple.clone())?;
        self.mark_tuple_dirty(self.relation.len().saturating_sub(1));
        self.commit_insert(&tuple)
    }

    fn commit_insert(&mut self, tuple: &Tuple) -> Result<()> {
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let value = extract(tuple, cache.column());
            cache.apply_insert(tuple.valid(), &value, &self.relation)?;
        }
        self.refresh_indexes(&[tuple.valid()]);
        self.bump();
        Ok(())
    }

    /// Delete every tuple satisfying `pred`, retracting each from every
    /// cache. Returns the number of tuples deleted.
    pub fn delete_where(&mut self, pred: impl FnMut(&Tuple) -> bool) -> Result<usize> {
        self.promote_restored();
        let flags: Vec<bool> = self.relation.iter().map(pred).collect();
        let removed: Vec<Tuple> = self
            .relation
            .iter()
            .zip(&flags)
            .filter(|(_, &flagged)| flagged)
            .map(|(t, _)| t.clone())
            .collect();
        if removed.is_empty() {
            return Ok(0);
        }
        for (index, &flagged) in flags.iter().enumerate() {
            if flagged {
                self.mark_tuple_dirty(index);
            }
        }
        let mut index = 0usize;
        self.relation.retain(|_| {
            let keep = !flags.get(index).copied().unwrap_or(false);
            index += 1;
            keep
        });
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            for tuple in &removed {
                let value = extract(tuple, cache.column());
                cache.apply_delete(tuple.valid(), &value, &self.relation)?;
            }
        }
        let dirty: Vec<Interval> = removed.iter().map(Tuple::valid).collect();
        self.refresh_indexes(&dirty);
        self.bump();
        Ok(removed.len())
    }

    /// Update every tuple satisfying `pred`: each `(column, value)`
    /// assignment overwrites that attribute, valid time is unchanged.
    /// Caches reading an assigned column see an exact retract-then-insert
    /// of the changed value; all other caches (including `COUNT(*)`) are
    /// untouched. The whole statement is validated before any tuple is
    /// written, so a failed UPDATE mutates nothing.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Tuple) -> bool,
        assignments: &[(usize, Value)],
    ) -> Result<usize> {
        self.promote_restored();
        let mut replacements: Vec<(usize, Tuple, Tuple)> = Vec::new();
        for (index, old) in self.relation.iter().enumerate() {
            if !pred(old) {
                continue;
            }
            let mut values = old.values().to_vec();
            for (column, value) in assignments {
                let Some(slot) = values.get_mut(*column) else {
                    continue;
                };
                *slot = value.clone();
            }
            self.relation.schema().check(&values)?;
            let replacement = Tuple::new(values, old.valid());
            replacements.push((index, old.clone(), replacement));
        }
        if replacements.is_empty() {
            return Ok(0);
        }
        for (index, _, replacement) in &replacements {
            let _previous = self.relation.replace(*index, replacement.clone())?;
        }
        let touched: Vec<usize> = replacements.iter().map(|(index, _, _)| *index).collect();
        for index in touched {
            self.mark_tuple_dirty(index);
        }
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let Some(column) = cache.column() else {
                continue;
            };
            if !assignments.iter().any(|(assigned, _)| *assigned == column) {
                continue;
            }
            for (_, old, new) in &replacements {
                cache.apply_delete(old.valid(), &extract(old, Some(column)), &self.relation)?;
                cache.apply_insert(new.valid(), &extract(new, Some(column)), &self.relation)?;
            }
        }
        let dirty: Vec<Interval> = replacements.iter().map(|(_, _, new)| new.valid()).collect();
        self.refresh_indexes(&dirty);
        self.bump();
        Ok(replacements.len())
    }

    fn bump(&mut self) {
        self.epoch = self.epoch.next();
        #[cfg(feature = "validate")]
        {
            for cache in self.caches.get_mut().values() {
                cache.validate_structure();
            }
        }
    }

    /// Patch every warm window index for the changed intervals: each
    /// dirty interval recomputes the leaves it overlaps from the
    /// already-patched cache runs, then refolds only the root-to-leaf
    /// ancestor paths — O(runs-in-dirty + log n) per index, never a
    /// rebuild. Grouped `TOP k` indexes are invalidated instead (a write
    /// can move tuples between groups arbitrarily) and rebuilt lazily on
    /// the next ranking probe.
    fn refresh_indexes(&mut self, dirty: &[Interval]) {
        self.grouped.get_mut().clear();
        let caches = self.caches.get_mut();
        let windex = self.windex.get_mut();
        windex.retain(|key, _| caches.contains_key(key));
        for (key, index) in windex.iter_mut() {
            let Some(cache) = caches.get(key) else {
                continue;
            };
            let source = CacheRuns(cache);
            for iv in dirty {
                index.refresh(*iv, &source);
            }
            #[cfg(feature = "validate")]
            validate_refreshed(index, cache, dirty);
        }
    }

    /// Whether a window probe for `(kind, column)` can be served by a
    /// segment-tree index (the aggregate combines exactly) — the
    /// planner's eligibility input for its `IndexProbe` algorithm choice.
    pub fn window_indexable(&self, kind: AggKind, column: Option<usize>) -> bool {
        dyn_for(self.relation.schema(), CacheKey { kind, column })
            .ok()
            .and_then(|agg| index_mode_for(&agg))
            .is_some()
    }

    /// Whether a warm window index currently exists for `(kind, column)`.
    pub fn has_window_index(&self, kind: AggKind, column: Option<usize>) -> bool {
        self.windex
            .borrow()
            .contains_key(&CacheKey { kind, column })
    }

    /// Cumulative window-index usage counters (per-query callers report
    /// the delta across their query).
    pub fn windex_stats(&self) -> WindowIndexStats {
        *self.windex_stats.borrow()
    }

    /// Resolve `(kind, column)` to its cache key, aggregate, and index
    /// mode, rejecting non-indexable aggregates.
    fn indexable(
        &self,
        kind: AggKind,
        column: Option<usize>,
    ) -> Result<(CacheKey, DynAggregate, IndexMode)> {
        let key = CacheKey { kind, column };
        let agg = dyn_for(self.relation.schema(), key)?;
        let mode = index_mode_for(&agg).ok_or_else(|| TempAggError::TypeError {
            detail: format!(
                "{} is not window-indexable: its combine is inexact under \
                 reassociation, so the index would break byte-identity with \
                 a linear scan",
                kind.name()
            ),
        })?;
        Ok((key, agg, mode))
    }

    /// Build the window index for `key` if absent (warming the aggregate
    /// cache first if needed). Returns whether the index was already
    /// warm.
    fn ensure_windex(&self, key: CacheKey, agg: DynAggregate, mode: IndexMode) -> bool {
        if self.windex.borrow().contains_key(&key) {
            return true;
        }
        let series = self.snapshot_or_build(agg, key.column);
        let index = WindowIndex::build(mode, &series);
        self.windex.borrow_mut().insert(key, index);
        false
    }

    /// Answer `kind(column)` over `window` through the window index in
    /// O(log n) node folds, building the index from the cached series on
    /// first use (a *miss*; later probes are *hits* and never touch the
    /// series linearly).
    ///
    /// The result carries the duration-weighted combine for Delta-class
    /// aggregates (time integral `Σ value·duration` plus covered
    /// duration) and the extreme values for `MIN`/`MAX` — byte-identical
    /// to a linear [`tempagg_algo::scan_window`] over the same cached
    /// runs, which `--features validate` asserts on every probe.
    pub fn window_probe(
        &self,
        kind: AggKind,
        column: Option<usize>,
        window: Interval,
    ) -> Result<WindowAggregate> {
        let (key, agg, mode) = self.indexable(kind, column)?;
        let hit = self.ensure_windex(key, agg, mode);
        {
            let mut stats = self.windex_stats.borrow_mut();
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
            }
            stats.probes += 1;
        }
        let windex = self.windex.borrow();
        // lint: allow(no-unwrap): ensure_windex built the index above
        let index = windex.get(&key).expect("ensure_windex built the index");
        let caches = self.caches.borrow();
        if let Some(cache) = caches.get(&key) {
            let source = CacheRuns(cache);
            let out = index.probe(window, &source);
            #[cfg(feature = "validate")]
            assert_eq!(
                out,
                tempagg_algo::scan_window(&source, window),
                "window index probe diverged from the linear scan oracle"
            );
            Ok(out)
        } else {
            let restored = self.restored.borrow();
            let series = restored
                .get(&key)
                // lint: allow(no-unwrap): an index exists only over a live cache or restored series
                .expect("a window index implies a cache or restored series");
            let out = index.probe(window, &**series);
            #[cfg(feature = "validate")]
            assert_eq!(
                out,
                tempagg_algo::scan_window(&**series, window),
                "window index probe diverged from the linear scan oracle"
            );
            Ok(out)
        }
    }

    /// The earliest instant in `window` where the cached series attains
    /// its extreme (maximum when `want_max`, else minimum) — answered by
    /// max-augmented branch-and-bound descent, `None` when the window
    /// holds only NULLs.
    pub fn window_extreme_instant(
        &self,
        kind: AggKind,
        column: Option<usize>,
        window: Interval,
        want_max: bool,
    ) -> Result<Option<(Timestamp, Value)>> {
        let (key, agg, mode) = self.indexable(kind, column)?;
        let hit = self.ensure_windex(key, agg, mode);
        {
            let mut stats = self.windex_stats.borrow_mut();
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
            }
            stats.probes += 1;
        }
        let windex = self.windex.borrow();
        // lint: allow(no-unwrap): ensure_windex built the index above
        let index = windex.get(&key).expect("ensure_windex built the index");
        let caches = self.caches.borrow();
        if let Some(cache) = caches.get(&key) {
            Ok(index.extreme_instant(window, want_max, &CacheRuns(cache)))
        } else {
            let restored = self.restored.borrow();
            let series = restored
                .get(&key)
                // lint: allow(no-unwrap): an index exists only over a live cache or restored series
                .expect("a window index implies a cache or restored series");
            Ok(index.extreme_instant(window, want_max, &**series))
        }
    }

    /// Rank the distinct values of `group_column` by `kind(column)` over
    /// `window` and return the top `k` with their window aggregates,
    /// plus the number of index probes spent.
    ///
    /// One window index per group, probed against a shared bound heap:
    /// each group first contributes a cheap O(1) upper bound from its
    /// index root, and only groups whose bound can still reach the
    /// current top-k are resolved exactly — most groups are pruned
    /// without a full descent.
    pub fn top_k_by_window(
        &self,
        kind: AggKind,
        column: Option<usize>,
        group_column: usize,
        window: Interval,
        k: usize,
    ) -> Result<(Vec<(Value, WindowAggregate)>, u64)> {
        let (key, agg, mode) = self.indexable(kind, column)?;
        if group_column >= self.relation.schema().len() {
            return Err(TempAggError::storage(format!(
                "ranking group column {group_column} is out of range for a \
                 schema with {} columns",
                self.relation.schema().len()
            )));
        }
        let gkey = (key, group_column);
        let hit = self.grouped.borrow().contains_key(&gkey);
        if !hit {
            let built = self.build_grouped(&agg, column, group_column, mode);
            self.grouped.borrow_mut().insert(gkey, built);
        }
        let grouped = self.grouped.borrow();
        // lint: allow(no-unwrap): inserted above when absent
        let entry = grouped.get(&gkey).expect("grouped indexes built above");
        let probes: Vec<GroupProbe<'_>> = entry
            .groups
            .iter()
            .map(|(_, series, index)| GroupProbe {
                index,
                source: &**series,
            })
            .collect();
        let outcome = tempagg_algo::top_k(&probes, window, k);
        {
            let mut stats = self.windex_stats.borrow_mut();
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
            }
            stats.probes += outcome.probes;
        }
        let ranked = outcome
            .ranked
            .into_iter()
            .filter_map(|(group, aggregate)| {
                entry
                    .groups
                    .get(group)
                    .map(|(value, _, _)| (value.clone(), aggregate))
            })
            .collect();
        Ok((ranked, outcome.probes))
    }

    /// Partition the relation by `group_column` and build one aggregate
    /// series plus window index per distinct grouping value.
    fn build_grouped(
        &self,
        agg: &DynAggregate,
        column: Option<usize>,
        group_column: usize,
        mode: IndexMode,
    ) -> GroupedIndexes {
        let tuples = self.relation.tuples();
        let mut order: Vec<usize> = (0..tuples.len()).collect();
        order.sort_by(|&a, &b| {
            // lint: allow(indexing): order is a permutation of 0..len
            tuples[a]
                .value(group_column)
                .total_cmp(tuples[b].value(group_column))
                .then(a.cmp(&b))
        });
        let mut groups = Vec::new();
        let mut at = 0usize;
        while at < order.len() {
            // lint: allow(indexing): at < order.len() is the loop guard over a permutation
            let value = tuples[order[at]].value(group_column).clone();
            let mut members: Vec<&Tuple> = Vec::new();
            while let Some(&index) = order.get(at) {
                // lint: allow(indexing): order holds valid tuple indices by construction
                let tuple = &tuples[index];
                if tuple.value(group_column).total_cmp(&value).is_ne() {
                    break;
                }
                members.push(tuple);
                at += 1;
            }
            let series = sweep_values(agg, column, &members);
            let index = WindowIndex::build(mode, &series);
            groups.push((value, Arc::new(series), index));
        }
        GroupedIndexes { groups }
    }

    /// Build (if absent) the cache for `agg` over `column`. A series
    /// restored from a paged file counts as present — it is served
    /// read-only until the first mutation promotes it.
    pub fn ensure_cache(&self, agg: DynAggregate, column: Option<usize>) {
        let key = CacheKey {
            kind: agg.kind(),
            column,
        };
        if self.restored.borrow().contains_key(&key) {
            return;
        }
        let mut caches = self.caches.borrow_mut();
        caches
            .entry(key)
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
    }

    /// Whether a cache (live or restored from a paged file) exists for
    /// `(kind, column)`.
    pub fn has_cache(&self, kind: AggKind, column: Option<usize>) -> bool {
        let key = CacheKey { kind, column };
        self.caches.borrow().contains_key(&key) || self.restored.borrow().contains_key(&key)
    }

    /// Snapshot the cached series for `(kind, column)` at the current
    /// epoch, or `None` if that aggregate has no cache yet. The returned
    /// `Arc` pins the version: concurrent writes publish new versions but
    /// never mutate or free this one. Series restored from a paged file
    /// are served as-is (they were snapshotted at flush time and the
    /// relation has not changed since — any mutation promotes them to
    /// live caches first).
    pub fn snapshot(&self, kind: AggKind, column: Option<usize>) -> Option<Arc<Series<Value>>> {
        let key = CacheKey { kind, column };
        {
            let mut caches = self.caches.borrow_mut();
            if let Some(cache) = caches.get_mut(&key) {
                return Some(cache.snapshot(self.epoch));
            }
        }
        self.restored.borrow().get(&key).cloned()
    }

    /// [`ensure_cache`](TemporalStore::ensure_cache) then
    /// [`snapshot`](TemporalStore::snapshot), in one borrow.
    pub fn snapshot_or_build(
        &self,
        agg: DynAggregate,
        column: Option<usize>,
    ) -> Arc<Series<Value>> {
        let key = CacheKey {
            kind: agg.kind(),
            column,
        };
        if let Some(series) = self.restored.borrow().get(&key) {
            return series.clone();
        }
        let mut caches = self.caches.borrow_mut();
        let cache = caches
            .entry(key)
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
        cache.snapshot(self.epoch)
    }

    /// Aggregated maintenance counters across all caches.
    pub fn cache_stats(&self) -> StoreCacheStats {
        let caches = self.caches.borrow();
        let mut stats = StoreCacheStats {
            caches: caches.len(),
            ..StoreCacheStats::default()
        };
        for cache in caches.values() {
            stats.runs += cache.runs_len();
            stats.patched_runs += cache.patched_runs();
            stats.recomputed_windows += cache.recomputed_windows();
            stats.live_versions += cache.live_versions();
            stats.pinned_versions += cache.pinned_versions();
        }
        stats
    }
}

/// Every aggregate kind, for label round-tripping.
const ALL_KINDS: [AggKind; 9] = [
    AggKind::CountStar,
    AggKind::Count,
    AggKind::CountDistinct,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Avg,
    AggKind::Variance,
    AggKind::StdDev,
];

/// Map a persisted footer label (written as [`AggKind::name`]) back to its
/// kind. `AggKind::parse` is *not* the inverse of `name` (it speaks SQL
/// keywords, not display labels like `COUNT(*)`), hence this table lookup.
fn kind_for_label(label: &str) -> Option<AggKind> {
    ALL_KINDS.into_iter().find(|kind| kind.name() == label)
}

/// Rebuild a live aggregate for `key`, deriving the input type from the
/// schema column (columnless aggregates like `COUNT(*)` never read their
/// input, so any type works; `Int` by convention).
fn dyn_for(schema: &Schema, key: CacheKey) -> Result<DynAggregate> {
    let input = match key.column {
        Some(index) => schema
            .columns()
            .get(index)
            .map(|column| column.ty)
            .ok_or_else(|| {
                TempAggError::storage(format!(
                    "persisted cache references column {index}, but the schema has {} columns",
                    schema.len()
                ))
            })?,
        None => ValueType::Int,
    };
    DynAggregate::new(key.kind, input)
}

/// Label prefix for window-index footer blocks: `windex:<part>:<agg>`,
/// where `<part>` is `meta`, `sum`, `min`, or `max`. Intercepted before
/// [`key_for_persisted`] so the aggregate-label validation never sees
/// them.
const WINDEX_LABEL_PREFIX: &str = "windex:";

/// Encode one window index as footer blocks: a `meta` header series
/// (version, mode, leaf count, extent end) plus three per-leaf series —
/// the integral/covered pair (as text; the values are `i128`, wider than
/// [`Value::Int`]), the min values, and the max values. Each part is a
/// well-formed constant-interval series over the leaf cuts, so the
/// footer format needs no new entry types.
fn persist_windex(key: CacheKey, index: &WindowIndex) -> Vec<PersistedSeries> {
    let column = key.column.and_then(|c| u32::try_from(c).ok());
    let label = |part: &str| format!("{WINDEX_LABEL_PREFIX}{part}:{}", key.kind.name());
    let starts = index.leaf_starts();
    let mut intervals = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let end = starts
            .get(i + 1)
            .map_or(index.extent_end(), |next| next.prev());
        // lint: allow(no-unwrap): leaf starts are strictly increasing by construction
        intervals.push(Interval::new(start, end).expect("leaf cuts are increasing"));
    }
    let mut sums = Vec::with_capacity(intervals.len());
    let mut mins = Vec::with_capacity(intervals.len());
    let mut maxs = Vec::with_capacity(intervals.len());
    for (interval, node) in intervals.iter().copied().zip(index.leaf_nodes()) {
        sums.push(SeriesEntry {
            interval,
            value: Value::Str(format!("{} {}", node.integral, node.covered)),
        });
        mins.push(SeriesEntry {
            interval,
            value: node.min_value.clone(),
        });
        maxs.push(SeriesEntry {
            interval,
            value: node.max_value.clone(),
        });
    }
    vec![
        PersistedSeries {
            label: label("meta"),
            column,
            entries: vec![SeriesEntry {
                interval: Interval::at(0, 0),
                value: Value::Str(format!(
                    "v1 {} {} {}",
                    index.mode().name(),
                    index.leaf_count(),
                    index.extent_end().get()
                )),
            }],
        },
        PersistedSeries {
            label: label("sum"),
            column,
            entries: sums,
        },
        PersistedSeries {
            label: label("min"),
            column,
            entries: mins,
        },
        PersistedSeries {
            label: label("max"),
            column,
            entries: maxs,
        },
    ]
}

/// The four footer blocks of one persisted window index, collected by
/// key before decoding.
#[derive(Default)]
struct WindexParts {
    meta: Option<Vec<SeriesEntry<Value>>>,
    sums: Option<Vec<SeriesEntry<Value>>>,
    mins: Option<Vec<SeriesEntry<Value>>>,
    maxs: Option<Vec<SeriesEntry<Value>>>,
}

/// Decode one collected part set back into a window index. `None` on any
/// malformed or inconsistent part — restoration is strictly best-effort.
fn decode_windex(parts: WindexParts) -> Option<WindowIndex> {
    let meta = parts.meta?;
    let sums = parts.sums?;
    let mins = parts.mins?;
    let maxs = parts.maxs?;
    let header = match &meta.first()?.value {
        Value::Str(text) => text.clone(),
        _ => return None,
    };
    let mut fields = header.split_whitespace();
    if fields.next() != Some("v1") {
        return None;
    }
    let mode = fields.next().and_then(IndexMode::parse)?;
    let leaves = fields.next().and_then(|t| t.parse::<usize>().ok())?;
    let end = fields.next().and_then(|t| t.parse::<i64>().ok())?;
    if sums.len() != leaves || mins.len() != leaves || maxs.len() != leaves {
        return None;
    }
    let mut starts = Vec::with_capacity(leaves);
    let mut nodes = Vec::with_capacity(leaves);
    for ((sum, min), max) in sums.iter().zip(&mins).zip(&maxs) {
        starts.push(sum.interval.start());
        let Value::Str(text) = &sum.value else {
            return None;
        };
        let mut numbers = text.split_whitespace();
        let integral = numbers.next().and_then(|t| t.parse::<i128>().ok())?;
        let covered = numbers.next().and_then(|t| t.parse::<i128>().ok())?;
        nodes.push(IndexNode {
            integral,
            covered,
            min_value: min.value.clone(),
            max_value: max.value.clone(),
        });
    }
    WindowIndex::from_leaves(mode, starts, Timestamp::new(end), nodes).ok()
}

/// Reassemble the window indexes persisted in a paged footer. Any
/// malformed, incomplete, or orphaned (no restored series to probe
/// against) part set is skipped silently: the store degrades to
/// rebuilding that index from the restored series on the first probe,
/// never to an open error.
fn assemble_windex(
    schema: &Schema,
    parts: Vec<PersistedSeries>,
    restored: &BTreeMap<CacheKey, Arc<Series<Value>>>,
) -> BTreeMap<CacheKey, WindowIndex> {
    let mut by_key: BTreeMap<CacheKey, WindexParts> = BTreeMap::new();
    for series in parts {
        let Some(rest) = series.label.strip_prefix(WINDEX_LABEL_PREFIX) else {
            continue;
        };
        let Some((part, label)) = rest.split_once(':') else {
            continue;
        };
        let Some(kind) = kind_for_label(label) else {
            continue;
        };
        let column = match series.column {
            Some(raw) if (raw as usize) < schema.len() => Some(raw as usize),
            Some(_) => continue,
            None => None,
        };
        let slot = by_key.entry(CacheKey { kind, column }).or_default();
        match part {
            "meta" => slot.meta = Some(series.entries),
            "sum" => slot.sums = Some(series.entries),
            "min" => slot.mins = Some(series.entries),
            "max" => slot.maxs = Some(series.entries),
            _ => {}
        }
    }
    let mut out = BTreeMap::new();
    for (key, parts) in by_key {
        if !restored.contains_key(&key) {
            continue;
        }
        if let Some(index) = decode_windex(parts) {
            out.insert(key, index);
        }
    }
    out
}

/// `--features validate`: after a root-to-leaf refresh, rebuild the
/// index from scratch over the patched cache runs and assert the two
/// answer the full timeline plus windows around every dirty interval
/// byte-identically. The refreshed index keeps its original leaf cuts
/// while the rebuilt one re-cuts at current run boundaries, so this
/// compares probe *results*, never node layouts.
#[cfg(feature = "validate")]
fn validate_refreshed(index: &WindowIndex, cache: &AggCache, dirty: &[Interval]) {
    let mut entries = Vec::new();
    cache.for_each_run_in(Interval::TIMELINE, &mut |interval, value| {
        entries.push(SeriesEntry {
            interval,
            value: value.clone(),
        });
    });
    let fresh = WindowIndex::build(index.mode(), &Series::from_entries(entries));
    let source = CacheRuns(cache);
    let mut windows = vec![Interval::TIMELINE];
    for iv in dirty {
        windows.push(*iv);
        let lo = Timestamp::new(iv.start().get().saturating_sub(16).max(0));
        let hi = Timestamp::new(iv.end().get().saturating_add(16));
        if let Ok(widened) = Interval::new(lo, hi) {
            windows.push(widened);
        }
    }
    for window in windows {
        assert_eq!(
            index.probe(window, &source),
            fresh.probe(window, &source),
            "refreshed window index diverged from a rebuilt one"
        );
    }
}

/// Decode a footer cache entry into the key it was stored under,
/// validating the label and column against the file's own schema.
fn key_for_persisted(schema: &Schema, series: &PersistedSeries) -> Result<CacheKey> {
    let kind = kind_for_label(&series.label).ok_or_else(|| {
        TempAggError::storage(format!(
            "unknown persisted aggregate label {:?}",
            series.label
        ))
    })?;
    let column = match series.column {
        Some(raw) => {
            let index = raw as usize;
            if index >= schema.len() {
                return Err(TempAggError::storage(format!(
                    "persisted cache {:?} references column {index}, but the schema has {} columns",
                    series.label,
                    schema.len()
                )));
            }
            Some(index)
        }
        None => None,
    };
    Ok(CacheKey { kind, column })
}
