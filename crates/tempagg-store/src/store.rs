//! The mutable temporal store: an updatable interval relation plus the
//! versioned aggregate caches maintained under every write.

use crate::cache::{extract, AggCache};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use tempagg_agg::{AggKind, DynAggregate};
use tempagg_core::pager::{
    self, PagedReader, PagedWriteOptions, PagedWriteStats, PersistedSeries, DEFAULT_PAGE_BYTES,
};
use tempagg_core::{
    Epoch, Interval, Result, Schema, Series, TempAggError, TemporalRelation, Tuple, Value,
    ValueType,
};

/// Identifies one cached aggregate series: the aggregate kind plus the
/// input column index (`None` for `COUNT(*)`-style aggregates without an
/// input column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    pub kind: AggKind,
    pub column: Option<usize>,
}

/// Aggregated maintenance counters across a store's caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCacheStats {
    /// Number of cached aggregate series.
    pub caches: usize,
    /// Total constant-interval runs across all working series.
    pub runs: usize,
    /// Runs patched in place by incremental maintenance.
    pub patched_runs: u64,
    /// Dirty-window sweep recomputes (Approximate-class fallback).
    pub recomputed_windows: u64,
    /// Published snapshot versions currently retained.
    pub live_versions: usize,
    /// Retained versions still pinned by a reader.
    pub pinned_versions: usize,
}

/// An updatable interval relation with incrementally maintained aggregate
/// caches and MVCC snapshot reads.
///
/// The store is the single writer of its relation: every mutation goes
/// through [`insert`](TemporalStore::insert) /
/// [`delete_where`](TemporalStore::delete_where) /
/// [`update_where`](TemporalStore::update_where), which patch each cached
/// series in the same commit and bump the write [`Epoch`]. Readers call
/// [`snapshot`](TemporalStore::snapshot) and receive an immutable
/// `Arc<Series<Value>>` pinned against concurrent writes — later writes
/// publish new versions but never touch a pinned one.
///
/// Caches are created on demand (interior mutability), so read paths can
/// warm the store through a shared reference.
#[derive(Clone, Debug)]
pub struct TemporalStore {
    relation: TemporalRelation,
    epoch: Epoch,
    caches: RefCell<BTreeMap<CacheKey, AggCache>>,
    /// Aggregate series restored from a paged file's footer, served
    /// read-only until the first mutation promotes them to live caches.
    restored: RefCell<BTreeMap<CacheKey, Arc<Series<Value>>>>,
    /// The paged file this store persists to, if any.
    backing: Option<PathBuf>,
    /// Page size used by [`flush`](TemporalStore::flush).
    page_size: u32,
    /// Cumulative tuple counts per page as of the last open/flush —
    /// the baseline for attributing mutations to pages.
    page_prefix: Vec<u64>,
    /// Pages touched since the last flush (best-effort attribution
    /// against the baseline; index `page_prefix.len()` is the virtual
    /// trailing page appended-to by inserts).
    dirty_pages: BTreeSet<usize>,
    /// Any mutation since the last open/flush.
    dirty: bool,
}

impl TemporalStore {
    /// Wrap an existing relation. The store becomes the relation's single
    /// writer; mutate only through the store from here on.
    pub fn new(relation: TemporalRelation) -> TemporalStore {
        TemporalStore {
            relation,
            epoch: Epoch::ZERO,
            caches: RefCell::new(BTreeMap::new()),
            restored: RefCell::new(BTreeMap::new()),
            backing: None,
            page_size: DEFAULT_PAGE_BYTES,
            page_prefix: Vec::new(),
            dirty_pages: BTreeSet::new(),
            dirty: true,
        }
    }

    /// An empty store over `schema`.
    pub fn with_schema(schema: Arc<Schema>) -> TemporalStore {
        TemporalStore::new(TemporalRelation::new(schema))
    }

    /// Open a store from a paged relation file written by
    /// [`flush`](TemporalStore::flush).
    ///
    /// The relation is materialised from the file's pages; aggregate
    /// series persisted in the footer are restored and served read-only
    /// from [`snapshot`](TemporalStore::snapshot) /
    /// [`snapshot_or_build`](TemporalStore::snapshot_or_build) — the first
    /// mutation promotes them to live, incrementally-maintained caches
    /// rebuilt over the relation.
    pub fn open(path: &Path) -> Result<TemporalStore> {
        let mut reader = PagedReader::open(path)?;
        let relation = reader.read_relation()?;
        let page_size = reader.page_size();
        let mut prefix = Vec::with_capacity(reader.page_count());
        let mut total = 0u64;
        for fence in reader.fences() {
            total += u64::from(fence.tuples);
            prefix.push(total);
        }
        let persisted = reader.take_caches();
        let schema = relation.schema().clone();
        let mut restored = BTreeMap::new();
        for series in persisted {
            let key = key_for_persisted(&schema, &series)?;
            restored.insert(key, Arc::new(Series::from_entries(series.entries)));
        }
        Ok(TemporalStore {
            relation,
            epoch: Epoch::ZERO,
            caches: RefCell::new(BTreeMap::new()),
            restored: RefCell::new(restored),
            backing: Some(path.to_path_buf()),
            page_size,
            page_prefix: prefix,
            dirty_pages: BTreeSet::new(),
            dirty: false,
        })
    }

    /// The paged file this store persists to, if any.
    pub fn backing(&self) -> Option<&Path> {
        self.backing.as_deref()
    }

    /// Whether any mutation happened since the last open/flush.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Pages touched since the last flush, attributed against the
    /// baseline layout of the last open/flush (best-effort: index drift
    /// from earlier deletes may over-mark, never the reverse — the page
    /// index `page_prefix.len()` stands for the virtual trailing page
    /// inserts append to). Empty when clean.
    pub fn dirty_pages(&self) -> Vec<usize> {
        self.dirty_pages.iter().copied().collect()
    }

    /// Attach `path` as the backing file and flush immediately.
    pub fn persist_to(&mut self, path: impl Into<PathBuf>) -> Result<PagedWriteStats> {
        self.backing = Some(path.into());
        self.dirty = true;
        self.flush()
            // lint: allow(no-unwrap): dirty was just set, so flush always writes
            .map(|stats| stats.expect("forced flush writes"))
    }

    /// Write the relation and every cached aggregate series to the
    /// backing file (atomic temp-file + rename). A clean store is a no-op
    /// returning `Ok(None)`. Errors if no backing file is attached.
    ///
    /// The write is a full rewrite of the file — dirty-page tracking
    /// decides *whether* to write, not which bytes (honest trade-off: the
    /// format packs pages greedily, so one mid-file mutation can shift
    /// every later page anyway).
    pub fn flush(&mut self) -> Result<Option<PagedWriteStats>> {
        let Some(path) = self.backing.clone() else {
            return Err(TempAggError::storage(
                "store has no backing file; use persist_to or open",
            ));
        };
        if !self.dirty {
            return Ok(None);
        }
        let caches = self.collect_persisted();
        let stats = pager::write_relation(
            &self.relation,
            &path,
            &PagedWriteOptions {
                page_size: self.page_size,
                caches,
            },
        )?;
        let ranges = pager::format::plan_pages(
            self.relation.schema(),
            self.relation.tuples(),
            self.page_size,
        )?;
        let mut total = 0u64;
        self.page_prefix.clear();
        for range in &ranges {
            total += range.len() as u64;
            self.page_prefix.push(total);
        }
        self.dirty_pages.clear();
        self.dirty = false;
        Ok(Some(stats))
    }

    /// Snapshot every cache (live and restored) into the value-erased
    /// form the paged footer stores.
    fn collect_persisted(&mut self) -> Vec<PersistedSeries> {
        let epoch = self.epoch;
        let mut out: Vec<PersistedSeries> = Vec::new();
        let caches = self.caches.get_mut();
        for (key, cache) in caches.iter_mut() {
            let snap = cache.snapshot(epoch);
            out.push(PersistedSeries {
                label: key.kind.name().to_string(),
                column: key.column.and_then(|c| u32::try_from(c).ok()),
                entries: snap.entries().to_vec(),
            });
        }
        for (key, series) in self.restored.get_mut().iter() {
            if caches.contains_key(key) {
                continue;
            }
            out.push(PersistedSeries {
                label: key.kind.name().to_string(),
                column: key.column.and_then(|c| u32::try_from(c).ok()),
                entries: series.entries().to_vec(),
            });
        }
        out
    }

    /// Promote footer-restored series to live caches before a mutation:
    /// the live cache is rebuilt from the (pre-mutation) relation, so the
    /// mutation's patch applies to real, retractable state.
    fn promote_restored(&mut self) {
        let restored = std::mem::take(self.restored.get_mut());
        if restored.is_empty() {
            return;
        }
        let schema = self.relation.schema().clone();
        let caches = self.caches.get_mut();
        for key in restored.into_keys() {
            if caches.contains_key(&key) {
                continue;
            }
            let Ok(agg) = dyn_for(&schema, key) else {
                continue;
            };
            caches.insert(key, AggCache::build(agg, key.column, &self.relation));
        }
    }

    /// Baseline page containing tuple `index` (see
    /// [`dirty_pages`](TemporalStore::dirty_pages)).
    fn page_of(&self, index: usize) -> usize {
        self.page_prefix.partition_point(|c| *c <= index as u64)
    }

    fn mark_tuple_dirty(&mut self, index: usize) {
        let page = self.page_of(index);
        self.dirty_pages.insert(page);
        self.dirty = true;
    }

    /// Read access to the stored relation.
    pub fn relation(&self) -> &TemporalRelation {
        &self.relation
    }

    /// The stored relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.relation.schema()
    }

    /// The current write epoch (bumped once per committed mutation).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.relation.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Consume the store, returning the relation.
    pub fn into_relation(self) -> TemporalRelation {
        self.relation
    }

    /// Insert one tuple, patching every cache.
    pub fn insert(&mut self, values: Vec<Value>, valid: Interval) -> Result<()> {
        self.promote_restored();
        self.relation.push(values, valid)?;
        self.mark_tuple_dirty(self.relation.len().saturating_sub(1));
        let Some(tuple) = self.relation.tuples().last().cloned() else {
            return Ok(());
        };
        self.commit_insert(&tuple)
    }

    /// Insert an already-built tuple, patching every cache.
    pub fn insert_tuple(&mut self, tuple: Tuple) -> Result<()> {
        self.promote_restored();
        self.relation.push_tuple(tuple.clone())?;
        self.mark_tuple_dirty(self.relation.len().saturating_sub(1));
        self.commit_insert(&tuple)
    }

    fn commit_insert(&mut self, tuple: &Tuple) -> Result<()> {
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let value = extract(tuple, cache.column());
            cache.apply_insert(tuple.valid(), &value, &self.relation)?;
        }
        self.bump();
        Ok(())
    }

    /// Delete every tuple satisfying `pred`, retracting each from every
    /// cache. Returns the number of tuples deleted.
    pub fn delete_where(&mut self, pred: impl FnMut(&Tuple) -> bool) -> Result<usize> {
        self.promote_restored();
        let flags: Vec<bool> = self.relation.iter().map(pred).collect();
        let removed: Vec<Tuple> = self
            .relation
            .iter()
            .zip(&flags)
            .filter(|(_, &flagged)| flagged)
            .map(|(t, _)| t.clone())
            .collect();
        if removed.is_empty() {
            return Ok(0);
        }
        for (index, &flagged) in flags.iter().enumerate() {
            if flagged {
                self.mark_tuple_dirty(index);
            }
        }
        let mut index = 0usize;
        self.relation.retain(|_| {
            let keep = !flags.get(index).copied().unwrap_or(false);
            index += 1;
            keep
        });
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            for tuple in &removed {
                let value = extract(tuple, cache.column());
                cache.apply_delete(tuple.valid(), &value, &self.relation)?;
            }
        }
        self.bump();
        Ok(removed.len())
    }

    /// Update every tuple satisfying `pred`: each `(column, value)`
    /// assignment overwrites that attribute, valid time is unchanged.
    /// Caches reading an assigned column see an exact retract-then-insert
    /// of the changed value; all other caches (including `COUNT(*)`) are
    /// untouched. The whole statement is validated before any tuple is
    /// written, so a failed UPDATE mutates nothing.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Tuple) -> bool,
        assignments: &[(usize, Value)],
    ) -> Result<usize> {
        self.promote_restored();
        let mut replacements: Vec<(usize, Tuple, Tuple)> = Vec::new();
        for (index, old) in self.relation.iter().enumerate() {
            if !pred(old) {
                continue;
            }
            let mut values = old.values().to_vec();
            for (column, value) in assignments {
                let Some(slot) = values.get_mut(*column) else {
                    continue;
                };
                *slot = value.clone();
            }
            self.relation.schema().check(&values)?;
            let replacement = Tuple::new(values, old.valid());
            replacements.push((index, old.clone(), replacement));
        }
        if replacements.is_empty() {
            return Ok(0);
        }
        for (index, _, replacement) in &replacements {
            let _previous = self.relation.replace(*index, replacement.clone())?;
        }
        let touched: Vec<usize> = replacements.iter().map(|(index, _, _)| *index).collect();
        for index in touched {
            self.mark_tuple_dirty(index);
        }
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let Some(column) = cache.column() else {
                continue;
            };
            if !assignments.iter().any(|(assigned, _)| *assigned == column) {
                continue;
            }
            for (_, old, new) in &replacements {
                cache.apply_delete(old.valid(), &extract(old, Some(column)), &self.relation)?;
                cache.apply_insert(new.valid(), &extract(new, Some(column)), &self.relation)?;
            }
        }
        self.bump();
        Ok(replacements.len())
    }

    fn bump(&mut self) {
        self.epoch = self.epoch.next();
        #[cfg(feature = "validate")]
        {
            for cache in self.caches.get_mut().values() {
                cache.validate_structure();
            }
        }
    }

    /// Build (if absent) the cache for `agg` over `column`. A series
    /// restored from a paged file counts as present — it is served
    /// read-only until the first mutation promotes it.
    pub fn ensure_cache(&self, agg: DynAggregate, column: Option<usize>) {
        let key = CacheKey {
            kind: agg.kind(),
            column,
        };
        if self.restored.borrow().contains_key(&key) {
            return;
        }
        let mut caches = self.caches.borrow_mut();
        caches
            .entry(key)
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
    }

    /// Whether a cache (live or restored from a paged file) exists for
    /// `(kind, column)`.
    pub fn has_cache(&self, kind: AggKind, column: Option<usize>) -> bool {
        let key = CacheKey { kind, column };
        self.caches.borrow().contains_key(&key) || self.restored.borrow().contains_key(&key)
    }

    /// Snapshot the cached series for `(kind, column)` at the current
    /// epoch, or `None` if that aggregate has no cache yet. The returned
    /// `Arc` pins the version: concurrent writes publish new versions but
    /// never mutate or free this one. Series restored from a paged file
    /// are served as-is (they were snapshotted at flush time and the
    /// relation has not changed since — any mutation promotes them to
    /// live caches first).
    pub fn snapshot(&self, kind: AggKind, column: Option<usize>) -> Option<Arc<Series<Value>>> {
        let key = CacheKey { kind, column };
        {
            let mut caches = self.caches.borrow_mut();
            if let Some(cache) = caches.get_mut(&key) {
                return Some(cache.snapshot(self.epoch));
            }
        }
        self.restored.borrow().get(&key).cloned()
    }

    /// [`ensure_cache`](TemporalStore::ensure_cache) then
    /// [`snapshot`](TemporalStore::snapshot), in one borrow.
    pub fn snapshot_or_build(
        &self,
        agg: DynAggregate,
        column: Option<usize>,
    ) -> Arc<Series<Value>> {
        let key = CacheKey {
            kind: agg.kind(),
            column,
        };
        if let Some(series) = self.restored.borrow().get(&key) {
            return series.clone();
        }
        let mut caches = self.caches.borrow_mut();
        let cache = caches
            .entry(key)
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
        cache.snapshot(self.epoch)
    }

    /// Aggregated maintenance counters across all caches.
    pub fn cache_stats(&self) -> StoreCacheStats {
        let caches = self.caches.borrow();
        let mut stats = StoreCacheStats {
            caches: caches.len(),
            ..StoreCacheStats::default()
        };
        for cache in caches.values() {
            stats.runs += cache.runs_len();
            stats.patched_runs += cache.patched_runs();
            stats.recomputed_windows += cache.recomputed_windows();
            stats.live_versions += cache.live_versions();
            stats.pinned_versions += cache.pinned_versions();
        }
        stats
    }
}

/// Every aggregate kind, for label round-tripping.
const ALL_KINDS: [AggKind; 9] = [
    AggKind::CountStar,
    AggKind::Count,
    AggKind::CountDistinct,
    AggKind::Sum,
    AggKind::Min,
    AggKind::Max,
    AggKind::Avg,
    AggKind::Variance,
    AggKind::StdDev,
];

/// Map a persisted footer label (written as [`AggKind::name`]) back to its
/// kind. `AggKind::parse` is *not* the inverse of `name` (it speaks SQL
/// keywords, not display labels like `COUNT(*)`), hence this table lookup.
fn kind_for_label(label: &str) -> Option<AggKind> {
    ALL_KINDS.into_iter().find(|kind| kind.name() == label)
}

/// Rebuild a live aggregate for `key`, deriving the input type from the
/// schema column (columnless aggregates like `COUNT(*)` never read their
/// input, so any type works; `Int` by convention).
fn dyn_for(schema: &Schema, key: CacheKey) -> Result<DynAggregate> {
    let input = match key.column {
        Some(index) => schema
            .columns()
            .get(index)
            .map(|column| column.ty)
            .ok_or_else(|| {
                TempAggError::storage(format!(
                    "persisted cache references column {index}, but the schema has {} columns",
                    schema.len()
                ))
            })?,
        None => ValueType::Int,
    };
    DynAggregate::new(key.kind, input)
}

/// Decode a footer cache entry into the key it was stored under,
/// validating the label and column against the file's own schema.
fn key_for_persisted(schema: &Schema, series: &PersistedSeries) -> Result<CacheKey> {
    let kind = kind_for_label(&series.label).ok_or_else(|| {
        TempAggError::storage(format!(
            "unknown persisted aggregate label {:?}",
            series.label
        ))
    })?;
    let column = match series.column {
        Some(raw) => {
            let index = raw as usize;
            if index >= schema.len() {
                return Err(TempAggError::storage(format!(
                    "persisted cache {:?} references column {index}, but the schema has {} columns",
                    series.label,
                    schema.len()
                )));
            }
            Some(index)
        }
        None => None,
    };
    Ok(CacheKey { kind, column })
}
