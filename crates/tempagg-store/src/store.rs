//! The mutable temporal store: an updatable interval relation plus the
//! versioned aggregate caches maintained under every write.

use crate::cache::{extract, AggCache};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Arc;
use tempagg_agg::{AggKind, DynAggregate};
use tempagg_core::{Epoch, Interval, Result, Schema, Series, TemporalRelation, Tuple, Value};

/// Identifies one cached aggregate series: the aggregate kind plus the
/// input column index (`None` for `COUNT(*)`-style aggregates without an
/// input column).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    pub kind: AggKind,
    pub column: Option<usize>,
}

/// Aggregated maintenance counters across a store's caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCacheStats {
    /// Number of cached aggregate series.
    pub caches: usize,
    /// Total constant-interval runs across all working series.
    pub runs: usize,
    /// Runs patched in place by incremental maintenance.
    pub patched_runs: u64,
    /// Dirty-window sweep recomputes (Approximate-class fallback).
    pub recomputed_windows: u64,
    /// Published snapshot versions currently retained.
    pub live_versions: usize,
    /// Retained versions still pinned by a reader.
    pub pinned_versions: usize,
}

/// An updatable interval relation with incrementally maintained aggregate
/// caches and MVCC snapshot reads.
///
/// The store is the single writer of its relation: every mutation goes
/// through [`insert`](TemporalStore::insert) /
/// [`delete_where`](TemporalStore::delete_where) /
/// [`update_where`](TemporalStore::update_where), which patch each cached
/// series in the same commit and bump the write [`Epoch`]. Readers call
/// [`snapshot`](TemporalStore::snapshot) and receive an immutable
/// `Arc<Series<Value>>` pinned against concurrent writes — later writes
/// publish new versions but never touch a pinned one.
///
/// Caches are created on demand (interior mutability), so read paths can
/// warm the store through a shared reference.
#[derive(Clone, Debug)]
pub struct TemporalStore {
    relation: TemporalRelation,
    epoch: Epoch,
    caches: RefCell<BTreeMap<CacheKey, AggCache>>,
}

impl TemporalStore {
    /// Wrap an existing relation. The store becomes the relation's single
    /// writer; mutate only through the store from here on.
    pub fn new(relation: TemporalRelation) -> TemporalStore {
        TemporalStore {
            relation,
            epoch: Epoch::ZERO,
            caches: RefCell::new(BTreeMap::new()),
        }
    }

    /// An empty store over `schema`.
    pub fn with_schema(schema: Arc<Schema>) -> TemporalStore {
        TemporalStore::new(TemporalRelation::new(schema))
    }

    /// Read access to the stored relation.
    pub fn relation(&self) -> &TemporalRelation {
        &self.relation
    }

    /// The stored relation's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        self.relation.schema()
    }

    /// The current write epoch (bumped once per committed mutation).
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    pub fn len(&self) -> usize {
        self.relation.len()
    }

    pub fn is_empty(&self) -> bool {
        self.relation.is_empty()
    }

    /// Consume the store, returning the relation.
    pub fn into_relation(self) -> TemporalRelation {
        self.relation
    }

    /// Insert one tuple, patching every cache.
    pub fn insert(&mut self, values: Vec<Value>, valid: Interval) -> Result<()> {
        self.relation.push(values, valid)?;
        let Some(tuple) = self.relation.tuples().last().cloned() else {
            return Ok(());
        };
        self.commit_insert(&tuple)
    }

    /// Insert an already-built tuple, patching every cache.
    pub fn insert_tuple(&mut self, tuple: Tuple) -> Result<()> {
        self.relation.push_tuple(tuple.clone())?;
        self.commit_insert(&tuple)
    }

    fn commit_insert(&mut self, tuple: &Tuple) -> Result<()> {
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let value = extract(tuple, cache.column());
            cache.apply_insert(tuple.valid(), &value, &self.relation)?;
        }
        self.bump();
        Ok(())
    }

    /// Delete every tuple satisfying `pred`, retracting each from every
    /// cache. Returns the number of tuples deleted.
    pub fn delete_where(&mut self, pred: impl FnMut(&Tuple) -> bool) -> Result<usize> {
        let flags: Vec<bool> = self.relation.iter().map(pred).collect();
        let removed: Vec<Tuple> = self
            .relation
            .iter()
            .zip(&flags)
            .filter(|(_, &flagged)| flagged)
            .map(|(t, _)| t.clone())
            .collect();
        if removed.is_empty() {
            return Ok(0);
        }
        let mut index = 0usize;
        self.relation.retain(|_| {
            let keep = !flags.get(index).copied().unwrap_or(false);
            index += 1;
            keep
        });
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            for tuple in &removed {
                let value = extract(tuple, cache.column());
                cache.apply_delete(tuple.valid(), &value, &self.relation)?;
            }
        }
        self.bump();
        Ok(removed.len())
    }

    /// Update every tuple satisfying `pred`: each `(column, value)`
    /// assignment overwrites that attribute, valid time is unchanged.
    /// Caches reading an assigned column see an exact retract-then-insert
    /// of the changed value; all other caches (including `COUNT(*)`) are
    /// untouched. The whole statement is validated before any tuple is
    /// written, so a failed UPDATE mutates nothing.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&Tuple) -> bool,
        assignments: &[(usize, Value)],
    ) -> Result<usize> {
        let mut replacements: Vec<(usize, Tuple, Tuple)> = Vec::new();
        for (index, old) in self.relation.iter().enumerate() {
            if !pred(old) {
                continue;
            }
            let mut values = old.values().to_vec();
            for (column, value) in assignments {
                let Some(slot) = values.get_mut(*column) else {
                    continue;
                };
                *slot = value.clone();
            }
            self.relation.schema().check(&values)?;
            let replacement = Tuple::new(values, old.valid());
            replacements.push((index, old.clone(), replacement));
        }
        if replacements.is_empty() {
            return Ok(0);
        }
        for (index, _, replacement) in &replacements {
            let _previous = self.relation.replace(*index, replacement.clone())?;
        }
        let caches = self.caches.get_mut();
        for cache in caches.values_mut() {
            let Some(column) = cache.column() else {
                continue;
            };
            if !assignments.iter().any(|(assigned, _)| *assigned == column) {
                continue;
            }
            for (_, old, new) in &replacements {
                cache.apply_delete(old.valid(), &extract(old, Some(column)), &self.relation)?;
                cache.apply_insert(new.valid(), &extract(new, Some(column)), &self.relation)?;
            }
        }
        self.bump();
        Ok(replacements.len())
    }

    fn bump(&mut self) {
        self.epoch = self.epoch.next();
        #[cfg(feature = "validate")]
        {
            for cache in self.caches.get_mut().values() {
                cache.validate_structure();
            }
        }
    }

    /// Build (if absent) the cache for `agg` over `column`.
    pub fn ensure_cache(&self, agg: DynAggregate, column: Option<usize>) {
        let mut caches = self.caches.borrow_mut();
        caches
            .entry(CacheKey {
                kind: agg.kind(),
                column,
            })
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
    }

    /// Whether a cache exists for `(kind, column)`.
    pub fn has_cache(&self, kind: AggKind, column: Option<usize>) -> bool {
        self.caches
            .borrow()
            .contains_key(&CacheKey { kind, column })
    }

    /// Snapshot the cached series for `(kind, column)` at the current
    /// epoch, or `None` if that aggregate has no cache yet. The returned
    /// `Arc` pins the version: concurrent writes publish new versions but
    /// never mutate or free this one.
    pub fn snapshot(&self, kind: AggKind, column: Option<usize>) -> Option<Arc<Series<Value>>> {
        let mut caches = self.caches.borrow_mut();
        let cache = caches.get_mut(&CacheKey { kind, column })?;
        Some(cache.snapshot(self.epoch))
    }

    /// [`ensure_cache`](TemporalStore::ensure_cache) then
    /// [`snapshot`](TemporalStore::snapshot), in one borrow.
    pub fn snapshot_or_build(
        &self,
        agg: DynAggregate,
        column: Option<usize>,
    ) -> Arc<Series<Value>> {
        let mut caches = self.caches.borrow_mut();
        let cache = caches
            .entry(CacheKey {
                kind: agg.kind(),
                column,
            })
            .or_insert_with(|| AggCache::build(agg, column, &self.relation));
        cache.snapshot(self.epoch)
    }

    /// Aggregated maintenance counters across all caches.
    pub fn cache_stats(&self) -> StoreCacheStats {
        let caches = self.caches.borrow();
        let mut stats = StoreCacheStats {
            caches: caches.len(),
            ..StoreCacheStats::default()
        };
        for cache in caches.values() {
            stats.runs += cache.runs_len();
            stats.patched_runs += cache.patched_runs();
            stats.recomputed_windows += cache.recomputed_windows();
            stats.live_versions += cache.live_versions();
            stats.pinned_versions += cache.pinned_versions();
        }
        stats
    }
}
