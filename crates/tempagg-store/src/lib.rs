//! # tempagg-store
//!
//! The mutable temporal store: live ingestion with incremental aggregate
//! maintenance and MVCC snapshot reads.
//!
//! The paper computes aggregates over an immutable relation, so every
//! query rebuilds from scratch. [`TemporalStore`] makes the relation
//! updatable — `INSERT` / `DELETE` / `UPDATE` of interval tuples — and
//! keeps a versioned cache of each queried aggregate's constant-interval
//! [`Series`](tempagg_core::Series), patched *incrementally* under every
//! write:
//!
//! * **Delta-class** aggregates (`COUNT`, integer `SUM`/`AVG`) retract
//!   exactly by delta summation (Colley et al.): the write splits or
//!   merges only the runs whose boundaries it contributes, then folds its
//!   value into — or out of — the active state of the runs overlapping
//!   the changed interval.
//! * **Ordered-class** aggregates (`MIN`/`MAX`, `COUNT(DISTINCT)`) do the
//!   same through the ordered multiset already inside
//!   [`DynActive`](tempagg_agg::DynActive).
//! * **Approximate-class** aggregates (float `SUM`/`AVG`, variance) drift
//!   under float retraction, so their caches re-run the endpoint-sweep
//!   kernel over just the dirty window — the hull of the runs overlapping
//!   the change — never the full timeline.
//!
//! Readers get MVCC snapshots: epoch-stamped immutable series versions
//! published through [`VersionedSeries`](tempagg_core::VersionedSeries),
//! shared as `Arc`s, with superseded versions collected once no reader
//! pins them. A cursor holding a snapshot stays valid across any number
//! of concurrent writes, and the cached series is byte-identical to a
//! from-scratch sweep over the relation at the snapshot's epoch.

#![warn(missing_debug_implementations)]
#![forbid(unsafe_code)]

mod cache;
mod store;

pub use cache::sweep_values;
pub use store::{index_mode_for, CacheKey, StoreCacheStats, TemporalStore, WindowIndexStats};
pub use tempagg_algo::{IndexMode, WindowAggregate};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tempagg_agg::{AggKind, DynAggregate, SweepAggregate};
    use tempagg_algo::{SweepAggregator, TemporalAggregator};
    use tempagg_core::{Interval, Schema, Series, TemporalRelation, Timestamp, Value, ValueType};

    fn schema() -> Arc<Schema> {
        Schema::of(&[("name", ValueType::Str), ("salary", ValueType::Int)])
    }

    fn employed() -> TemporalRelation {
        let mut r = TemporalRelation::new(schema());
        r.push(
            vec![Value::from("Richard"), Value::Int(40_000)],
            Interval::from_start(18),
        )
        .unwrap();
        r.push(
            vec![Value::from("Karen"), Value::Int(45_000)],
            Interval::at(8, 20),
        )
        .unwrap();
        r.push(
            vec![Value::from("Nathan"), Value::Int(42_000)],
            Interval::at(7, 12),
        )
        .unwrap();
        r.push(
            vec![Value::from("Mike"), Value::Int(50_000)],
            Interval::at(18, 21),
        )
        .unwrap();
        r
    }

    /// A from-scratch sweep over the relation — the oracle every cached
    /// series must match byte for byte.
    fn recompute(
        relation: &TemporalRelation,
        agg: DynAggregate,
        column: Option<usize>,
    ) -> Series<Value> {
        let mut sweep = SweepAggregator::new(agg);
        for tuple in relation {
            let value = match column {
                Some(idx) => tuple.value(idx).clone(),
                None => Value::Bool(true),
            };
            sweep.push(tuple.valid(), value).unwrap();
        }
        sweep.finish()
    }

    fn count_star() -> DynAggregate {
        DynAggregate::new(AggKind::CountStar, ValueType::Int).unwrap()
    }

    fn agg(kind: AggKind) -> DynAggregate {
        DynAggregate::new(kind, ValueType::Int).unwrap()
    }

    #[test]
    fn built_cache_matches_sweep() {
        let store = TemporalStore::new(employed());
        for (kind, column) in [
            (AggKind::CountStar, None),
            (AggKind::Sum, Some(1)),
            (AggKind::Min, Some(1)),
            (AggKind::Max, Some(1)),
            (AggKind::Avg, Some(1)),
        ] {
            let snap = store.snapshot_or_build(agg(kind), column);
            assert_eq!(
                *snap,
                recompute(store.relation(), agg(kind), column),
                "{kind:?} cache diverges from sweep"
            );
        }
    }

    #[test]
    fn insert_patches_cached_series() {
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        store.ensure_cache(agg(AggKind::Sum), Some(1));
        store
            .insert(
                vec![Value::from("Suchen"), Value::Int(60_000)],
                Interval::at(10, 25),
            )
            .unwrap();
        for (kind, column) in [(AggKind::CountStar, None), (AggKind::Sum, Some(1))] {
            let snap = store.snapshot(kind, column).unwrap();
            assert_eq!(*snap, recompute(store.relation(), agg(kind), column));
        }
        assert!(store.cache_stats().patched_runs > 0);
        assert_eq!(store.epoch().get(), 1);
    }

    #[test]
    fn delete_retracts_and_merges_boundaries() {
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        let runs_before = store.cache_stats().runs;
        let deleted = store
            .delete_where(|t| t.value(0) == &Value::from("Karen"))
            .unwrap();
        assert_eq!(deleted, 1);
        // Karen's boundaries (8 and 21) had a single contributor each...
        // 21 is shared with Mike's [18, 21] end? No: Mike's end boundary is
        // 22. Karen contributed 8 and 21; both merge away.
        assert!(store.cache_stats().runs < runs_before);
        let snap = store.snapshot(AggKind::CountStar, None).unwrap();
        assert_eq!(*snap, recompute(store.relation(), count_star(), None));
    }

    #[test]
    fn update_patches_only_assigned_columns() {
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        store.ensure_cache(agg(AggKind::Max), Some(1));
        let updated = store
            .update_where(
                |t| t.value(0) == &Value::from("Nathan"),
                &[(1, Value::Int(99_000))],
            )
            .unwrap();
        assert_eq!(updated, 1);
        let max = store.snapshot(AggKind::Max, Some(1)).unwrap();
        assert_eq!(
            *max,
            recompute(store.relation(), agg(AggKind::Max), Some(1))
        );
        assert_eq!(
            max.value_at(Timestamp::new(10)),
            Some(&Value::Int(99_000)),
            "the updated salary must surface as the new MAX"
        );
        let count = store.snapshot(AggKind::CountStar, None).unwrap();
        assert_eq!(*count, recompute(store.relation(), count_star(), None));
    }

    #[test]
    fn update_is_atomic_on_type_errors() {
        let mut store = TemporalStore::new(employed());
        let err = store.update_where(|_| true, &[(1, Value::from("oops"))]);
        assert!(err.is_err());
        assert_eq!(store.epoch().get(), 0);
        assert_eq!(store.relation().tuples()[1].value(1), &Value::Int(45_000));
    }

    #[test]
    fn approximate_class_recomputes_dirty_window() {
        let schema = Schema::of(&[("x", ValueType::Float)]);
        let mut relation = TemporalRelation::new(schema);
        for i in 0..32i64 {
            relation
                .push(
                    vec![Value::Float(f64::from(i32::try_from(i).unwrap()) / 3.0)],
                    Interval::at(i * 5, i * 5 + 12),
                )
                .unwrap();
        }
        let mut store = TemporalStore::new(relation);
        let avg = DynAggregate::new(AggKind::Avg, ValueType::Float).unwrap();
        assert!(!avg.sweep_class().retractable());
        store.ensure_cache(avg, Some(0));
        store
            .insert(vec![Value::Float(7.5)], Interval::at(40, 80))
            .unwrap();
        store
            .delete_where(|t| t.valid().start() == Timestamp::new(0))
            .unwrap();
        let stats = store.cache_stats();
        assert!(stats.recomputed_windows >= 2);
        assert_eq!(stats.patched_runs, 0);
        let snap = store.snapshot(AggKind::Avg, Some(0)).unwrap();
        let oracle = recompute(store.relation(), avg, Some(0));
        assert_eq!(snap.len(), oracle.len());
        for (got, want) in snap.iter().zip(oracle.iter()) {
            assert_eq!(got.interval, want.interval);
            match (&got.value, &want.value) {
                (Value::Float(a), Value::Float(b)) => {
                    assert!((a - b).abs() < 1e-9, "AVG drifted: {a} vs {b}");
                }
                (a, b) => assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn snapshots_pin_versions_until_dropped() {
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        let pinned = store.snapshot(AggKind::CountStar, None).unwrap();
        let before = (*pinned).clone();
        store
            .insert(
                vec![Value::from("Andrey"), Value::Int(30_000)],
                Interval::at(0, 30),
            )
            .unwrap();
        // The pinned snapshot is untouched by the write...
        assert_eq!(*pinned, before);
        // ...and the new epoch's snapshot reflects it.
        let fresh = store.snapshot(AggKind::CountStar, None).unwrap();
        assert_ne!(*fresh, before);
        assert_eq!(*fresh, recompute(store.relation(), count_star(), None));
        assert_eq!(store.cache_stats().live_versions, 2);
        drop(pinned);
        // Another write publishes and collects the unpinned old version.
        store
            .delete_where(|t| t.value(0) == &Value::from("Andrey"))
            .unwrap();
        let latest = store.snapshot(AggKind::CountStar, None).unwrap();
        drop(latest);
        assert_eq!(store.cache_stats().live_versions, 2);
        assert_eq!(store.cache_stats().pinned_versions, 1);
    }

    #[test]
    fn empty_store_has_one_empty_run() {
        let store = TemporalStore::with_schema(schema());
        let snap = store.snapshot_or_build(count_star(), None);
        assert_eq!(*snap, recompute(store.relation(), count_star(), None));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap.value_at(Timestamp::ORIGIN), Some(&Value::Int(0)));
    }

    #[test]
    fn snapshot_without_cache_is_none() {
        let store = TemporalStore::new(employed());
        assert!(store.snapshot(AggKind::CountStar, None).is_none());
        assert!(!store.has_cache(AggKind::CountStar, None));
        store.ensure_cache(count_star(), None);
        assert!(store.has_cache(AggKind::CountStar, None));
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tempagg-store-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn persist_roundtrip_restores_relation_and_caches() {
        let path = temp_path("roundtrip.tapg");
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        store.ensure_cache(agg(AggKind::Sum), Some(1));
        let stats = store.persist_to(&path).unwrap();
        assert_eq!(stats.tuples, 4);
        assert!(!store.is_dirty());

        let reopened = TemporalStore::open(&path).unwrap();
        assert_eq!(reopened.relation(), store.relation());
        assert!(!reopened.is_dirty());
        assert!(reopened.has_cache(AggKind::CountStar, None));
        assert!(reopened.has_cache(AggKind::Sum, Some(1)));
        // Served from the restored footer series, not a live rebuild.
        assert_eq!(reopened.cache_stats().caches, 0);
        for (kind, column) in [(AggKind::CountStar, None), (AggKind::Sum, Some(1))] {
            let snap = reopened.snapshot(kind, column).unwrap();
            assert_eq!(*snap, recompute(reopened.relation(), agg(kind), column));
        }
        // snapshot_or_build also prefers the restored series.
        let snap = reopened.snapshot_or_build(count_star(), None);
        assert_eq!(*snap, recompute(reopened.relation(), count_star(), None));
        assert_eq!(reopened.cache_stats().caches, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mutation_after_open_promotes_restored_caches() {
        let path = temp_path("promote.tapg");
        let mut store = TemporalStore::new(employed());
        store.ensure_cache(count_star(), None);
        store.ensure_cache(agg(AggKind::Sum), Some(1));
        store.persist_to(&path).unwrap();

        let mut reopened = TemporalStore::open(&path).unwrap();
        reopened
            .insert(
                vec![Value::from("Suchen"), Value::Int(60_000)],
                Interval::at(10, 25),
            )
            .unwrap();
        assert!(reopened.is_dirty());
        assert!(!reopened.dirty_pages().is_empty());
        // Both restored series are now live, incrementally-patched caches.
        assert_eq!(reopened.cache_stats().caches, 2);
        for (kind, column) in [(AggKind::CountStar, None), (AggKind::Sum, Some(1))] {
            let snap = reopened.snapshot(kind, column).unwrap();
            assert_eq!(
                *snap,
                recompute(reopened.relation(), agg(kind), column),
                "{kind:?} diverged after promote + patch"
            );
        }
        // Deletes and updates promote too, and stay oracle-identical.
        reopened
            .delete_where(|t| t.value(0) == &Value::from("Karen"))
            .unwrap();
        reopened
            .update_where(
                |t| t.value(0) == &Value::from("Nathan"),
                &[(1, Value::Int(70_000))],
            )
            .unwrap();
        for (kind, column) in [(AggKind::CountStar, None), (AggKind::Sum, Some(1))] {
            let snap = reopened.snapshot(kind, column).unwrap();
            assert_eq!(*snap, recompute(reopened.relation(), agg(kind), column));
        }
        // Flushing persists the promoted caches; a fresh open restores them.
        reopened.flush().unwrap().unwrap();
        let third = TemporalStore::open(&path).unwrap();
        assert_eq!(third.relation(), reopened.relation());
        let snap = third.snapshot(AggKind::Sum, Some(1)).unwrap();
        assert_eq!(
            *snap,
            recompute(third.relation(), agg(AggKind::Sum), Some(1))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_is_noop_when_clean() {
        let path = temp_path("clean.tapg");
        let mut store = TemporalStore::new(employed());
        store.persist_to(&path).unwrap();
        assert!(store.flush().unwrap().is_none());
        let mut reopened = TemporalStore::open(&path).unwrap();
        assert!(reopened.flush().unwrap().is_none());
        reopened
            .insert(vec![Value::from("Eve"), Value::Int(1)], Interval::at(0, 5))
            .unwrap();
        assert!(reopened.flush().unwrap().is_some());
        assert!(!reopened.is_dirty());
        assert!(reopened.dirty_pages().is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn flush_without_backing_errors() {
        let mut store = TemporalStore::new(employed());
        assert!(store.backing().is_none());
        let err = store.flush().unwrap_err();
        assert!(err.to_string().contains("no backing file"), "{err}");
    }

    #[test]
    fn open_rejects_unknown_cache_label() {
        use tempagg_core::pager::{write_relation, PagedWriteOptions, PersistedSeries};
        let path = temp_path("badlabel.tapg");
        write_relation(
            &employed(),
            &path,
            &PagedWriteOptions {
                caches: vec![PersistedSeries {
                    label: "MEDIAN".to_string(),
                    column: Some(1),
                    entries: Vec::new(),
                }],
                ..PagedWriteOptions::default()
            },
        )
        .unwrap();
        let err = TemporalStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("MEDIAN"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    /// Linear-scan window oracle over the cached series the store would
    /// publish — what every index probe must match byte for byte.
    fn window_oracle(
        store: &TemporalStore,
        kind: AggKind,
        column: Option<usize>,
        window: Interval,
    ) -> WindowAggregate {
        let snap = store.snapshot_or_build(agg(kind), column);
        tempagg_algo::scan_window(&*snap, window)
    }

    #[test]
    fn window_probe_matches_scan_oracle() {
        let store = TemporalStore::new(employed());
        let windows = [
            Interval::at(0, 5),
            Interval::at(8, 20),
            Interval::at(10, 12),
            Interval::at(19, 40),
            Interval::TIMELINE,
        ];
        for (kind, column) in [
            (AggKind::CountStar, None),
            (AggKind::Sum, Some(1)),
            (AggKind::Min, Some(1)),
            (AggKind::Max, Some(1)),
        ] {
            for window in windows {
                let got = store.window_probe(kind, column, window).unwrap();
                assert_eq!(
                    got,
                    window_oracle(&store, kind, column, window),
                    "{kind:?} over {window:?} diverged from the scan oracle"
                );
            }
        }
        let stats = store.windex_stats();
        assert_eq!(stats.misses, 4, "one build per aggregate");
        assert_eq!(stats.hits, 16, "every later probe reuses the warm index");
    }

    #[test]
    fn non_indexable_aggregates_refuse_window_probes() {
        let store = TemporalStore::new(employed());
        let err = store
            .window_probe(AggKind::Avg, Some(1), Interval::at(0, 10))
            .unwrap_err();
        assert!(err.to_string().contains("not window-indexable"), "{err}");
        assert!(store.window_indexable(AggKind::Sum, Some(1)));
        assert!(!store.window_indexable(AggKind::Avg, Some(1)));
    }

    #[test]
    fn dml_refreshes_window_indexes_in_place() {
        let mut store = TemporalStore::new(employed());
        let window = Interval::at(5, 22);
        store.window_probe(AggKind::Sum, Some(1), window).unwrap();
        store.window_probe(AggKind::Max, Some(1), window).unwrap();
        store
            .insert(
                vec![Value::from("Suchen"), Value::Int(60_000)],
                Interval::at(10, 25),
            )
            .unwrap();
        store
            .update_where(
                |t| t.value(0) == &Value::from("Nathan"),
                &[(1, Value::Int(99_000))],
            )
            .unwrap();
        store
            .delete_where(|t| t.value(0) == &Value::from("Karen"))
            .unwrap();
        // The indexes survived every write as refreshes, not drops...
        assert!(store.has_window_index(AggKind::Sum, Some(1)));
        assert!(store.has_window_index(AggKind::Max, Some(1)));
        let misses_before = store.windex_stats().misses;
        // ...and still answer byte-identically to a fresh linear scan.
        for kind in [AggKind::Sum, AggKind::Max] {
            for window in [window, Interval::at(0, 9), Interval::at(24, 60)] {
                let got = store.window_probe(kind, Some(1), window).unwrap();
                assert_eq!(
                    got,
                    window_oracle(&store, kind, Some(1), window),
                    "{kind:?} over {window:?} diverged after DML refresh"
                );
            }
        }
        assert_eq!(store.windex_stats().misses, misses_before);
    }

    #[test]
    fn extreme_instants_point_at_the_series_extreme() {
        let store = TemporalStore::new(employed());
        let snap = store.snapshot_or_build(agg(AggKind::Sum), Some(1));
        let window = Interval::at(0, 30);
        let (at, value) = store
            .window_extreme_instant(AggKind::Sum, Some(1), window, true)
            .unwrap()
            .unwrap();
        assert_eq!(snap.value_at(at), Some(&value));
        // No instant in the window carries a larger SUM.
        for entry in snap.entries() {
            if entry.interval.overlaps(&window) && !entry.value.is_null() {
                assert!(entry.value.total_cmp(&value).is_le());
            }
        }
        let (at_min, min_value) = store
            .window_extreme_instant(AggKind::Sum, Some(1), window, false)
            .unwrap()
            .unwrap();
        assert_eq!(snap.value_at(at_min), Some(&min_value));
        assert!(min_value.total_cmp(&value).is_le());
    }

    #[test]
    fn top_k_ranks_groups_by_windowed_aggregate() {
        let schema = Schema::of(&[("g", ValueType::Int), ("v", ValueType::Int)]);
        let mut relation = TemporalRelation::new(schema.clone());
        for g in 0..6i64 {
            for j in 0..4i64 {
                relation
                    .push(
                        vec![Value::Int(g), Value::Int(10 * g + j)],
                        Interval::at(g * 3 + j, g * 3 + j + 20),
                    )
                    .unwrap();
            }
        }
        let store = TemporalStore::new(relation.clone());
        let window = Interval::at(5, 30);
        let (ranked, probes) = store
            .top_k_by_window(AggKind::Sum, Some(1), 0, window, 3)
            .unwrap();
        assert_eq!(ranked.len(), 3);
        assert!(probes > 0);
        // Exhaustive oracle: sweep each group separately and scan.
        let mut oracle: Vec<(Value, i128)> = (0..6i64)
            .map(|g| {
                let mut sub = TemporalRelation::new(schema.clone());
                for t in relation.iter().filter(|t| t.value(0) == &Value::Int(g)) {
                    sub.push(t.values().to_vec(), t.valid()).unwrap();
                }
                let series = recompute(&sub, agg(AggKind::Sum), Some(1));
                let scanned = tempagg_algo::scan_window(&series, window);
                (Value::Int(g), scanned.integral)
            })
            .collect();
        oracle.sort_by_key(|entry| std::cmp::Reverse(entry.1));
        for (got, want) in ranked.iter().zip(&oracle) {
            assert_eq!(got.0, want.0, "ranking order diverged from exhaustive");
            assert_eq!(got.1.integral, want.1);
        }
        // A repeat ranking reuses the grouped indexes (a hit, no rebuild).
        let misses = store.windex_stats().misses;
        store
            .top_k_by_window(AggKind::Sum, Some(1), 0, window, 3)
            .unwrap();
        assert_eq!(store.windex_stats().misses, misses);
    }

    #[test]
    fn windex_persists_through_the_footer() {
        let path = temp_path("windex.tapg");
        let mut store = TemporalStore::new(employed());
        let window = Interval::at(6, 21);
        let want = store.window_probe(AggKind::Sum, Some(1), window).unwrap();
        store.window_probe(AggKind::Min, Some(1), window).unwrap();
        store.persist_to(&path).unwrap();

        let reopened = TemporalStore::open(&path).unwrap();
        // Restored warm: the first probe is a hit, with no live cache built.
        assert!(reopened.has_window_index(AggKind::Sum, Some(1)));
        assert!(reopened.has_window_index(AggKind::Min, Some(1)));
        let got = reopened
            .window_probe(AggKind::Sum, Some(1), window)
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(reopened.cache_stats().caches, 0);
        let stats = reopened.windex_stats();
        assert_eq!((stats.hits, stats.misses), (1, 0));
        // Oracle agreement for a window the original never probed.
        let fresh = Interval::at(0, 11);
        assert_eq!(
            reopened.window_probe(AggKind::Min, Some(1), fresh).unwrap(),
            window_oracle(&reopened, AggKind::Min, Some(1), fresh),
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_windex_blocks_degrade_to_rebuild() {
        use tempagg_core::pager::{write_relation, PagedWriteOptions, PersistedSeries};
        let path = temp_path("badwindex.tapg");
        let relation = employed();
        let cache = {
            let store = TemporalStore::new(relation.clone());
            store.snapshot_or_build(agg(AggKind::Sum), Some(1))
        };
        write_relation(
            &relation,
            &path,
            &PagedWriteOptions {
                caches: vec![
                    PersistedSeries {
                        label: "SUM".to_string(),
                        column: Some(1),
                        entries: cache.entries().to_vec(),
                    },
                    // A meta block with no sum/min/max parts: incomplete.
                    PersistedSeries {
                        label: "windex:meta:SUM".to_string(),
                        column: Some(1),
                        entries: vec![tempagg_core::SeriesEntry {
                            interval: Interval::at(0, 0),
                            value: Value::from("v1 integral 4 9999"),
                        }],
                    },
                ],
                ..PagedWriteOptions::default()
            },
        )
        .unwrap();
        let reopened = TemporalStore::open(&path).unwrap();
        assert!(!reopened.has_window_index(AggKind::Sum, Some(1)));
        // The probe rebuilds from the restored series and stays exact.
        let window = Interval::at(6, 21);
        assert_eq!(
            reopened
                .window_probe(AggKind::Sum, Some(1), window)
                .unwrap(),
            window_oracle(&reopened, AggKind::Sum, Some(1), window),
        );
        assert_eq!(reopened.windex_stats().misses, 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_rejects_out_of_range_cache_column() {
        use tempagg_core::pager::{write_relation, PagedWriteOptions, PersistedSeries};
        let path = temp_path("badcol.tapg");
        write_relation(
            &employed(),
            &path,
            &PagedWriteOptions {
                caches: vec![PersistedSeries {
                    label: "SUM".to_string(),
                    column: Some(9),
                    entries: Vec::new(),
                }],
                ..PagedWriteOptions::default()
            },
        )
        .unwrap();
        let err = TemporalStore::open(&path).unwrap_err();
        assert!(err.to_string().contains("column 9"), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
